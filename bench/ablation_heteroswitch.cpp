// Ablations of HeteroSwitch's design choices (DESIGN.md section 5):
//   A. EMA smoothing factor alpha of eq. 1 (paper uses 0.9);
//   B. bias criterion: Algorithm 1's train loss vs a held-out validation
//      split (Section 5.1 mentions both);
//   C. ISP-transform strength: the paper's (WB 0.001, gamma 0.9) vs weaker
//      and stronger settings (Appendix A.2 grid corners);
//   D. extra baseline: FedAvgM (server momentum) — not in the paper, shows
//      that generic stabilization does not substitute for HeteroSwitch.
#include "bench_common.h"
#include "hetero/heteroswitch.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

DeviceMetrics run(FederatedAlgorithm& algo, const FlPopulation& pop,
                  std::size_t rounds, std::size_t k, std::uint64_t seed) {
  ModelSpec spec;
  Rng model_rng(seed);
  auto model = make_model(spec, model_rng);
  SimulationConfig sim;
  sim.rounds = rounds;
  sim.clients_per_round = k;
  sim.seed = seed + 1;
  sim.num_threads = Scale{}.threads();
  sim.observer = trace_sink().run("ablation." + algo.name());
  return run_simulation(*model, algo, pop, sim).final_metrics;
}

}  // namespace

int main() {
  const Scale scale;
  print_header("Ablation", "HeteroSwitch design choices", scale);

  const std::size_t n_clients = static_cast<std::size_t>(scale.n(30, 100));
  const std::size_t k = static_cast<std::size_t>(scale.n(8, 20));
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(60, 500));
  const std::size_t samples = static_cast<std::size_t>(scale.n(20, 40));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  PopulationConfig pcfg;
  pcfg.num_clients = n_clients;
  pcfg.samples_per_client = samples;
  pcfg.test_per_class = static_cast<std::size_t>(scale.n(5, 12));
  pcfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures
  Rng pop_rng = root.fork(1);
  const FlPopulation pop = build_population(paper_devices(), pcfg, scenes,
                                            pop_rng);

  const LocalTrainConfig local = paper_local_config();
  const std::uint64_t seed = scale.seed() + 7;

  Table table({"Variant", "DG worst-case Acc", "Fairness Variance",
               "Fairness avg Acc"});
  auto add = [&](const std::string& name, const DeviceMetrics& m) {
    table.add_row({name, Table::fmt(m.worst_case * 100, 2),
                   Table::fmt(m.variance * 1e4, 2),
                   Table::fmt(m.average * 100, 2)});
    std::fprintf(stderr, "[ablation] %-28s worst %.2f avg %.2f (%.1fs)\n",
                 name.c_str(), m.worst_case * 100, m.average * 100,
                 timer.elapsed_s());
  };

  // Reference points.
  {
    FedAvg fedavg(local);
    add("FedAvg", run(fedavg, pop, rounds, k, seed));
  }
  {
    HeteroSwitch hs(local, HeteroSwitchOptions{});
    add("HeteroSwitch (paper)", run(hs, pop, rounds, k, seed));
  }

  // A: EMA alpha.
  for (double alpha : {0.5, 0.99}) {
    HeteroSwitchOptions opt;
    opt.ema_alpha = alpha;
    HeteroSwitch hs(local, opt);
    add("alpha=" + Table::fmt(alpha, 2), run(hs, pop, rounds, k, seed));
  }

  // B: validation-split bias criterion.
  {
    HeteroSwitchOptions opt;
    opt.criterion = BiasCriterion::kValidationSplit;
    HeteroSwitch hs(local, opt);
    add("validation-split criterion", run(hs, pop, rounds, k, seed));
  }

  // C: transform strength — the paper's degrees (selected on its real-
  // device dataset) vs weaker/stronger corners of the Appendix A.2 grid.
  {
    HeteroSwitchOptions opt;
    opt.transform = paper_isp_transform();
    HeteroSwitch hs(local, opt);
    add("paper degrees (wb=.001,g=.9)", run(hs, pop, rounds, k, seed));
  }
  {
    HeteroSwitchOptions opt;
    opt.transform = {0.0005f, 0.3f};
    HeteroSwitch hs(local, opt);
    add("weak transform (g=0.3)", run(hs, pop, rounds, k, seed));
  }
  {
    HeteroSwitchOptions opt;
    opt.transform = {0.3f, 0.9f};
    HeteroSwitch hs(local, opt);
    add("strong transform (wb=.3,g=.9)", run(hs, pop, rounds, k, seed));
  }

  // D: FedAvgM baseline (not in the paper).
  {
    FedAvgM fedavgm(local, 0.7f);
    add("FedAvgM beta=0.7", run(fedavgm, pop, rounds, k, seed));
  }

  finish(table, "ablation_heteroswitch");
  std::printf(
      "\nReading: the selective defaults should sit at/near the best "
      "variance; transform strength trades average accuracy against "
      "fairness; FedAvgM accelerates convergence but does not target "
      "cross-device variance. Single-seed smoke runs are noisy — use "
      "HS_REPEATS for averaged comparisons.\n");
  return 0;
}
