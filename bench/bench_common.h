// Shared helpers for the experiment benches (one binary per paper table /
// figure). Every bench honours:
//   HS_SCALE  = 0 (default): smoke run — same code paths, shrunk counts,
//               finishes in seconds-to-a-minute on one core;
//   HS_SCALE  = 1: paper-shaped run (long);
//   HS_SEED   : experiment seed;
//   HS_ROUNDS : override FL communication rounds;
//   HS_THREADS: worker threads for client training (0 = all cores).
// and prints the paper-style table plus a CSV copy next to the binary.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "data/builder.h"
#include "fl/eval.h"
#include "fl/simulation.h"
#include "fl/trainer.h"
#include "nn/model_zoo.h"
#include "util/config.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace hetero::bench {

/// Experiment knobs resolved from HS_* plus smoke/paper defaults.
struct Scale {
  BenchConfig env = BenchConfig::from_env();

  std::int64_t rounds(std::int64_t smoke, std::int64_t paper) const {
    return env.pick_rounds(smoke, paper);
  }
  std::int64_t n(std::int64_t smoke, std::int64_t paper) const {
    return env.pick(smoke, paper);
  }
  std::uint64_t seed() const { return env.seed; }
  bool paper_scale() const { return env.scale >= 1; }
  /// HS_REPEATS: how many seeds to average metrics over (default 1).
  std::size_t repeats() const {
    return static_cast<std::size_t>(std::max<std::int64_t>(
        1, env_int("HS_REPEATS", 1)));
  }
  /// HS_THREADS: worker threads for the client fan-out (0 = all hardware
  /// threads, the default). Results are bit-identical for any value.
  std::size_t threads() const {
    return static_cast<std::size_t>(std::max<std::int64_t>(
        0, env_int("HS_THREADS", 0)));
  }
};

/// Prints a standard bench header.
inline void print_header(const char* id, const char* title,
                         const Scale& scale) {
  std::printf("== %s: %s ==\n", id, title);
  std::printf("   scale=%s seed=%llu  (HS_SCALE=1 for paper-shaped run)\n\n",
              scale.paper_scale() ? "paper" : "smoke",
              static_cast<unsigned long long>(scale.seed()));
}

/// Centralized training: E epochs of SGD on one dataset.
inline void train_epochs(Model& model, const Dataset& data, std::size_t epochs,
                         const LocalTrainConfig& cfg, Rng& rng,
                         const TrainHooks& hooks = {}) {
  for (std::size_t e = 0; e < epochs; ++e) {
    local_train(model, data, cfg, rng, hooks);
  }
}

/// Relative model-quality degradation (the paper's headline metric):
/// (reference - actual) / reference, as a fraction. Negative values mean
/// the deployment accuracy exceeded the reference.
inline double degradation(double reference, double actual) {
  if (reference <= 0.0) return 0.0;
  return (reference - actual) / reference;
}

/// The paper's FL hyperparameters (Appendix A.2): lr=0.1, B=10, E=1.
inline LocalTrainConfig paper_local_config() {
  LocalTrainConfig cfg;
  cfg.lr = 0.1f;
  cfg.batch_size = 10;
  cfg.epochs = 1;
  return cfg;
}

/// Writes the CSV copy and reports where it went.
inline void finish(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  const std::string path = csv_name + ".csv";
  if (table.write_csv(path)) {
    std::printf("\n[csv] %s\n", path.c_str());
  }
}

}  // namespace hetero::bench
