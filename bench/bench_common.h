// Shared helpers for the experiment benches (one binary per paper table /
// figure). Every bench honours:
//   HS_SCALE  = 0 (default): smoke run — same code paths, shrunk counts,
//               finishes in seconds-to-a-minute on one core;
//   HS_SCALE  = 1: paper-shaped run (long);
//   HS_SEED   : experiment seed;
//   HS_ROUNDS : override FL communication rounds;
//   HS_REPEATS: seeds to average metrics over;
//   HS_THREADS: worker threads for client training (0 = all cores);
//   HS_TRACE  : write a JSONL trace of every simulation to this path
//               (HS_TRACE_TIMINGS=0 drops wall-clock fields).
// and prints the paper-style table plus a CSV copy next to the binary.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "data/builder.h"
#include "fl/eval.h"
#include "fl/observer.h"
#include "fl/simulation.h"
#include "fl/trainer.h"
#include "nn/model_zoo.h"
#include "obs/jsonl.h"
#include "obs/tracer.h"
#include "util/config.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace hetero::bench {

/// Experiment knobs resolved from HS_* plus smoke/paper defaults. All env
/// reads live in BenchConfig::from_env(); this wrapper only adds the
/// smoke/paper picking.
struct Scale {
  BenchConfig env = BenchConfig::from_env();

  std::int64_t rounds(std::int64_t smoke, std::int64_t paper) const {
    return env.pick_rounds(smoke, paper);
  }
  std::int64_t n(std::int64_t smoke, std::int64_t paper) const {
    return env.pick(smoke, paper);
  }
  std::uint64_t seed() const { return env.seed; }
  bool paper_scale() const { return env.scale >= 1; }
  /// HS_REPEATS: how many seeds to average metrics over (default 1).
  std::size_t repeats() const { return env.repeats; }
  /// HS_THREADS: worker threads for the client fan-out (0 = all hardware
  /// threads, the default). Results are bit-identical for any value.
  std::size_t threads() const { return env.threads; }
};

/// Process-wide trace sink for HS_TRACE: owns the JSONL writer, the Tracer,
/// and a TracingObserver. When HS_TRACE is unset every accessor returns
/// null/no-ops and the simulation runs untraced (observer = nullptr costs
/// nothing on the hot path).
class TraceSink {
 public:
  TraceSink() {
    const BenchConfig env = BenchConfig::from_env();
    if (env.trace_path.empty()) return;
    writer_ = std::make_unique<obs::JsonlWriter>(env.trace_path);
    obs::TracerOptions options;
    options.include_timings = env.trace_timings;
    tracer_ = std::make_unique<obs::Tracer>(*writer_, options);
    observer_ = std::make_unique<TracingObserver>(*tracer_);
  }

  bool enabled() const { return observer_ != nullptr; }

  /// Starts a labelled run in the trace and returns the observer to hang
  /// on SimulationConfig::observer — or nullptr when tracing is off, which
  /// SimulationConfig accepts as "no telemetry".
  RoundObserver* run(const std::string& label) {
    if (!enabled()) return nullptr;
    tracer_->begin_run(label);
    return observer_.get();
  }

 private:
  std::unique_ptr<obs::JsonlWriter> writer_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<TracingObserver> observer_;
};

/// The bench binary's shared TraceSink (constructed on first use; flushed
/// via the writer's destructor at exit).
inline TraceSink& trace_sink() {
  static TraceSink sink;
  return sink;
}

/// Prints a standard bench header.
inline void print_header(const char* id, const char* title,
                         const Scale& scale) {
  std::printf("== %s: %s ==\n", id, title);
  std::printf("   scale=%s seed=%llu  (HS_SCALE=1 for paper-shaped run)\n\n",
              scale.paper_scale() ? "paper" : "smoke",
              static_cast<unsigned long long>(scale.seed()));
}

/// Centralized training: E epochs of SGD on one dataset.
inline void train_epochs(Model& model, const Dataset& data, std::size_t epochs,
                         const LocalTrainConfig& cfg, Rng& rng,
                         const TrainHooks& hooks = {}) {
  for (std::size_t e = 0; e < epochs; ++e) {
    local_train(model, data, cfg, rng, hooks);
  }
}

/// Relative model-quality degradation (the paper's headline metric):
/// (reference - actual) / reference, as a fraction. Negative values mean
/// the deployment accuracy exceeded the reference.
inline double degradation(double reference, double actual) {
  if (reference <= 0.0) return 0.0;
  return (reference - actual) / reference;
}

/// The paper's FL hyperparameters (Appendix A.2): lr=0.1, B=10, E=1.
inline LocalTrainConfig paper_local_config() {
  LocalTrainConfig cfg;
  cfg.lr = 0.1f;
  cfg.batch_size = 10;
  cfg.epochs = 1;
  return cfg;
}

/// Writes the CSV copy and reports where it went.
inline void finish(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  const std::string path = csv_name + ".csv";
  if (table.write_csv(path)) {
    std::printf("\n[csv] %s\n", path.c_str());
  }
}

}  // namespace hetero::bench
