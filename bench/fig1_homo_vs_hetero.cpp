// Fig 1 (right side): global-model accuracy with homogeneous clients
// (every client uses the same device type) vs heterogeneous clients
// (market-share device mix). The paper reports a 23.5% average quality gap.
#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

double run_fl(const FlPopulation& pop, std::size_t rounds, std::size_t k,
              std::uint64_t seed, std::size_t eval_device) {
  ModelSpec spec;
  Rng model_rng(seed);
  auto model = make_model(spec, model_rng);
  FedAvg algo(paper_local_config());
  SimulationConfig sim;
  sim.rounds = rounds;
  sim.clients_per_round = k;
  sim.seed = seed + 1;
  sim.num_threads = Scale{}.threads();
  sim.observer = trace_sink().run("fig1.fedavg");
  run_simulation(*model, algo, pop, sim);
  return evaluate_accuracy(*model, pop.device_test.at(eval_device));
}

}  // namespace

int main() {
  const Scale scale;
  print_header("Fig 1", "homogeneous vs heterogeneous clients", scale);

  const std::size_t n_clients = static_cast<std::size_t>(scale.n(18, 60));
  const std::size_t k = static_cast<std::size_t>(scale.n(6, 15));
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(50, 200));
  const std::size_t samples = static_cast<std::size_t>(scale.n(20, 40));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  // Representative device types for the homogeneous runs: one per vendor.
  const std::vector<std::string> homo_devices = {"GalaxyS9", "G7", "Pixel2"};

  Table table({"Setting", "Device", "Accuracy"});
  RunningStats homo_stats;
  for (const auto& name : homo_devices) {
    const std::size_t dev = device_index(name);
    PopulationConfig pcfg;
    pcfg.num_clients = n_clients;
    pcfg.samples_per_client = samples;
    pcfg.test_per_class = static_cast<std::size_t>(scale.n(4, 10));
    pcfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures
    // Homogeneous: exclude every device except `dev`.
    for (std::size_t d = 0; d < paper_devices().size(); ++d) {
      if (d != dev) pcfg.exclude_from_training.push_back(d);
    }
    Rng pop_rng = root.fork(10 + dev);
    FlPopulation pop = build_population(paper_devices(), pcfg, scenes,
                                        pop_rng);
    const double acc = run_fl(pop, rounds, k, scale.seed() + dev, dev);
    homo_stats.add(acc);
    table.add_row({"Homogeneous", name, Table::pct(acc)});
    std::fprintf(stderr, "[fig1] homogeneous %s: %.1f%% (%.1fs)\n",
                 name.c_str(), acc * 100.0, timer.elapsed_s());
  }

  // Heterogeneous: market-share mix, evaluated on the same device types.
  PopulationConfig pcfg;
  pcfg.num_clients = n_clients;
  pcfg.samples_per_client = samples;
  pcfg.test_per_class = static_cast<std::size_t>(scale.n(4, 10));
  pcfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures
  Rng pop_rng = root.fork(99);
  FlPopulation pop = build_population(paper_devices(), pcfg, scenes, pop_rng);
  RunningStats hetero_stats;
  for (const auto& name : homo_devices) {
    const std::size_t dev = device_index(name);
    const double acc = run_fl(pop, rounds, k, scale.seed() + 77 + dev, dev);
    hetero_stats.add(acc);
    table.add_row({"Heterogeneous", name, Table::pct(acc)});
    std::fprintf(stderr, "[fig1] heterogeneous -> %s: %.1f%% (%.1fs)\n",
                 name.c_str(), acc * 100.0, timer.elapsed_s());
  }

  table.add_row({"Homogeneous", "(mean)", Table::pct(homo_stats.mean())});
  table.add_row({"Heterogeneous", "(mean)", Table::pct(hetero_stats.mean())});
  table.add_row({"Gap", "(mean)",
                 Table::pct(degradation(homo_stats.mean(),
                                        hetero_stats.mean()))});
  finish(table, "fig1_homo_vs_hetero");
  std::printf(
      "\nPaper shape: homogeneous-client FL beats heterogeneous-client FL "
      "on the matching device (paper: 23.5%% average gap).\n");
  return 0;
}
