// Fig 2: model quality degradation when training directly on RAW data
// (no ISP), isolating sensor-hardware heterogeneity.
//
// For each target device, the bar reports the mean degradation over models
// trained on each *other* device's RAW data, with error bars (min/max).
// The paper's finding: RAW-to-RAW transfer degrades more than the ISP-
// processed equivalent (31.7% - 56.4% means), because the ISP partially
// normalizes sensor differences.
#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

int main() {
  const Scale scale;
  print_header("Fig 2", "cross-device degradation on RAW data", scale);

  const auto& devices = paper_devices();
  const std::size_t nd = devices.size();
  const std::size_t per_class_train =
      static_cast<std::size_t>(scale.n(10, 40));
  const std::size_t per_class_test = static_cast<std::size_t>(scale.n(4, 12));
  const std::size_t epochs = static_cast<std::size_t>(scale.n(8, 30));

  SceneGenerator scenes(64);
  CaptureConfig capture;
  capture.raw_mode = true;
  capture.raw_tensor_size = 16;
  Rng root(scale.seed());
  Timer timer;

  std::vector<Dataset> tests;
  for (std::size_t d = 0; d < nd; ++d) {
    Rng test_rng = root.fork(500);
    tests.push_back(build_device_dataset(devices[d], per_class_test, scenes,
                                         capture, test_rng));
  }

  std::vector<std::vector<double>> acc(nd, std::vector<double>(nd, 0.0));
  for (std::size_t i = 0; i < nd; ++i) {
    Rng train_rng = root.fork(1000 + i);
    Dataset train = build_device_dataset(devices[i], per_class_train, scenes,
                                         capture, train_rng);
    ModelSpec spec;
    spec.in_channels = 4;  // packed RAW planes (R, G1, G2, B)
    spec.image_size = 16;
    Rng model_rng = root.fork(2000);
    auto model = make_model(spec, model_rng);
    Rng epoch_rng = root.fork(3000 + i);
    train_epochs(*model, train, epochs, paper_local_config(), epoch_rng);
    for (std::size_t j = 0; j < nd; ++j) {
      acc[i][j] = evaluate_accuracy(*model, tests[j]);
    }
    std::fprintf(stderr, "[fig2] %-9s self-acc %.1f%% (%.1fs)\n",
                 devices[i].name.c_str(), acc[i][i] * 100.0,
                 timer.elapsed_s());
  }

  Table table({"TargetDevice", "MeanDegradation", "Min", "Max"});
  double grand = 0.0;
  for (std::size_t j = 0; j < nd; ++j) {
    RunningStats stats;
    for (std::size_t i = 0; i < nd; ++i) {
      if (i == j) continue;
      stats.add(degradation(acc[i][i], acc[i][j]));
    }
    table.add_row({devices[j].name, Table::pct(stats.mean()),
                   Table::pct(stats.min()), Table::pct(stats.max())});
    grand += stats.mean();
  }
  table.add_row({"(mean)", Table::pct(grand / static_cast<double>(nd)), "",
                 ""});
  finish(table, "fig2_raw");
  std::printf(
      "\nPaper shape: RAW means (31.7%%-56.4%%) exceed the ISP-processed "
      "Table 2 column means — sensor heterogeneity alone is severe.\n");
  return 0;
}
