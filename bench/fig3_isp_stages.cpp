// Fig 3 / Table 3: model quality degradation under ISP-stage ablation.
//
// Train a model on images processed with the Baseline ISP column of
// Table 3 (FBDD, PPG, gray-world, sRGB, sRGB gamma, JPEG Q85), then test
// on images where exactly one stage is omitted (Option 1) or swapped
// (Option 2). The paper's finding: the colour (white balance) and tone
// stages dominate — omitting them degrades accuracy by ~56% and ~49%.
#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

int main() {
  const Scale scale;
  print_header("Fig 3", "ISP stage ablation degradation", scale);

  const std::size_t per_class_train =
      static_cast<std::size_t>(scale.n(12, 40));
  const std::size_t per_class_test = static_cast<std::size_t>(scale.n(5, 12));
  const std::size_t epochs = static_cast<std::size_t>(scale.n(10, 30));

  // One representative sensor: the dominant device (Galaxy S9). All images
  // flow through the same sensor; only the ISP software varies — isolating
  // the SW axis of heterogeneity.
  const DeviceProfile& device = device_by_name("GalaxyS9");
  const IspConfig baseline = IspConfig::baseline(device.isp.ccm);

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  Rng train_rng = root.fork(1);
  Dataset train = build_device_dataset_with_isp(device, baseline,
                                                per_class_train, scenes, 32,
                                                train_rng);
  ModelSpec spec;
  Rng model_rng = root.fork(2);
  auto model = make_model(spec, model_rng);
  Rng epoch_rng = root.fork(3);
  train_epochs(*model, train, epochs, paper_local_config(), epoch_rng);

  Rng ref_rng = root.fork(500);
  Dataset ref_test = build_device_dataset_with_isp(
      device, baseline, per_class_test, scenes, 32, ref_rng);
  const double ref_acc = evaluate_accuracy(*model, ref_test);
  std::fprintf(stderr, "[fig3] trained, baseline test acc %.1f%% (%.1fs)\n",
               ref_acc * 100.0, timer.elapsed_s());

  const IspStage stages[] = {IspStage::kDenoise,      IspStage::kDemosaic,
                             IspStage::kWhiteBalance, IspStage::kGamut,
                             IspStage::kTone,         IspStage::kCompress};
  Table table({"Stage", "Option", "Config", "Accuracy", "Degradation"});
  table.add_row({"(baseline)", "-", baseline.describe(),
                 Table::pct(ref_acc), "0.0%"});
  for (IspStage stage : stages) {
    for (int option : {1, 2}) {
      const IspConfig cfg = baseline.with_stage_option(stage, option);
      Rng test_rng = root.fork(500);  // same scene stream as the reference
      Dataset test = build_device_dataset_with_isp(device, cfg,
                                                   per_class_test, scenes, 32,
                                                   test_rng);
      const double acc = evaluate_accuracy(*model, test);
      table.add_row({isp_stage_name(stage), std::to_string(option),
                     cfg.describe(), Table::pct(acc),
                     Table::pct(degradation(ref_acc, acc))});
      std::fprintf(stderr, "[fig3] %s opt%d: acc %.1f%% (%.1fs)\n",
                   isp_stage_name(stage), option, acc * 100.0,
                   timer.elapsed_s());
    }
  }
  finish(table, "fig3_isp_stages");
  std::printf(
      "\nPaper shape: omitting white balance (~56%%) and tone (~49%%) "
      "degrade the most; denoise/compression swaps are mild.\n");
  return 0;
}
