// Fig 4: fairness — bias of the global model toward dominant devices
// (Galaxy S9 & S6, 65% combined market share) when client participation
// follows Table 1's market shares.
//
// The paper reports each device's model-quality degradation relative to the
// dominant devices. In a simulator the per-device *difficulty* (sensor
// noise, tone processing) confounds that number, so this bench reports two
// views:
//   1. the paper's metric: degradation vs the dominant pair under
//      market-share training;
//   2. a difficulty-corrected view: each device's accuracy gain when
//      training participation goes from uniform to market-share — positive
//      gain = the device benefits from its market dominance, the isolated
//      bias effect.
#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

std::vector<double> run_fedavg(const FlPopulation& pop, std::size_t rounds,
                               std::size_t k, std::uint64_t seed) {
  ModelSpec spec;
  Rng model_rng(seed);
  auto model = make_model(spec, model_rng);
  FedAvg algo(paper_local_config());
  SimulationConfig sim;
  sim.rounds = rounds;
  sim.clients_per_round = k;
  sim.seed = seed + 1;
  sim.num_threads = Scale{}.threads();
  sim.observer = trace_sink().run("fig4.fedavg");
  return run_simulation(*model, algo, pop, sim).final_metrics.per_device;
}

}  // namespace

int main() {
  const Scale scale;
  print_header("Fig 4", "bias toward dominant devices under market share",
               scale);

  const std::size_t n_clients = static_cast<std::size_t>(scale.n(30, 100));
  const std::size_t k = static_cast<std::size_t>(scale.n(8, 20));
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(80, 300));
  const std::size_t samples = static_cast<std::size_t>(scale.n(20, 40));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  PopulationConfig pcfg;
  pcfg.num_clients = n_clients;
  pcfg.samples_per_client = samples;
  pcfg.test_per_class = static_cast<std::size_t>(scale.n(5, 12));
  pcfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures

  Rng pop_rng = root.fork(1);
  FlPopulation market_pop = build_population(paper_devices(), pcfg, scenes,
                                             pop_rng);
  PopulationConfig ucfg = pcfg;
  ucfg.assignment = DeviceAssignment::kUniform;
  Rng upop_rng = root.fork(1);  // identical data streams, only the device
                                // assignment differs
  FlPopulation uniform_pop = build_population(paper_devices(), ucfg, scenes,
                                              upop_rng);
  std::fprintf(stderr, "[fig4] populations built (%.1fs)\n",
               timer.elapsed_s());

  const auto market_acc = run_fedavg(market_pop, rounds, k, scale.seed() + 2);
  std::fprintf(stderr, "[fig4] market-share run done (%.1fs)\n",
               timer.elapsed_s());
  const auto uniform_acc = run_fedavg(uniform_pop, rounds, k,
                                      scale.seed() + 2);
  std::fprintf(stderr, "[fig4] uniform run done (%.1fs)\n", timer.elapsed_s());

  const double dom_acc = (market_acc[device_index("GalaxyS9")] +
                          market_acc[device_index("GalaxyS6")]) /
                         2.0;

  Table table({"Device", "Share", "Acc(market)", "DegVsDominant",
               "Acc(uniform)", "ShareBenefit"});
  for (std::size_t d = 0; d < paper_devices().size(); ++d) {
    const auto& dev = paper_devices()[d];
    table.add_row({dev.name, Table::fmt(dev.market_share, 0) + "%",
                   Table::pct(market_acc[d]),
                   Table::pct(degradation(dom_acc, market_acc[d])),
                   Table::pct(uniform_acc[d]),
                   Table::pct(market_acc[d] - uniform_acc[d])});
  }
  // Aggregate the bias effect: mean share benefit of dominant vs rest.
  double dom_benefit = 0.0, other_benefit = 0.0;
  for (std::size_t d = 0; d < paper_devices().size(); ++d) {
    const double b = market_acc[d] - uniform_acc[d];
    if (paper_devices()[d].name == "GalaxyS9" ||
        paper_devices()[d].name == "GalaxyS6") {
      dom_benefit += b / 2.0;
    } else {
      other_benefit += b / 7.0;
    }
  }
  table.add_row({"(dominant mean)", "65%", Table::pct(dom_acc), "-", "-",
                 Table::pct(dom_benefit)});
  table.add_row({"(others mean)", "35%", "-", "-", "-",
                 Table::pct(other_benefit)});
  finish(table, "fig4_fairness");
  std::printf(
      "\nPaper shape: the global model favours the dominant pair (others "
      "trail by 3.2%%-16.9%% in the paper); ShareBenefit isolates that bias "
      "from per-device difficulty — dominant mean should exceed others "
      "mean. S22 lags despite its share (idiosyncratic wide-gamut ISP).\n");
  return 0;
}
