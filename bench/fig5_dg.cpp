// Fig 5: domain generalization — leave-one-device-out.
//
// For each device type d: train the global model with d's clients excluded
// and test on d (the unseen domain); compare against the accuracy on d when
// all device types participate uniformly. Positive degradation means
// exclusion hurt; the paper's finding is that the effect is *inconsistent*
// (some devices even improve when excluded).
#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

double train_and_eval(const FlPopulation& pop, std::size_t rounds,
                      std::size_t k, std::uint64_t seed,
                      std::size_t eval_device) {
  ModelSpec spec;
  Rng model_rng(seed);
  auto model = make_model(spec, model_rng);
  FedAvg algo(paper_local_config());
  SimulationConfig sim;
  sim.rounds = rounds;
  sim.clients_per_round = k;
  sim.seed = seed + 1;
  sim.num_threads = Scale{}.threads();
  sim.observer = trace_sink().run("fig5.exclude");
  run_simulation(*model, algo, pop, sim);
  return evaluate_accuracy(*model, pop.device_test.at(eval_device));
}

}  // namespace

int main() {
  const Scale scale;
  print_header("Fig 5", "leave-one-device-out domain generalization", scale);

  const std::size_t n_clients = static_cast<std::size_t>(scale.n(27, 90));
  const std::size_t k = static_cast<std::size_t>(scale.n(9, 18));
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(50, 200));
  const std::size_t samples = static_cast<std::size_t>(scale.n(18, 40));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  PopulationConfig base_cfg;
  base_cfg.num_clients = n_clients;
  base_cfg.samples_per_client = samples;
  base_cfg.test_per_class = static_cast<std::size_t>(scale.n(5, 12));
  base_cfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  base_cfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures
  base_cfg.assignment = DeviceAssignment::kUniform;  // DG protocol

  // Reference: all devices participate equally.
  Rng ref_rng = root.fork(1);
  FlPopulation ref_pop = build_population(paper_devices(), base_cfg, scenes,
                                          ref_rng);
  std::vector<double> ref_acc(paper_devices().size());
  {
    ModelSpec spec;
    Rng model_rng = root.fork(2);
    auto model = make_model(spec, model_rng);
    FedAvg algo(paper_local_config());
    SimulationConfig sim;
    sim.rounds = rounds;
    sim.clients_per_round = k;
    sim.seed = scale.seed() + 5;
    sim.num_threads = scale.threads();
    sim.observer = trace_sink().run("fig5.reference");
    const SimulationResult r = run_simulation(*model, algo, ref_pop, sim);
    ref_acc = r.final_metrics.per_device;
  }
  std::fprintf(stderr, "[fig5] reference (all devices) done (%.1fs)\n",
               timer.elapsed_s());

  Table table({"ExcludedDevice", "AccAllDevices", "AccExcluded",
               "Degradation"});
  for (std::size_t d = 0; d < paper_devices().size(); ++d) {
    PopulationConfig cfg = base_cfg;
    cfg.exclude_from_training = {d};
    Rng pop_rng = root.fork(100 + d);
    FlPopulation pop = build_population(paper_devices(), cfg, scenes,
                                        pop_rng);
    const double acc =
        train_and_eval(pop, rounds, k, scale.seed() + 10 + d, d);
    table.add_row({paper_devices()[d].name, Table::pct(ref_acc[d]),
                   Table::pct(acc), Table::pct(degradation(ref_acc[d], acc))});
    std::fprintf(stderr, "[fig5] without %s: %.1f%% vs %.1f%% (%.1fs)\n",
                 paper_devices()[d].name.c_str(), acc * 100.0,
                 ref_acc[d] * 100.0, timer.elapsed_s());
  }
  finish(table, "fig5_dg");
  std::printf(
      "\nPaper shape: exclusion effects are inconsistent — some devices "
      "lose accuracy when unseen, others (S6, VELVET in the paper) gain.\n");
  return 0;
}
