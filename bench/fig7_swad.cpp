// Fig 7: robustness of transform-only vs transform+SWA vs transform+SWAD
// training (centralized, the paper's 12-class dataset without device
// capture).
//
// For each transform family (Affine, Gaussian noise, WB, Gamma): train with
// that transform at degree 0.3 under the three averaging modes, then
// measure model-quality degradation on test sets transformed at degrees
// 0.3..0.9 relative to accuracy on the original test set. Paper shape:
// SWAD is the most robust across all transforms; SWA helps for Affine but
// hurts for appearance transforms.
#include "bench_common.h"
#include "hetero/swad.h"
#include "hetero/transforms.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

double run_mode(TransformKind kind, AveragingMode mode, const Dataset& train,
                const Dataset& test_orig,
                const std::vector<std::pair<float, Dataset>>& test_transformed,
                std::size_t epochs, std::uint64_t seed) {
  ModelSpec spec;
  Rng model_rng(seed);
  auto model = make_model(spec, model_rng);
  LocalTrainConfig cfg = paper_local_config();

  // SWA/SWAD collect weights over a *dense window after warmup* (Izmailov
  // et al. 2018; Cha et al. 2021 select the window where validation loss is
  // flat). We use the second half of training — averaging the garbage
  // weights of the first epochs would sabotage both methods.
  const std::size_t warmup_epochs = epochs / 2;
  WeightAverager averager;
  TrainHooks hooks;
  hooks.transform_batch = [kind](Batch& batch, Rng& rng) {
    apply_transform_batch(batch.x, kind, 0.3f, rng);
  };
  bool collecting = false;
  if (mode == AveragingMode::kPerBatch) {
    hooks.post_step = [&averager, &collecting](Model& m, std::size_t) {
      if (collecting) averager.update(m.params());
    };
  }
  Rng train_rng(seed + 1);
  for (std::size_t e = 0; e < epochs; ++e) {
    collecting = e >= warmup_epochs;
    local_train(*model, train, cfg, train_rng, hooks);
    if (mode == AveragingMode::kPerEpoch && collecting) {
      averager.update(model->params());
    }
  }
  if (mode != AveragingMode::kNone) model->set_params(averager.average());

  const double ref = evaluate_accuracy(*model, test_orig);
  RunningStats deg;
  for (const auto& [degree, test] : test_transformed) {
    deg.add(degradation(ref, evaluate_accuracy(*model, test)));
  }
  return deg.mean();
}

}  // namespace

int main() {
  const Scale scale;
  print_header("Fig 7", "transform-only vs +SWA vs +SWAD robustness", scale);

  const std::size_t per_class_train =
      static_cast<std::size_t>(scale.n(10, 40));
  const std::size_t per_class_test = static_cast<std::size_t>(scale.n(5, 12));
  const std::size_t epochs = static_cast<std::size_t>(scale.n(10, 10));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  Rng train_rng = root.fork(1);
  Dataset train = build_scene_dataset(per_class_train, scenes, 32, train_rng);
  Rng test_rng = root.fork(2);
  Dataset test_orig = build_scene_dataset(per_class_test, scenes, 32,
                                          test_rng);

  const TransformKind kinds[] = {TransformKind::kAffine,
                                 TransformKind::kGaussianNoise,
                                 TransformKind::kWhiteBalance,
                                 TransformKind::kGamma};
  const AveragingMode modes[] = {AveragingMode::kNone, AveragingMode::kPerEpoch,
                                 AveragingMode::kPerBatch};

  Table table({"Transform", "TransformOnly", "+SWA", "+SWAD"});
  for (TransformKind kind : kinds) {
    // Transformed test sets at degrees 0.3 .. 0.9, fixed per kind.
    std::vector<std::pair<float, Dataset>> transformed;
    for (float degree : {0.3f, 0.5f, 0.7f, 0.9f}) {
      Tensor xs = test_orig.xs();
      Rng t_rng = root.fork(static_cast<std::uint64_t>(degree * 100) + 7);
      apply_transform_batch(xs, kind, degree, t_rng);
      transformed.emplace_back(
          degree, Dataset(std::move(xs), test_orig.labels()));
    }
    std::vector<std::string> row = {transform_name(kind)};
    for (AveragingMode mode : modes) {
      const double deg = run_mode(kind, mode, train, test_orig, transformed,
                                  epochs, scale.seed() + 11);
      row.push_back(Table::pct(deg));
      std::fprintf(stderr, "[fig7] %s / %s: degradation %.1f%% (%.1fs)\n",
                   transform_name(kind), averaging_mode_name(mode),
                   deg * 100.0, timer.elapsed_s());
    }
    table.add_row(std::move(row));
  }
  finish(table, "fig7_swad");
  std::printf(
      "\nPaper shape: +SWAD column lowest across rows; +SWA helps Affine "
      "but is more vulnerable than SWAD on noise/WB/gamma.\n");
  return 0;
}
