// Fig 8 (Appendix A.2): hyperparameter sensitivity of the FL setup —
// learning rate, minibatch size, local epochs, and communication rounds.
// The paper selects lr=0.1, B=10, E=1, T=1000 from these sweeps.
#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

double run_fedavg(const FlPopulation& pop, const LocalTrainConfig& local,
                  std::size_t rounds, std::size_t k, std::uint64_t seed) {
  ModelSpec spec;
  Rng model_rng(seed);
  auto model = make_model(spec, model_rng);
  FedAvg algo(local);
  SimulationConfig sim;
  sim.rounds = rounds;
  sim.clients_per_round = k;
  sim.seed = seed + 1;
  sim.num_threads = Scale{}.threads();
  sim.observer = trace_sink().run("fig8.fedavg");
  const SimulationResult r = run_simulation(*model, algo, pop, sim);
  return r.final_metrics.average;
}

}  // namespace

int main() {
  const Scale scale;
  print_header("Fig 8", "hyperparameter sensitivity (lr, B, E, T)", scale);

  const std::size_t n_clients = static_cast<std::size_t>(scale.n(24, 100));
  const std::size_t k = static_cast<std::size_t>(scale.n(6, 20));
  const std::size_t base_rounds =
      static_cast<std::size_t>(scale.rounds(50, 100));
  const std::size_t samples = static_cast<std::size_t>(scale.n(20, 40));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  PopulationConfig pcfg;
  pcfg.num_clients = n_clients;
  pcfg.samples_per_client = samples;
  pcfg.test_per_class = static_cast<std::size_t>(scale.n(4, 10));
  pcfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures
  Rng pop_rng = root.fork(1);
  const FlPopulation pop = build_population(paper_devices(), pcfg, scenes,
                                            pop_rng);

  Table table({"Parameter", "Value", "Average Accuracy"});
  const LocalTrainConfig base = paper_local_config();

  for (float lr : {0.001f, 0.01f, 0.1f}) {
    LocalTrainConfig cfg = base;
    cfg.lr = lr;
    const double acc = run_fedavg(pop, cfg, base_rounds, k, scale.seed() + 2);
    table.add_row({"learning rate", Table::fmt(lr, 3), Table::pct(acc)});
    std::fprintf(stderr, "[fig8] lr=%.3f acc %.1f%% (%.1fs)\n", lr,
                 acc * 100, timer.elapsed_s());
  }
  for (std::size_t b : {1u, 10u, 20u}) {
    LocalTrainConfig cfg = base;
    cfg.batch_size = b;
    const double acc = run_fedavg(pop, cfg, base_rounds, k, scale.seed() + 3);
    table.add_row({"minibatch size", std::to_string(b), Table::pct(acc)});
    std::fprintf(stderr, "[fig8] B=%zu acc %.1f%% (%.1fs)\n", b, acc * 100,
                 timer.elapsed_s());
  }
  for (std::size_t e : {1u, 3u, 5u}) {
    LocalTrainConfig cfg = base;
    cfg.epochs = e;
    const double acc = run_fedavg(pop, cfg, base_rounds, k, scale.seed() + 4);
    table.add_row({"local epochs", std::to_string(e), Table::pct(acc)});
    std::fprintf(stderr, "[fig8] E=%zu acc %.1f%% (%.1fs)\n", e, acc * 100,
                 timer.elapsed_s());
  }
  // Rounds sweep scaled as T/10, T/2, T of the paper's {100, 500, 1000}.
  for (std::size_t t : {base_rounds / 10 + 1, base_rounds / 2, base_rounds}) {
    const double acc = run_fedavg(pop, base, t, k, scale.seed() + 5);
    table.add_row({"rounds", std::to_string(t), Table::pct(acc)});
    std::fprintf(stderr, "[fig8] T=%zu acc %.1f%% (%.1fs)\n", t, acc * 100,
                 timer.elapsed_s());
  }
  finish(table, "fig8_sensitivity");
  std::printf(
      "\nPaper shape: accuracy rises with lr up to 0.1, small batches and "
      "few local epochs win at fixed rounds, and more rounds help.\n");
  return 0;
}
