// Microbenchmark: the virtual-clock event scheduler (DESIGN.md §11).
//
// Runs the same FedAvg workload (K=12 of 24 clients on synthetic separable
// data) under three aggregation disciplines — sync (the original round
// loop), async (FedAsync, flush per arrival) and buffered (FedBuff-style,
// flush every B arrivals) — with straggler delays and a device compute
// model so virtual time actually flows, at 1 and 4 worker threads.
// Reports rounds/s and clients/s wall throughput, the virtual-time
// speedup (simulated seconds per wall second — the point of simulating
// the clock instead of sleeping through it), and asserts the determinism
// contract on the side: every thread count must reproduce the
// single-thread loss history and staleness counters bit-for-bit.
//
// Honours HS_ROUNDS / HS_SEED / HS_SCALE like the other benches; HS_SCHED
// adds one extra scenario with the given spec and HS_BUFFER overrides the
// buffered scenarios' flush threshold. Appends one JSONL record per row to
// BENCH_round.json.
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/faults.h"
#include "runtime/sched/sched_options.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

Dataset two_class_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor xs({n, 3, 8, 8});
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 2;
    const float base = labels[i] == 0 ? 0.15f : 0.85f;
    for (std::size_t j = 0; j < 3 * 64; ++j) {
      xs[i * 3 * 64 + j] = base + rng.uniform_f(-0.05f, 0.05f);
    }
  }
  return Dataset(std::move(xs), std::move(labels));
}

FlPopulation synthetic_population(std::size_t clients,
                                  std::size_t samples_per_client,
                                  std::uint64_t seed) {
  FlPopulation pop;
  for (std::size_t i = 0; i < clients; ++i) {
    pop.client_train.push_back(two_class_data(samples_per_client, seed + i));
    pop.client_device.push_back(0);
  }
  pop.device_test.push_back(two_class_data(32, seed + 1000));
  pop.device_names.push_back("synthetic");
  return pop;
}

struct Scenario {
  std::string name;
  std::string sched_spec;  // parse_sched_spec input; empty = sync loop
  std::string fault_spec;  // parse_fault_spec input
};

}  // namespace

int main() {
  const Scale scale;
  print_header("micro",
               "virtual-clock scheduler: sync vs async vs buffered (FedAvg, "
               "K=12)",
               scale);

  const std::size_t clients = 24;
  const std::size_t k = 12;
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(4, 40));
  const std::size_t samples = static_cast<std::size_t>(scale.n(80, 300));

  const FlPopulation pop =
      synthetic_population(clients, samples, scale.seed());

  // Stragglers + a compute model give every scenario a real virtual
  // timeline (delays, staleness, per-client compute spread).
  const std::string faults = "straggle=0.3,delay=0.5";
  std::vector<Scenario> scenarios = {
      {"sync", "", faults},
      {"async", "async,compute=0.002", faults},
      {"buffered", "buffered,buffer=4,compute=0.002", faults},
  };
  if (!scale.env.sched_spec.empty()) {
    scenarios.push_back({"HS_SCHED", scale.env.sched_spec, faults});
  }

  Table table({"Mode", "Threads", "Rounds/s", "Clients/s", "Committed",
               "StaleMax", "VirtSpeedup", "Identical"});
  std::ofstream jsonl("BENCH_round.json", std::ios::app);
  const std::vector<std::size_t> thread_counts = {1, 4};
  for (const Scenario& sc : scenarios) {
    std::vector<double> reference_losses;
    std::size_t reference_stale_max = 0;
    for (std::size_t threads : thread_counts) {
      ModelSpec spec;
      spec.arch = "mlp-tiny";
      spec.image_size = 8;
      spec.num_classes = 2;
      Rng model_rng(scale.seed());
      auto model = make_model(spec, model_rng);
      FedAvg algo(paper_local_config());

      SimulationConfig sim;
      sim.rounds = rounds;
      sim.clients_per_round = k;
      sim.seed = scale.seed() + 1;
      sim.num_threads = threads;
      sim.faults = parse_fault_spec(sc.fault_spec);
      sim.sched = parse_sched_spec(sc.sched_spec);
      if (scale.env.sched_buffer > 0) {
        sim.sched.buffer = scale.env.sched_buffer;
      }
      sim.observer = trace_sink().run("micro_async_rounds." + sc.name +
                                      ".threads=" + std::to_string(threads));
      const SimulationResult r = run_simulation(*model, algo, pop, sim);

      const double wall = std::max(1e-9, r.runtime.total_seconds);
      const double round_rate = static_cast<double>(rounds) / wall;
      // Sync processes k clients per round; scheduled modes count actual
      // dispatches (continuous refill dispatches more than it commits).
      const std::size_t processed = sim.sched.scheduled()
                                        ? r.runtime.clients_dispatched
                                        : rounds * k;
      const double client_rate = static_cast<double>(processed) / wall;
      const double virt_speedup = r.runtime.virtual_seconds / wall;

      if (threads == thread_counts.front()) {
        reference_losses = r.train_loss_history;
        reference_stale_max = r.runtime.staleness_max;
      }
      const bool identical = r.train_loss_history == reference_losses &&
                             r.runtime.staleness_max == reference_stale_max;

      char round_s[32], client_s[32], virt_s[32];
      std::snprintf(round_s, sizeof round_s, "%.2f", round_rate);
      std::snprintf(client_s, sizeof client_s, "%.1f", client_rate);
      std::snprintf(virt_s, sizeof virt_s, "%.1fx", virt_speedup);
      table.add_row({sc.name, std::to_string(r.runtime.threads), round_s,
                     client_s, std::to_string(r.runtime.updates_committed),
                     std::to_string(r.runtime.staleness_max), virt_s,
                     identical ? "yes" : "NO"});
      jsonl << "{\"bench\":\"micro_async_rounds\",\"mode\":\"" << sc.name
            << "\",\"threads\":" << r.runtime.threads
            << ",\"clients_per_s\":" << client_rate
            << ",\"rounds_per_s\":" << round_rate
            << ",\"virtual_speedup\":" << virt_speedup << "}\n";
      std::fprintf(stderr,
                   "[micro_async_rounds] %s @ %zu thread(s): %.2f rounds/s  "
                   "virtual x%.1f  stale_max=%zu%s\n",
                   sc.name.c_str(), r.runtime.threads, round_rate,
                   virt_speedup, r.runtime.staleness_max,
                   identical ? "" : "  RESULTS DIVERGED");
    }
  }

  finish(table, "micro_async_rounds");
  std::printf(
      "\n[jsonl] BENCH_round.json (appended)\n"
      "Expected shape: virtual speedup far above 1x (the scheduler simulates "
      "straggler delays instead of sleeping through them); async shows "
      "non-zero staleness while sync reports none; every Identical column "
      "must read yes (bit-identical replay for any thread count).\n");
  return 0;
}
