// Microbenchmark: end-to-end Conv2d forward+backward, reference vs tiled
// kernels, on the convolution layers of the paper CNNs (mobile-/shuffle-/
// squeeze-mini) at the paper batch size B=10 on 32x32 inputs.
//
// The tiled path batches im2col and runs one GEMM per group for the whole
// mini-batch; the reference path is the seed per-sample implementation.
// Acceptance target (ISSUE 3): total fwd+bwd >= 3x faster than reference.
// Appends one JSONL record per shape plus a TOTAL record to
// BENCH_kernels.json. Honours HS_SCALE / HS_SEED.
#include <algorithm>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "kernels/kernels.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

struct ConvCase {
  const char* label;
  std::size_t mult;  // occurrences across the three paper models
  kernels::ConvShape s;
};

kernels::ConvShape shape(std::size_t n, std::size_t in_c, std::size_t hw,
                         std::size_t out_c, std::size_t k, std::size_t stride,
                         std::size_t pad, std::size_t groups) {
  kernels::ConvShape s;
  s.n = n;
  s.in_c = in_c;
  s.in_h = hw;
  s.in_w = hw;
  s.out_c = out_c;
  s.kernel = k;
  s.stride = stride;
  s.pad = pad;
  s.groups = groups;
  return s;
}

// The complete convolution inventory of the three paper models (43 layers:
// mobile-mini 14, shuffle-mini 18, squeeze-mini 11), collapsed to distinct
// shapes with their multiplicity, so the TOTAL reflects the exact layer mix
// one training step runs. B=10, 32x32 input; spatial sizes follow the
// stride-2 stages (model_zoo.cpp / blocks.cpp).
std::vector<ConvCase> conv_cases(std::size_t b) {
  return {
      // mobile-mini: stem + 4 inverted residuals + final 1x1.
      {"mobile.stem3x3s2", 1, shape(b, 3, 32, 8, 3, 2, 1, 1)},
      {"mobile.ir1-expand", 1, shape(b, 8, 16, 16, 1, 1, 0, 1)},
      {"mobile.ir1-dw3x3", 1, shape(b, 16, 16, 16, 3, 1, 1, 16)},
      {"mobile.ir1-project", 1, shape(b, 16, 16, 8, 1, 1, 0, 1)},
      {"mobile.ir2-expand", 1, shape(b, 8, 16, 24, 1, 1, 0, 1)},
      {"mobile.ir2-dw3x3s2", 1, shape(b, 24, 16, 24, 3, 2, 1, 24)},
      {"mobile.ir2-project", 1, shape(b, 24, 8, 16, 1, 1, 0, 1)},
      {"mobile.ir34-expand", 2, shape(b, 16, 8, 48, 1, 1, 0, 1)},
      {"mobile.ir3-dw3x3", 1, shape(b, 48, 8, 48, 3, 1, 1, 48)},
      {"mobile.ir3-project", 1, shape(b, 48, 8, 16, 1, 1, 0, 1)},
      {"mobile.ir4-dw5x5s2", 1, shape(b, 48, 8, 48, 5, 2, 2, 48)},
      {"mobile.ir4-project", 1, shape(b, 48, 4, 24, 1, 1, 0, 1)},
      {"mobile.final1x1", 1, shape(b, 24, 4, 48, 1, 1, 0, 1)},
      // shuffle-mini: stem + 4 shuffle units + final 1x1.
      {"shuffle.stem3x3s2", 1, shape(b, 3, 32, 12, 3, 2, 1, 1)},
      {"shuffle.su1-dw3x3s2", 2, shape(b, 12, 16, 12, 3, 2, 1, 12)},
      {"shuffle.su1-pw16", 1, shape(b, 12, 16, 12, 1, 1, 0, 1)},
      {"shuffle.su12-pw8", 4, shape(b, 12, 8, 12, 1, 1, 0, 1)},
      {"shuffle.su2-dw3x3", 1, shape(b, 12, 8, 12, 3, 1, 1, 12)},
      {"shuffle.su3-dw3x3s2", 2, shape(b, 24, 8, 24, 3, 2, 1, 24)},
      {"shuffle.su3-pw8", 1, shape(b, 24, 8, 24, 1, 1, 0, 1)},
      {"shuffle.su34-pw4", 4, shape(b, 24, 4, 24, 1, 1, 0, 1)},
      {"shuffle.su4-dw3x3", 1, shape(b, 24, 4, 24, 3, 1, 1, 24)},
      {"shuffle.final1x1", 1, shape(b, 48, 4, 64, 1, 1, 0, 1)},
      // squeeze-mini: stem + 3 fire modules + head.
      {"squeeze.stem3x3s2", 1, shape(b, 3, 32, 16, 3, 2, 1, 1)},
      {"squeeze.f1-squeeze", 1, shape(b, 16, 8, 4, 1, 1, 0, 1)},
      {"squeeze.f1-expand1", 1, shape(b, 4, 8, 8, 1, 1, 0, 1)},
      {"squeeze.f1-expand3", 1, shape(b, 4, 8, 8, 3, 1, 1, 1)},
      {"squeeze.f2-squeeze", 1, shape(b, 16, 8, 8, 1, 1, 0, 1)},
      {"squeeze.f2-expand1", 1, shape(b, 8, 8, 16, 1, 1, 0, 1)},
      {"squeeze.f2-expand3", 1, shape(b, 8, 8, 16, 3, 1, 1, 1)},
      {"squeeze.f3-squeeze", 1, shape(b, 32, 4, 8, 1, 1, 0, 1)},
      {"squeeze.f3-expand1", 1, shape(b, 8, 4, 16, 1, 1, 0, 1)},
      {"squeeze.f3-expand3", 1, shape(b, 8, 4, 16, 3, 1, 1, 1)},
      {"squeeze.head1x1", 1, shape(b, 32, 4, 12, 1, 1, 0, 1)},
  };
}

}  // namespace

int main() {
  const Scale scale;
  print_header("micro", "Conv2d fwd+bwd: reference vs tiled kernels", scale);
  const std::size_t b = 10;  // paper batch size
  const std::size_t reps = static_cast<std::size_t>(scale.n(5, 30));

  Table table({"Layer", "Ref ms", "Tiled ms", "Ref GF/s", "Tiled GF/s",
               "Speedup"});
  std::ofstream jsonl("BENCH_kernels.json", std::ios::app);
  Rng rng(scale.seed());

  double total_ref = 0.0, total_til = 0.0;
  for (const ConvCase& c : conv_cases(b)) {
    const kernels::ConvShape& s = c.s;
    const std::size_t y_size = s.n * s.out_c * s.out_h() * s.out_w();
    const std::size_t x_size = s.n * s.in_c * s.in_h * s.in_w;
    const std::size_t w_size =
        s.out_c * s.group_in_c() * s.kernel * s.kernel;
    std::vector<float> x(x_size), w(w_size), bias(s.out_c);
    std::vector<float> y(y_size), grad_out(y_size);
    std::vector<float> cols(s.cols_size());
    std::vector<float> gw(w_size), gb(s.out_c), gx(x_size);
    for (float& v : x) v = rng.uniform_f(-1.0f, 1.0f);
    for (float& v : w) v = rng.uniform_f(-1.0f, 1.0f);
    for (float& v : bias) v = rng.uniform_f(-1.0f, 1.0f);
    for (float& v : grad_out) v = rng.uniform_f(-1.0f, 1.0f);
    kernels::Workspace ws;

    auto step = [&](kernels::KernelKind kind) {
      kernels::conv2d_forward(kind, s, x.data(), w.data(), bias.data(),
                              y.data(), cols.data(), ws);
      std::fill(gx.begin(), gx.end(), 0.0f);
      kernels::conv2d_backward(kind, s, grad_out.data(), w.data(),
                               cols.data(), gw.data(), gb.data(), gx.data(),
                               ws);
    };
    auto time_best = [&](kernels::KernelKind kind) {
      step(kind);  // warm-up (workspace growth, caches)
      double best = 1e100;
      for (std::size_t r = 0; r < reps; ++r) {
        Timer t;
        step(kind);
        best = std::min(best, t.elapsed_s());
      }
      return best;
    };
    const double t_ref = time_best(kernels::KernelKind::kReference);
    const double t_til = time_best(kernels::KernelKind::kTiled);
    total_ref += static_cast<double>(c.mult) * t_ref;
    total_til += static_cast<double>(c.mult) * t_til;

    // Forward GEMM + dW GEMM + dX GEMM, each 2*out_c*patch*n*oh*ow flops.
    const double flops = 3.0 * 2.0 * static_cast<double>(s.out_c) *
                         s.patch() * s.n * s.out_h() * s.out_w();
    const double speedup = t_ref / t_til;
    char ref_ms[32], til_ms[32], ref_gf[32], til_gf[32], sp[32];
    std::snprintf(ref_ms, sizeof ref_ms, "%.3f", t_ref * 1e3);
    std::snprintf(til_ms, sizeof til_ms, "%.3f", t_til * 1e3);
    std::snprintf(ref_gf, sizeof ref_gf, "%.2f", flops / t_ref / 1e9);
    std::snprintf(til_gf, sizeof til_gf, "%.2f", flops / t_til / 1e9);
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    table.add_row({c.label, ref_ms, til_ms, ref_gf, til_gf, sp});
    jsonl << "{\"bench\":\"micro_conv\",\"shape\":\"" << c.label
          << "\",\"mult\":" << c.mult << ",\"n\":" << s.n
          << ",\"in_c\":" << s.in_c
          << ",\"hw\":" << s.in_h << ",\"out_c\":" << s.out_c
          << ",\"k\":" << s.kernel << ",\"stride\":" << s.stride
          << ",\"groups\":" << s.groups << ",\"ref_ms\":" << t_ref * 1e3
          << ",\"tiled_ms\":" << t_til * 1e3
          << ",\"ref_gflops\":" << flops / t_ref / 1e9
          << ",\"tiled_gflops\":" << flops / t_til / 1e9
          << ",\"speedup\":" << speedup << "}\n";
  }

  const double total_speedup = total_ref / total_til;
  char sp[32];
  std::snprintf(sp, sizeof sp, "%.2fx", total_speedup);
  char ref_ms[32], til_ms[32];
  std::snprintf(ref_ms, sizeof ref_ms, "%.3f", total_ref * 1e3);
  std::snprintf(til_ms, sizeof til_ms, "%.3f", total_til * 1e3);
  table.add_row({"TOTAL", ref_ms, til_ms, "-", "-", sp});
  jsonl << "{\"bench\":\"micro_conv\",\"shape\":\"TOTAL\",\"ref_ms\":"
        << total_ref * 1e3 << ",\"tiled_ms\":" << total_til * 1e3
        << ",\"speedup\":" << total_speedup << "}\n";

  finish(table, "micro_conv");
  std::printf(
      "\n[jsonl] BENCH_kernels.json (appended)\n"
      "TOTAL weights each shape by its layer multiplicity (43 conv layers "
      "across the three models).\n"
      "Acceptance target: TOTAL speedup >= 3x (batched im2col + one GEMM "
      "per group per mini-batch vs per-sample reference).\n");
  return total_speedup >= 3.0 ? 0 : 1;
}
