// Microbenchmark: deterministic fault injection + partial aggregation.
//
// Runs the same FedAvg workload (K=12 clients per round on synthetic
// separable data) under a sweep of fault scenarios — clean, dropout only,
// dropout + corrupt updates, and a heavy everything-on mix — at 1 and 4
// worker threads. Reports round throughput plus the fault counters
// (dropped / quarantined / straggled / retries / aborted rounds) and
// asserts the determinism contract on the side: for every scenario the
// 4-thread run must reproduce the single-thread loss history bit-for-bit,
// faults included.
//
// Honours HS_ROUNDS / HS_SEED / HS_SCALE like the experiment benches, and
// HS_FAULTS adds one extra scenario with the given spec.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/faults.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

Dataset two_class_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor xs({n, 3, 8, 8});
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 2;
    const float base = labels[i] == 0 ? 0.15f : 0.85f;
    for (std::size_t j = 0; j < 3 * 64; ++j) {
      xs[i * 3 * 64 + j] = base + rng.uniform_f(-0.05f, 0.05f);
    }
  }
  return Dataset(std::move(xs), std::move(labels));
}

FlPopulation synthetic_population(std::size_t clients,
                                  std::size_t samples_per_client,
                                  std::uint64_t seed) {
  FlPopulation pop;
  for (std::size_t i = 0; i < clients; ++i) {
    pop.client_train.push_back(two_class_data(samples_per_client, seed + i));
    pop.client_device.push_back(0);
  }
  pop.device_test.push_back(two_class_data(32, seed + 1000));
  pop.device_names.push_back("synthetic");
  return pop;
}

struct Scenario {
  std::string name;
  std::string spec;  // parse_fault_spec input; empty = faults off
};

}  // namespace

int main() {
  const Scale scale;
  print_header("micro", "fault injection + partial aggregation (FedAvg, K=12)",
               scale);

  const std::size_t clients = 24;
  const std::size_t k = 12;
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(4, 20));
  const std::size_t samples = static_cast<std::size_t>(scale.n(80, 300));

  const FlPopulation pop =
      synthetic_population(clients, samples, scale.seed());

  std::vector<Scenario> scenarios = {
      {"clean", ""},
      {"drop", "drop=0.2"},
      {"drop+corrupt", "drop=0.15,corrupt=0.1,min=2"},
      {"heavy",
       "drop=0.2,fail=0.2,straggle=0.3,delay=0.5,timeout=0.8,corrupt=0.1,"
       "min=2"},
  };
  if (!scale.env.fault_spec.empty()) {
    scenarios.push_back({"HS_FAULTS", scale.env.fault_spec});
  }

  Table table({"Scenario", "Threads", "Rounds/s", "Dropped", "Quarantined",
               "Straggled", "Retries", "Aborted", "Identical"});
  const std::vector<std::size_t> thread_counts = {1, 4};
  for (const Scenario& sc : scenarios) {
    std::vector<double> reference_losses;
    for (std::size_t threads : thread_counts) {
      ModelSpec spec;
      spec.arch = "mlp-tiny";
      spec.image_size = 8;
      spec.num_classes = 2;
      Rng model_rng(scale.seed());
      auto model = make_model(spec, model_rng);
      FedAvg algo(paper_local_config());

      SimulationConfig sim;
      sim.rounds = rounds;
      sim.clients_per_round = k;
      sim.seed = scale.seed() + 1;
      sim.num_threads = threads;
      sim.faults = parse_fault_spec(sc.spec);
      sim.observer = trace_sink().run("micro_faults." + sc.name +
                                      ".threads=" + std::to_string(threads));
      const SimulationResult r = run_simulation(*model, algo, pop, sim);

      const double rate = static_cast<double>(rounds) /
                          std::max(1e-9, r.runtime.total_seconds);
      if (threads == thread_counts.front()) {
        reference_losses = r.train_loss_history;
      }
      const bool identical = r.train_loss_history == reference_losses;

      char rate_s[32];
      std::snprintf(rate_s, sizeof rate_s, "%.2f", rate);
      table.add_row({sc.name, std::to_string(r.runtime.threads), rate_s,
                     std::to_string(r.runtime.clients_dropped),
                     std::to_string(r.runtime.clients_quarantined),
                     std::to_string(r.runtime.clients_straggled),
                     std::to_string(r.runtime.fault_retries),
                     std::to_string(r.runtime.rounds_aborted),
                     identical ? "yes" : "NO"});
      std::fprintf(stderr,
                   "[micro_faults] %s @ %zu thread(s): %.2f rounds/s  "
                   "dropped=%zu quarantined=%zu%s\n",
                   sc.name.c_str(), r.runtime.threads, rate,
                   r.runtime.clients_dropped, r.runtime.clients_quarantined,
                   identical ? "" : "  LOSS HISTORY DIVERGED");
    }
  }

  finish(table, "micro_faults");
  std::printf(
      "\nExpected shape: the clean scenario reports all-zero fault counters "
      "and matches a build without the fault layer byte-for-byte; every "
      "scenario's Identical column must read yes (bit-identical replay for "
      "any thread count, faults included).\n");
  return 0;
}
