// Microbenchmark: reference vs tiled vs fast GEMM kernels on the matrix
// shapes the paper CNNs actually produce (im2col'd convolution layers of
// the mobile-/shuffle-/squeeze-mini models at B=10, plus the classifier
// head).
//
// Prints GFLOP/s per (variant, shape) for all three kernel kinds and the
// tiled speedup, and appends one JSONL record per row to
// BENCH_kernels.json (rows carrying a "fast_gflops" field postdate the
// fast kind; earlier rows in the file lack it). Honours HS_SCALE /
// HS_SEED like the experiment benches.
#include <algorithm>
#include <fstream>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "kernels/kernels.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

struct GemmCase {
  const char* label;  // which paper layer this shape comes from
  char variant;       // 'n' = nn, 't' = nt, 'a' = tn
  std::size_t m, k, n;
};

// m/k/n as the conv layers see them: forward nn is (group out_c, patch,
// B*oh*ow); dW nt is (group out_c, B*oh*ow, patch); dX tn is
// (group out_c, patch, B*oh*ow). B = 10 (paper batch), 32x32 inputs.
const GemmCase kCases[] = {
    {"mobile.stem.fwd", 'n', 8, 27, 2560},
    {"mobile.expand1x1.fwd", 'n', 24, 8, 2560},
    {"mobile.project1x1.fwd", 'n', 16, 24, 640},
    {"shuffle.branch1x1.fwd", 'n', 24, 24, 640},
    {"squeeze.fire-expand3.fwd", 'n', 16, 72, 640},
    {"mobile.stem.dW", 't', 8, 2560, 27},
    {"mobile.expand1x1.dW", 't', 24, 2560, 8},
    {"squeeze.fire-expand3.dW", 't', 16, 640, 72},
    {"mobile.stem.dX", 'a', 8, 27, 2560},
    {"squeeze.fire-expand3.dX", 'a', 16, 72, 640},
    {"head.linear.dW", 'a', 10, 48, 64},
};

double time_best_s(std::size_t reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (std::size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.elapsed_s());
  }
  return best;
}

}  // namespace

int main() {
  const Scale scale;
  print_header("micro", "GEMM kernels: reference vs tiled", scale);
  const std::size_t reps = static_cast<std::size_t>(scale.n(5, 40));
  const std::size_t inner = 8;  // kernel calls per timed rep

  Table table(
      {"Shape", "Variant", "Ref GF/s", "Tiled GF/s", "Fast GF/s", "Speedup"});
  std::ofstream jsonl("BENCH_kernels.json", std::ios::app);
  Rng rng(scale.seed());

  for (const GemmCase& c : kCases) {
    const std::size_t a_size = c.m * c.k;
    const std::size_t b_size = c.variant == 'n'   ? c.k * c.n
                               : c.variant == 't' ? c.n * c.k
                                                  : c.m * c.n;
    const std::size_t c_size = c.variant == 'a' ? c.k * c.n : c.m * c.n;
    std::vector<float> a(a_size), b(b_size), out(c_size);
    for (float& v : a) v = rng.uniform_f(-1.0f, 1.0f);
    for (float& v : b) v = rng.uniform_f(-1.0f, 1.0f);

    auto run = [&](kernels::KernelKind kind) {
      for (std::size_t i = 0; i < inner; ++i) {
        switch (c.variant) {
          case 'n':
            kernels::gemm_nn(kind, a.data(), b.data(), out.data(), c.m, c.k,
                             c.n, false);
            break;
          case 't':
            kernels::gemm_nt(kind, a.data(), b.data(), out.data(), c.m, c.k,
                             c.n, false);
            break;
          default:
            kernels::gemm_tn(kind, a.data(), b.data(), out.data(), c.m, c.k,
                             c.n, false);
        }
      }
    };
    run(kernels::KernelKind::kTiled);  // warm caches once
    const double t_ref =
        time_best_s(reps, [&] { run(kernels::KernelKind::kReference); });
    const double t_til =
        time_best_s(reps, [&] { run(kernels::KernelKind::kTiled); });
    const double t_fast =
        time_best_s(reps, [&] { run(kernels::KernelKind::kFast); });

    const double flops = 2.0 * static_cast<double>(c.m) * c.k * c.n * inner;
    const double gf_ref = flops / t_ref / 1e9;
    const double gf_til = flops / t_til / 1e9;
    const double gf_fast = flops / t_fast / 1e9;
    const double speedup = t_ref / t_til;

    const char* variant = c.variant == 'n'   ? "nn"
                          : c.variant == 't' ? "nt"
                                             : "tn";
    char ref_s[32], til_s[32], fast_s[32], sp_s[32];
    std::snprintf(ref_s, sizeof ref_s, "%.2f", gf_ref);
    std::snprintf(til_s, sizeof til_s, "%.2f", gf_til);
    std::snprintf(fast_s, sizeof fast_s, "%.2f", gf_fast);
    std::snprintf(sp_s, sizeof sp_s, "%.2fx", speedup);
    table.add_row({c.label, variant, ref_s, til_s, fast_s, sp_s});
    jsonl << "{\"bench\":\"micro_gemm\",\"shape\":\"" << c.label
          << "\",\"variant\":\"" << variant << "\",\"m\":" << c.m
          << ",\"k\":" << c.k << ",\"n\":" << c.n
          << ",\"ref_gflops\":" << gf_ref << ",\"tiled_gflops\":" << gf_til
          << ",\"fast_gflops\":" << gf_fast << ",\"speedup\":" << speedup
          << "}\n";
  }

  finish(table, "micro_gemm");
  std::printf("\n[jsonl] BENCH_kernels.json (appended)\n");
  return 0;
}
