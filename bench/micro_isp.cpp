// Imaging-substrate microbench: per-stage and full-capture-path wall time
// under HS_ISP=reference vs HS_ISP=fast (the vectorized row-major rewrite,
// bit-exact by construction — tests/test_isp_parity.cpp), plus the
// client-materialization batch serial vs fanned out over an intra-op pool.
//
// Writes BENCH_isp.json fresh (one JSONL record per case) and exits
// nonzero if the fast path fails to reach 3x reference throughput on the
// full ISP pipeline (raw -> denoise -> demosaic -> WB -> gamut -> tone ->
// JPEG), so CI can gate on the vectorization staying effective. The
// scene-to-tensor capture path is recorded but not gated: it includes the
// sensor's serial Box-Muller noise draws, which bit-exactness pins to the
// seed's per-pixel RNG order, so its ratio is capped well below the ISP's.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "device/device_profile.h"
#include "fl/population.h"
#include "image/fastpath.h"
#include "isp/pipeline.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"
#include "scene/scene_gen.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

struct Case {
  const char* name;
  std::size_t iters;
  std::function<void(Rng&)> body;
};

/// One timed measurement: `iters` calls under the given path, from a fixed
/// seed so reference and fast run identical work. Returns microseconds per
/// iteration.
double run_case(const Case& c, img::PathKind kind) {
  img::set_active_path(kind);
  Rng rng(42);
  Timer t;
  for (std::size_t i = 0; i < c.iters; ++i) c.body(rng);
  return t.elapsed_s() * 1e6 / static_cast<double>(c.iters);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  const Scale scale;
  print_header("micro", "isp: HS_ISP=reference vs fast, per stage", scale);
  const img::PathKind env_path = img::active_path();

  const SceneGenerator gen(64);
  Rng setup_rng(1);
  const Image scene = gen.generate(0, setup_rng);
  const SensorModel sensor{SensorConfig{}};
  const RawImage raw = sensor.capture(scene, setup_rng);
  const Image rgb = demosaic(raw, DemosaicAlgo::kBilinear);
  const IspConfig isp_cfg = IspConfig::baseline();
  const DeviceProfile& device = device_by_name("GalaxyS9");
  const CaptureConfig cap_cfg;

  // Iteration counts put each measurement in the low-millisecond range so
  // a single timer read is well above clock granularity; paper scale
  // quadruples them.
  const std::size_t mul = scale.paper_scale() ? 4 : 1;
  const std::vector<Case> cases = {
      {"scene_generate", 8 * mul, [&](Rng& r) { (void)gen.generate(0, r); }},
      {"sensor_capture", 8 * mul,
       [&](Rng& r) { (void)sensor.capture(scene, r); }},
      {"demosaic_bilinear", 16 * mul,
       [&](Rng&) { (void)demosaic(raw, DemosaicAlgo::kBilinear); }},
      {"demosaic_ppg", 8 * mul,
       [&](Rng&) { (void)demosaic(raw, DemosaicAlgo::kPPG); }},
      {"demosaic_ahd", 8 * mul,
       [&](Rng&) { (void)demosaic(raw, DemosaicAlgo::kAHD); }},
      {"denoise_fbdd", 4 * mul,
       [&](Rng&) { (void)denoise(raw, DenoiseAlgo::kFBDD); }},
      {"denoise_wavelet", 4 * mul,
       [&](Rng&) { (void)denoise(raw, DenoiseAlgo::kWavelet); }},
      {"jpeg_roundtrip_q85", 8 * mul,
       [&](Rng&) { (void)jpeg_roundtrip(rgb, 85); }},
      {"full_isp_pipeline", 4 * mul,
       [&](Rng&) { (void)run_isp(raw, isp_cfg); }},
      {"capture_path", 2 * mul,
       [&](Rng& r) {
         const Image s = gen.generate(0, r);
         (void)capture_to_tensor(s, device, cap_cfg, r);
       }},
  };

  // Rep-major interleaving with per-rep paired ratios (the micro_round_e2e
  // idiom): reference and fast of one case run back to back within a rep,
  // so box-speed noise cancels in the ratio; the median pair then drops
  // outlier reps.
  const std::size_t reps = std::max<std::size_t>(scale.repeats(), 5);
  std::vector<std::vector<double>> ref_us(cases.size()), fast_us(cases.size());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t c = 0; c < cases.size(); ++c) {
      ref_us[c].push_back(run_case(cases[c], img::PathKind::kReference));
      fast_us[c].push_back(run_case(cases[c], img::PathKind::kFast));
    }
  }
  img::set_active_path(env_path);

  Table table({"Case", "Reference us", "Fast us", "Speedup"});
  std::ofstream jsonl("BENCH_isp.json");  // fresh, not appended
  double isp_speedup = 0.0;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    std::vector<double> ratios;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      ratios.push_back(ref_us[c][rep] / fast_us[c][rep]);
    }
    const double speedup = median(ratios);
    const double ref_med = median(ref_us[c]);
    const double fast_med = median(fast_us[c]);
    if (std::string(cases[c].name) == "full_isp_pipeline") {
      isp_speedup = speedup;
    }
    char ref_s[32], fast_s[32], sp_s[32];
    std::snprintf(ref_s, sizeof ref_s, "%.1f", ref_med);
    std::snprintf(fast_s, sizeof fast_s, "%.1f", fast_med);
    std::snprintf(sp_s, sizeof sp_s, "%.2fx", speedup);
    table.add_row({cases[c].name, ref_s, fast_s, sp_s});
    jsonl << "{\"bench\":\"micro_isp\",\"case\":\"" << cases[c].name
          << "\",\"reference_us\":" << ref_med << ",\"fast_us\":" << fast_med
          << ",\"speedup\":" << speedup << "}\n";
  }

  // Client-materialization batch: one virtual client's dataset generated
  // cold (cache off), serial vs fanned over a 2-way intra-op pool. On a
  // single-core box the pooled row measures fan-out overhead, not speedup
  // — recorded, never gated. Both rows run under the fast path.
  {
    setenv("HS_POP_CACHE", "0", 1);
    SceneGenerator pop_scenes(64);
    PopulationConfig pc;
    pc.num_clients = 4;
    pc.samples_per_client = 8;
    pc.test_per_class = 1;
    pc.capture.tensor_size = 32;
    const PopulationSpec spec =
        PopulationSpec::single_label(paper_devices(), pc, pop_scenes);
    const VirtualPopulation pop(spec, Rng(scale.seed()).fork(1));
    unsetenv("HS_POP_CACHE");
    img::set_active_path(img::PathKind::kFast);
    auto materialize = [&](std::size_t threads) {
      ClientSlot slot;
      Timer t;
      if (threads > 1) {
        ThreadPool pool(threads);
        const kernels::ScopedIntraOp intra(
            [&pool](std::size_t tasks,
                    const std::function<void(std::size_t)>& fn) {
              pool.parallel_for(tasks, fn);
            },
            threads);
        (void)pop.client_dataset(1, slot);
      } else {
        (void)pop.client_dataset(1, slot);
      }
      return t.elapsed_s() * 1e6;
    };
    std::vector<double> serial_us, pooled_us;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      serial_us.push_back(materialize(1));
      pooled_us.push_back(materialize(2));
    }
    img::set_active_path(env_path);
    const double s_med = median(serial_us), p_med = median(pooled_us);
    std::vector<double> ratios;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      ratios.push_back(serial_us[rep] / pooled_us[rep]);
    }
    const double speedup = median(ratios);
    char s_s[32], p_s[32], sp_s[32];
    std::snprintf(s_s, sizeof s_s, "%.1f", s_med);
    std::snprintf(p_s, sizeof p_s, "%.1f", p_med);
    std::snprintf(sp_s, sizeof sp_s, "%.2fx", speedup);
    table.add_row({"materialize_client_2way", s_s, p_s, sp_s});
    jsonl << "{\"bench\":\"micro_isp\",\"case\":\"materialize_client_2way\""
          << ",\"serial_us\":" << s_med << ",\"pooled_us\":" << p_med
          << ",\"speedup\":" << speedup << "}\n";
  }

  finish(table, "micro_isp");
  std::printf("\n[jsonl] BENCH_isp.json (fresh)\n");

  std::printf(
      "[check] fast vs reference full ISP pipeline (median paired): %.2fx "
      "(need >= 3.00x)\n",
      isp_speedup);
  if (isp_speedup < 3.0) {
    std::printf("[check] FAIL: fast ISP below the 3x acceptance bar\n");
    return 1;
  }
  return 0;
}
