// Microbenchmarks (google-benchmark) for the imaging substrate: sensor
// capture, each ISP stage, and the full per-image capture path.
#include <benchmark/benchmark.h>

#include "data/builder.h"
#include "device/device_profile.h"
#include "isp/pipeline.h"
#include "scene/scene_gen.h"
#include "util/rng.h"

namespace hetero {
namespace {

Image bench_scene() {
  SceneGenerator gen(64);
  Rng rng(1);
  return gen.generate(0, rng);
}

RawImage bench_raw() {
  SensorModel sensor{SensorConfig{}};
  Rng rng(2);
  return sensor.capture(bench_scene(), rng);
}

void BM_SceneGenerate(benchmark::State& state) {
  SceneGenerator gen(64);
  Rng rng(3);
  std::size_t cls = 0;
  for (auto _ : state) {
    Image img = gen.generate(cls++ % 12, rng);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_SceneGenerate);

void BM_SensorCapture(benchmark::State& state) {
  const Image scene = bench_scene();
  SensorModel sensor{SensorConfig{}};
  Rng rng(4);
  for (auto _ : state) {
    RawImage raw = sensor.capture(scene, rng);
    benchmark::DoNotOptimize(raw.data());
  }
}
BENCHMARK(BM_SensorCapture);

void BM_Demosaic(benchmark::State& state) {
  const RawImage raw = bench_raw();
  const auto algo = static_cast<DemosaicAlgo>(state.range(0));
  for (auto _ : state) {
    Image img = demosaic(raw, algo);
    benchmark::DoNotOptimize(img.data());
  }
  state.SetLabel(demosaic_name(algo));
}
BENCHMARK(BM_Demosaic)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_Denoise(benchmark::State& state) {
  const RawImage raw = bench_raw();
  const auto algo = static_cast<DenoiseAlgo>(state.range(0));
  for (auto _ : state) {
    RawImage out = denoise(raw, algo);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(denoise_name(algo));
}
BENCHMARK(BM_Denoise)->Arg(1)->Arg(2);

void BM_JpegRoundtrip(benchmark::State& state) {
  const Image img = demosaic(bench_raw(), DemosaicAlgo::kBilinear);
  for (auto _ : state) {
    Image out = jpeg_roundtrip(img, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_JpegRoundtrip)->Arg(85)->Arg(50);

void BM_FullIspPipeline(benchmark::State& state) {
  const RawImage raw = bench_raw();
  const IspConfig cfg = IspConfig::baseline();
  for (auto _ : state) {
    Image out = run_isp(raw, cfg);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FullIspPipeline);

void BM_CaptureToTensor(benchmark::State& state) {
  const Image scene = bench_scene();
  const DeviceProfile& dev = device_by_name("GalaxyS9");
  CaptureConfig cfg;
  Rng rng(5);
  for (auto _ : state) {
    Tensor t = capture_to_tensor(scene, dev, cfg, rng);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_CaptureToTensor);

}  // namespace
}  // namespace hetero

BENCHMARK_MAIN();
