// Microbenchmark: FL round throughput of the parallel client executor.
//
// Runs the same FedAvg workload (K=20 clients per round on synthetic
// separable data) at 1, 2, 4 and all-hardware threads and reports
// rounds/sec plus the speedup over the serial run. Also asserts the
// determinism contract on the side: every thread count must reproduce the
// single-thread loss history bit-for-bit.
//
// Honours HS_ROUNDS / HS_SEED / HS_SCALE like the experiment benches.
#include <algorithm>
#include <thread>

#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

Dataset two_class_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor xs({n, 3, 8, 8});
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 2;
    const float base = labels[i] == 0 ? 0.15f : 0.85f;
    for (std::size_t j = 0; j < 3 * 64; ++j) {
      xs[i * 3 * 64 + j] = base + rng.uniform_f(-0.05f, 0.05f);
    }
  }
  return Dataset(std::move(xs), std::move(labels));
}

FlPopulation synthetic_population(std::size_t clients,
                                  std::size_t samples_per_client,
                                  std::uint64_t seed) {
  FlPopulation pop;
  for (std::size_t i = 0; i < clients; ++i) {
    pop.client_train.push_back(two_class_data(samples_per_client, seed + i));
    pop.client_device.push_back(0);
  }
  pop.device_test.push_back(two_class_data(32, seed + 1000));
  pop.device_names.push_back("synthetic");
  return pop;
}

}  // namespace

int main() {
  const Scale scale;
  print_header("micro", "parallel round throughput (FedAvg, K=20)", scale);

  const std::size_t clients = 40;
  const std::size_t k = 20;
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(6, 30));
  const std::size_t samples = static_cast<std::size_t>(scale.n(120, 400));

  const FlPopulation pop = synthetic_population(clients, samples,
                                                scale.seed());

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  Table table({"Threads", "Rounds/s", "Speedup", "Client-s/round",
               "Identical"});
  double serial_rate = 0.0;
  std::vector<double> reference_losses;
  for (std::size_t threads : thread_counts) {
    ModelSpec spec;
    spec.arch = "mlp-tiny";
    spec.image_size = 8;
    spec.num_classes = 2;
    Rng model_rng(scale.seed());
    auto model = make_model(spec, model_rng);
    FedAvg algo(paper_local_config());

    SimulationConfig sim;
    sim.rounds = rounds;
    sim.clients_per_round = k;
    sim.seed = scale.seed() + 1;
    sim.num_threads = threads;
    sim.observer =
        trace_sink().run("micro.threads=" + std::to_string(threads));
    const SimulationResult r = run_simulation(*model, algo, pop, sim);

    const double rate =
        static_cast<double>(rounds) / std::max(1e-9, r.runtime.total_seconds);
    if (threads == 1) {
      serial_rate = rate;
      reference_losses = r.train_loss_history;
    }
    const bool identical = r.train_loss_history == reference_losses;

    char rate_s[32], speedup_s[32], client_s[32];
    std::snprintf(rate_s, sizeof rate_s, "%.2f", rate);
    std::snprintf(speedup_s, sizeof speedup_s, "%.2fx", rate / serial_rate);
    std::snprintf(client_s, sizeof client_s, "%.3f",
                  r.runtime.client_seconds_sum / static_cast<double>(rounds));
    table.add_row({std::to_string(r.runtime.threads), rate_s, speedup_s,
                   client_s, identical ? "yes" : "NO"});
    std::fprintf(stderr, "[micro] %zu thread(s): %.2f rounds/s (%.2fx)%s\n",
                 r.runtime.threads, rate, rate / serial_rate,
                 identical ? "" : "  LOSS HISTORY DIVERGED");
  }

  finish(table, "micro_parallel_rounds");
  std::printf(
      "\nExpected shape: near-linear scaling up to the physical core count; "
      "the Identical column must read yes everywhere (bit-identical replay "
      "for any thread count).\n");
  return 0;
}
