// Microbenchmark: virtual million-client populations (DESIGN.md §12).
//
// Phase 1 (flat RSS): runs the same FedAvg workload (k clients per round,
// paper-shaped 1M-client federation at HS_SCALE=1) over VirtualPopulation
// at increasing population sizes and reads the process peak RSS (VmHWM)
// after each. The lazy provider's working set is O(k) — per-worker
// ClientSlot arenas plus the O(#devices) test sets — so the peak must stay
// flat as N grows 100x: the acceptance gate is peak RSS at the largest N
// within 10% of the smallest. Populations run in ascending order because
// VmHWM is monotonic; only that ordering makes the ratio meaningful.
//
// Phase 2 (parity): builds VirtualPopulation and MaterializedPopulation
// from the same (spec, root) and runs the identical simulation on both —
// final model state and loss history must match bit-for-bit (the
// Identical column), the per-client half of which is asserted in
// tests/test_population.cpp.
//
// Honours HS_ROUNDS / HS_SEED / HS_SCALE / HS_THREADS; HS_TRACE wires the
// runs into the trace_smoke_population ctest. Appends one JSONL record per
// row to BENCH_population.json.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fl/population.h"
#include "image/fastpath.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

/// Peak resident set size of this process in kB (VmHWM; 0 off-Linux).
std::size_t vm_hwm_kb() {
#ifdef __linux__
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::stoul(line.substr(6)));
    }
  }
#endif
  return 0;
}

/// Small-geometry population recipe: the bench measures memory scaling, so
/// scenes, tensors, and local datasets stay tiny while N explodes.
PopulationSpec bench_spec(std::size_t num_clients,
                          const SceneGenerator& scenes) {
  PopulationConfig pcfg;
  pcfg.num_clients = num_clients;
  pcfg.samples_per_client = 8;
  pcfg.test_per_class = 2;
  pcfg.capture.tensor_size = 8;
  return PopulationSpec::single_label(paper_devices(), pcfg, scenes);
}

SimulationResult run_fedavg(const ClientProvider& pop, std::size_t rounds,
                            std::size_t k, const Scale& scale,
                            const std::string& label) {
  ModelSpec spec;
  spec.arch = "mlp-tiny";
  spec.image_size = 8;
  spec.num_classes = 12;
  Rng model_rng(scale.seed());
  auto model = make_model(spec, model_rng);
  FedAvg algo(paper_local_config());

  SimulationConfig sim;
  sim.rounds = rounds;
  sim.clients_per_round = k;
  sim.seed = scale.seed() + 1;
  sim.num_threads = scale.threads();
  sim.observer = trace_sink().run(label);
  return run_simulation(*model, algo, pop, sim);
}

}  // namespace

int main() {
  const Scale scale;
  print_header("micro",
               "virtual populations: flat RSS over 100x client growth "
               "(FedAvg)",
               scale);

  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(2, 20));
  const std::size_t k = static_cast<std::size_t>(scale.n(10, 100));
  const std::vector<std::size_t> sweep =
      scale.paper_scale() ? std::vector<std::size_t>{10'000, 1'000'000}
                          : std::vector<std::size_t>{5'000, 50'000};

  SceneGenerator scenes(16);
  const Rng pop_root = Rng(scale.seed()).fork(1);

  Table table({"Population", "N", "Rounds", "K", "FinalLoss", "PeakRSS(MB)",
               "RSSRatio", "Identical"});
  std::ofstream jsonl("BENCH_population.json", std::ios::app);

  // Phase 1: ascending-N sweep over the lazy provider.
  std::size_t base_hwm_kb = 0;
  for (std::size_t n : sweep) {
    const VirtualPopulation pop(bench_spec(n, scenes), pop_root);
    const SimulationResult r =
        run_fedavg(pop, rounds, k, scale,
                   "micro_population.virtual.n=" + std::to_string(n));
    const std::size_t hwm = vm_hwm_kb();
    if (base_hwm_kb == 0) base_hwm_kb = hwm;
    const double ratio =
        base_hwm_kb > 0 ? static_cast<double>(hwm) /
                              static_cast<double>(base_hwm_kb)
                        : 0.0;
    char loss_s[32], rss_s[32], ratio_s[32];
    std::snprintf(loss_s, sizeof loss_s, "%.4f", r.train_loss_history.back());
    std::snprintf(rss_s, sizeof rss_s, "%.1f",
                  static_cast<double>(hwm) / 1024.0);
    std::snprintf(ratio_s, sizeof ratio_s, "%.3f", ratio);
    table.add_row({"virtual", std::to_string(n), std::to_string(rounds),
                   std::to_string(k), loss_s, rss_s, ratio_s, "-"});
    jsonl << "{\"bench\":\"micro_population\",\"population\":\"virtual\","
          << "\"n\":" << n << ",\"rounds\":" << rounds << ",\"k\":" << k
          << ",\"vm_hwm_kb\":" << hwm << ",\"rss_ratio\":" << ratio << "}\n";
    std::fprintf(stderr,
                 "[micro_population] virtual N=%zu: peak RSS %.1f MB "
                 "(ratio %.3f vs N=%zu)\n",
                 n, static_cast<double>(hwm) / 1024.0, ratio, sweep.front());
  }

  // Phase 2: virtual vs materialized parity at a size the eager layout can
  // afford. Same spec + root, same simulation — results must be
  // bit-identical.
  {
    const std::size_t n = 200;
    const std::size_t parity_k = std::min<std::size_t>(k, 20);
    const PopulationSpec spec = bench_spec(n, scenes);
    const VirtualPopulation lazy(spec, pop_root);
    const MaterializedPopulation eager(spec, pop_root);
    const SimulationResult rv = run_fedavg(
        lazy, rounds, parity_k, scale, "micro_population.parity.virtual");
    const SimulationResult rm = run_fedavg(
        eager, rounds, parity_k, scale, "micro_population.parity.eager");
    const bool identical =
        rv.train_loss_history == rm.train_loss_history &&
        rv.final_metrics.per_device == rm.final_metrics.per_device;
    char loss_s[32];
    std::snprintf(loss_s, sizeof loss_s, "%.4f",
                  rv.train_loss_history.back());
    table.add_row({"parity", std::to_string(n), std::to_string(rounds),
                   std::to_string(parity_k), loss_s, "-", "-",
                   identical ? "yes" : "NO"});
    jsonl << "{\"bench\":\"micro_population\",\"population\":\"parity\","
          << "\"n\":" << n << ",\"rounds\":" << rounds
          << ",\"k\":" << parity_k << ",\"identical\":"
          << (identical ? "true" : "false") << "}\n";
    std::fprintf(stderr, "[micro_population] parity N=%zu: %s\n", n,
                 identical ? "bit-identical" : "RESULTS DIVERGED");
  }

  // Phase 3: per-client dataset LRU (HS_POP_CACHE). Clients reselected in
  // later rounds hit the cache instead of re-running the ISP pipeline; the
  // cached run must stay byte-identical to the uncached one (hits return a
  // copy of the exact bytes a miss would regenerate). A small N relative to
  // k * rounds makes reselection — and therefore hits — likely.
  {
    const std::size_t n = 64;
    const std::size_t lru_k = std::min<std::size_t>(k, 16);
    const PopulationSpec spec = bench_spec(n, scenes);
    const char* prev = std::getenv("HS_POP_CACHE");
    const std::string saved = prev ? prev : "";
    setenv("HS_POP_CACHE", "64", 1);
    const VirtualPopulation cached(spec, pop_root);
    Timer tc;
    const SimulationResult rc = run_fedavg(cached, rounds, lru_k, scale,
                                           "micro_population.lru.cached");
    const double cached_s = tc.elapsed_s();
    setenv("HS_POP_CACHE", "0", 1);
    const VirtualPopulation uncached(spec, pop_root);
    Timer tu;
    const SimulationResult ru = run_fedavg(uncached, rounds, lru_k, scale,
                                           "micro_population.lru.uncached");
    const double uncached_s = tu.elapsed_s();
    if (prev) {
      setenv("HS_POP_CACHE", saved.c_str(), 1);
    } else {
      unsetenv("HS_POP_CACHE");
    }
    const bool identical =
        rc.train_loss_history == ru.train_loss_history &&
        rc.final_metrics.per_device == ru.final_metrics.per_device;
    const double speedup = cached_s > 0.0 ? uncached_s / cached_s : 0.0;
    char loss_s[32], sp_s[32];
    std::snprintf(loss_s, sizeof loss_s, "%.4f",
                  rc.train_loss_history.back());
    std::snprintf(sp_s, sizeof sp_s, "%.2fx", speedup);
    table.add_row({"lru", std::to_string(n), std::to_string(rounds),
                   std::to_string(lru_k), loss_s, "-", sp_s,
                   identical ? "yes" : "NO"});
    jsonl << "{\"bench\":\"micro_population\",\"population\":\"lru\","
          << "\"n\":" << n << ",\"rounds\":" << rounds << ",\"k\":" << lru_k
          << ",\"cache_hits\":" << cached.cache_hits()
          << ",\"cache_misses\":" << cached.cache_misses()
          << ",\"speedup_vs_nocache\":" << speedup << ",\"identical\":"
          << (identical ? "true" : "false") << "}\n";
    std::fprintf(stderr,
                 "[micro_population] lru N=%zu: %llu hits / %llu misses, "
                 "%.2fx vs nocache, %s\n",
                 n, static_cast<unsigned long long>(cached.cache_hits()),
                 static_cast<unsigned long long>(cached.cache_misses()),
                 speedup, identical ? "bit-identical" : "RESULTS DIVERGED");
  }

  // Phase 4: cold generation. With the cache disabled every client_dataset
  // call re-runs scene synthesis + the full capture pipeline, so this row
  // isolates the ISP substrate's share of materialization cost:
  // HS_ISP=reference vs the vectorized fast path (bit-identical —
  // tests/test_isp_parity.cpp), same clients, same bytes out.
  {
    const std::size_t n = 16;
    const char* prev = std::getenv("HS_POP_CACHE");
    const std::string saved = prev ? prev : "";
    setenv("HS_POP_CACHE", "0", 1);
    const VirtualPopulation pop(bench_spec(n, scenes), pop_root);
    if (prev) {
      setenv("HS_POP_CACHE", saved.c_str(), 1);
    } else {
      unsetenv("HS_POP_CACHE");
    }
    const img::PathKind env_path = img::active_path();
    auto materialize_all = [&](img::PathKind kind) {
      img::set_active_path(kind);
      ClientSlot slot;
      Timer t;
      for (std::size_t c = 0; c < n; ++c) (void)pop.client_dataset(c, slot);
      return t.elapsed_s() * 1e6;
    };
    const std::size_t reps = std::max<std::size_t>(scale.repeats(), 3);
    std::vector<double> ratios, ref_all, fast_all;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const double ref_us = materialize_all(img::PathKind::kReference);
      const double fast_us = materialize_all(img::PathKind::kFast);
      ref_all.push_back(ref_us);
      fast_all.push_back(fast_us);
      ratios.push_back(ref_us / fast_us);
    }
    img::set_active_path(env_path);
    std::sort(ratios.begin(), ratios.end());
    std::sort(ref_all.begin(), ref_all.end());
    std::sort(fast_all.begin(), fast_all.end());
    const double speedup = ratios[ratios.size() / 2];
    const double ref_med = ref_all[ref_all.size() / 2];
    const double fast_med = fast_all[fast_all.size() / 2];
    char sp_s[32];
    std::snprintf(sp_s, sizeof sp_s, "%.2fx", speedup);
    table.add_row({"cold", std::to_string(n), "-", "-", "-", "-", sp_s, "-"});
    jsonl << "{\"bench\":\"micro_population\",\"population\":\"cold\","
          << "\"n\":" << n << ",\"reference_us\":" << ref_med
          << ",\"fast_us\":" << fast_med << ",\"speedup\":" << speedup
          << "}\n";
    std::fprintf(stderr,
                 "[micro_population] cold N=%zu: %.0f us reference vs %.0f us "
                 "fast (%.2fx, median paired)\n",
                 n, ref_med, fast_med, speedup);
  }

  finish(table, "micro_population");
  std::printf(
      "\n[jsonl] BENCH_population.json (appended)\n"
      "Expected shape: RSSRatio stays within 1.10 as N grows 100x (the lazy "
      "provider's working set is O(k), not O(N)); the parity row's Identical "
      "column must read yes (virtual and materialized populations are the "
      "same recipe); the lru row's Identical column must read yes too, with "
      "RSSRatio showing its speedup over an HS_POP_CACHE=0 run; the cold "
      "row's RSSRatio column shows HS_ISP=fast's speedup over reference on "
      "cache-off materialization.\n");
  return 0;
}
