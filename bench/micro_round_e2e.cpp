// End-to-end round-throughput bench: full HeteroSwitch federated rounds on
// a synthetic squeeze-mini population, once per kernel mode —
//   reference, tiled, fast (HS_KERNEL), and fast + int8 eval (HS_EVAL) —
// reporting clients/s and rounds/s per mode. Also re-runs the tiled mode
// with a larger thread count than selected clients (the executor's
// intra-op lone-straggler/spare-worker grant) and checks the loss history
// is bit-identical to the serial run, per the §13 determinism contract.
//
// Writes BENCH_round_e2e.json fresh (one JSONL record per mode) and exits
// nonzero if fast fails to reach 1.3x tiled round throughput or the
// intra-op determinism check fails, so CI can gate on it directly.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "hetero/heteroswitch.h"
#include "kernels/kernels.h"

using namespace hetero;
using namespace hetero::bench;

namespace {

/// Two-class synthetic image set; label encoded in brightness so a few
/// rounds of training actually move the loss (and HeteroSwitch's EMA).
Dataset make_clients_data(std::size_t n, std::size_t image, std::size_t seed) {
  Rng rng(seed);
  const std::size_t pix = 3 * image * image;
  Tensor xs({n, 3, image, image});
  std::vector<std::size_t> labels(n);
  for (std::size_t j = 0; j < n; ++j) {
    labels[j] = j % 2;
    const float base = labels[j] == 0 ? 0.25f : 0.75f;
    for (std::size_t p = 0; p < pix; ++p) {
      xs[j * pix + p] = base + rng.uniform_f(-0.1f, 0.1f);
    }
  }
  return Dataset(std::move(xs), std::move(labels));
}

struct ModeResult {
  double seconds = 0.0;
  std::vector<double> loss_history;
};

}  // namespace

int main() {
  const Scale scale;
  print_header("micro", "round e2e: reference vs tiled vs fast (+int8 eval)",
               scale);

  // Smoke shrinks the images along with the counts; the paper-shaped run
  // uses the paper's 32x32 inputs (the micro_gemm layer inventory assumes
  // the same), so its GEMM-to-overhead mix matches real rounds.
  const std::size_t image = scale.paper_scale() ? 32 : 16;
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(4, 40));
  const std::size_t num_clients = 8;
  const std::size_t clients_per_round = 4;
  const std::size_t samples_per_client =
      static_cast<std::size_t>(scale.n(20, 100));

  ModelSpec spec;
  spec.arch = "squeeze-mini";  // conv-heavy, GEMM-dominated, no batch norm
  spec.image_size = image;
  spec.num_classes = 2;

  FlPopulation pop;
  for (std::size_t i = 0; i < num_clients; ++i) {
    pop.client_train.push_back(
        make_clients_data(samples_per_client, image, 900 + i));
    pop.client_device.push_back(0);
  }
  pop.device_test.push_back(make_clients_data(24, image, 990));
  pop.device_names.push_back("synthetic");

  const LocalTrainConfig cfg = paper_local_config();

  // One full simulation under the given kernel/eval mode. The model is
  // rebuilt from the same seed each time so every mode trains the same
  // network on the same schedule.
  auto run_mode = [&](kernels::KernelKind kind, kernels::EvalMode eval,
                      std::size_t threads, bool int8_cache = true) {
    kernels::set_active_kernel(kind);
    kernels::set_eval_mode(eval);
    const bool cache_was = kernels::int8_cache_enabled();
    kernels::set_int8_cache_enabled(int8_cache);
    Rng mrng(7);
    auto model = make_model(spec, mrng);
    HeteroSwitchOptions options;
    options.switch_on_unseeded_ema = true;  // probe evals from round 0
    HeteroSwitch algo(cfg, options);
    SimulationConfig sim;
    sim.rounds = rounds;
    sim.clients_per_round = clients_per_round;
    sim.seed = scale.seed();
    sim.num_threads = threads;
    ModeResult r;
    Timer t;
    const SimulationResult res = run_simulation(*model, algo, pop, sim);
    r.seconds = t.elapsed_s();
    r.loss_history = res.train_loss_history;
    kernels::set_int8_cache_enabled(cache_was);
    kernels::set_eval_mode(kernels::EvalMode::kF32);
    kernels::set_active_kernel(kernels::KernelKind::kTiled);
    return r;
  };

  struct Mode {
    const char* name;
    kernels::KernelKind kind;
    kernels::EvalMode eval;
    bool int8_cache = true;
  };
  // The nocache row isolates the HS_EVAL_CACHE weight-code cache: same
  // kernels, same eval path, re-quantizing the weights on every batch
  // instead of once per model version. Its delta against fast+int8 is the
  // cache's contribution.
  const Mode modes[] = {
      {"reference", kernels::KernelKind::kReference, kernels::EvalMode::kF32},
      {"tiled", kernels::KernelKind::kTiled, kernels::EvalMode::kF32},
      {"fast", kernels::KernelKind::kFast, kernels::EvalMode::kF32},
      {"fast+int8", kernels::KernelKind::kFast, kernels::EvalMode::kInt8},
      {"fast+int8:nocache", kernels::KernelKind::kFast,
       kernels::EvalMode::kInt8, false},
  };

  // HS_E2E_MODES: comma list restricting which modes run (e.g.
  // "tiled,fast" to skip the slow reference sweep when profiling or
  // gating). Default: all. The 1.3x check only applies when both tiled
  // and fast ran.
  const char* mode_filter = std::getenv("HS_E2E_MODES");
  const auto mode_selected = [&](const char* name) {
    if (mode_filter == nullptr || *mode_filter == '\0') return true;
    const std::string list(mode_filter);
    const std::string want(name);
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = std::min(list.find(',', pos), list.size());
      if (list.compare(pos, comma - pos, want) == 0) return true;
      pos = comma + 1;
    }
    return false;
  };

  Table table({"Mode", "Rounds/s", "Clients/s", "vs tiled"});
  std::ofstream jsonl("BENCH_round_e2e.json");  // fresh, not appended
  double tiled_rps = 0.0;
  const std::size_t threads = scale.threads() ? scale.threads() : 1;
  // Throughput ratios gate the acceptance check below, so take the best of
  // at least three runs per mode — single timings on a shared box swing
  // by ~15%, which is larger than the margin being measured. Repetitions
  // are interleaved across modes (rep-major, not mode-major) so a
  // multi-second noise burst degrades one rep of every mode rather than
  // every rep of whichever mode it landed on; best-of then drops it.
  const std::size_t reps = std::max<std::size_t>(scale.repeats(), 5);
  std::vector<const Mode*> selected;
  for (const Mode& mode : modes) {
    if (mode_selected(mode.name)) selected.push_back(&mode);
  }
  std::vector<ModeResult> best(selected.size());
  // Per-(rep, mode) wall times: the acceptance ratio below pairs tiled and
  // fast within each rep (they run seconds apart, so they see the same box
  // speed) and takes the median pair — best-of per mode can pick each
  // mode's luckiest window from *different* reps, which re-introduces
  // exactly the noise the ratio needs cancelled.
  std::vector<std::vector<double>> rep_seconds(selected.size());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t m = 0; m < selected.size(); ++m) {
      ModeResult r = run_mode(selected[m]->kind, selected[m]->eval, threads,
                              selected[m]->int8_cache);
      rep_seconds[m].push_back(r.seconds);
      if (rep == 0 || r.seconds < best[m].seconds) best[m] = std::move(r);
    }
  }
  // Median of the per-rep paired ratios (see the rep loop comment); this is
  // what the acceptance check gates on, and it is recorded on the fast row.
  double paired_speedup = 0.0;
  if (mode_selected("tiled") && mode_selected("fast")) {
    std::size_t tiled_m = 0, fast_m = 0;
    for (std::size_t m = 0; m < selected.size(); ++m) {
      if (std::string(selected[m]->name) == "tiled") tiled_m = m;
      if (std::string(selected[m]->name) == "fast") fast_m = m;
    }
    std::vector<double> ratios;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      ratios.push_back(rep_seconds[tiled_m][rep] / rep_seconds[fast_m][rep]);
    }
    std::sort(ratios.begin(), ratios.end());
    paired_speedup = ratios[ratios.size() / 2];
  }

  for (std::size_t m = 0; m < selected.size(); ++m) {
    if (std::string(selected[m]->name) == "tiled") {
      tiled_rps = static_cast<double>(rounds) / best[m].seconds;
    }
  }
  for (std::size_t m = 0; m < selected.size(); ++m) {
    const Mode& mode = *selected[m];
    const double rps = static_cast<double>(rounds) / best[m].seconds;
    const double cps =
        static_cast<double>(rounds * clients_per_round) / best[m].seconds;
    const double vs_tiled = tiled_rps > 0.0 ? rps / tiled_rps : 1.0;
    char rps_s[32], cps_s[32], sp_s[32];
    std::snprintf(rps_s, sizeof rps_s, "%.3f", rps);
    std::snprintf(cps_s, sizeof cps_s, "%.2f", cps);
    std::snprintf(sp_s, sizeof sp_s, "%.2fx", vs_tiled);
    table.add_row({mode.name, rps_s, cps_s, sp_s});
    jsonl << "{\"bench\":\"micro_round_e2e\",\"mode\":\"" << mode.name
          << "\",\"rounds\":" << rounds
          << ",\"clients_per_round\":" << clients_per_round
          << ",\"rounds_per_s\":" << rps << ",\"clients_per_s\":" << cps
          << ",\"speedup_vs_tiled\":" << vs_tiled;
    if (std::string(mode.name) == "fast" && paired_speedup > 0.0) {
      jsonl << ",\"paired_speedup_vs_tiled\":" << paired_speedup;
    }
    jsonl << "}\n";
  }

  finish(table, "micro_round_e2e");
  std::printf("\n[jsonl] BENCH_round_e2e.json (fresh)\n");

  if (!mode_selected("tiled") || !mode_selected("fast")) {
    std::printf("\n[check] skipped (HS_E2E_MODES hides tiled and/or fast)\n");
    return 0;
  }

  // Intra-op determinism: tiled with more threads than selected clients
  // routes through the executor's ScopedIntraOp grant; the loss history
  // must match the serial run bit for bit (DESIGN.md §13).
  const ModeResult serial =
      run_mode(kernels::KernelKind::kTiled, kernels::EvalMode::kF32, 1);
  const ModeResult pooled = run_mode(kernels::KernelKind::kTiled,
                                     kernels::EvalMode::kF32,
                                     clients_per_round + 2);
  bool deterministic = serial.loss_history.size() == pooled.loss_history.size();
  for (std::size_t i = 0; deterministic && i < serial.loss_history.size();
       ++i) {
    deterministic = serial.loss_history[i] == pooled.loss_history[i];
  }
  std::printf("[check] intra-op determinism (threads=1 vs %zu): %s\n",
              clients_per_round + 2, deterministic ? "bit-identical" : "FAIL");
  if (!deterministic) return 1;

  std::printf(
      "[check] fast vs tiled round throughput (median paired): %.2fx "
      "(need >= 1.30x)\n",
      paired_speedup);
  if (paired_speedup < 1.3) {
    std::printf("[check] FAIL: fast kind below the 1.3x acceptance bar\n");
    return 1;
  }
  return 0;
}
