// Microbenchmarks (google-benchmark) for the compute substrate: matmul,
// im2col convolution, and model forward/backward throughput.
#include <benchmark/benchmark.h>

#include "nn/conv2d.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace hetero {
namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(2);
  Conv2dGeometry g{16, 32, 32, 3, 1, 1};
  Tensor img = Tensor::randn({16, 32, 32}, rng);
  for (auto _ : state) {
    Tensor cols = im2col(img, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(3);
  const auto groups = static_cast<std::size_t>(state.range(0));
  Conv2d conv(16, 16, 3, 1, 1, groups, rng, false);
  Tensor x = Tensor::randn({4, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(16);  // dense vs depthwise

void BM_ModelForward(benchmark::State& state) {
  Rng rng(4);
  ModelSpec spec;
  auto model = make_model(spec, rng);
  Tensor x = Tensor::rand_uniform({8, 3, 32, 32}, rng, 0, 1);
  for (auto _ : state) {
    Tensor y = model->forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ModelForward);

void BM_ModelTrainStep(benchmark::State& state) {
  Rng rng(5);
  ModelSpec spec;
  auto model = make_model(spec, rng);
  Tensor x = Tensor::rand_uniform({10, 3, 32, 32}, rng, 0, 1);
  std::vector<std::size_t> labels(10);
  for (std::size_t i = 0; i < 10; ++i) labels[i] = i % 12;
  SoftmaxCrossEntropy ce;
  for (auto _ : state) {
    Tensor logits = model->forward(x, true);
    const auto l = ce(logits, labels);
    Tensor g = model->backward(l.grad);
    model->zero_grad();
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_ModelTrainStep);

}  // namespace
}  // namespace hetero

BENCHMARK_MAIN();
