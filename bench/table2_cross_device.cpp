// Table 2: model quality degradation when a model trained on one device
// type is deployed to every other device type.
//
// Protocol (Section 3.2): for each of the 9 devices, train a global model
// on that device's images (full ISP pipeline), then test on every device's
// test set built from the *same scene stream*. Cell (i, j) reports
// (acc_ii - acc_ij) / acc_ii. "Mean Others" excludes the diagonal.
#include "bench_common.h"

using namespace hetero;
using namespace hetero::bench;

int main() {
  const Scale scale;
  print_header("Table 2", "cross-device model quality degradation", scale);

  const auto& devices = paper_devices();
  const std::size_t nd = devices.size();
  const std::size_t per_class_train =
      static_cast<std::size_t>(scale.n(10, 40));
  const std::size_t per_class_test = static_cast<std::size_t>(scale.n(4, 12));
  const std::size_t epochs = static_cast<std::size_t>(scale.n(8, 30));

  SceneGenerator scenes(64);
  CaptureConfig capture;
  Rng root(scale.seed());
  Timer timer;

  // Per-device test sets over an identical scene stream: accuracy deltas
  // are then attributable to the device alone.
  std::vector<Dataset> tests;
  for (std::size_t d = 0; d < nd; ++d) {
    Rng test_rng = root.fork(500);  // same stream for every device
    tests.push_back(build_device_dataset(devices[d], per_class_test, scenes,
                                         capture, test_rng));
  }
  std::fprintf(stderr, "[table2] test sets built (%.1fs)\n",
               timer.elapsed_s());

  // acc[i][j]: trained on device i, tested on device j.
  std::vector<std::vector<double>> acc(nd, std::vector<double>(nd, 0.0));
  for (std::size_t i = 0; i < nd; ++i) {
    Rng train_rng = root.fork(1000 + i);
    Dataset train = build_device_dataset(devices[i], per_class_train, scenes,
                                         capture, train_rng);
    Rng model_rng = root.fork(2000);  // same init for every train device
    ModelSpec spec;
    auto model = make_model(spec, model_rng);
    LocalTrainConfig cfg = paper_local_config();
    Rng epoch_rng = root.fork(3000 + i);
    train_epochs(*model, train, epochs, cfg, epoch_rng);
    for (std::size_t j = 0; j < nd; ++j) {
      acc[i][j] = evaluate_accuracy(*model, tests[j]);
    }
    std::fprintf(stderr, "[table2] %-9s trained: self-acc %.1f%% (%.1fs)\n",
                 devices[i].name.c_str(), acc[i][i] * 100.0,
                 timer.elapsed_s());
  }

  // Render the degradation matrix.
  std::vector<std::string> header = {"Train on"};
  for (const auto& d : devices) header.push_back(d.name);
  header.push_back("MeanOthers");
  Table table(header);
  std::vector<double> col_sum(nd, 0.0);
  for (std::size_t i = 0; i < nd; ++i) {
    std::vector<std::string> row = {devices[i].name};
    double row_sum = 0.0;
    for (std::size_t j = 0; j < nd; ++j) {
      const double deg = degradation(acc[i][i], acc[i][j]);
      if (i == j) {
        row.push_back("-");
      } else {
        row.push_back(Table::pct(deg));
        row_sum += deg;
        col_sum[j] += deg;
      }
    }
    row.push_back(Table::pct(row_sum / static_cast<double>(nd - 1)));
    table.add_row(std::move(row));
  }
  std::vector<std::string> mean_row = {"MeanOthers"};
  double grand = 0.0;
  for (std::size_t j = 0; j < nd; ++j) {
    const double m = col_sum[j] / static_cast<double>(nd - 1);
    mean_row.push_back(Table::pct(m));
    grand += m;
  }
  mean_row.push_back(Table::pct(grand / static_cast<double>(nd)));
  table.add_row(std::move(mean_row));

  finish(table, "table2_cross_device");
  std::printf(
      "\nPaper shape: diagonal best; Pixel5<->Pixel2 smallest degradation; "
      "S22 hardest target column; grand mean ~19%%.\n");
  return 0;
}
