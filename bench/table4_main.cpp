// Table 4: the headline evaluation — HeteroSwitch and its ablations against
// FedAvg, q-FedAvg, FedProx and SCAFFOLD on the market-share population.
//
// Metrics (Section 6): DG = worst-case accuracy across device types;
// Fairness = population variance of per-device accuracy and average
// accuracy. Paper hyperparameters: N=100, K=20, B=10, E=1, lr=0.1,
// q=1e-6 (q-FedAvg), mu=0.1 (FedProx), alpha=0.9, WB degree 0.001,
// gamma degree 0.9.
#include "bench_common.h"
#include "hetero/heteroswitch.h"

using namespace hetero;
using namespace hetero::bench;

int main() {
  const Scale scale;
  print_header("Table 4", "HeteroSwitch vs baselines: fairness and DG",
               scale);

  const std::size_t n_clients = static_cast<std::size_t>(scale.n(30, 100));
  const std::size_t k = static_cast<std::size_t>(scale.n(8, 20));
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(80, 1000));
  const std::size_t samples = static_cast<std::size_t>(scale.n(20, 40));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  PopulationConfig pcfg;
  pcfg.num_clients = n_clients;
  pcfg.samples_per_client = samples;
  pcfg.test_per_class = static_cast<std::size_t>(scale.n(5, 12));
  pcfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures
  Rng pop_rng = root.fork(1);
  const FlPopulation pop = build_population(paper_devices(), pcfg, scenes,
                                            pop_rng);
  std::fprintf(stderr, "[table4] population: %zu clients (%.1fs)\n",
               pop.client_train.size(), timer.elapsed_s());

  const LocalTrainConfig local = paper_local_config();

  // The seven rows of Table 4.
  std::vector<std::unique_ptr<FederatedAlgorithm>> methods;
  methods.push_back(std::make_unique<FedAvg>(local));
  {
    HeteroSwitchOptions opt;
    opt.mode = HeteroSwitchMode::kAlwaysIsp;
    methods.push_back(std::make_unique<HeteroSwitch>(local, opt));
  }
  {
    HeteroSwitchOptions opt;
    opt.mode = HeteroSwitchMode::kAlwaysIspSwad;
    methods.push_back(std::make_unique<HeteroSwitch>(local, opt));
  }
  methods.push_back(
      std::make_unique<HeteroSwitch>(local, HeteroSwitchOptions{}));
  methods.push_back(std::make_unique<QFedAvg>(local, 1e-6));
  methods.push_back(std::make_unique<FedProx>(local, 0.1f));
  methods.push_back(std::make_unique<Scaffold>(local));

  // HS_REPEATS > 1 averages every metric over that many seeds (model init
  // and client sampling both vary; the population stays fixed).
  const std::size_t repeats = std::max<std::size_t>(
      scale.repeats(), scale.paper_scale() ? 1 : 3);
  Table table({"Method", "DG worst-case Acc", "Fairness Variance",
               "Fairness avg Acc"});
  for (auto& method : methods) {
    RunningStats worst, var, avg;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      ModelSpec spec;
      Rng model_rng = root.fork(2 + rep);  // same init across methods per rep
      auto model = make_model(spec, model_rng);
      SimulationConfig sim;
      sim.rounds = rounds;
      sim.clients_per_round = k;
      sim.seed = scale.seed() + 7 + rep * 101;
      sim.num_threads = scale.threads();
      sim.observer = trace_sink().run("table4." + method->name());
      const SimulationResult r = run_simulation(*model, *method, pop, sim);
      worst.add(r.final_metrics.worst_case);
      var.add(r.final_metrics.variance);
      avg.add(r.final_metrics.average);
    }
    table.add_row({method->name(), Table::fmt(worst.mean() * 100, 2),
                   Table::fmt(var.mean() * 100 * 100, 2),
                   Table::fmt(avg.mean() * 100, 2)});
    std::fprintf(stderr,
                 "[table4] %-18s worst %.2f var %.2f avg %.2f (%.1fs)\n",
                 method->name().c_str(), worst.mean() * 100,
                 var.mean() * 1e4, avg.mean() * 100, timer.elapsed_s());
  }
  finish(table, "table4_main");
  std::printf(
      "\nPaper shape: HeteroSwitch best on all three columns (worst-case "
      "+5.8%%, variance -79.5%%, avg +5.3%% over FedAvg); always-on "
      "ISP+SWAD trails selective switching; q-FedAvg/Scaffold lose "
      "worst-case accuracy.\n");
  return 0;
}
