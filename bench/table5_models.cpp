// Table 5: FedAvg vs HeteroSwitch across the three mobile CNN families
// (MobileNetV3-small, ShuffleNetV2-x0.5, SqueezeNet-1.1 — here their
// laptop-scale mini versions).
#include "bench_common.h"
#include "hetero/heteroswitch.h"

using namespace hetero;
using namespace hetero::bench;

int main() {
  const Scale scale;
  print_header("Table 5", "model architectures x {FedAvg, HeteroSwitch}",
               scale);

  const std::size_t n_clients = static_cast<std::size_t>(scale.n(30, 100));
  const std::size_t k = static_cast<std::size_t>(scale.n(8, 20));
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(60, 1000));
  const std::size_t samples = static_cast<std::size_t>(scale.n(20, 40));

  SceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  PopulationConfig pcfg;
  pcfg.num_clients = n_clients;
  pcfg.samples_per_client = samples;
  pcfg.test_per_class = static_cast<std::size_t>(scale.n(5, 12));
  pcfg.capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed-population captures
  Rng pop_rng = root.fork(1);
  const FlPopulation pop = build_population(paper_devices(), pcfg, scenes,
                                            pop_rng);

  const LocalTrainConfig local = paper_local_config();
  const std::vector<std::string> archs = {"mobile-mini", "shuffle-mini",
                                          "squeeze-mini"};

  Table table({"Model", "Method", "DG worst-case Acc", "Fairness Variance",
               "Fairness avg Acc"});
  for (const auto& arch : archs) {
    for (int use_hs : {0, 1}) {
      ModelSpec spec;
      spec.arch = arch;
      Rng model_rng = root.fork(2);
      auto model = make_model(spec, model_rng);
      std::unique_ptr<FederatedAlgorithm> method;
      if (use_hs) {
        method = std::make_unique<HeteroSwitch>(local, HeteroSwitchOptions{});
      } else {
        method = std::make_unique<FedAvg>(local);
      }
      SimulationConfig sim;
      sim.rounds = rounds;
      sim.clients_per_round = k;
      sim.seed = scale.seed() + 7;
      sim.num_threads = scale.threads();
      sim.observer = trace_sink().run(arch + "." + method->name());
      const SimulationResult r = run_simulation(*model, *method, pop, sim);
      const DeviceMetrics& m = r.final_metrics;
      table.add_row({arch, method->name(), Table::fmt(m.worst_case * 100, 2),
                     Table::fmt(m.variance * 1e4, 2),
                     Table::fmt(m.average * 100, 2)});
      std::fprintf(stderr,
                   "[table5] %-12s %-12s worst %.2f avg %.2f (%.1fs)\n",
                   arch.c_str(), method->name().c_str(), m.worst_case * 100,
                   m.average * 100, timer.elapsed_s());
    }
  }
  finish(table, "table5_models");
  std::printf(
      "\nPaper shape: HeteroSwitch improves worst-case accuracy for every "
      "architecture; squeeze (no batch norm) is fragile under FedAvg and "
      "benefits most.\n");
  return 0;
}
