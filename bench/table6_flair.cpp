// Table 6: evaluation on the FLAIR-style realistic population — multi-label
// classification, long-tailed device distribution (the synthetic stand-in
// for FLAIR's >1000 device types), per-device-type averaged precision.
#include "bench_common.h"
#include "hetero/heteroswitch.h"

using namespace hetero;
using namespace hetero::bench;

int main() {
  const Scale scale;
  print_header("Table 6", "FLAIR-style multi-label, long-tail devices",
               scale);

  const std::size_t n_devices = static_cast<std::size_t>(scale.n(15, 60));
  const std::size_t n_clients = static_cast<std::size_t>(scale.n(30, 120));
  const std::size_t k = static_cast<std::size_t>(scale.n(8, 20));
  const std::size_t rounds = static_cast<std::size_t>(scale.rounds(40, 500));
  const std::size_t samples = static_cast<std::size_t>(scale.n(16, 32));
  const std::size_t test_per_device =
      static_cast<std::size_t>(scale.n(20, 60));

  FlairSceneGenerator scenes(64);
  Rng root(scale.seed());
  Timer timer;

  Rng dev_rng = root.fork(1);
  const auto devices = long_tail_population(n_devices, dev_rng);
  CaptureConfig capture;
  capture.illuminant_sigma_override = -1.0f;  // in-the-wild captures
  capture.tensor_size = static_cast<std::size_t>(scale.n(16, 32));
  Rng pop_rng = root.fork(2);
  const FlPopulation pop = build_flair_population(
      devices, n_clients, samples, test_per_device, capture, scenes, pop_rng);
  std::fprintf(stderr, "[table6] %zu devices, %zu clients (%.1fs)\n",
               devices.size(), pop.client_train.size(), timer.elapsed_s());

  const LocalTrainConfig local = paper_local_config();
  std::vector<std::unique_ptr<FederatedAlgorithm>> methods;
  methods.push_back(std::make_unique<FedAvg>(local));
  methods.push_back(
      std::make_unique<HeteroSwitch>(local, HeteroSwitchOptions{}));
  methods.push_back(std::make_unique<QFedAvg>(local, 1e-6));
  methods.push_back(std::make_unique<FedProx>(local, 0.1f));

  Table table({"Method", "Averaged Precision", "Variance"});
  for (auto& method : methods) {
    ModelSpec spec;
    spec.num_classes = FlairSceneGenerator::kNumLabels;
    Rng model_rng = root.fork(3);
    auto model = make_model(spec, model_rng);
    SimulationConfig sim;
    sim.rounds = rounds;
    sim.clients_per_round = k;
    sim.seed = scale.seed() + 9;
    sim.num_threads = scale.threads();
    sim.observer = trace_sink().run("table6." + method->name());
    const SimulationResult r = run_simulation(*model, *method, pop, sim);
    const DeviceMetrics& m = r.final_metrics;
    table.add_row({method->name(), Table::fmt(m.average * 100, 2),
                   Table::fmt(m.variance * 1e4, 2)});
    std::fprintf(stderr, "[table6] %-14s AP %.2f var %.2f (%.1fs)\n",
                 method->name().c_str(), m.average * 100, m.variance * 1e4,
                 timer.elapsed_s());
  }
  finish(table, "table6_flair");
  std::printf(
      "\nPaper shape: HeteroSwitch lowers cross-device AP variance (paper: "
      "-6.3%%) without sacrificing AP; FedProx degrades both.\n");
  return 0;
}
