file(REMOVE_RECURSE
  "CMakeFiles/ablation_heteroswitch.dir/bench/ablation_heteroswitch.cpp.o"
  "CMakeFiles/ablation_heteroswitch.dir/bench/ablation_heteroswitch.cpp.o.d"
  "bench/ablation_heteroswitch"
  "bench/ablation_heteroswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heteroswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
