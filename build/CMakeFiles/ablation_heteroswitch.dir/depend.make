# Empty dependencies file for ablation_heteroswitch.
# This may be replaced when dependencies are built.
