file(REMOVE_RECURSE
  "CMakeFiles/fig1_homo_vs_hetero.dir/bench/fig1_homo_vs_hetero.cpp.o"
  "CMakeFiles/fig1_homo_vs_hetero.dir/bench/fig1_homo_vs_hetero.cpp.o.d"
  "bench/fig1_homo_vs_hetero"
  "bench/fig1_homo_vs_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_homo_vs_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
