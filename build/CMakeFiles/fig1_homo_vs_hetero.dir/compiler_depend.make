# Empty compiler generated dependencies file for fig1_homo_vs_hetero.
# This may be replaced when dependencies are built.
