file(REMOVE_RECURSE
  "CMakeFiles/fig2_raw.dir/bench/fig2_raw.cpp.o"
  "CMakeFiles/fig2_raw.dir/bench/fig2_raw.cpp.o.d"
  "bench/fig2_raw"
  "bench/fig2_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
