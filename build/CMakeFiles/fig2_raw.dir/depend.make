# Empty dependencies file for fig2_raw.
# This may be replaced when dependencies are built.
