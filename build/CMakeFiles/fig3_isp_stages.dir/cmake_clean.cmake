file(REMOVE_RECURSE
  "CMakeFiles/fig3_isp_stages.dir/bench/fig3_isp_stages.cpp.o"
  "CMakeFiles/fig3_isp_stages.dir/bench/fig3_isp_stages.cpp.o.d"
  "bench/fig3_isp_stages"
  "bench/fig3_isp_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_isp_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
