# Empty compiler generated dependencies file for fig3_isp_stages.
# This may be replaced when dependencies are built.
