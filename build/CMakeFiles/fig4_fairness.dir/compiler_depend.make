# Empty compiler generated dependencies file for fig4_fairness.
# This may be replaced when dependencies are built.
