file(REMOVE_RECURSE
  "CMakeFiles/fig5_dg.dir/bench/fig5_dg.cpp.o"
  "CMakeFiles/fig5_dg.dir/bench/fig5_dg.cpp.o.d"
  "bench/fig5_dg"
  "bench/fig5_dg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
