# Empty compiler generated dependencies file for fig5_dg.
# This may be replaced when dependencies are built.
