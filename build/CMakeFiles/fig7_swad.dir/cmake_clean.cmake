file(REMOVE_RECURSE
  "CMakeFiles/fig7_swad.dir/bench/fig7_swad.cpp.o"
  "CMakeFiles/fig7_swad.dir/bench/fig7_swad.cpp.o.d"
  "bench/fig7_swad"
  "bench/fig7_swad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_swad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
