# Empty compiler generated dependencies file for fig7_swad.
# This may be replaced when dependencies are built.
