file(REMOVE_RECURSE
  "CMakeFiles/micro_isp.dir/bench/micro_isp.cpp.o"
  "CMakeFiles/micro_isp.dir/bench/micro_isp.cpp.o.d"
  "bench/micro_isp"
  "bench/micro_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
