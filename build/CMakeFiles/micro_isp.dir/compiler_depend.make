# Empty compiler generated dependencies file for micro_isp.
# This may be replaced when dependencies are built.
