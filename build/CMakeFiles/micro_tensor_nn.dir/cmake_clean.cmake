file(REMOVE_RECURSE
  "CMakeFiles/micro_tensor_nn.dir/bench/micro_tensor_nn.cpp.o"
  "CMakeFiles/micro_tensor_nn.dir/bench/micro_tensor_nn.cpp.o.d"
  "bench/micro_tensor_nn"
  "bench/micro_tensor_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tensor_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
