# Empty dependencies file for micro_tensor_nn.
# This may be replaced when dependencies are built.
