file(REMOVE_RECURSE
  "CMakeFiles/table2_cross_device.dir/bench/table2_cross_device.cpp.o"
  "CMakeFiles/table2_cross_device.dir/bench/table2_cross_device.cpp.o.d"
  "bench/table2_cross_device"
  "bench/table2_cross_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cross_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
