file(REMOVE_RECURSE
  "CMakeFiles/table4_main.dir/bench/table4_main.cpp.o"
  "CMakeFiles/table4_main.dir/bench/table4_main.cpp.o.d"
  "bench/table4_main"
  "bench/table4_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
