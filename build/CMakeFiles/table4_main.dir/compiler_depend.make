# Empty compiler generated dependencies file for table4_main.
# This may be replaced when dependencies are built.
