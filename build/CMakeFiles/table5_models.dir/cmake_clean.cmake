file(REMOVE_RECURSE
  "CMakeFiles/table5_models.dir/bench/table5_models.cpp.o"
  "CMakeFiles/table5_models.dir/bench/table5_models.cpp.o.d"
  "bench/table5_models"
  "bench/table5_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
