file(REMOVE_RECURSE
  "CMakeFiles/table6_flair.dir/bench/table6_flair.cpp.o"
  "CMakeFiles/table6_flair.dir/bench/table6_flair.cpp.o.d"
  "bench/table6_flair"
  "bench/table6_flair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_flair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
