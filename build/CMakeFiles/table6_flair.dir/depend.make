# Empty dependencies file for table6_flair.
# This may be replaced when dependencies are built.
