file(REMOVE_RECURSE
  "CMakeFiles/federated_characterization.dir/federated_characterization.cpp.o"
  "CMakeFiles/federated_characterization.dir/federated_characterization.cpp.o.d"
  "federated_characterization"
  "federated_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
