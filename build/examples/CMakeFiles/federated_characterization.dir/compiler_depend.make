# Empty compiler generated dependencies file for federated_characterization.
# This may be replaced when dependencies are built.
