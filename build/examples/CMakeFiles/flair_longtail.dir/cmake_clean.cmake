file(REMOVE_RECURSE
  "CMakeFiles/flair_longtail.dir/flair_longtail.cpp.o"
  "CMakeFiles/flair_longtail.dir/flair_longtail.cpp.o.d"
  "flair_longtail"
  "flair_longtail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flair_longtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
