# Empty compiler generated dependencies file for flair_longtail.
# This may be replaced when dependencies are built.
