# Empty dependencies file for flair_longtail.
# This may be replaced when dependencies are built.
