file(REMOVE_RECURSE
  "CMakeFiles/heteroswitch_fl.dir/heteroswitch_fl.cpp.o"
  "CMakeFiles/heteroswitch_fl.dir/heteroswitch_fl.cpp.o.d"
  "heteroswitch_fl"
  "heteroswitch_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteroswitch_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
