# Empty compiler generated dependencies file for heteroswitch_fl.
# This may be replaced when dependencies are built.
