file(REMOVE_RECURSE
  "CMakeFiles/isp_playground.dir/isp_playground.cpp.o"
  "CMakeFiles/isp_playground.dir/isp_playground.cpp.o.d"
  "isp_playground"
  "isp_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
