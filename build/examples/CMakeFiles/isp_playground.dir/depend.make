# Empty dependencies file for isp_playground.
# This may be replaced when dependencies are built.
