file(REMOVE_RECURSE
  "CMakeFiles/privacy_and_signatures.dir/privacy_and_signatures.cpp.o"
  "CMakeFiles/privacy_and_signatures.dir/privacy_and_signatures.cpp.o.d"
  "privacy_and_signatures"
  "privacy_and_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_and_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
