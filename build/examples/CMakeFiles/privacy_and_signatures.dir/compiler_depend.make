# Empty compiler generated dependencies file for privacy_and_signatures.
# This may be replaced when dependencies are built.
