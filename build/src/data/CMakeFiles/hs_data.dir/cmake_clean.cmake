file(REMOVE_RECURSE
  "CMakeFiles/hs_data.dir/builder.cpp.o"
  "CMakeFiles/hs_data.dir/builder.cpp.o.d"
  "CMakeFiles/hs_data.dir/dataset.cpp.o"
  "CMakeFiles/hs_data.dir/dataset.cpp.o.d"
  "libhs_data.a"
  "libhs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
