file(REMOVE_RECURSE
  "CMakeFiles/hs_device.dir/device_profile.cpp.o"
  "CMakeFiles/hs_device.dir/device_profile.cpp.o.d"
  "libhs_device.a"
  "libhs_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
