file(REMOVE_RECURSE
  "libhs_device.a"
)
