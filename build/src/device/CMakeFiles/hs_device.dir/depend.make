# Empty dependencies file for hs_device.
# This may be replaced when dependencies are built.
