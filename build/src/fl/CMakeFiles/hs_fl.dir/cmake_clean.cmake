file(REMOVE_RECURSE
  "CMakeFiles/hs_fl.dir/algorithm.cpp.o"
  "CMakeFiles/hs_fl.dir/algorithm.cpp.o.d"
  "CMakeFiles/hs_fl.dir/compression.cpp.o"
  "CMakeFiles/hs_fl.dir/compression.cpp.o.d"
  "CMakeFiles/hs_fl.dir/eval.cpp.o"
  "CMakeFiles/hs_fl.dir/eval.cpp.o.d"
  "CMakeFiles/hs_fl.dir/population.cpp.o"
  "CMakeFiles/hs_fl.dir/population.cpp.o.d"
  "CMakeFiles/hs_fl.dir/privacy.cpp.o"
  "CMakeFiles/hs_fl.dir/privacy.cpp.o.d"
  "CMakeFiles/hs_fl.dir/simulation.cpp.o"
  "CMakeFiles/hs_fl.dir/simulation.cpp.o.d"
  "CMakeFiles/hs_fl.dir/trainer.cpp.o"
  "CMakeFiles/hs_fl.dir/trainer.cpp.o.d"
  "libhs_fl.a"
  "libhs_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
