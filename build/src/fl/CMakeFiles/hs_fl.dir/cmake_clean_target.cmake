file(REMOVE_RECURSE
  "libhs_fl.a"
)
