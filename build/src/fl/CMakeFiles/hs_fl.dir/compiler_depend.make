# Empty compiler generated dependencies file for hs_fl.
# This may be replaced when dependencies are built.
