file(REMOVE_RECURSE
  "CMakeFiles/hs_hetero.dir/hetero_metrics.cpp.o"
  "CMakeFiles/hs_hetero.dir/hetero_metrics.cpp.o.d"
  "CMakeFiles/hs_hetero.dir/heteroswitch.cpp.o"
  "CMakeFiles/hs_hetero.dir/heteroswitch.cpp.o.d"
  "CMakeFiles/hs_hetero.dir/swad.cpp.o"
  "CMakeFiles/hs_hetero.dir/swad.cpp.o.d"
  "CMakeFiles/hs_hetero.dir/transforms.cpp.o"
  "CMakeFiles/hs_hetero.dir/transforms.cpp.o.d"
  "libhs_hetero.a"
  "libhs_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
