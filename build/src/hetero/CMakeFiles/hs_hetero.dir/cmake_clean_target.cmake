file(REMOVE_RECURSE
  "libhs_hetero.a"
)
