# Empty dependencies file for hs_hetero.
# This may be replaced when dependencies are built.
