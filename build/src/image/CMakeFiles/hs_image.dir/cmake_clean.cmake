file(REMOVE_RECURSE
  "CMakeFiles/hs_image.dir/color.cpp.o"
  "CMakeFiles/hs_image.dir/color.cpp.o.d"
  "CMakeFiles/hs_image.dir/image.cpp.o"
  "CMakeFiles/hs_image.dir/image.cpp.o.d"
  "CMakeFiles/hs_image.dir/ppm.cpp.o"
  "CMakeFiles/hs_image.dir/ppm.cpp.o.d"
  "CMakeFiles/hs_image.dir/raw_image.cpp.o"
  "CMakeFiles/hs_image.dir/raw_image.cpp.o.d"
  "libhs_image.a"
  "libhs_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
