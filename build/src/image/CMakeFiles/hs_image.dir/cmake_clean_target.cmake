file(REMOVE_RECURSE
  "libhs_image.a"
)
