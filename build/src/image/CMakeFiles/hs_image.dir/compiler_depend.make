# Empty compiler generated dependencies file for hs_image.
# This may be replaced when dependencies are built.
