
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isp/compress.cpp" "src/isp/CMakeFiles/hs_isp.dir/compress.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/compress.cpp.o.d"
  "/root/repo/src/isp/demosaic.cpp" "src/isp/CMakeFiles/hs_isp.dir/demosaic.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/demosaic.cpp.o.d"
  "/root/repo/src/isp/denoise.cpp" "src/isp/CMakeFiles/hs_isp.dir/denoise.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/denoise.cpp.o.d"
  "/root/repo/src/isp/gamut.cpp" "src/isp/CMakeFiles/hs_isp.dir/gamut.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/gamut.cpp.o.d"
  "/root/repo/src/isp/pipeline.cpp" "src/isp/CMakeFiles/hs_isp.dir/pipeline.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/pipeline.cpp.o.d"
  "/root/repo/src/isp/sensor.cpp" "src/isp/CMakeFiles/hs_isp.dir/sensor.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/sensor.cpp.o.d"
  "/root/repo/src/isp/tone.cpp" "src/isp/CMakeFiles/hs_isp.dir/tone.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/tone.cpp.o.d"
  "/root/repo/src/isp/white_balance.cpp" "src/isp/CMakeFiles/hs_isp.dir/white_balance.cpp.o" "gcc" "src/isp/CMakeFiles/hs_isp.dir/white_balance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/hs_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hs_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
