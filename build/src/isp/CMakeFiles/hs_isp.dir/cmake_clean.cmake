file(REMOVE_RECURSE
  "CMakeFiles/hs_isp.dir/compress.cpp.o"
  "CMakeFiles/hs_isp.dir/compress.cpp.o.d"
  "CMakeFiles/hs_isp.dir/demosaic.cpp.o"
  "CMakeFiles/hs_isp.dir/demosaic.cpp.o.d"
  "CMakeFiles/hs_isp.dir/denoise.cpp.o"
  "CMakeFiles/hs_isp.dir/denoise.cpp.o.d"
  "CMakeFiles/hs_isp.dir/gamut.cpp.o"
  "CMakeFiles/hs_isp.dir/gamut.cpp.o.d"
  "CMakeFiles/hs_isp.dir/pipeline.cpp.o"
  "CMakeFiles/hs_isp.dir/pipeline.cpp.o.d"
  "CMakeFiles/hs_isp.dir/sensor.cpp.o"
  "CMakeFiles/hs_isp.dir/sensor.cpp.o.d"
  "CMakeFiles/hs_isp.dir/tone.cpp.o"
  "CMakeFiles/hs_isp.dir/tone.cpp.o.d"
  "CMakeFiles/hs_isp.dir/white_balance.cpp.o"
  "CMakeFiles/hs_isp.dir/white_balance.cpp.o.d"
  "libhs_isp.a"
  "libhs_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
