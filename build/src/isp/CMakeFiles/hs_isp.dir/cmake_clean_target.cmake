file(REMOVE_RECURSE
  "libhs_isp.a"
)
