# Empty dependencies file for hs_isp.
# This may be replaced when dependencies are built.
