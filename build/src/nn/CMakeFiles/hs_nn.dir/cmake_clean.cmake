file(REMOVE_RECURSE
  "CMakeFiles/hs_nn.dir/activations.cpp.o"
  "CMakeFiles/hs_nn.dir/activations.cpp.o.d"
  "CMakeFiles/hs_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/hs_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/hs_nn.dir/blocks.cpp.o"
  "CMakeFiles/hs_nn.dir/blocks.cpp.o.d"
  "CMakeFiles/hs_nn.dir/conv2d.cpp.o"
  "CMakeFiles/hs_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/hs_nn.dir/layer.cpp.o"
  "CMakeFiles/hs_nn.dir/layer.cpp.o.d"
  "CMakeFiles/hs_nn.dir/linear.cpp.o"
  "CMakeFiles/hs_nn.dir/linear.cpp.o.d"
  "CMakeFiles/hs_nn.dir/loss.cpp.o"
  "CMakeFiles/hs_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hs_nn.dir/model.cpp.o"
  "CMakeFiles/hs_nn.dir/model.cpp.o.d"
  "CMakeFiles/hs_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/hs_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/hs_nn.dir/optimizer.cpp.o"
  "CMakeFiles/hs_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/hs_nn.dir/pooling.cpp.o"
  "CMakeFiles/hs_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/hs_nn.dir/sequential.cpp.o"
  "CMakeFiles/hs_nn.dir/sequential.cpp.o.d"
  "libhs_nn.a"
  "libhs_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
