file(REMOVE_RECURSE
  "libhs_nn.a"
)
