# Empty dependencies file for hs_nn.
# This may be replaced when dependencies are built.
