
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/flair_gen.cpp" "src/scene/CMakeFiles/hs_scene.dir/flair_gen.cpp.o" "gcc" "src/scene/CMakeFiles/hs_scene.dir/flair_gen.cpp.o.d"
  "/root/repo/src/scene/scene_gen.cpp" "src/scene/CMakeFiles/hs_scene.dir/scene_gen.cpp.o" "gcc" "src/scene/CMakeFiles/hs_scene.dir/scene_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/hs_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hs_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
