file(REMOVE_RECURSE
  "CMakeFiles/hs_scene.dir/flair_gen.cpp.o"
  "CMakeFiles/hs_scene.dir/flair_gen.cpp.o.d"
  "CMakeFiles/hs_scene.dir/scene_gen.cpp.o"
  "CMakeFiles/hs_scene.dir/scene_gen.cpp.o.d"
  "libhs_scene.a"
  "libhs_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
