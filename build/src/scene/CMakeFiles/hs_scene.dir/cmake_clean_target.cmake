file(REMOVE_RECURSE
  "libhs_scene.a"
)
