# Empty compiler generated dependencies file for hs_scene.
# This may be replaced when dependencies are built.
