file(REMOVE_RECURSE
  "CMakeFiles/hs_tensor.dir/serialize.cpp.o"
  "CMakeFiles/hs_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/hs_tensor.dir/tensor.cpp.o"
  "CMakeFiles/hs_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/hs_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/hs_tensor.dir/tensor_ops.cpp.o.d"
  "libhs_tensor.a"
  "libhs_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
