file(REMOVE_RECURSE
  "libhs_tensor.a"
)
