# Empty compiler generated dependencies file for hs_tensor.
# This may be replaced when dependencies are built.
