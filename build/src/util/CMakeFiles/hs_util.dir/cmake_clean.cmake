file(REMOVE_RECURSE
  "CMakeFiles/hs_util.dir/config.cpp.o"
  "CMakeFiles/hs_util.dir/config.cpp.o.d"
  "CMakeFiles/hs_util.dir/logging.cpp.o"
  "CMakeFiles/hs_util.dir/logging.cpp.o.d"
  "CMakeFiles/hs_util.dir/rng.cpp.o"
  "CMakeFiles/hs_util.dir/rng.cpp.o.d"
  "CMakeFiles/hs_util.dir/stats.cpp.o"
  "CMakeFiles/hs_util.dir/stats.cpp.o.d"
  "CMakeFiles/hs_util.dir/table.cpp.o"
  "CMakeFiles/hs_util.dir/table.cpp.o.d"
  "libhs_util.a"
  "libhs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
