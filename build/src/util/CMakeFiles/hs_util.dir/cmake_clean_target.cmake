file(REMOVE_RECURSE
  "libhs_util.a"
)
