# Empty compiler generated dependencies file for hs_util.
# This may be replaced when dependencies are built.
