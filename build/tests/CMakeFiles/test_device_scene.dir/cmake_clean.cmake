file(REMOVE_RECURSE
  "CMakeFiles/test_device_scene.dir/test_device_scene.cpp.o"
  "CMakeFiles/test_device_scene.dir/test_device_scene.cpp.o.d"
  "test_device_scene"
  "test_device_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
