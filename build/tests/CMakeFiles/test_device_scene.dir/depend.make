# Empty dependencies file for test_device_scene.
# This may be replaced when dependencies are built.
