
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_isp.cpp" "tests/CMakeFiles/test_isp.dir/test_isp.cpp.o" "gcc" "tests/CMakeFiles/test_isp.dir/test_isp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hetero/CMakeFiles/hs_hetero.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/hs_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/hs_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/hs_device.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/hs_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/hs_image.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
