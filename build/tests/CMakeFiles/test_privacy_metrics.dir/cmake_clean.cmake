file(REMOVE_RECURSE
  "CMakeFiles/test_privacy_metrics.dir/test_privacy_metrics.cpp.o"
  "CMakeFiles/test_privacy_metrics.dir/test_privacy_metrics.cpp.o.d"
  "test_privacy_metrics"
  "test_privacy_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_privacy_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
