# Empty compiler generated dependencies file for test_privacy_metrics.
# This may be replaced when dependencies are built.
