file(REMOVE_RECURSE
  "CMakeFiles/hsctl.dir/hsctl.cpp.o"
  "CMakeFiles/hsctl.dir/hsctl.cpp.o.d"
  "hsctl"
  "hsctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
