# Empty dependencies file for hsctl.
# This may be replaced when dependencies are built.
