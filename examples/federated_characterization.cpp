// Example: characterizing system-induced data heterogeneity, end to end.
//
// This walks the paper's Section 3 story on a small budget:
//   1. capture the same scenes with every device in the Table 1 registry;
//   2. visualize how the *image statistics* drift per device (channel
//      means, contrast) — the raw material of heterogeneity;
//   3. train one model per vendor tier and print a mini cross-device
//      degradation matrix.
//
// Run time: ~20 s. For the full 9x9 matrix use bench/table2_cross_device.
#include <cmath>
#include <cstdio>

#include "data/builder.h"
#include "device/device_profile.h"
#include "fl/eval.h"
#include "fl/trainer.h"
#include "nn/model_zoo.h"
#include "scene/scene_gen.h"
#include "util/rng.h"

using namespace hetero;

int main() {
  Rng rng(11);
  SceneGenerator scenes(64);
  CaptureConfig capture;

  // ---- 1+2: per-device image statistics on identical scenes -------------
  std::printf("Image statistics per device (same scenes, different HW/SW):\n");
  std::printf("%-10s %5s %7s %7s %7s %9s\n", "device", "tier", "meanR",
              "meanG", "meanB", "contrast");
  for (const auto& dev : paper_devices()) {
    Rng stream = rng.fork(1);  // identical scene + capture stream
    double mean_c[3] = {0, 0, 0};
    double mean_sq = 0.0, mean_all = 0.0;
    const int samples = 24;
    for (int i = 0; i < samples; ++i) {
      const Image scene = scenes.generate(static_cast<std::size_t>(i % 12),
                                          stream);
      Tensor t = capture_to_tensor(scene, dev, capture, stream);
      const std::size_t plane = t.dim(1) * t.dim(2);
      for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t j = 0; j < plane; ++j) {
          const float v = t[c * plane + j];
          mean_c[c] += v;
          mean_all += v;
          mean_sq += static_cast<double>(v) * v;
        }
      }
    }
    const double n = samples * 3.0 * 32 * 32;
    for (double& m : mean_c) m /= n / 3.0;
    mean_all /= n;
    mean_sq /= n;
    const double contrast = std::sqrt(
        std::max(0.0, mean_sq - mean_all * mean_all));
    std::printf("%-10s %5c %7.3f %7.3f %7.3f %9.3f\n", dev.name.c_str(),
                dev.tier, mean_c[0], mean_c[1], mean_c[2], contrast);
  }

  // ---- 3: mini cross-device degradation matrix (one device per vendor) --
  const std::vector<std::string> picks = {"Pixel5", "G7", "GalaxyS6"};
  std::printf("\nTraining one model per device: %s\n",
              "(12-class scenes, mobile-mini)");
  std::vector<Dataset> tests;
  for (const auto& name : picks) {
    Rng test_rng = rng.fork(500);
    tests.push_back(build_device_dataset(device_by_name(name), 4, scenes,
                                         capture, test_rng));
  }
  std::printf("\n%-10s", "train\\test");
  for (const auto& name : picks) std::printf(" %10s", name.c_str());
  std::printf("\n");
  for (const auto& train_name : picks) {
    Rng train_rng = rng.fork(100 + device_index(train_name));
    Dataset train = build_device_dataset(device_by_name(train_name), 10,
                                         scenes, capture, train_rng);
    ModelSpec spec;
    Rng model_rng(7);
    auto model = make_model(spec, model_rng);
    LocalTrainConfig cfg;
    cfg.lr = 0.1f;
    cfg.batch_size = 10;
    Rng epoch_rng = rng.fork(200 + device_index(train_name));
    for (int e = 0; e < 8; ++e) local_train(*model, train, cfg, epoch_rng);
    std::printf("%-10s", train_name.c_str());
    for (std::size_t j = 0; j < picks.size(); ++j) {
      std::printf(" %9.1f%%", evaluate_accuracy(*model, tests[j]) * 100.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: diagonal (train == test device) is highest; off-diagonal "
      "drops are system-induced data heterogeneity.\n");
  return 0;
}
