// Example: FLAIR-style multi-label federated learning over a long-tailed
// device population (the Table 6 scenario at example scale).
//
// Shows: synthesizing a long-tail device population, building per-user
// multi-label datasets with skewed label preferences, training with FedAvg
// and HeteroSwitch, and comparing per-device-type averaged precision.
//
// Run time: ~1 min.
#include <cstdio>

#include "fl/simulation.h"
#include "hetero/heteroswitch.h"
#include "nn/model_zoo.h"
#include "scene/flair_gen.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace hetero;

int main() {
  Rng rng(31);
  FlairSceneGenerator scenes(64);

  // A 12-device long-tail population: the 9 paper devices as the head plus
  // synthesized tail devices with random sensor/ISP mixes.
  Rng dev_rng = rng.fork(1);
  const auto devices = long_tail_population(12, dev_rng);
  std::printf("Device population (share decays exponentially):\n");
  for (const auto& d : devices) {
    std::printf("  %-10s tier %c  share %.2f  isp: %s\n", d.name.c_str(),
                d.tier, d.market_share, d.isp.describe().c_str());
  }

  CaptureConfig capture;
  capture.illuminant_sigma_override = -1.0f;  // in-the-wild captures
  Rng pop_rng = rng.fork(2);
  Timer timer;
  const FlPopulation pop = build_flair_population(
      devices, /*num_clients=*/24, /*samples_per_client=*/14,
      /*test_per_device=*/16, capture, scenes, pop_rng);
  std::printf("\nBuilt %zu user datasets (multi-label, %zu labels) in %.1fs\n",
              pop.client_train.size(), FlairSceneGenerator::kNumLabels,
              timer.elapsed_s());

  LocalTrainConfig local;
  local.lr = 0.1f;
  local.batch_size = 10;
  local.epochs = 1;
  SimulationConfig sim;
  sim.rounds = 10;
  sim.clients_per_round = 6;
  sim.seed = 41;

  ModelSpec spec;
  spec.num_classes = FlairSceneGenerator::kNumLabels;

  for (int use_hs : {0, 1}) {
    Rng model_rng(9);
    auto model = make_model(spec, model_rng);
    std::unique_ptr<FederatedAlgorithm> algo;
    if (use_hs) {
      algo = std::make_unique<HeteroSwitch>(local, HeteroSwitchOptions{});
    } else {
      algo = std::make_unique<FedAvg>(local);
    }
    timer.reset();
    const SimulationResult r = run_simulation(*model, *algo, pop, sim);
    std::printf("\n%s (%.1fs): averaged precision per device type\n",
                algo->name().c_str(), timer.elapsed_s());
    for (std::size_t d = 0; d < pop.device_names.size(); ++d) {
      std::printf("  %-10s AP %.1f%%\n", pop.device_names[d].c_str(),
                  r.final_metrics.per_device[d] * 100.0);
    }
    std::printf("  mean AP %.2f%%  variance %.2f  worst %.2f%%\n",
                r.final_metrics.average * 100.0,
                r.final_metrics.variance * 1e4,
                r.final_metrics.worst_case * 100.0);
  }
  std::printf(
      "\nReading: the paper's Table 6 — HeteroSwitch trims the AP variance "
      "across device types without giving up mean AP.\n");
  return 0;
}
