// Example: running HeteroSwitch in a federated simulation and watching the
// switching behaviour.
//
// Builds a market-share population over the 9 paper devices, runs FedAvg
// and HeteroSwitch side by side from the same initialization, and reports
// the fairness (accuracy variance) and DG (worst-case accuracy) metrics,
// plus HeteroSwitch's internal switch statistics — how often Switch_1
// (bias detected -> transforms + SWAD) and Switch_2 (return the SWAD
// average) fired.
//
// Run time: ~1 min at the default scale.
#include <cstdio>

#include "fl/simulation.h"
#include "hetero/heteroswitch.h"
#include "nn/model_zoo.h"
#include "scene/scene_gen.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace hetero;

namespace {

void report(const char* name, const DeviceMetrics& m,
            const FlPopulation& pop) {
  std::printf("\n%s:\n", name);
  for (std::size_t d = 0; d < pop.device_names.size(); ++d) {
    std::printf("  %-10s %5.1f%%\n", pop.device_names[d].c_str(),
                m.per_device[d] * 100.0);
  }
  std::printf("  average %.2f%%  variance %.2f  worst-case %.2f%%\n",
              m.average * 100.0, m.variance * 1e4, m.worst_case * 100.0);
}

}  // namespace

int main() {
  Rng rng(21);
  SceneGenerator scenes(64);

  PopulationConfig pcfg;
  pcfg.num_clients = 30;
  pcfg.samples_per_client = 20;
  pcfg.test_per_class = 5;
  pcfg.capture.tensor_size = 16;  // FL-sim scale (see DESIGN.md section 6)
  pcfg.capture.illuminant_sigma_override = -1.0f;  // deployed captures
  Rng pop_rng = rng.fork(1);
  std::printf("Building market-share population (N=%zu clients)...\n",
              pcfg.num_clients);
  Timer timer;
  const FlPopulation pop = build_population(paper_devices(), pcfg, scenes,
                                            pop_rng);
  std::printf("  done in %.1fs\n", timer.elapsed_s());

  LocalTrainConfig local;  // the paper's B=10, E=1, lr=0.1
  local.lr = 0.1f;
  local.batch_size = 10;
  local.epochs = 1;

  SimulationConfig sim;
  sim.rounds = 60;
  sim.clients_per_round = 8;
  sim.seed = 99;

  // FedAvg baseline.
  ModelSpec spec;
  Rng model_rng(5);
  auto baseline_model = make_model(spec, model_rng);
  const Tensor init = baseline_model->state();
  FedAvg fedavg(local);
  timer.reset();
  const SimulationResult base = run_simulation(*baseline_model, fedavg, pop,
                                               sim);
  std::printf("FedAvg finished in %.1fs\n", timer.elapsed_s());

  // HeteroSwitch from the identical initialization.
  Rng model_rng2(5);
  auto hs_model = make_model(spec, model_rng2);
  hs_model->set_state(init);
  HeteroSwitch hs(local, HeteroSwitchOptions{});
  timer.reset();
  const SimulationResult ours = run_simulation(*hs_model, hs, pop, sim);
  std::printf("HeteroSwitch finished in %.1fs\n", timer.elapsed_s());

  report("FedAvg", base.final_metrics, pop);
  report("HeteroSwitch", ours.final_metrics, pop);

  std::printf("\nHeteroSwitch internals over %zu client updates:\n",
              hs.client_updates());
  std::printf("  Switch_1 (bias detected -> ISP transform + SWAD): %zu\n",
              hs.switch1_activations());
  std::printf("  Switch_2 (returned SWAD average):                 %zu\n",
              hs.switch2_activations());
  std::printf("  final L_EMA: %.3f\n", hs.ema_loss());

  const double dvar = base.final_metrics.variance > 0
                          ? (base.final_metrics.variance -
                             ours.final_metrics.variance) /
                                base.final_metrics.variance * 100.0
                          : 0.0;
  std::printf("\nVariance reduction vs FedAvg: %.1f%%  (paper: 79.5%% at "
              "full scale)\n", dvar);
  return 0;
}
