// Example: the ISP pipeline as a playground.
//
// Captures one scene with one sensor, then runs every Table 3 stage
// variant and prints how far each output drifts from the baseline — a
// direct, model-free view of what each ISP stage contributes. Also shows
// a RAW capture packed for RAW-domain training (Fig 2) and how the same
// scene looks through all nine device profiles.
//
// Run time: ~2 s.
#include <cstdio>

#include "data/builder.h"
#include "device/device_profile.h"
#include "scene/scene_gen.h"
#include "util/rng.h"

using namespace hetero;

namespace {

void describe_image(const char* tag, const Image& img) {
  const auto m = img.channel_means();
  std::printf("  %-34s meanRGB=(%.3f, %.3f, %.3f)\n", tag, m[0], m[1], m[2]);
}

}  // namespace

int main() {
  Rng rng(3);
  SceneGenerator scenes(64);
  const Image scene = scenes.generate(4, rng);  // an "ambulance" scene
  std::printf("Scene: class '%s', %zux%zu linear radiance\n",
              SceneGenerator::class_name(4), scene.height(), scene.width());
  describe_image("scene radiance", scene);

  // ---- capture with one sensor ------------------------------------------
  const DeviceProfile& device = device_by_name("GalaxyS9");
  const SensorModel sensor = device.sensor_model();
  Rng cap_rng = rng.fork(1);
  const RawImage raw = sensor.capture(scene, cap_rng);
  std::printf("\nRAW capture by %s: %zux%zu Bayer mosaic, %d-bit ADC\n",
              device.name.c_str(), raw.height(), raw.width(),
              sensor.config().bit_depth);
  const Tensor packed = raw.to_packed_tensor();
  std::printf("  packed RAW tensor: %s (planes R, G1, G2, B)\n",
              packed.shape_str().c_str());

  // ---- every ISP stage variant ------------------------------------------
  const IspConfig baseline = IspConfig::baseline(sensor.ccm());
  const Image ref = run_isp(raw, baseline);
  std::printf("\nISP stage variants (drift = mean |pixel delta| vs "
              "baseline):\n");
  describe_image("baseline output", ref);
  for (IspStage stage :
       {IspStage::kDenoise, IspStage::kDemosaic, IspStage::kWhiteBalance,
        IspStage::kGamut, IspStage::kTone, IspStage::kCompress}) {
    for (int option : {1, 2}) {
      const IspConfig cfg = baseline.with_stage_option(stage, option);
      const Image out = run_isp(raw, cfg);
      std::printf("  %-26s opt%d  drift=%.4f\n", isp_stage_name(stage),
                  option, image_mad(ref, out));
    }
  }

  // ---- the same scene through all nine devices ---------------------------
  std::printf("\nSame scene through every device (drift vs %s):\n",
              device.name.c_str());
  CaptureConfig capture;
  Rng shared(77);
  const Tensor ref_t = capture_to_tensor(scene, device, capture, shared);
  for (const auto& dev : paper_devices()) {
    Rng stream(77);  // identical capture randomness per device
    const Tensor t = capture_to_tensor(scene, dev, capture, stream);
    double drift = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      drift += std::abs(t[i] - ref_t[i]);
    }
    std::printf("  %-10s (tier %c, %-7s) drift=%.4f\n", dev.name.c_str(),
                dev.tier, dev.vendor.c_str(),
                drift / static_cast<double>(t.size()));
  }
  std::printf(
      "\nReading: tone/WB variants drift the most — exactly the stages the "
      "paper found dominant (Fig 3); device drift is the per-image view of "
      "Table 2.\n");
  return 0;
}
