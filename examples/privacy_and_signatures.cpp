// Example: the extension features — model-free heterogeneity signatures
// and differentially-private federated averaging.
//
// 1. Compute dataset signatures per device and print the statistics-level
//    heterogeneity matrix (no training needed — a deployment can estimate
//    device drift *before* spending any FL rounds).
// 2. Run FedAvg vs DP-FedAvg at two privacy levels and show the
//    utility/privacy trade-off on the same population.
//
// Run time: ~40 s.
#include <cstdio>

#include "fl/privacy.h"
#include "fl/simulation.h"
#include "hetero/hetero_metrics.h"
#include "nn/model_zoo.h"
#include "scene/scene_gen.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace hetero;

int main() {
  Rng rng(51);
  SceneGenerator scenes(64);

  // ---- 1: signatures --------------------------------------------------
  std::printf("Statistics-level heterogeneity (no model involved):\n");
  CaptureConfig capture;
  std::vector<Dataset> per_device;
  const std::vector<std::string> picks = {"Pixel5", "Pixel2", "Nexus5X",
                                          "GalaxyS22", "GalaxyS6"};
  for (const auto& name : picks) {
    Rng stream(7);  // identical scenes for every device
    per_device.push_back(build_device_dataset(device_by_name(name), 3,
                                              scenes, capture, stream));
  }
  std::vector<const Dataset*> ptrs;
  for (const auto& d : per_device) ptrs.push_back(&d);
  const auto matrix = pairwise_heterogeneity(ptrs);
  std::printf("%-10s", "");
  for (const auto& name : picks) std::printf(" %9s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < picks.size(); ++i) {
    std::printf("%-10s", picks[i].c_str());
    for (std::size_t j = 0; j < picks.size(); ++j) {
      std::printf(" %9.3f", matrix[i][j]);
    }
    std::printf("\n");
  }
  std::printf(
      "  (Pixel5-Pixel2 should be the smallest off-diagonal entry; the\n"
      "   idiosyncratic GalaxyS22 the largest — Table 2 without training.)\n");

  // ---- 2: DP-FedAvg ----------------------------------------------------
  PopulationConfig pcfg;
  pcfg.num_clients = 24;
  pcfg.samples_per_client = 20;
  pcfg.test_per_class = 4;
  pcfg.capture.tensor_size = 16;
  pcfg.capture.illuminant_sigma_override = -1.0f;
  Rng pop_rng = rng.fork(1);
  const FlPopulation pop = build_population(paper_devices(), pcfg, scenes,
                                            pop_rng);

  LocalTrainConfig local;
  local.lr = 0.1f;
  local.batch_size = 10;
  SimulationConfig sim;
  sim.rounds = 40;
  sim.clients_per_round = 8;
  sim.seed = 61;

  ModelSpec spec;
  spec.image_size = 16;
  std::printf("\nPrivacy / utility trade-off (%zu rounds):\n", sim.rounds);
  struct Setting {
    const char* tag;
    float clip;
    float noise;
  };
  for (const Setting& s : {Setting{"no privacy (FedAvg)", 0.0f, 0.0f},
                           Setting{"clip=8 noise=0.005", 8.0f, 0.005f},
                           Setting{"clip=8 noise=0.15", 8.0f, 0.15f}}) {
    Rng model_rng(9);
    auto model = make_model(spec, model_rng);
    Timer timer;
    SimulationResult result;
    if (s.clip <= 0.0f) {
      FedAvg algo(local);
      result = run_simulation(*model, algo, pop, sim);
    } else {
      DpOptions dp;
      dp.clip_norm = s.clip;
      dp.noise_multiplier = s.noise;
      DpFedAvg algo(local, dp);
      result = run_simulation(*model, algo, pop, sim);
      std::printf("  [noise stddev per coordinate: %.2e, clipped fraction "
                  "last round: %.0f%%]\n",
                  algo.last_noise_stddev(),
                  algo.last_clip_fraction() * 100.0);
    }
    std::printf("  %-22s avg %.1f%%  worst %.1f%%  (%.1fs)\n", s.tag,
                result.final_metrics.average * 100.0,
                result.final_metrics.worst_case * 100.0, timer.elapsed_s());
  }
  std::printf(
      "\nReading: light DP noise costs little accuracy; heavy noise "
      "degrades — the standard DP-FL trade-off, here under system-induced "
      "heterogeneity.\n");
  return 0;
}
