// Quickstart: the smallest end-to-end tour of the library.
//
// 1. Generate scenes for the 12-class dataset.
// 2. Capture them with two different phones (Pixel 5 vs Galaxy S6) — same
//    scenes, different sensor + ISP.
// 3. Train a mobile-mini CNN on one device's images.
// 4. Observe the accuracy drop when testing on the other device: that gap
//    *is* system-induced data heterogeneity.
#include <cstdio>

#include "data/builder.h"
#include "device/device_profile.h"
#include "fl/eval.h"
#include "fl/trainer.h"
#include "nn/model_zoo.h"
#include "scene/scene_gen.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace hetero;

int main() {
  Rng rng(7);
  SceneGenerator scenes(64);
  CaptureConfig capture;  // 32x32 RGB tensors through the full ISP

  const DeviceProfile& pixel5 = device_by_name("Pixel5");
  const DeviceProfile& s6 = device_by_name("GalaxyS6");

  std::printf("Building datasets (same scenes, two devices)...\n");
  Timer timer;
  Rng data_rng = rng.fork(1);
  Dataset train = build_device_dataset(pixel5, /*per_class=*/16, scenes,
                                       capture, data_rng);
  Rng test_rng = rng.fork(2);
  Dataset test_same = build_device_dataset(pixel5, /*per_class=*/8, scenes,
                                           capture, test_rng);
  Rng test_rng2 = rng.fork(2);  // identical scene stream, different device
  Dataset test_cross = build_device_dataset(s6, /*per_class=*/8, scenes,
                                            capture, test_rng2);
  std::printf("  %zu train / %zu test images in %.1fs\n", train.size(),
              test_same.size() + test_cross.size(), timer.elapsed_s());

  ModelSpec spec;  // mobile-mini, 3x32x32 -> 12 classes
  Rng model_rng(99);
  auto model = make_model(spec, model_rng);
  std::printf("Model %s: %zu parameters\n", model->id().c_str(),
              model->num_params());

  LocalTrainConfig cfg;
  cfg.lr = 0.1f;
  cfg.epochs = 1;
  cfg.batch_size = 10;
  timer.reset();
  for (int epoch = 0; epoch < 14; ++epoch) {
    Rng epoch_rng = rng.fork(100 + static_cast<std::uint64_t>(epoch));
    const float loss = local_train(*model, train, cfg, epoch_rng);
    std::printf("  epoch %d  train loss %.3f  (%.1fs)\n", epoch, loss,
                timer.elapsed_s());
  }

  const double acc_same = evaluate_accuracy(*model, test_same);
  const double acc_cross = evaluate_accuracy(*model, test_cross);
  std::printf("\nTest on %-10s (trained device): %.1f%%\n",
              pixel5.name.c_str(), acc_same * 100);
  std::printf("Test on %-10s (other device)  : %.1f%%\n", s6.name.c_str(),
              acc_cross * 100);
  std::printf("Model quality degradation from device shift: %.1f%%\n",
              (acc_same - acc_cross) / std::max(acc_same, 1e-9) * 100);
  return 0;
}
