#include "data/builder.h"

#include <algorithm>

#include "util/rng.h"

namespace hetero {
namespace {

/// Bilinear resize of one (H, W) plane into (S, S).
void resize_plane(const float* src, std::size_t h, std::size_t w, float* dst,
                  std::size_t s) {
  const double sy = static_cast<double>(h) / s;
  const double sx = static_cast<double>(w) / s;
  for (std::size_t y = 0; y < s; ++y) {
    const double fy = std::max(0.0, (y + 0.5) * sy - 0.5);
    const std::size_t y0 = std::min(static_cast<std::size_t>(fy), h - 1);
    const std::size_t y1 = std::min(y0 + 1, h - 1);
    const float wy = static_cast<float>(fy - y0);
    for (std::size_t x = 0; x < s; ++x) {
      const double fx = std::max(0.0, (x + 0.5) * sx - 0.5);
      const std::size_t x0 = std::min(static_cast<std::size_t>(fx), w - 1);
      const std::size_t x1 = std::min(x0 + 1, w - 1);
      const float wx = static_cast<float>(fx - x0);
      const float top = src[y0 * w + x0] * (1 - wx) + src[y0 * w + x1] * wx;
      const float bot = src[y1 * w + x0] * (1 - wx) + src[y1 * w + x1] * wx;
      dst[y * s + x] = top * (1 - wy) + bot * wy;
    }
  }
}

}  // namespace

Tensor resize_planes(const Tensor& t, std::size_t out_size) {
  HS_CHECK(t.rank() == 3, "resize_planes: input must be (C, H, W)");
  HS_CHECK(out_size > 0, "resize_planes: zero output size");
  const std::size_t c = t.dim(0), h = t.dim(1), w = t.dim(2);
  if (h == out_size && w == out_size) return t;
  Tensor out({c, out_size, out_size});
  for (std::size_t ch = 0; ch < c; ++ch) {
    resize_plane(t.data() + ch * h * w, h, w,
                 out.data() + ch * out_size * out_size, out_size);
  }
  return out;
}

namespace {

/// Applies the capture config's illuminant policy to the device's sensor.
SensorModel make_capture_sensor(const DeviceProfile& device,
                                float illuminant_sigma_override) {
  SensorConfig cfg = device.sensor;
  if (illuminant_sigma_override >= 0.0f) {
    cfg.illuminant_variation = illuminant_sigma_override;
  }
  return SensorModel(cfg);
}

}  // namespace

Tensor capture_to_tensor(const Image& scene, const DeviceProfile& device,
                         const CaptureConfig& cfg, Rng& rng) {
  const SensorModel sensor =
      make_capture_sensor(device, cfg.illuminant_sigma_override);
  RawImage raw = sensor.capture(scene, rng);
  if (cfg.raw_mode) {
    return resize_planes(raw.to_packed_tensor(), cfg.raw_tensor_size);
  }
  const Image img = run_isp_resized(raw, device.isp, cfg.tensor_size);
  return img.to_tensor();
}

Tensor capture_with_isp(const Image& scene, const DeviceProfile& device,
                        const IspConfig& isp, std::size_t tensor_size,
                        Rng& rng) {
  // Stage-ablation captures follow the dark-room protocol.
  const SensorModel sensor = make_capture_sensor(device, 0.0f);
  RawImage raw = sensor.capture(scene, rng);
  const Image img = run_isp_resized(raw, isp, tensor_size);
  return img.to_tensor();
}

Dataset build_device_dataset(const DeviceProfile& device,
                             std::size_t per_class,
                             const SceneGenerator& scenes,
                             const CaptureConfig& cfg, Rng& rng) {
  HS_CHECK(per_class > 0, "build_device_dataset: per_class must be positive");
  const std::size_t n = per_class * SceneGenerator::kNumClasses;
  const std::size_t side = cfg.raw_mode ? cfg.raw_tensor_size : cfg.tensor_size;
  const std::size_t channels = cfg.raw_mode ? 4 : 3;
  Tensor xs({n, channels, side, side});
  std::vector<std::size_t> labels(n);
  std::size_t i = 0;
  for (std::size_t cls = 0; cls < SceneGenerator::kNumClasses; ++cls) {
    for (std::size_t k = 0; k < per_class; ++k, ++i) {
      const Image scene = scenes.generate(cls, rng);
      xs.set_slice0(i, capture_to_tensor(scene, device, cfg, rng));
      labels[i] = cls;
    }
  }
  return Dataset(std::move(xs), std::move(labels));
}

Dataset build_device_dataset_with_isp(const DeviceProfile& device,
                                      const IspConfig& isp,
                                      std::size_t per_class,
                                      const SceneGenerator& scenes,
                                      std::size_t tensor_size, Rng& rng) {
  HS_CHECK(per_class > 0,
           "build_device_dataset_with_isp: per_class must be positive");
  const std::size_t n = per_class * SceneGenerator::kNumClasses;
  Tensor xs({n, 3, tensor_size, tensor_size});
  std::vector<std::size_t> labels(n);
  std::size_t i = 0;
  for (std::size_t cls = 0; cls < SceneGenerator::kNumClasses; ++cls) {
    for (std::size_t k = 0; k < per_class; ++k, ++i) {
      const Image scene = scenes.generate(cls, rng);
      xs.set_slice0(i, capture_with_isp(scene, device, isp, tensor_size, rng));
      labels[i] = cls;
    }
  }
  return Dataset(std::move(xs), std::move(labels));
}

Dataset build_scene_dataset(std::size_t per_class,
                            const SceneGenerator& scenes,
                            std::size_t tensor_size, Rng& rng) {
  HS_CHECK(per_class > 0, "build_scene_dataset: per_class must be positive");
  const std::size_t n = per_class * SceneGenerator::kNumClasses;
  Tensor xs({n, 3, tensor_size, tensor_size});
  std::vector<std::size_t> labels(n);
  std::size_t i = 0;
  for (std::size_t cls = 0; cls < SceneGenerator::kNumClasses; ++cls) {
    for (std::size_t k = 0; k < per_class; ++k, ++i) {
      Image scene = scenes.generate(cls, rng);
      scene = srgb_encode(resize_bilinear(scene, tensor_size, tensor_size));
      xs.set_slice0(i, scene.to_tensor());
      labels[i] = cls;
    }
  }
  return Dataset(std::move(xs), std::move(labels));
}

Dataset build_flair_user_dataset(const DeviceProfile& device,
                                 const std::vector<double>& preferences,
                                 std::size_t num_samples,
                                 const FlairSceneGenerator& scenes,
                                 const CaptureConfig& cfg, Rng& rng) {
  HS_CHECK(num_samples > 0,
           "build_flair_user_dataset: num_samples must be positive");
  HS_CHECK(!cfg.raw_mode, "build_flair_user_dataset: RAW mode not supported");
  Tensor xs({num_samples, 3, cfg.tensor_size, cfg.tensor_size});
  Tensor targets({num_samples, FlairSceneGenerator::kNumLabels});
  for (std::size_t i = 0; i < num_samples; ++i) {
    const auto label_set = scenes.sample_label_set(preferences, rng);
    const Image scene = scenes.generate(label_set, rng);
    xs.set_slice0(i, capture_to_tensor(scene, device, cfg, rng));
    for (std::size_t l : label_set) targets.at(i, l) = 1.0f;
  }
  return Dataset(std::move(xs), std::move(targets));
}

}  // namespace hetero
