// Dataset builders: scene radiance -> device capture -> ISP -> tensors.
//
// This is where system-induced heterogeneity enters the data: the *same*
// scene distribution is pushed through each device's sensor + ISP, so any
// train/test shift between the resulting datasets is attributable to the
// device alone (the paper's dark-room protocol).
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "device/device_profile.h"
#include "scene/flair_gen.h"
#include "scene/scene_gen.h"

namespace hetero {

/// How scenes are turned into model tensors.
struct CaptureConfig {
  std::size_t tensor_size = 32;      ///< final (C,S,S) image side
  bool raw_mode = false;             ///< pack RAW planes instead of ISP RGB
  std::size_t raw_tensor_size = 16;  ///< per-plane side in raw mode
  /// Per-shot illuminant variation override. The default 0 reproduces the
  /// paper's dark-room protocol (Section 3.1: "we controlled other external
  /// factors") — every capture sees the same monitor illuminant, so all
  /// train/test shift is attributable to the device. Set to a negative
  /// value to use each device's own AWB-drift figure (in-the-wild captures,
  /// used by the FLAIR experiments), or to a positive sigma to force one.
  float illuminant_sigma_override = 0.0f;
};

/// Captures one scene with the device's sensor and ISP into a CHW tensor:
/// (3, S, S) in ISP mode or (4, R, R) packed RAW in raw mode.
Tensor capture_to_tensor(const Image& scene, const DeviceProfile& device,
                         const CaptureConfig& cfg, Rng& rng);

/// Same, but with an explicit ISP configuration (for Table 3 / Fig 3 stage
/// ablations). Only valid in ISP mode.
Tensor capture_with_isp(const Image& scene, const DeviceProfile& device,
                        const IspConfig& isp, std::size_t tensor_size,
                        Rng& rng);

/// Resizes each plane of a (C, H, W) tensor to (C, S, S) bilinearly.
Tensor resize_planes(const Tensor& t, std::size_t out_size);

/// Builds a single-label dataset of per_class samples per class, all
/// captured by one device.
Dataset build_device_dataset(const DeviceProfile& device,
                             std::size_t per_class,
                             const SceneGenerator& scenes,
                             const CaptureConfig& cfg, Rng& rng);

/// Same scenes, explicit ISP configuration (stage-ablation datasets).
Dataset build_device_dataset_with_isp(const DeviceProfile& device,
                                      const IspConfig& isp,
                                      std::size_t per_class,
                                      const SceneGenerator& scenes,
                                      std::size_t tensor_size, Rng& rng);

/// Builds a single-label dataset straight from scene radiance (no sensor,
/// no ISP): the scene is resized and sRGB-encoded. This is the "original
/// dataset" of the paper's Fig 7 robustness experiment.
Dataset build_scene_dataset(std::size_t per_class, const SceneGenerator& scenes,
                            std::size_t tensor_size, Rng& rng);

/// Builds a FLAIR-style multi-label dataset for one user on one device.
/// preferences: the user's label profile (see FlairSceneGenerator).
Dataset build_flair_user_dataset(const DeviceProfile& device,
                                 const std::vector<double>& preferences,
                                 std::size_t num_samples,
                                 const FlairSceneGenerator& scenes,
                                 const CaptureConfig& cfg, Rng& rng);

}  // namespace hetero
