#include "data/dataset.h"

#include <algorithm>

#include "util/rng.h"

namespace hetero {

Dataset::Dataset(Tensor xs, std::vector<std::size_t> labels)
    : multi_(false), xs_(std::move(xs)), labels_(std::move(labels)) {
  HS_CHECK(xs_.rank() == 4, "Dataset: xs must be (N, C, H, W)");
  n_ = xs_.dim(0);
  HS_CHECK(labels_.size() == n_, "Dataset: label count mismatch");
}

Dataset::Dataset(Tensor xs, Tensor multi_targets)
    : multi_(true), xs_(std::move(xs)), multi_targets_(std::move(multi_targets)) {
  HS_CHECK(xs_.rank() == 4, "Dataset: xs must be (N, C, H, W)");
  n_ = xs_.dim(0);
  HS_CHECK(multi_targets_.rank() == 2 && multi_targets_.dim(0) == n_,
           "Dataset: multi-target shape mismatch");
}

void Dataset::release_buffers(Tensor& xs, std::vector<std::size_t>& labels,
                              Tensor& multi_targets) {
  // Only overwrite the caller's spares with buffers that actually carry
  // capacity worth recycling; an empty dataset (first use, or one whose
  // buffers were already moved out) must not clobber them.
  if (xs_.size() > 0) xs = std::move(xs_);
  if (!labels_.empty()) labels = std::move(labels_);
  if (multi_targets_.size() > 0) multi_targets = std::move(multi_targets_);
  xs_ = Tensor();
  labels_.clear();
  multi_targets_ = Tensor();
  n_ = 0;
  multi_ = false;
}

std::size_t Dataset::channels() const {
  return xs_.rank() == 4 ? xs_.dim(1) : 0;
}

std::size_t Dataset::image_size() const {
  return xs_.rank() == 4 ? xs_.dim(2) : 0;
}

std::size_t Dataset::num_label_dims() const {
  return multi_ ? multi_targets_.dim(1) : 0;
}

Tensor Dataset::gather_x(const std::vector<std::size_t>& idx) const {
  HS_CHECK(!idx.empty(), "Dataset::gather_x: empty index list");
  const std::size_t sample = xs_.size() / n_;
  // One row copied per index below — the gather fills the tensor in full.
  Tensor out = Tensor::uninit({idx.size(), xs_.dim(1), xs_.dim(2), xs_.dim(3)});
  for (std::size_t i = 0; i < idx.size(); ++i) {
    HS_CHECK(idx[i] < n_, "Dataset::gather_x: index out of range");
    std::copy(xs_.data() + idx[i] * sample, xs_.data() + (idx[i] + 1) * sample,
              out.data() + i * sample);
  }
  return out;
}

std::vector<std::size_t> Dataset::gather_labels(
    const std::vector<std::size_t>& idx) const {
  HS_CHECK(!multi_, "Dataset::gather_labels: multi-label dataset");
  std::vector<std::size_t> out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    HS_CHECK(idx[i] < n_, "Dataset::gather_labels: index out of range");
    out[i] = labels_[idx[i]];
  }
  return out;
}

Tensor Dataset::gather_multi(const std::vector<std::size_t>& idx) const {
  HS_CHECK(multi_, "Dataset::gather_multi: single-label dataset");
  const std::size_t l = multi_targets_.dim(1);
  Tensor out({idx.size(), l});
  for (std::size_t i = 0; i < idx.size(); ++i) {
    HS_CHECK(idx[i] < n_, "Dataset::gather_multi: index out of range");
    std::copy(multi_targets_.data() + idx[i] * l,
              multi_targets_.data() + (idx[i] + 1) * l, out.data() + i * l);
  }
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& idx) const {
  Tensor xs = gather_x(idx);
  if (multi_) return Dataset(std::move(xs), gather_multi(idx));
  return Dataset(std::move(xs), gather_labels(idx));
}

Dataset Dataset::concat(const std::vector<const Dataset*>& parts) {
  HS_CHECK(!parts.empty(), "Dataset::concat: no parts");
  const Dataset& first = *parts.front();
  std::size_t total = 0;
  for (const Dataset* p : parts) {
    HS_CHECK(p != nullptr && !p->empty(), "Dataset::concat: empty part");
    HS_CHECK(p->is_multi_label() == first.is_multi_label(),
             "Dataset::concat: mixed label modes");
    HS_CHECK(p->xs_.dim(1) == first.xs_.dim(1) &&
                 p->xs_.dim(2) == first.xs_.dim(2) &&
                 p->xs_.dim(3) == first.xs_.dim(3),
             "Dataset::concat: shape mismatch");
    total += p->size();
  }
  Tensor xs({total, first.xs_.dim(1), first.xs_.dim(2), first.xs_.dim(3)});
  std::size_t off = 0;
  for (const Dataset* p : parts) {
    std::copy(p->xs_.data(), p->xs_.data() + p->xs_.size(), xs.data() + off);
    off += p->xs_.size();
  }
  if (first.is_multi_label()) {
    const std::size_t l = first.multi_targets_.dim(1);
    Tensor targets({total, l});
    off = 0;
    for (const Dataset* p : parts) {
      HS_CHECK(p->multi_targets_.dim(1) == l,
               "Dataset::concat: label dim mismatch");
      std::copy(p->multi_targets_.data(),
                p->multi_targets_.data() + p->multi_targets_.size(),
                targets.data() + off);
      off += p->multi_targets_.size();
    }
    return Dataset(std::move(xs), std::move(targets));
  }
  std::vector<std::size_t> labels;
  labels.reserve(total);
  for (const Dataset* p : parts) {
    labels.insert(labels.end(), p->labels_.begin(), p->labels_.end());
  }
  return Dataset(std::move(xs), std::move(labels));
}

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       Rng& rng, bool shuffle, bool drop_last)
    : dataset_(&dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      drop_last_(drop_last) {
  HS_CHECK(batch_size > 0, "DataLoader: batch size must be positive");
  HS_CHECK(!dataset.empty(), "DataLoader: empty dataset");
  build(rng);
}

void DataLoader::reset(Rng& rng) { build(rng); }

void DataLoader::build(Rng& rng) {
  std::vector<std::size_t> order(dataset_->size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (shuffle_) rng.shuffle(order);
  batches_.clear();
  for (std::size_t start = 0; start < order.size(); start += batch_size_) {
    const std::size_t end = std::min(start + batch_size_, order.size());
    if (drop_last_ && end - start < batch_size_) break;
    batches_.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                          order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  if (batches_.empty()) {
    // Degenerate case: dataset smaller than one batch with drop_last.
    batches_.push_back(order);
  }
}

Batch DataLoader::batch(std::size_t b) const {
  HS_CHECK(b < batches_.size(), "DataLoader::batch: index out of range");
  Batch out;
  out.x = dataset_->gather_x(batches_[b]);
  if (dataset_->is_multi_label()) {
    out.multi_targets = dataset_->gather_multi(batches_[b]);
  } else {
    out.labels = dataset_->gather_labels(batches_[b]);
  }
  return out;
}

}  // namespace hetero
