// In-memory datasets and mini-batch loading.
//
// A Dataset holds stacked image tensors plus either single-label class
// indices (the 12-class custom dataset) or a multi-hot label matrix (the
// FLAIR-style dataset). Samples optionally remember which device captured
// them, which the FL metrics use for per-device evaluation.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace hetero {

class Rng;

class Dataset {
 public:
  Dataset() = default;

  /// Single-label dataset. xs: (N, C, H, W); labels: N class indices.
  Dataset(Tensor xs, std::vector<std::size_t> labels);

  /// Multi-label dataset. xs: (N, C, H, W); targets: (N, L) multi-hot.
  Dataset(Tensor xs, Tensor multi_targets);

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  bool is_multi_label() const { return multi_; }

  std::size_t channels() const;
  std::size_t image_size() const;
  std::size_t num_label_dims() const;  ///< L for multi-label, 0 otherwise

  const Tensor& xs() const { return xs_; }
  const std::vector<std::size_t>& labels() const { return labels_; }
  const Tensor& multi_targets() const { return multi_targets_; }

  /// Gathers a batch of inputs by sample indices.
  Tensor gather_x(const std::vector<std::size_t>& idx) const;
  /// Gathers single labels by sample indices.
  std::vector<std::size_t> gather_labels(
      const std::vector<std::size_t>& idx) const;
  /// Gathers multi-hot targets by sample indices.
  Tensor gather_multi(const std::vector<std::size_t>& idx) const;

  /// Copy of the selected samples as a new dataset.
  Dataset subset(const std::vector<std::size_t>& idx) const;

  /// Moves this dataset's storage out into the caller's spare buffers and
  /// resets the dataset to empty. The lazy population layer uses this to
  /// recycle one client's buffers for the next materialization (the
  /// kernels Workspace arena idiom one level up): repeated same-geometry
  /// materializations reach zero steady-state allocations.
  void release_buffers(Tensor& xs, std::vector<std::size_t>& labels,
                       Tensor& multi_targets);

  /// Concatenates compatible datasets (same shapes and label mode).
  static Dataset concat(const std::vector<const Dataset*>& parts);

 private:
  std::size_t n_ = 0;
  bool multi_ = false;
  Tensor xs_;
  std::vector<std::size_t> labels_;
  Tensor multi_targets_;
};

/// One mini-batch.
struct Batch {
  Tensor x;
  std::vector<std::size_t> labels;  // single-label mode
  Tensor multi_targets;             // multi-label mode
};

/// Shuffled mini-batch iteration over a dataset (index-based; cheap).
class DataLoader {
 public:
  /// drop_last=false keeps the final short batch.
  DataLoader(const Dataset& dataset, std::size_t batch_size, Rng& rng,
             bool shuffle = true, bool drop_last = false);

  /// Number of batches per epoch.
  std::size_t num_batches() const { return batches_.size(); }

  /// Reshuffles (if enabled) for a new epoch.
  void reset(Rng& rng);

  /// Batch b of the current epoch.
  Batch batch(std::size_t b) const;

 private:
  void build(Rng& rng);

  const Dataset* dataset_;
  std::size_t batch_size_;
  bool shuffle_, drop_last_;
  std::vector<std::vector<std::size_t>> batches_;
};

}  // namespace hetero
