#include "device/device_profile.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace hetero {
namespace {

/// Sensor hardware quality by performance tier.
SensorConfig tier_sensor(char tier) {
  SensorConfig s;
  switch (tier) {
    case 'H':
      s.raw_height = s.raw_width = 64;
      s.optics_blur_sigma = 0.30f;
      s.vignetting = 0.06f;
      s.shot_noise = 0.006f;
      s.read_noise = 0.0015f;
      s.bit_depth = 12;
      s.black_level = 0.025f;
      s.illuminant_variation = 0.25f;  // stable auto white point
      break;
    case 'M':
      s.raw_height = s.raw_width = 48;
      s.optics_blur_sigma = 0.45f;
      s.vignetting = 0.10f;
      s.shot_noise = 0.010f;
      s.read_noise = 0.0025f;
      s.bit_depth = 10;
      s.black_level = 0.050f;
      s.illuminant_variation = 0.35f;
      break;
    case 'L':
    default:
      s.raw_height = s.raw_width = 32;
      s.optics_blur_sigma = 0.60f;
      s.vignetting = 0.15f;
      s.shot_noise = 0.016f;
      s.read_noise = 0.0040f;
      s.bit_depth = 10;
      s.black_level = 0.080f;
      s.illuminant_variation = 0.45f;  // drifting auto white point
      break;
  }
  return s;
}

DeviceProfile make_device(std::string name, std::string vendor, char tier,
                          double share, float warmth, float crosstalk,
                          float raw_r, float raw_b, float exposure,
                          IspConfig isp) {
  DeviceProfile d;
  d.name = std::move(name);
  d.vendor = std::move(vendor);
  d.tier = tier;
  d.market_share = share;
  d.sensor = tier_sensor(tier);
  d.sensor.spectral_response =
      make_spectral_response(warmth, crosstalk, raw_r, raw_b);
  d.sensor.exposure_gain = exposure;
  d.isp = isp;
  d.isp.ccm = SensorModel(d.sensor).ccm();
  d.isp.black_level = d.sensor.black_level;
  return d;
}

std::vector<DeviceProfile> build_paper_devices() {
  // Vendor ISP house styles.
  IspConfig google;  // computational photography: white patch + tone eq
  google.demosaic = DemosaicAlgo::kPPG;
  google.wb = WhiteBalanceAlgo::kWhitePatch;
  google.tone = ToneAlgo::kSrgbGammaEq;
  google.denoise = DenoiseAlgo::kFBDD;
  google.jpeg_quality = 90;

  IspConfig google_old = google;  // Nexus 5X predates the HDR+ era style
  google_old.wb = WhiteBalanceAlgo::kGrayWorld;
  google_old.demosaic = DemosaicAlgo::kBilinear;
  google_old.tone = ToneAlgo::kSrgbGamma;
  google_old.jpeg_quality = 75;

  IspConfig lg;  // AHD demosaic, conservative processing
  lg.demosaic = DemosaicAlgo::kAHD;
  lg.wb = WhiteBalanceAlgo::kGrayWorld;
  lg.tone = ToneAlgo::kSrgbGamma;
  lg.denoise = DenoiseAlgo::kFBDD;
  lg.jpeg_quality = 85;

  IspConfig samsung;  // heavy processing: tone equalization
  samsung.demosaic = DemosaicAlgo::kPPG;
  samsung.wb = WhiteBalanceAlgo::kGrayWorld;
  samsung.tone = ToneAlgo::kSrgbGammaEq;
  samsung.denoise = DenoiseAlgo::kFBDD;
  samsung.jpeg_quality = 85;

  std::vector<DeviceProfile> devices;

  // Per-device raw channel sensitivities (R, B relative to green): real
  // CMOS is green-dominant, and the exact white point is a CFA-dye
  // signature that varies per sensor generation — the main systematic
  // RAW-domain difference Fig 2 measures.

  // Google: cool-toned Sony-style sensors, low crosstalk on recent models.
  // Pixel5 and Pixel2 are deliberate near-twins (Table 2 shows 1.0%/5.7%
  // mutual degradation, the smallest in the matrix).
  devices.push_back(make_device("Pixel5", "Google", 'H', 1.0, -0.06f, 0.05f,
                                0.56f, 0.70f, 1.00f, google));
  devices.push_back(make_device("Pixel2", "Google", 'M', 3.0, -0.05f, 0.07f,
                                0.55f, 0.69f, 0.95f, google));
  devices.push_back(make_device("Nexus5X", "Google", 'L', 4.0, -0.02f, 0.16f,
                                0.45f, 0.55f, 0.90f, google_old));

  // LG: slightly green-shifted sensors.
  {
    IspConfig velvet = lg;
    velvet.denoise = DenoiseAlgo::kWavelet;
    devices.push_back(make_device("VELVET", "LG", 'H', 2.0, 0.01f, 0.07f,
                                  0.62f, 0.60f, 1.03f, velvet));
  }
  devices.push_back(make_device("G7", "LG", 'M', 5.0, 0.02f, 0.10f, 0.59f,
                                0.58f, 1.03f, lg));
  {
    IspConfig g4 = lg;
    g4.denoise = DenoiseAlgo::kNone;
    g4.jpeg_quality = 70;
    devices.push_back(make_device("G4", "LG", 'L', 8.0, 0.03f, 0.15f, 0.50f,
                                  0.52f, 0.93f, g4));
  }

  // Samsung: warm-toned sensors. The S22's "advanced ISP" stores untagged
  // wide-gamut (Display-P3) output — the paper singles it out as the device
  // on which every other model degrades the most (Table 2 column mean
  // 33.6%).
  {
    IspConfig s22 = samsung;
    s22.gamut = GamutAlgo::kDisplayP3;
    s22.jpeg_quality = 92;
    devices.push_back(make_device("GalaxyS22", "Samsung", 'H', 12.0, 0.07f,
                                  0.05f, 0.68f, 0.76f, 1.08f, s22));
  }
  devices.push_back(make_device("GalaxyS9", "Samsung", 'M', 27.0, 0.06f,
                                0.09f, 0.64f, 0.70f, 1.05f, samsung));
  {
    IspConfig s6 = samsung;
    s6.demosaic = DemosaicAlgo::kBilinear;
    s6.tone = ToneAlgo::kSrgbGamma;
    s6.jpeg_quality = 75;
    devices.push_back(make_device("GalaxyS6", "Samsung", 'L', 38.0, 0.05f,
                                  0.14f, 0.55f, 0.64f, 0.94f, s6));
  }
  return devices;
}

}  // namespace

ColorMatrix make_spectral_response(float warmth, float crosstalk,
                                   float r_sensitivity, float b_sensitivity) {
  HS_CHECK(crosstalk >= 0.0f && crosstalk < 0.5f,
           "make_spectral_response: crosstalk out of range");
  HS_CHECK(r_sensitivity > 0.0f && b_sensitivity > 0.0f,
           "make_spectral_response: sensitivities must be positive");
  // Mixing part: diagonal keeps (1 - crosstalk), the leak splits across the
  // other two channels. Warmth tilts R up / B down.
  ColorMatrix m{};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      m[static_cast<std::size_t>(r * 3 + c)] =
          r == c ? 1.0f - crosstalk : crosstalk / 2.0f;
    }
  }
  // Channel sensitivities scale whole rows: the sensor's raw white point.
  const float rg = r_sensitivity * (1.0f + warmth);
  const float bg = b_sensitivity * (1.0f - warmth);
  for (int c = 0; c < 3; ++c) {
    m[static_cast<std::size_t>(c)] *= rg;      // R row
    m[static_cast<std::size_t>(6 + c)] *= bg;  // B row
  }
  return m;
}

const std::vector<DeviceProfile>& paper_devices() {
  static const std::vector<DeviceProfile> devices = build_paper_devices();
  return devices;
}

std::size_t device_index(const std::string& name) {
  const auto& devices = paper_devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].name == name) return i;
  }
  throw std::invalid_argument("device_index: unknown device " + name);
}

const DeviceProfile& device_by_name(const std::string& name) {
  return paper_devices()[device_index(name)];
}

std::vector<double> market_share_weights() {
  std::vector<double> w;
  w.reserve(paper_devices().size());
  for (const auto& d : paper_devices()) w.push_back(d.market_share);
  return w;
}

std::vector<DeviceProfile> long_tail_population(std::size_t n, Rng& rng) {
  HS_CHECK(n > 0, "long_tail_population: n must be positive");
  std::vector<DeviceProfile> out;
  out.reserve(n);
  const auto& base = paper_devices();
  const char tiers[3] = {'H', 'M', 'L'};
  for (std::size_t i = 0; i < n; ++i) {
    DeviceProfile d;
    if (i < base.size()) {
      // Head: the paper devices themselves.
      d = base[i];
    } else {
      // Tail: random sensor + a random mix of known ISP styles.
      const char tier = tiers[rng.uniform_int(3)];
      IspConfig isp;
      isp.denoise = static_cast<DenoiseAlgo>(rng.uniform_int(3));
      isp.demosaic = static_cast<DemosaicAlgo>(rng.uniform_int(4));
      isp.wb = static_cast<WhiteBalanceAlgo>(1 + rng.uniform_int(2));
      isp.gamut =
          rng.bernoulli(0.15) ? GamutAlgo::kDisplayP3 : GamutAlgo::kSrgb;
      isp.tone = rng.bernoulli(0.4) ? ToneAlgo::kSrgbGammaEq
                                    : ToneAlgo::kSrgbGamma;
      isp.jpeg_quality = 60 + static_cast<int>(rng.uniform_int(35));
      d = make_device("tail-" + std::to_string(i), "other", tier, 0.0,
                      rng.uniform_f(-0.08f, 0.10f), rng.uniform_f(0.03f, 0.2f),
                      rng.uniform_f(0.50f, 0.65f), rng.uniform_f(0.56f, 0.72f),
                      rng.uniform_f(0.92f, 1.08f), isp);
    }
    // Exponentially decaying share over the population rank.
    d.market_share = 100.0 * std::exp(-0.35 * static_cast<double>(i));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace hetero
