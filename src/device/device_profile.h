// Device profiles: the bundle of sensor hardware (SensorConfig) and ISP
// software (IspConfig) that makes one phone's images different from
// another's — the unit of system-induced data heterogeneity.
//
// The registry reproduces Table 1 of the paper: three vendors (Samsung, LG,
// Google) x three performance tiers (H/M/L) with US market shares. Vendor
// determines the ISP house style (Google: white-patch WB + tone
// equalization; Samsung: heavy processing, S22 additionally in untagged
// wide gamut; LG: AHD demosaic), tier determines sensor quality (noise,
// resolution, optics, ADC depth). The parameters were chosen so the
// cross-device degradation structure of Table 2 emerges: Pixel5/Pixel2 are
// nearly twins, S22 is the most idiosyncratic target, low-tier sensors are
// noisy and soft.
#pragma once

#include <string>
#include <vector>

#include "isp/pipeline.h"
#include "isp/sensor.h"

namespace hetero {

class Rng;

struct DeviceProfile {
  std::string name;
  std::string vendor;
  char tier = 'M';            ///< 'H', 'M' or 'L'
  double market_share = 0.0;  ///< percent, Table 1
  SensorConfig sensor;
  IspConfig isp;  ///< isp.ccm already set to the sensor's CCM

  SensorModel sensor_model() const { return SensorModel(sensor); }
};

/// Builds a sensor spectral-response matrix from interpretable knobs:
/// warmth > 0 boosts red / cuts blue response; crosstalk in [0, 1) leaks
/// each channel into its neighbours (older CMOS has more); r_sensitivity /
/// b_sensitivity scale the R and B rows absolutely. Real CMOS sensors are
/// strongly green-dominant (typical AWB gains are ~1.8x R, ~1.5x B), so
/// device profiles pass r/b sensitivities well below 1 — this raw white
/// cast is what the white-balance ISP stage exists to remove, and its
/// device-to-device spread is a dominant source of RAW-domain heterogeneity
/// (Fig 2).
ColorMatrix make_spectral_response(float warmth, float crosstalk,
                                   float r_sensitivity = 1.0f,
                                   float b_sensitivity = 1.0f);

/// The nine devices of Table 1, in a fixed order:
/// Pixel5, Pixel2, Nexus5X, VELVET, G7, G4, S22, S9, S6.
const std::vector<DeviceProfile>& paper_devices();

/// Index of a device in paper_devices() by name; throws for unknown names.
std::size_t device_index(const std::string& name);

/// Lookup by name; throws for unknown names.
const DeviceProfile& device_by_name(const std::string& name);

/// Market-share weights of paper_devices(), in order (sums to ~100).
std::vector<double> market_share_weights();

/// Synthesizes a long-tailed population of `n` device profiles for the
/// FLAIR-style experiments: a few head devices (perturbed paper profiles)
/// plus a tail of random vendor-less devices with exponentially decaying
/// market share.
std::vector<DeviceProfile> long_tail_population(std::size_t n, Rng& rng);

}  // namespace hetero
