#include "fl/algorithm.h"

#include <chrono>
#include <cmath>
#include <string>

#include "fl/eval.h"
#include "util/rng.h"

namespace hetero {
namespace {

/// Batches per local update for a dataset under a config (loader keeps the
/// final short batch).
std::size_t local_steps(const Dataset& data, const LocalTrainConfig& cfg) {
  const std::size_t per_epoch =
      (data.size() + cfg.batch_size - 1) / cfg.batch_size;
  return per_epoch * cfg.epochs;
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Tensor weighted_average_states(const std::vector<Tensor>& states,
                               const std::vector<double>& weights) {
  HS_CHECK(!states.empty() && states.size() == weights.size(),
           "weighted_average_states: size mismatch");
  double total = 0.0;
  for (double w : weights) {
    HS_CHECK(w >= 0.0, "weighted_average_states: negative weight");
    total += w;
  }
  HS_CHECK(total > 0.0, "weighted_average_states: zero total weight");
  Tensor avg(states[0].shape());
  for (std::size_t k = 0; k < states.size(); ++k) {
    HS_CHECK(states[k].same_shape(avg),
             "weighted_average_states: state shape mismatch");
    avg.axpy(static_cast<float>(weights[k] / total), states[k]);
  }
  return avg;
}

std::uint64_t update_payload_bytes(const ClientUpdate& update) {
  if (update.payload_bytes != 0) return update.payload_bytes;
  return static_cast<std::uint64_t>(
      (update.state.size() + update.aux.size()) * sizeof(float));
}

bool validate_update(const ClientUpdate& update) {
  if (!std::isfinite(update.weight) || update.weight < 0.0) return false;
  if (!std::isfinite(update.train_loss)) return false;
  if (!std::isfinite(update.aux_scalar)) return false;
  for (const float v : update.state.flat()) {
    if (!std::isfinite(v)) return false;
  }
  for (const float v : update.aux.flat()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::size_t drop_invalid_updates(std::vector<ClientUpdate>& updates) {
  const std::size_t before = updates.size();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (!validate_update(updates[i])) continue;
    if (keep != i) updates[keep] = std::move(updates[i]);
    ++keep;
  }
  updates.resize(keep);
  return before - keep;
}

RoundStats summarize_updates(const std::vector<ClientUpdate>& updates,
                             std::size_t global_state_size) {
  HS_CHECK(!updates.empty(), "summarize_updates: no client updates");
  RoundStats stats;
  stats.num_clients = updates.size();
  stats.min_train_loss = updates.front().train_loss;
  stats.max_train_loss = updates.front().train_loss;
  double loss_sum = 0.0;
  for (const ClientUpdate& u : updates) {
    loss_sum += u.train_loss * u.weight;
    stats.weight_sum += u.weight;
    stats.min_train_loss = std::min(stats.min_train_loss, u.train_loss);
    stats.max_train_loss = std::max(stats.max_train_loss, u.train_loss);
    stats.bytes_up += update_payload_bytes(u);
  }
  HS_CHECK(stats.weight_sum > 0.0, "summarize_updates: zero total weight");
  stats.mean_train_loss = loss_sum / stats.weight_sum;
  stats.bytes_down = static_cast<std::uint64_t>(updates.size()) *
                     static_cast<std::uint64_t>(global_state_size) *
                     sizeof(float);
  return stats;
}

// --------------------------------------------------------------------- NVI

RoundStats FederatedAlgorithm::run_round(
    Model& model, const std::vector<std::size_t>& selected,
    const std::vector<Dataset>& client_data, Rng& rng, RoundContext* ctx) {
  RoundContext local;
  return do_run_round(model, selected, client_data, rng, ctx ? *ctx : local);
}

double FederatedAlgorithm::staleness_weight(std::size_t staleness,
                                            double exponent) const {
  // s == 0 (and exponent == 0) must return exactly 1.0 — not pow's
  // approximation of it — so a zero-staleness flush multiplies weights by
  // the identity and stays bit-identical to sync FedAvg aggregation.
  if (staleness == 0 || exponent == 0.0) return 1.0;
  return std::pow(1.0 + static_cast<double>(staleness), -exponent);
}

// ------------------------------------------------- SplitFederatedAlgorithm

RoundStats SplitFederatedAlgorithm::do_run_round(
    Model& model, const std::vector<std::size_t>& selected,
    const std::vector<Dataset>& client_data, Rng& rng, RoundContext& ctx) {
  HS_CHECK(!selected.empty(), "run_round: no clients selected");
  const Tensor global = model.state();
  std::vector<ClientUpdate> updates;
  updates.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::size_t id = selected[i];
    Rng client_rng = rng.fork(id);
    const Clock::time_point c0 = Clock::now();
    updates.push_back(
        local_update(model, global, id, client_data.at(id), client_rng));
    updates.back().train_seconds = seconds_since(c0);
    ctx.finish_client(updates.back(), i);
  }
  // Quarantine organically non-finite updates (diverged training) before
  // the server phase — the same guard the ClientExecutor applies. When a
  // quarantine happens on this reference path the update's client_end
  // event has already been delivered above, so only the aggregate-side
  // exclusion (and the fault.* extras) differ from a clean round.
  const std::size_t quarantined = drop_invalid_updates(updates);
  if (updates.empty()) {
    // Graceful abort: no usable update this round, global model untouched.
    RoundStats stats;
    stats.extras["fault.quarantined"] = static_cast<double>(quarantined);
    stats.extras["fault.aborted"] = 1.0;
    return stats;
  }
  RoundStats stats = aggregate(model, global, updates);
  if (quarantined > 0) {
    stats.extras["fault.quarantined"] = static_cast<double>(quarantined);
  }
  return stats;
}

ClientUpdate SplitFederatedAlgorithm::partial_aggregate(
    const Tensor& global, std::vector<ClientUpdate>& group) const {
  (void)global;
  HS_CHECK(!group.empty(), "partial_aggregate: empty group");
  ClientUpdate digest;
  digest.client_id = group.front().client_id;
  std::vector<Tensor> states;
  std::vector<double> weights;
  states.reserve(group.size());
  weights.reserve(group.size());
  double weight_sum = 0.0;
  double loss_sum = 0.0;
  for (ClientUpdate& u : group) {
    weight_sum += u.weight;
    loss_sum += u.train_loss * u.weight;
    states.push_back(std::move(u.state));
    weights.push_back(u.weight);
  }
  digest.state = weighted_average_states(states, weights);
  digest.weight = weight_sum;
  digest.train_loss = loss_sum / weight_sum;
  return digest;
}

std::size_t edge_group_of(std::size_t position, std::size_t n_selected,
                          std::size_t edge_groups) {
  HS_CHECK(edge_groups > 0, "edge_group_of: zero edge groups");
  HS_CHECK(position < n_selected, "edge_group_of: position out of range");
  return position * edge_groups / n_selected;
}

RoundStats hierarchical_aggregate(Model& model, SplitFederatedAlgorithm& split,
                                  const Tensor& global,
                                  std::vector<ClientUpdate>& updates,
                                  const std::vector<std::size_t>& positions,
                                  std::size_t n_selected,
                                  std::size_t edge_groups) {
  HS_CHECK(split.supports_partial_aggregation(),
           "hierarchical_aggregate: algorithm does not support edge-tier "
           "partial aggregation");
  HS_CHECK(!updates.empty() && updates.size() == positions.size(),
           "hierarchical_aggregate: updates/positions mismatch");
  // Client-level summary before any state tensor moves: the round's
  // loss/weight/byte stats describe clients, not digests.
  RoundStats stats = summarize_updates(updates, model.state_size());
  std::vector<std::vector<ClientUpdate>> groups(edge_groups);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    groups[edge_group_of(positions[i], n_selected, edge_groups)].push_back(
        std::move(updates[i]));
  }
  std::vector<ClientUpdate> digests;
  digests.reserve(edge_groups);
  for (std::vector<ClientUpdate>& group : groups) {
    // An edge whose whole block dropped out contributes nothing (the
    // renormalization over the remaining digests absorbs its weight).
    if (group.empty()) continue;
    digests.push_back(split.partial_aggregate(global, group));
  }
  const RoundStats agg = split.aggregate(model, global, digests);
  for (const auto& [key, value] : agg.extras) stats.extras[key] = value;
  stats.extras["net.edges"] = static_cast<double>(edge_groups);
  return stats;
}

// ------------------------------------------------------------------ FedAvg

ClientUpdate FedAvg::local_update(Model& model, const Tensor& global,
                                  std::size_t client_id, const Dataset& data,
                                  Rng& client_rng) const {
  model.set_state(global);
  const float loss = local_train(model, data, cfg_, client_rng);
  ClientUpdate u;
  u.client_id = client_id;
  u.state = model.state();
  u.weight = static_cast<double>(data.size());
  u.train_loss = static_cast<double>(loss);
  return u;
}

RoundStats FedAvg::aggregate(Model& model, const Tensor& global,
                             std::vector<ClientUpdate>& updates) {
  (void)global;
  HS_CHECK(!updates.empty(), "FedAvg: no client updates");
  RoundStats stats = summarize_updates(updates, model.state_size());
  std::vector<Tensor> states;
  std::vector<double> weights;
  states.reserve(updates.size());
  for (ClientUpdate& u : updates) {
    states.push_back(std::move(u.state));
    weights.push_back(u.weight);
  }
  model.set_state(weighted_average_states(states, weights));
  return stats;
}

// ----------------------------------------------------------------- QFedAvg

ClientUpdate QFedAvg::local_update(Model& model, const Tensor& global,
                                   std::size_t client_id, const Dataset& data,
                                   Rng& client_rng) const {
  model.set_state(global);
  // F_k: loss of the *global* model on the client's data.
  const double fk =
      std::max(1e-10, evaluate_loss(model, data, cfg_.batch_size));
  const float train_loss = local_train(model, data, cfg_, client_rng);
  // Delta-w scaled to a gradient estimate: L * (w_global - w_k), with the
  // Lipschitz proxy L = 1/lr.
  Tensor dw = global - model.state();
  dw *= static_cast<float>(1.0 / static_cast<double>(cfg_.lr));
  ClientUpdate u;
  u.client_id = client_id;
  u.weight = static_cast<double>(data.size());
  u.train_loss = static_cast<double>(train_loss);
  u.aux = std::move(dw);
  u.aux_scalar = fk;
  return u;
}

RoundStats QFedAvg::aggregate(Model& model, const Tensor& global,
                              std::vector<ClientUpdate>& updates) {
  HS_CHECK(!updates.empty(), "QFedAvg: no client updates");
  RoundStats stats = summarize_updates(updates, model.state_size());
  const double big_l = 1.0 / static_cast<double>(cfg_.lr);
  Tensor delta_sum(global.shape());
  double h_sum = 0.0;
  for (const ClientUpdate& u : updates) {
    const Tensor& dw = u.aux;
    const double fk = u.aux_scalar;
    const double norm2 = static_cast<double>(dw.norm()) * dw.norm();
    const double fq = std::pow(fk, q_);
    delta_sum.axpy(static_cast<float>(fq), dw);
    h_sum += q_ * std::pow(fk, q_ - 1.0) * norm2 + big_l * fq;
  }
  HS_CHECK(h_sum > 0.0, "QFedAvg: degenerate aggregation weights");
  Tensor new_state = global;
  new_state.axpy(static_cast<float>(-1.0 / h_sum), delta_sum);
  model.set_state(new_state);
  stats.extras["qfedavg.h_sum"] = h_sum;
  return stats;
}

// ----------------------------------------------------------------- FedProx

ClientUpdate FedProx::local_update(Model& model, const Tensor& global,
                                   std::size_t client_id, const Dataset& data,
                                   Rng& client_rng) const {
  model.set_state(global);
  const Tensor global_params = model.params();

  TrainHooks hooks;
  hooks.post_grad = [this, &global_params](Model& m) {
    // grad += mu * (w - w_global), walked over the flat parameter layout.
    ParamGroup g = m.net().param_group();
    std::size_t off = 0;
    for (std::size_t t = 0; t < g.params.size(); ++t) {
      Tensor& p = *g.params[t];
      Tensor& gr = *g.grads[t];
      for (std::size_t j = 0; j < p.size(); ++j) {
        gr[j] += mu_ * (p[j] - global_params[off + j]);
      }
      off += p.size();
    }
  };

  const float loss = local_train(model, data, cfg_, client_rng, hooks);
  ClientUpdate u;
  u.client_id = client_id;
  u.state = model.state();
  u.weight = static_cast<double>(data.size());
  u.train_loss = static_cast<double>(loss);
  return u;
}

RoundStats FedProx::aggregate(Model& model, const Tensor& global,
                              std::vector<ClientUpdate>& updates) {
  (void)global;
  HS_CHECK(!updates.empty(), "FedProx: no client updates");
  RoundStats stats = summarize_updates(updates, model.state_size());
  std::vector<Tensor> states;
  std::vector<double> weights;
  states.reserve(updates.size());
  for (ClientUpdate& u : updates) {
    states.push_back(std::move(u.state));
    weights.push_back(u.weight);
  }
  model.set_state(weighted_average_states(states, weights));
  return stats;
}

// ----------------------------------------------------------------- FedAvgM

void FedAvgM::init(Model& model, std::size_t num_clients) {
  (void)num_clients;
  velocity_ = Tensor({model.state_size()});
}

RoundStats FedAvgM::aggregate(Model& model, const Tensor& global,
                              std::vector<ClientUpdate>& updates) {
  HS_CHECK(!updates.empty(), "FedAvgM: no client updates");
  HS_CHECK(!velocity_.empty(), "FedAvgM: init() not called");
  RoundStats stats = summarize_updates(updates, model.state_size());
  std::vector<Tensor> states;
  std::vector<double> weights;
  states.reserve(updates.size());
  for (ClientUpdate& u : updates) {
    states.push_back(std::move(u.state));
    weights.push_back(u.weight);
  }
  // Pseudo-gradient: the (negated) average client movement.
  Tensor avg = weighted_average_states(states, weights);
  Tensor pseudo_grad = global - avg;
  velocity_ *= beta_;
  velocity_ += pseudo_grad;
  Tensor new_state = global - velocity_;
  model.set_state(new_state);
  stats.extras["fedavgm.velocity_norm"] =
      static_cast<double>(velocity_.norm());
  return stats;
}

void FedAvgM::save_state(AlgorithmCheckpoint& out) const {
  if (!velocity_.empty()) out.tensors["fedavgm.velocity"] = velocity_;
}

void FedAvgM::load_state(const AlgorithmCheckpoint& in) {
  const auto it = in.tensors.find("fedavgm.velocity");
  if (it != in.tensors.end()) velocity_ = it->second;
}

// ---------------------------------------------------------------- Scaffold

void Scaffold::init(Model& model, std::size_t num_clients) {
  num_clients_ = num_clients;
  c_global_ = Tensor({model.num_params()});
  c_clients_.assign(num_clients, Tensor());
}

ClientUpdate Scaffold::local_update(Model& model, const Tensor& global,
                                    std::size_t client_id, const Dataset& data,
                                    Rng& client_rng) const {
  HS_CHECK(num_clients_ > 0, "Scaffold: init() not called");
  HS_CHECK(client_id < c_clients_.size(), "Scaffold: client id out of range");
  model.set_state(global);
  const Tensor global_params = model.params();
  const std::size_t p = global_params.size();

  // A never-trained client's control variate is zeros; materialize a local
  // copy instead of lazily writing the member (the member only changes in
  // aggregate, so this function stays safe to run concurrently).
  const Tensor ci =
      c_clients_[client_id].empty() ? Tensor({p}) : c_clients_[client_id];

  // Correction applied to every gradient step: + (c - c_i).
  Tensor correction = c_global_ - ci;
  TrainHooks hooks;
  hooks.post_grad = [&correction](Model& m) {
    ParamGroup g = m.net().param_group();
    std::size_t off = 0;
    for (std::size_t t = 0; t < g.grads.size(); ++t) {
      Tensor& gr = *g.grads[t];
      for (std::size_t j = 0; j < gr.size(); ++j) {
        gr[j] += correction[off + j];
      }
      off += gr.size();
    }
  };

  const float loss = local_train(model, data, cfg_, client_rng, hooks);
  const Tensor y = model.params();
  const std::size_t k = local_steps(data, cfg_);

  // Option II control-variate update:
  // c_i+ = c_i - c + (w_global - y) / (K * lr).
  Tensor ci_new = ci - c_global_;
  Tensor drift = global_params - y;
  drift *= 1.0f / (static_cast<float>(k) * cfg_.lr);
  ci_new += drift;

  ClientUpdate u;
  u.client_id = client_id;
  u.state = model.state();
  u.weight = static_cast<double>(data.size());
  u.train_loss = static_cast<double>(loss);
  u.aux = std::move(ci_new);
  return u;
}

RoundStats Scaffold::aggregate(Model& model, const Tensor& global,
                               std::vector<ClientUpdate>& updates) {
  HS_CHECK(!updates.empty(), "Scaffold: no client updates");
  HS_CHECK(num_clients_ > 0, "Scaffold: init() not called");
  RoundStats stats = summarize_updates(updates, model.state_size());
  const std::size_t p = c_global_.size();
  // The flat state layout is params followed by buffers, so the first p
  // entries of `global` are the round-start parameters.
  Tensor global_params({p});
  for (std::size_t j = 0; j < p; ++j) global_params[j] = global[j];

  Tensor dw_sum({p});
  Tensor dc_sum({p});
  std::vector<Tensor> buffer_states;
  buffer_states.reserve(updates.size());

  for (ClientUpdate& u : updates) {
    // dw = y - w_global over the parameter prefix of the returned state.
    for (std::size_t j = 0; j < p; ++j) {
      dw_sum[j] += u.state[j] - global_params[j];
    }
    const Tensor ci_old =
        c_clients_[u.client_id].empty() ? Tensor({p}) : c_clients_[u.client_id];
    dc_sum += u.aux - ci_old;
    c_clients_[u.client_id] = std::move(u.aux);
    buffer_states.push_back(std::move(u.state));
  }

  // Server update: params move by the mean client delta; buffers (BN stats)
  // are plain-averaged; c accumulates (1/N) * sum dc.
  const float inv_s = 1.0f / static_cast<float>(updates.size());
  Tensor new_params = global_params;
  new_params.axpy(inv_s, dw_sum);
  std::vector<double> eq_weights(buffer_states.size(), 1.0);
  Tensor avg_state = weighted_average_states(buffer_states, eq_weights);
  model.set_state(avg_state);
  model.set_params(new_params);
  c_global_.axpy(1.0f / static_cast<float>(num_clients_), dc_sum);
  stats.extras["scaffold.c_global_norm"] =
      static_cast<double>(c_global_.norm());
  stats.extras["scaffold.dc_norm"] = static_cast<double>(dc_sum.norm());
  return stats;
}

void Scaffold::save_state(AlgorithmCheckpoint& out) const {
  if (!c_global_.empty()) out.tensors["scaffold.c_global"] = c_global_;
  out.words["scaffold.num_clients"] = num_clients_;
  for (std::size_t i = 0; i < c_clients_.size(); ++i) {
    if (!c_clients_[i].empty()) {
      out.tensors["scaffold.c." + std::to_string(i)] = c_clients_[i];
    }
  }
}

void Scaffold::load_state(const AlgorithmCheckpoint& in) {
  // load_state runs after init(), so c_clients_ is already sized for the
  // population; only the control variates recorded at save time are restored,
  // the rest stay empty exactly as they were mid-run.
  const auto cg = in.tensors.find("scaffold.c_global");
  if (cg != in.tensors.end()) c_global_ = cg->second;
  const auto nc = in.words.find("scaffold.num_clients");
  if (nc != in.words.end()) {
    HS_CHECK(nc->second == num_clients_,
             "Scaffold::load_state: population size mismatch");
  }
  for (std::size_t i = 0; i < c_clients_.size(); ++i) {
    const auto it = in.tensors.find("scaffold.c." + std::to_string(i));
    if (it != in.tensors.end()) c_clients_[i] = it->second;
  }
}

}  // namespace hetero
