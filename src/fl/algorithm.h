// Federated optimization algorithms.
//
// A FederatedAlgorithm owns both sides of one method: the client update rule
// and the server aggregation. The simulation calls run_round() with the
// round's selected clients; the algorithm mutates the shared global Model.
// A single Model instance is reused for every simulated client by swapping
// flat states (memory stays O(1) in the number of clients).
//
// Implemented methods (Section 6.2 of the paper):
//   * FedAvg   (McMahan et al. 2017)  - sample-weighted state averaging.
//   * q-FedAvg (Li et al. 2019)       - loss-reweighted updates for fair
//                                       resource allocation.
//   * FedProx  (Li et al. 2020)       - proximal L2 term in the client
//                                       objective.
//   * SCAFFOLD (Karimireddy et al. 2020) - client/server control variates.
// HeteroSwitch itself lives in src/hetero and plugs into the same interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fl/trainer.h"
#include "nn/model.h"

namespace hetero {

class Rng;

/// Per-round statistics reported back to the simulation.
struct RoundStats {
  double mean_train_loss = 0.0;  ///< sample-weighted mean of client losses
};

class FederatedAlgorithm {
 public:
  virtual ~FederatedAlgorithm() = default;

  /// Called once before round 0. num_clients is the population size N.
  virtual void init(Model& model, std::size_t num_clients) {
    (void)model;
    (void)num_clients;
  }

  /// Runs one communication round over the selected clients (indices into
  /// client_data) and updates the global model in place.
  virtual RoundStats run_round(Model& model,
                               const std::vector<std::size_t>& selected,
                               const std::vector<Dataset>& client_data,
                               Rng& rng) = 0;

  virtual std::string name() const = 0;
};

class FedAvg : public FederatedAlgorithm {
 public:
  explicit FedAvg(LocalTrainConfig cfg) : cfg_(cfg) {}

  RoundStats run_round(Model& model, const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data,
                       Rng& rng) override;
  std::string name() const override { return "FedAvg"; }

 protected:
  LocalTrainConfig cfg_;
};

/// q-FedAvg: clients with higher loss receive higher aggregation weight,
/// trading a little average accuracy for lower variance. q -> 0 recovers
/// FedAvg. Paper grid: q in {1e-6 .. 1e-1}, chosen value 1e-6.
class QFedAvg : public FederatedAlgorithm {
 public:
  QFedAvg(LocalTrainConfig cfg, double q) : cfg_(cfg), q_(q) {}

  RoundStats run_round(Model& model, const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data,
                       Rng& rng) override;
  std::string name() const override { return "q-FedAvg"; }

 private:
  LocalTrainConfig cfg_;
  double q_;
};

/// FedProx: adds mu/2 * ||w - w_global||^2 to each client objective,
/// implemented as a gradient correction mu * (w - w_global) before the step.
/// Paper grid: mu in {1e-5 .. 1e-1}, chosen value 1e-1.
class FedProx : public FederatedAlgorithm {
 public:
  FedProx(LocalTrainConfig cfg, float mu) : cfg_(cfg), mu_(mu) {}

  RoundStats run_round(Model& model, const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data,
                       Rng& rng) override;
  std::string name() const override { return "FedProx"; }

 private:
  LocalTrainConfig cfg_;
  float mu_;
};

/// SCAFFOLD: corrects client drift with control variates. The server keeps
/// a global variate c; every client i keeps a persistent c_i (Option II
/// update). Both cover trainable parameters only (buffers are averaged as
/// in FedAvg).
class Scaffold : public FederatedAlgorithm {
 public:
  explicit Scaffold(LocalTrainConfig cfg) : cfg_(cfg) {}

  void init(Model& model, std::size_t num_clients) override;
  RoundStats run_round(Model& model, const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data,
                       Rng& rng) override;
  std::string name() const override { return "Scaffold"; }

 private:
  LocalTrainConfig cfg_;
  std::size_t num_clients_ = 0;
  Tensor c_global_;                 // (P)
  std::vector<Tensor> c_clients_;   // N x (P), lazily zero-initialized
};

/// FedAvgM (extension beyond the paper): FedAvg with server-side momentum.
/// The server treats the round's average client delta as a pseudo-gradient
/// and applies momentum to it — often stabilizes training under client
/// heterogeneity. Included as an additional baseline for the ablation
/// benches.
class FedAvgM : public FederatedAlgorithm {
 public:
  FedAvgM(LocalTrainConfig cfg, float server_momentum)
      : cfg_(cfg), beta_(server_momentum) {}

  void init(Model& model, std::size_t num_clients) override;
  RoundStats run_round(Model& model, const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data,
                       Rng& rng) override;
  std::string name() const override { return "FedAvgM"; }

 private:
  LocalTrainConfig cfg_;
  float beta_;
  Tensor velocity_;  // over the full state
};

/// Sample-size-weighted average of client states; the FedAvg aggregation
/// shared by several methods.
Tensor weighted_average_states(const std::vector<Tensor>& states,
                               const std::vector<double>& weights);

}  // namespace hetero
