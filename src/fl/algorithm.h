// Federated optimization algorithms.
//
// A FederatedAlgorithm owns both sides of one method: the client update rule
// and the server aggregation. The simulation calls run_round() with the
// round's selected clients; the algorithm mutates the shared global Model.
// A single Model instance is reused for every simulated client by swapping
// flat states (memory stays O(1) in the number of clients).
//
// run_round is a non-virtual entry point (NVI): it builds a default
// RoundContext when the caller passes none and forwards to the protected
// virtual do_run_round(..., RoundContext&). The context threads the
// telemetry observer (fl/observer.h) and per-client wall-time accounting
// through every execution path, so existing 4-argument callsites keep
// compiling while new callers attach observability.
//
// Implemented methods (Section 6.2 of the paper):
//   * FedAvg   (McMahan et al. 2017)  - sample-weighted state averaging.
//   * q-FedAvg (Li et al. 2019)       - loss-reweighted updates for fair
//                                       resource allocation.
//   * FedProx  (Li et al. 2020)       - proximal L2 term in the client
//                                       objective.
//   * SCAFFOLD (Karimireddy et al. 2020) - client/server control variates.
// HeteroSwitch itself lives in src/hetero and plugs into the same interface.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fl/observer.h"
#include "fl/trainer.h"
#include "nn/model.h"

namespace hetero {

class Rng;

/// Per-round statistics reported back to the simulation and delivered to
/// observers via RoundObserver::on_round_end.
struct RoundStats {
  double mean_train_loss = 0.0;  ///< sample-weighted mean of client losses
  double min_train_loss = 0.0;   ///< best single client loss (unweighted)
  double max_train_loss = 0.0;   ///< worst single client loss (unweighted)
  std::size_t num_clients = 0;   ///< clients that trained this round
  double weight_sum = 0.0;       ///< total aggregation weight (sample count)
  /// Estimated client->server traffic: tensor payloads actually returned
  /// (state + aux at 4 bytes/element, or the compressed size where the
  /// algorithm compresses).
  std::uint64_t bytes_up = 0;
  /// Estimated server->client traffic: one full state per selected client.
  std::uint64_t bytes_down = 0;
  /// Wall time of the whole round (fan-out + aggregate); filled by the
  /// executor, NOT deterministic.
  double round_seconds = 0.0;
  /// Virtual time of the round: the simulated makespan (slowest client's
  /// injected delay + backoff + modeled compute) for sync rounds, or the
  /// virtual-clock span of the flush window for scheduled runs. Unlike
  /// round_seconds this is deterministic (DESIGN.md §11); 0 when no
  /// virtual time passed.
  double virtual_seconds = 0.0;
  /// Algorithm-specific scalars keyed by a namespaced name (for example
  /// "hs.switch1", "dp.noise_stddev", "scaffold.c_global_norm"). A sorted
  /// map so traces list extras in a stable order. Adding a new scalar
  /// needs no new virtuals anywhere.
  std::map<std::string, double> extras;
};

class SplitFederatedAlgorithm;

/// Server-side algorithm state captured at a round boundary for
/// checkpoint/resume (fl/checkpoint.h). Three typed maps so every kind of
/// state round-trips bit-exactly: `scalars` for doubles (written as raw
/// 64-bit patterns — an EMA must not survive a float32 detour), `words`
/// for exact integer state (counters, RNG engine words), `tensors` for
/// f32 payloads (momentum, control variates, residuals). Keys are
/// namespaced per algorithm ("fedavgm.velocity", "hs.ema", ...).
struct AlgorithmCheckpoint {
  std::map<std::string, double> scalars;
  std::map<std::string, std::uint64_t> words;
  std::map<std::string, Tensor> tensors;
};

class FederatedAlgorithm {
 public:
  virtual ~FederatedAlgorithm() = default;

  /// Called once before round 0. num_clients is the population size N.
  virtual void init(Model& model, std::size_t num_clients) {
    (void)model;
    (void)num_clients;
  }

  /// Runs one communication round over the selected clients (indices into
  /// client_data) and updates the global model in place. When `ctx` is
  /// null a throwaway context is used (no telemetry); otherwise per-client
  /// observations and wall-time accounting flow through it.
  RoundStats run_round(Model& model, const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data, Rng& rng,
                       RoundContext* ctx = nullptr);

  /// Runtime hook: algorithms whose round decomposes into pure per-client
  /// local updates plus a serial aggregate return themselves here, which
  /// lets the parallel client executor fan their clients out over worker
  /// threads. Kept as a virtual instead of a dynamic_cast so the runtime
  /// library needs no link-time dependency on this one. Algorithms with
  /// serial cross-client state (e.g. a shared noise stream) return nullptr
  /// and always run their own round serially.
  virtual SplitFederatedAlgorithm* as_split() { return nullptr; }

  /// Staleness decay applied by the async/buffered event scheduler to an
  /// update that arrives `staleness` server versions after its dispatch
  /// (FedAsync; DESIGN.md §11): the aggregation weight is multiplied by
  /// f(s) = (1 + s)^-exponent. The default guarantees f(0) == 1 exactly,
  /// so zero-staleness updates keep their sync FedAvg weight bit-for-bit;
  /// algorithms may override for other decay families.
  virtual double staleness_weight(std::size_t staleness,
                                  double exponent) const;

  /// Checkpoint hooks: capture / restore every piece of server-side state
  /// the algorithm mutates across rounds, so a resumed run continues
  /// bit-for-bit (asserted in tests/test_population.cpp). Stateless
  /// algorithms (FedAvg, q-FedAvg, FedProx) keep the no-op defaults.
  /// load_state is always called after init() on a freshly constructed
  /// algorithm, so implementations may rely on init()-sized containers.
  virtual void save_state(AlgorithmCheckpoint& out) const { (void)out; }
  virtual void load_state(const AlgorithmCheckpoint& in) { (void)in; }

  virtual std::string name() const = 0;

 protected:
  /// The actual round implementation. Implementations must report every
  /// client through ctx.finish_client (timing + observer delivery); round
  /// begin/end events are emitted by the driver (ClientExecutor), not here.
  virtual RoundStats do_run_round(Model& model,
                                  const std::vector<std::size_t>& selected,
                                  const std::vector<Dataset>& client_data,
                                  Rng& rng, RoundContext& ctx) = 0;
};

/// The result of one client's local training, produced by
/// SplitFederatedAlgorithm::local_update and consumed by aggregate().
/// `aux` / `aux_scalar` / `flags` carry algorithm-specific payloads
/// (SCAFFOLD's updated control variate, q-FedAvg's scaled delta and F_k,
/// HeteroSwitch's switch decisions).
struct ClientUpdate {
  std::size_t client_id = 0;
  Tensor state;             ///< post-training flat state (empty if unused)
  double weight = 0.0;      ///< aggregation weight (usually sample count)
  double train_loss = 0.0;  ///< running-mean train loss of the local pass
  Tensor aux;               ///< algorithm-specific tensor payload
  double aux_scalar = 0.0;  ///< algorithm-specific scalar payload
  unsigned flags = 0;       ///< algorithm-specific bit flags
  double train_seconds = 0.0;  ///< wall time spent in local_update
  /// Uplink bytes this update actually cost on the wire. 0 means "derive
  /// from the tensors" ((state + aux) * 4 bytes); compressing algorithms
  /// set the real compressed size so byte accounting survives the
  /// local_update/aggregate split (aux may carry client-side-only state
  /// like error-feedback residuals that never travel).
  std::uint64_t payload_bytes = 0;
};

/// Uplink byte cost of one update: payload_bytes when set, else the dense
/// tensor sizes. Shared by summarize_updates and make_observation.
std::uint64_t update_payload_bytes(const ClientUpdate& update);

/// Partial-aggregation guard (DESIGN.md §10): true when every numeric field
/// and tensor coordinate of the update is finite and the weight is
/// non-negative. Aggregates must never see an update that fails this —
/// the executor (and the serial reference round) quarantines it first.
bool validate_update(const ClientUpdate& update);

/// Removes updates failing validate_update (stable, preserves `selected`
/// order); returns how many were quarantined.
std::size_t drop_invalid_updates(std::vector<ClientUpdate>& updates);

/// Fills the generic RoundStats fields from a round's client updates:
/// sample-weighted mean loss, unweighted min/max loss, client/weight
/// totals, and the byte estimates (uplink from the tensors each update
/// carries, downlink as one global state per client). Call it BEFORE an
/// aggregate moves the state tensors out of `updates`. extras stay empty
/// for the caller to fill.
RoundStats summarize_updates(const std::vector<ClientUpdate>& updates,
                             std::size_t global_state_size);

/// Base for algorithms split into a pure per-client phase and a serial
/// server phase. The contract that makes parallel execution bit-identical
/// to serial execution:
///   * local_update is const and must not touch shared mutable state; it
///     depends only on (global, client_id, data, client_rng). The caller
///     derives client_rng as rng.fork(client_id) — keyed by client id, not
///     loop order — so the stream is identical however clients are
///     scheduled.
///   * aggregate runs serially and folds updates in `selected` order, so
///     floating-point accumulation order never depends on thread timing.
class SplitFederatedAlgorithm : public FederatedAlgorithm {
 public:
  /// One client's local training pass against the round-start state
  /// `global`. Must set_state(global) on the given model before touching
  /// it; the model may be a per-worker replica with arbitrary prior state.
  virtual ClientUpdate local_update(Model& model, const Tensor& global,
                                    std::size_t client_id, const Dataset& data,
                                    Rng& client_rng) const = 0;

  /// Serial server phase: folds the round's updates (ordered like the
  /// round's `selected` list) into the global model. `global` is the
  /// round-start state local_update ran against.
  ///
  /// Partial-aggregation semantics (DESIGN.md §10): `updates` may be a
  /// strict subset of the round's selected clients — dropped, timed-out,
  /// failed, and quarantined clients are filtered out by the driver before
  /// this call, in `selected` order. Implementations must renormalize over
  /// the survivors (weight totals, equal-weight divisors) and never assume
  /// updates.size() equals the selection size; the driver guarantees
  /// `updates` is non-empty and every update passes validate_update().
  virtual RoundStats aggregate(Model& model, const Tensor& global,
                               std::vector<ClientUpdate>& updates) = 0;

  SplitFederatedAlgorithm* as_split() override { return this; }

  /// Edge-tier (hierarchical) aggregation capability (DESIGN.md §14): true
  /// when aggregate() is a renormalized weighted mean over update states,
  /// so folding a group of updates into one weighted digest first
  /// (partial_aggregate) and then aggregating the digests is the same
  /// mathematical average — the two-level tree merely re-associates the
  /// sum. Algorithms whose aggregate consumes per-client payloads (control
  /// variates, per-client flags, loss-reweighted deltas) must return false;
  /// hierarchical_aggregate refuses them.
  virtual bool supports_partial_aggregation() const { return false; }

  /// Distributed-worker capability: true when local_update depends only on
  /// (global, client_id, data, client_rng) — no server-held cross-round
  /// state — so a remote worker's freshly constructed algorithm instance
  /// produces bit-identical updates. Algorithms whose client phase reads
  /// state mutated by aggregate (SCAFFOLD's control variates, HeteroSwitch's
  /// EMA, error-feedback residuals) must return false; the wire layer
  /// (src/net) refuses them.
  virtual bool stateless_client_phase() const { return false; }

  /// Folds one edge group's updates into a single weighted digest: state =
  /// renormalized weighted mean over the group (the PR 4 partial-
  /// aggregation primitive), weight = summed group weight, train_loss =
  /// weighted mean group loss. The digest is a valid ClientUpdate, so the
  /// root-side aggregate() consumes digests exactly like client updates.
  /// Consumes the group's state tensors.
  virtual ClientUpdate partial_aggregate(const Tensor& global,
                                         std::vector<ClientUpdate>& group) const;

 protected:
  /// Serial reference implementation: local_update per selected client on
  /// the shared model (timed, reported through ctx), then aggregate. The
  /// parallel executor produces the same updates from worker replicas.
  RoundStats do_run_round(Model& model,
                          const std::vector<std::size_t>& selected,
                          const std::vector<Dataset>& client_data, Rng& rng,
                          RoundContext& ctx) override;
};

class FedAvg : public SplitFederatedAlgorithm {
 public:
  explicit FedAvg(LocalTrainConfig cfg) : cfg_(cfg) {}

  ClientUpdate local_update(Model& model, const Tensor& global,
                            std::size_t client_id, const Dataset& data,
                            Rng& client_rng) const override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  bool supports_partial_aggregation() const override { return true; }
  bool stateless_client_phase() const override { return true; }
  std::string name() const override { return "FedAvg"; }

 protected:
  LocalTrainConfig cfg_;
};

/// q-FedAvg: clients with higher loss receive higher aggregation weight,
/// trading a little average accuracy for lower variance. q -> 0 recovers
/// FedAvg. Paper grid: q in {1e-6 .. 1e-1}, chosen value 1e-6.
class QFedAvg : public SplitFederatedAlgorithm {
 public:
  QFedAvg(LocalTrainConfig cfg, double q) : cfg_(cfg), q_(q) {}

  ClientUpdate local_update(Model& model, const Tensor& global,
                            std::size_t client_id, const Dataset& data,
                            Rng& client_rng) const override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  // aggregate needs every client's (delta, F_k) pair — a weighted digest
  // loses the per-client loss reweighting, so no edge tier for q-FedAvg.
  bool stateless_client_phase() const override { return true; }
  std::string name() const override { return "q-FedAvg"; }

 private:
  LocalTrainConfig cfg_;
  double q_;
};

/// FedProx: adds mu/2 * ||w - w_global||^2 to each client objective,
/// implemented as a gradient correction mu * (w - w_global) before the step.
/// Paper grid: mu in {1e-5 .. 1e-1}, chosen value 1e-1.
class FedProx : public SplitFederatedAlgorithm {
 public:
  FedProx(LocalTrainConfig cfg, float mu) : cfg_(cfg), mu_(mu) {}

  ClientUpdate local_update(Model& model, const Tensor& global,
                            std::size_t client_id, const Dataset& data,
                            Rng& client_rng) const override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  bool supports_partial_aggregation() const override { return true; }
  bool stateless_client_phase() const override { return true; }
  std::string name() const override { return "FedProx"; }

 private:
  LocalTrainConfig cfg_;
  float mu_;
};

/// SCAFFOLD: corrects client drift with control variates. The server keeps
/// a global variate c; every client i keeps a persistent c_i (Option II
/// update). Both cover trainable parameters only (buffers are averaged as
/// in FedAvg). local_update only *reads* the variates (an absent c_i acts
/// as zeros); all writes happen in aggregate, keeping the client phase pure.
class Scaffold : public SplitFederatedAlgorithm {
 public:
  explicit Scaffold(LocalTrainConfig cfg) : cfg_(cfg) {}

  void init(Model& model, std::size_t num_clients) override;
  ClientUpdate local_update(Model& model, const Tensor& global,
                            std::size_t client_id, const Dataset& data,
                            Rng& client_rng) const override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  void save_state(AlgorithmCheckpoint& out) const override;
  void load_state(const AlgorithmCheckpoint& in) override;
  std::string name() const override { return "Scaffold"; }

 private:
  LocalTrainConfig cfg_;
  std::size_t num_clients_ = 0;
  Tensor c_global_;                 // (P)
  std::vector<Tensor> c_clients_;   // N x (P), empty = zeros (never trained)
};

/// FedAvgM (extension beyond the paper): FedAvg with server-side momentum.
/// The server treats the round's average client delta as a pseudo-gradient
/// and applies momentum to it — often stabilizes training under client
/// heterogeneity. Included as an additional baseline for the ablation
/// benches. The client phase is plain FedAvg local training (inherited).
class FedAvgM : public FedAvg {
 public:
  FedAvgM(LocalTrainConfig cfg, float server_momentum)
      : FedAvg(cfg), beta_(server_momentum) {}

  void init(Model& model, std::size_t num_clients) override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  void save_state(AlgorithmCheckpoint& out) const override;
  void load_state(const AlgorithmCheckpoint& in) override;
  std::string name() const override { return "FedAvgM"; }

 private:
  float beta_;
  Tensor velocity_;  // over the full state
};

/// Sample-size-weighted average of client states; the FedAvg aggregation
/// shared by several methods.
Tensor weighted_average_states(const std::vector<Tensor>& states,
                               const std::vector<double>& weights);

/// Edge group owning a selection position in a two-level aggregation tree:
/// contiguous blocks of the round's `selected` list, g = pos * E / n. The
/// single source of truth for the client→edge mapping — the monolithic
/// hierarchical path, the root server, and the edge nodes all call this, so
/// the grouping (and therefore every floating-point fold) agrees bit-for-bit.
std::size_t edge_group_of(std::size_t position, std::size_t n_selected,
                          std::size_t edge_groups);

/// Two-level aggregation (DESIGN.md §14): splits the survivors into
/// edge_groups contiguous selection blocks (by their original positions in
/// the round's `selected` list), folds each into one weighted digest via
/// split.partial_aggregate, and feeds the digests — in edge order — to
/// split.aggregate. The returned stats keep the *client-level* summary
/// (summarize_updates over the survivors, computed before any state moves),
/// merge the aggregate's extras on top, and add extras["net.edges"].
/// Requires split.supports_partial_aggregation(). Consumes `updates`.
RoundStats hierarchical_aggregate(Model& model, SplitFederatedAlgorithm& split,
                                  const Tensor& global,
                                  std::vector<ClientUpdate>& updates,
                                  const std::vector<std::size_t>& positions,
                                  std::size_t n_selected,
                                  std::size_t edge_groups);

}  // namespace hetero
