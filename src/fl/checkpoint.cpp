#include "fl/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.h"

namespace hetero {
namespace {

constexpr char kMagic[4] = {'H', 'S', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& os, double v) {
  // Raw bit pattern: the round-trip must be bit-exact, not text-exact.
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(os, bits);
}

void write_string(std::ostream& os, const std::string& s) {
  write_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string read_string(std::istream& is) {
  const std::uint32_t n = read_u32(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return s;
}

void write_f64_vector(std::ostream& os, const std::vector<double>& v) {
  write_u64(os, v.size());
  for (double x : v) write_f64(os, x);
}

std::vector<double> read_f64_vector(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_f64(is));
  return v;
}

}  // namespace

CheckpointOptions parse_checkpoint_spec(const std::string& spec) {
  CheckpointOptions opts;
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string field = spec.substr(start, end - start);
    if (first) {
      opts.dir = field;
      first = false;
    } else if (!field.empty()) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        throw std::runtime_error("parse_checkpoint_spec: bad field '" + field +
                                 "'");
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "every") {
        const unsigned long n = std::stoul(value);
        if (n == 0) {
          throw std::runtime_error("parse_checkpoint_spec: every must be > 0");
        }
        opts.every = static_cast<std::size_t>(n);
      } else if (key == "resume") {
        opts.resume = value != "0";
      } else {
        throw std::runtime_error("parse_checkpoint_spec: unknown key '" + key +
                                 "'");
      }
    }
    start = end + 1;
  }
  if (opts.dir.empty()) {
    throw std::runtime_error("parse_checkpoint_spec: empty directory");
  }
  return opts;
}

std::string checkpoint_path(const CheckpointOptions& opts) {
  return opts.dir + "/checkpoint.bin";
}

void write_checkpoint(const std::string& path,
                      const SimulationCheckpoint& ck) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("checkpoint: cannot open " + tmp);
    os.write(kMagic, sizeof(kMagic));
    write_u32(os, kVersion);
    write_u64(os, ck.next_round);
    write_u64(os, ck.seed);
    write_u64(os, ck.num_clients);
    write_u64(os, ck.clients_per_round);
    write_string(os, ck.algorithm);
    for (std::uint64_t s : ck.rng.s) write_u64(os, s);
    write_u64(os, ck.rng.has_cached_normal ? 1 : 0);
    write_f64(os, ck.rng.cached_normal);
    write_tensor(os, ck.model_state);
    write_f64_vector(os, ck.loss_history);
    write_f64_vector(os, ck.round_virtual_seconds);
    write_u64(os, ck.counters.size());
    for (const auto& [key, value] : ck.counters) {
      write_string(os, key);
      write_f64(os, value);
    }
    write_u64(os, ck.algo.scalars.size());
    for (const auto& [key, value] : ck.algo.scalars) {
      write_string(os, key);
      write_f64(os, value);
    }
    write_u64(os, ck.algo.words.size());
    for (const auto& [key, value] : ck.algo.words) {
      write_string(os, key);
      write_u64(os, value);
    }
    write_u64(os, ck.algo.tensors.size());
    for (const auto& [key, value] : ck.algo.tensors) {
      write_string(os, key);
      write_tensor(os, value);
    }
    if (!os) throw std::runtime_error("checkpoint: write failed on " + tmp);
  }
  // Atomic publish: a crash before this line leaves the old checkpoint.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
}

bool read_checkpoint(const std::string& path, SimulationCheckpoint& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const std::uint32_t version = read_u32(is);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version in " + path);
  }
  out.next_round = read_u64(is);
  out.seed = read_u64(is);
  out.num_clients = read_u64(is);
  out.clients_per_round = read_u64(is);
  out.algorithm = read_string(is);
  for (std::uint64_t& s : out.rng.s) s = read_u64(is);
  out.rng.has_cached_normal = read_u64(is) != 0;
  out.rng.cached_normal = read_f64(is);
  out.model_state = read_tensor(is);
  out.loss_history = read_f64_vector(is);
  out.round_virtual_seconds = read_f64_vector(is);
  out.counters.clear();
  const std::uint64_t n_counters = read_u64(is);
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string key = read_string(is);
    out.counters[std::move(key)] = read_f64(is);
  }
  out.algo = AlgorithmCheckpoint{};
  const std::uint64_t n_scalars = read_u64(is);
  for (std::uint64_t i = 0; i < n_scalars; ++i) {
    std::string key = read_string(is);
    out.algo.scalars[std::move(key)] = read_f64(is);
  }
  const std::uint64_t n_words = read_u64(is);
  for (std::uint64_t i = 0; i < n_words; ++i) {
    std::string key = read_string(is);
    out.algo.words[std::move(key)] = read_u64(is);
  }
  const std::uint64_t n_tensors = read_u64(is);
  for (std::uint64_t i = 0; i < n_tensors; ++i) {
    std::string key = read_string(is);
    out.algo.tensors[std::move(key)] = read_tensor(is);
  }
  return true;
}

}  // namespace hetero
