// Round-level checkpoint / resume for the synchronous simulation loop
// (DESIGN.md §12).
//
// A checkpoint freezes everything the sync loop needs to continue a run
// bit-for-bit: the round cursor, the model state, the sampling Rng's full
// engine state, the loss/virtual-time histories, the fault counters, and
// the algorithm's cross-round state via FederatedAlgorithm::save_state.
// Doubles are stored as raw 8-byte little-endian words so the round-trip is
// bit-exact; tensors reuse the "HSTN" serializer from tensor/serialize.h.
//
// The file is written atomically (tmp file + rename) so a crash mid-write
// leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fl/algorithm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace hetero {

/// Where / how often the sync loop checkpoints. Parsed from the HS_CHECKPOINT
/// environment spec "DIR[,every=N][,resume=0|1]" by parse_checkpoint_spec.
struct CheckpointOptions {
  std::string dir;        ///< empty disables checkpointing entirely
  std::size_t every = 1;  ///< write after every N completed rounds
  bool resume = true;     ///< resume from an existing checkpoint if present

  bool enabled() const { return !dir.empty(); }
};

/// Parses "DIR[,every=N][,resume=0|1]" (the HS_CHECKPOINT format). Throws
/// std::runtime_error on a malformed spec.
CheckpointOptions parse_checkpoint_spec(const std::string& spec);

/// The canonical checkpoint file inside opts.dir.
std::string checkpoint_path(const CheckpointOptions& opts);

/// Everything needed to resume a sync run at `next_round` with output
/// bit-identical to the uninterrupted run. seed / num_clients /
/// clients_per_round / algorithm are recorded so resume can refuse a
/// checkpoint written by a differently-configured run.
struct SimulationCheckpoint {
  std::uint64_t next_round = 0;  ///< first round the resumed loop executes
  std::uint64_t seed = 0;
  std::uint64_t num_clients = 0;
  std::uint64_t clients_per_round = 0;
  std::string algorithm;  ///< FederatedAlgorithm::name() at save time
  RngState rng;           ///< sampling/fork Rng cursor
  Tensor model_state;
  std::vector<double> loss_history;
  std::vector<double> round_virtual_seconds;
  /// Deterministic run counters (fault totals etc.), keyed by name.
  std::map<std::string, double> counters;
  AlgorithmCheckpoint algo;
};

/// Serializes to `path` atomically (tmp + rename). Creates the parent
/// directory if needed. Throws std::runtime_error on I/O failure.
void write_checkpoint(const std::string& path, const SimulationCheckpoint& ck);

/// Returns false if `path` does not exist; throws std::runtime_error on a
/// malformed or truncated file.
bool read_checkpoint(const std::string& path, SimulationCheckpoint& out);

}  // namespace hetero
