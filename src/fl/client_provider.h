// ClientProvider: the lazy population interface behind run_simulation,
// ClientExecutor, and the event scheduler (DESIGN.md §12).
//
// A provider answers "who is client i and what data does it hold" without
// prescribing HOW the answer is produced. MaterializedPopulation serves a
// resident FlPopulation (the eager pre-PR layout); VirtualPopulation
// regenerates any client on demand from a seeded recipe, so a 1M-client
// population costs O(k) memory per round instead of O(N). Both are
// interchangeable: for the same spec and root Rng they produce bit-identical
// datasets per client, asserted in tests/test_population.cpp.
//
// Materialization writes into a caller-owned ClientSlot (one per worker
// thread), which recycles the previous client's buffers — the kernels
// Workspace arena idiom applied one level up — so steady-state allocations
// during a round are flat in both N and the number of rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace hetero {

/// Reusable materialization arena. `data` holds the most recently
/// materialized dataset; `xs` / `labels` / `targets` are the spare buffers
/// the next materialization recycles (release_buffers moves them back out
/// of `data` first). Providers that serve resident datasets ignore the slot
/// entirely. A slot must not be shared between concurrent materializations;
/// the executor and scheduler keep one per worker.
struct ClientSlot {
  Dataset data;
  Tensor xs;
  std::vector<std::size_t> labels;
  Tensor targets;
};

/// Cumulative materialization counters a lazy provider may expose (see
/// ClientProvider::population_counters). Invariant for providers that
/// report them: every client_dataset call is exactly one materialization
/// and resolves as exactly one cache hit or one miss, so
/// hits + misses == materializations at every instant — the executor
/// stamps per-round deltas as pop.* round extras and tools/trace_check.cpp
/// re-validates the identity per round.
struct PopulationCounters {
  std::uint64_t materializations = 0;  ///< client_dataset calls served
  std::uint64_t cache_hits = 0;        ///< served from the dataset LRU
  std::uint64_t cache_misses = 0;      ///< ran the generation recipe
  double gen_seconds = 0.0;            ///< wall time inside the recipe
};

/// Abstract population: per-client device assignment, work size, and
/// (possibly lazily generated) local datasets, plus the per-device-type
/// held-out test sets.
///
/// Thread-safety contract: every const member must be pure with respect to
/// shared state — client_dataset may only write through the caller's slot —
/// because the executor and scheduler call these concurrently from worker
/// threads (DESIGN.md §7 extends to materialization).
class ClientProvider {
 public:
  virtual ~ClientProvider() = default;

  /// Population size N.
  virtual std::size_t num_clients() const = 0;

  /// Device-type index of client i (into device_names / device_test).
  virtual std::size_t device_of(std::size_t client) const = 0;

  /// Work units of client i (its local dataset size), feeding the event
  /// scheduler's DelayModel without materializing the dataset.
  virtual double work_of(std::size_t client) const = 0;

  /// Client i's local dataset. Lazy providers materialize into `slot` and
  /// return a reference into it (valid until the slot's next use); eager
  /// providers return the resident dataset and leave the slot untouched.
  virtual const Dataset& client_dataset(std::size_t client,
                                        ClientSlot& slot) const = 0;

  /// Held-out test set per device type (always resident; O(#devices)).
  virtual const std::vector<Dataset>& device_test() const = 0;
  virtual const std::vector<std::string>& device_names() const = 0;

  /// Relative compute slowdown per device type (see
  /// FlPopulation::device_speed_scale). Empty = homogeneous.
  virtual const std::vector<double>& device_speed_scale() const = 0;

  /// Per-client compute slowdown: device_speed_scale through device_of.
  /// Pure and thread-safe; this is what FaultOptions::delay_scale_fn and
  /// the DelayModel consult instead of O(N) per-client vectors.
  double speed_scale_of(std::size_t client) const {
    const std::vector<double>& scale = device_speed_scale();
    if (scale.empty()) return 1.0;
    const std::size_t dev = device_of(client);
    return dev < scale.size() ? scale[dev] : 1.0;
  }

  /// Fills `out` with cumulative materialization counters and returns true
  /// when this provider tracks them (lazy populations); eager providers
  /// keep the default false and the executor stamps no pop.* extras.
  virtual bool population_counters(PopulationCounters& /*out*/) const {
    return false;
  }

  /// The resident dataset vector, when this provider has one. Serial-only
  /// algorithms (no split form) run FederatedAlgorithm::run_round, whose
  /// signature indexes a vector — the executor uses this escape hatch and
  /// rejects virtual populations there (materializing N datasets to run a
  /// serial fallback would defeat the provider's purpose).
  virtual const std::vector<Dataset>* dataset_vector() const {
    return nullptr;
  }
};

/// Adapter over a bare dataset vector (no device metadata): every client is
/// device 0 and there are no test sets. The legacy vector<Dataset> entry
/// points of ClientExecutor / EventScheduler wrap their argument in this, so
/// pre-provider call sites keep compiling and behaving identically.
class VectorDatasetProvider final : public ClientProvider {
 public:
  explicit VectorDatasetProvider(const std::vector<Dataset>& data)
      : data_(&data) {}

  std::size_t num_clients() const override { return data_->size(); }
  std::size_t device_of(std::size_t) const override { return 0; }
  double work_of(std::size_t client) const override {
    return static_cast<double>(data_->at(client).size());
  }
  const Dataset& client_dataset(std::size_t client,
                                ClientSlot&) const override {
    return data_->at(client);
  }
  const std::vector<Dataset>& device_test() const override {
    return empty_datasets();
  }
  const std::vector<std::string>& device_names() const override {
    static const std::vector<std::string> kEmpty;
    return kEmpty;
  }
  const std::vector<double>& device_speed_scale() const override {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  const std::vector<Dataset>* dataset_vector() const override {
    return data_;
  }

 private:
  static const std::vector<Dataset>& empty_datasets() {
    static const std::vector<Dataset> kEmpty;
    return kEmpty;
  }

  const std::vector<Dataset>* data_;
};

}  // namespace hetero
