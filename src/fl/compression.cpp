#include "fl/compression.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace hetero {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

SparseUpdate top_k_sparsify(const Tensor& dense, std::size_t k) {
  SparseUpdate out;
  out.dense_size = dense.size();
  k = std::min(k, dense.size());
  if (k == 0) return out;

  // Partial selection of the k largest-magnitude coordinates.
  std::vector<std::uint32_t> order(dense.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return std::abs(dense[a]) > std::abs(dense[b]);
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());  // deterministic layout

  out.indices = std::move(order);
  out.values.reserve(k);
  for (std::uint32_t idx : out.indices) out.values.push_back(dense[idx]);
  return out;
}

Tensor densify(const SparseUpdate& sparse) {
  Tensor out({sparse.dense_size});
  HS_CHECK(sparse.indices.size() == sparse.values.size(),
           "densify: index/value count mismatch");
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    HS_CHECK(sparse.indices[i] < sparse.dense_size,
             "densify: index out of range");
    out[sparse.indices[i]] = sparse.values[i];
  }
  return out;
}

Tensor quantize_dequantize(const Tensor& dense, int bits) {
  HS_CHECK(bits >= 1 && bits <= 16, "quantize_dequantize: bits in [1,16]");
  if (dense.empty()) return dense;
  const float lo = dense.min();
  const float hi = dense.max();
  if (hi - lo < 1e-12f) return dense;  // constant: nothing to quantize
  const float levels = static_cast<float>((1 << bits) - 1);
  const float step = (hi - lo) / levels;
  Tensor out = dense;
  for (float& v : out.flat()) {
    const float q = std::round((v - lo) / step);
    v = lo + q * step;
  }
  return out;
}

CompressedFedAvg::CompressedFedAvg(LocalTrainConfig cfg,
                                   CompressionOptions options)
    : cfg_(cfg), options_(options) {
  HS_CHECK(options_.top_k_fraction > 0.0f && options_.top_k_fraction <= 1.0f,
           "CompressedFedAvg: top_k_fraction in (0, 1]");
  HS_CHECK(options_.quantize_bits == 0 ||
               (options_.quantize_bits >= 1 && options_.quantize_bits <= 16),
           "CompressedFedAvg: quantize_bits 0 or in [1,16]");
}

void CompressedFedAvg::init(Model& model, std::size_t num_clients) {
  (void)model;
  residuals_.assign(num_clients, Tensor());
}

RoundStats CompressedFedAvg::do_run_round(
    Model& model, const std::vector<std::size_t>& selected,
    const std::vector<Dataset>& client_data, Rng& rng, RoundContext& ctx) {
  HS_CHECK(!selected.empty(), "CompressedFedAvg: no clients selected");
  HS_CHECK(!residuals_.empty(), "CompressedFedAvg: init() not called");
  const Tensor global = model.state();
  const std::size_t dim = global.size();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(dim) *
                                  options_.top_k_fraction));

  Tensor update_sum({dim});
  RoundStats stats;
  stats.num_clients = selected.size();
  double loss_sum = 0.0, weight_sum = 0.0, byte_sum = 0.0;
  double loss_min = 0.0, loss_max = 0.0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::size_t id = selected[i];
    const Dataset& data = client_data.at(id);
    model.set_state(global);
    Rng client_rng = rng.fork(id);
    const Clock::time_point c0 = Clock::now();
    const float loss = local_train(model, data, cfg_, client_rng);
    const double client_seconds = seconds_since(c0);
    Tensor delta = model.state() - global;

    // Error feedback: add the residual this client still owes from earlier
    // compressions before deciding what to transmit.
    HS_CHECK(id < residuals_.size(),
             "CompressedFedAvg: client id out of range");
    if (options_.error_feedback && !residuals_[id].empty()) {
      delta += residuals_[id];
    }

    // Compress: top-k, then optional value quantization.
    Tensor transmitted;
    std::size_t bytes;
    if (options_.top_k_fraction < 1.0f) {
      SparseUpdate sparse = top_k_sparsify(delta, k);
      if (options_.quantize_bits > 0 && !sparse.values.empty()) {
        Tensor vals({sparse.values.size()}, sparse.values);
        vals = quantize_dequantize(vals, options_.quantize_bits);
        std::copy(vals.data(), vals.data() + vals.size(),
                  sparse.values.data());
        // Quantized payload: bits per value + 4 bytes per index.
        bytes = sparse.indices.size() *
                (sizeof(std::uint32_t) +
                 static_cast<std::size_t>(options_.quantize_bits + 7) / 8);
      } else {
        bytes = sparse.byte_cost();
      }
      transmitted = densify(sparse);
    } else {
      transmitted = options_.quantize_bits > 0
                        ? quantize_dequantize(delta, options_.quantize_bits)
                        : delta;
      bytes = options_.quantize_bits > 0
                  ? dim * static_cast<std::size_t>(options_.quantize_bits + 7) /
                        8
                  : dim * sizeof(float);
    }

    if (options_.error_feedback) {
      residuals_[id] = delta - transmitted;
    }
    update_sum += transmitted;
    byte_sum += static_cast<double>(bytes);
    loss_sum += loss * static_cast<double>(data.size());
    weight_sum += static_cast<double>(data.size());
    const double l = static_cast<double>(loss);
    loss_min = (i == 0) ? l : std::min(loss_min, l);
    loss_max = (i == 0) ? l : std::max(loss_max, l);

    ClientObservation obs;
    obs.client_id = id;
    obs.order = i;
    obs.weight = static_cast<double>(data.size());
    obs.train_loss = l;
    obs.update_bytes = bytes;  // compressed, not dense
    obs.train_seconds = client_seconds;
    ctx.finish_client(obs);
    stats.bytes_up += static_cast<std::uint64_t>(bytes);
  }

  update_sum *= 1.0f / static_cast<float>(selected.size());
  Tensor new_state = global + update_sum;
  model.set_state(new_state);
  last_dense_bytes_ = dim * sizeof(float);
  last_compressed_bytes_ = static_cast<std::size_t>(
      byte_sum / static_cast<double>(selected.size()));
  stats.mean_train_loss = loss_sum / weight_sum;
  stats.min_train_loss = loss_min;
  stats.max_train_loss = loss_max;
  stats.weight_sum = weight_sum;
  stats.bytes_down = static_cast<std::uint64_t>(selected.size()) *
                     static_cast<std::uint64_t>(dim) * sizeof(float);
  stats.extras["comp.dense_bytes"] =
      static_cast<double>(last_dense_bytes_);
  stats.extras["comp.compressed_bytes"] =
      static_cast<double>(last_compressed_bytes_);
  stats.extras["comp.ratio"] =
      static_cast<double>(last_compressed_bytes_) /
      static_cast<double>(last_dense_bytes_);
  return stats;
}

}  // namespace hetero
