#include "fl/compression.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "util/rng.h"

namespace hetero {

SparseUpdate top_k_sparsify(const Tensor& dense, std::size_t k) {
  SparseUpdate out;
  out.dense_size = dense.size();
  k = std::min(k, dense.size());
  if (k == 0) return out;

  // Partial selection of the k largest-magnitude coordinates.
  std::vector<std::uint32_t> order(dense.size());
  std::iota(order.begin(), order.end(), 0u);
  // Ties at the k-boundary are broken by index: without the tie-break the
  // selected index set among equal magnitudes is whatever the stdlib's
  // nth_element partitioning leaves, i.e. implementation-defined — the
  // same update could compress differently across platforms.
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float fa = std::abs(dense[a]);
                     const float fb = std::abs(dense[b]);
                     if (fa != fb) return fa > fb;
                     return a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());  // deterministic layout

  out.indices = std::move(order);
  out.values.reserve(k);
  for (std::uint32_t idx : out.indices) out.values.push_back(dense[idx]);
  return out;
}

Tensor densify(const SparseUpdate& sparse) {
  Tensor out({sparse.dense_size});
  HS_CHECK(sparse.indices.size() == sparse.values.size(),
           "densify: index/value count mismatch");
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    HS_CHECK(sparse.indices[i] < sparse.dense_size,
             "densify: index out of range");
    out[sparse.indices[i]] = sparse.values[i];
  }
  return out;
}

Tensor quantize_dequantize(const Tensor& dense, int bits) {
  HS_CHECK(bits >= 1 && bits <= 16, "quantize_dequantize: bits in [1,16]");
  if (dense.empty()) return dense;
  const float lo = dense.min();
  const float hi = dense.max();
  if (hi - lo < 1e-12f) return dense;  // constant: nothing to quantize
  const float levels = static_cast<float>((1 << bits) - 1);
  const float step = (hi - lo) / levels;
  Tensor out = dense;
  for (float& v : out.flat()) {
    const float q = std::round((v - lo) / step);
    v = lo + q * step;
  }
  return out;
}

CompressedFedAvg::CompressedFedAvg(LocalTrainConfig cfg,
                                   CompressionOptions options)
    : cfg_(cfg), options_(options) {
  HS_CHECK(options_.top_k_fraction > 0.0f && options_.top_k_fraction <= 1.0f,
           "CompressedFedAvg: top_k_fraction in (0, 1]");
  HS_CHECK(options_.quantize_bits == 0 ||
               (options_.quantize_bits >= 1 && options_.quantize_bits <= 16),
           "CompressedFedAvg: quantize_bits 0 or in [1,16]");
}

void CompressedFedAvg::init(Model& model, std::size_t num_clients) {
  (void)model;
  residuals_.assign(num_clients, Tensor());
}

ClientUpdate CompressedFedAvg::local_update(Model& model, const Tensor& global,
                                            std::size_t client_id,
                                            const Dataset& data,
                                            Rng& client_rng) const {
  HS_CHECK(!residuals_.empty(), "CompressedFedAvg: init() not called");
  HS_CHECK(client_id < residuals_.size(),
           "CompressedFedAvg: client id out of range");
  const std::size_t dim = global.size();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(dim) *
                                  options_.top_k_fraction));
  model.set_state(global);
  const float loss = local_train(model, data, cfg_, client_rng);
  Tensor delta = model.state() - global;

  // Error feedback: add the residual this client still owes from earlier
  // compressions before deciding what to transmit. Reading the shared
  // residual is safe here: a client appears at most once per round and
  // writes happen only in the serial aggregate.
  if (options_.error_feedback && !residuals_[client_id].empty()) {
    delta += residuals_[client_id];
  }

  // Compress: top-k, then optional value quantization.
  Tensor transmitted;
  std::size_t bytes;
  if (options_.top_k_fraction < 1.0f) {
    SparseUpdate sparse = top_k_sparsify(delta, k);
    if (options_.quantize_bits > 0 && !sparse.values.empty()) {
      Tensor vals({sparse.values.size()}, sparse.values);
      vals = quantize_dequantize(vals, options_.quantize_bits);
      std::copy(vals.data(), vals.data() + vals.size(),
                sparse.values.data());
      // Quantized payload: bits per value + 4 bytes per index.
      bytes = sparse.indices.size() *
              (sizeof(std::uint32_t) +
               static_cast<std::size_t>(options_.quantize_bits + 7) / 8);
    } else {
      bytes = sparse.byte_cost();
    }
    transmitted = densify(sparse);
  } else {
    transmitted = options_.quantize_bits > 0
                      ? quantize_dequantize(delta, options_.quantize_bits)
                      : delta;
    bytes = options_.quantize_bits > 0
                ? dim * static_cast<std::size_t>(options_.quantize_bits + 7) /
                      8
                : dim * sizeof(float);
  }

  ClientUpdate u;
  u.client_id = client_id;
  u.weight = static_cast<double>(data.size());
  u.train_loss = static_cast<double>(loss);
  if (options_.error_feedback) {
    // Next round's residual, stored by aggregate(); never transmitted, so
    // payload_bytes below excludes it.
    u.aux = delta - transmitted;
  }
  u.state = std::move(transmitted);
  u.payload_bytes = static_cast<std::uint64_t>(bytes);
  return u;
}

RoundStats CompressedFedAvg::aggregate(Model& model, const Tensor& global,
                                       std::vector<ClientUpdate>& updates) {
  HS_CHECK(!updates.empty(), "CompressedFedAvg: no client updates");
  HS_CHECK(!residuals_.empty(), "CompressedFedAvg: init() not called");
  const std::size_t dim = global.size();
  RoundStats stats = summarize_updates(updates, model.state_size());

  Tensor update_sum({dim});
  double byte_sum = 0.0;
  for (ClientUpdate& u : updates) {
    update_sum += u.state;
    byte_sum += static_cast<double>(u.payload_bytes);
    if (options_.error_feedback) {
      residuals_[u.client_id] = std::move(u.aux);
    }
  }

  update_sum *= 1.0f / static_cast<float>(updates.size());
  Tensor new_state = global + update_sum;
  model.set_state(new_state);
  last_dense_bytes_ = dim * sizeof(float);
  last_compressed_bytes_ = static_cast<std::size_t>(
      byte_sum / static_cast<double>(updates.size()));
  stats.extras["comp.dense_bytes"] =
      static_cast<double>(last_dense_bytes_);
  stats.extras["comp.compressed_bytes"] =
      static_cast<double>(last_compressed_bytes_);
  stats.extras["comp.ratio"] =
      static_cast<double>(last_compressed_bytes_) /
      static_cast<double>(last_dense_bytes_);
  return stats;
}

void CompressedFedAvg::save_state(AlgorithmCheckpoint& out) const {
  for (std::size_t i = 0; i < residuals_.size(); ++i) {
    if (!residuals_[i].empty()) {
      out.tensors["comp.residual." + std::to_string(i)] = residuals_[i];
    }
  }
}

void CompressedFedAvg::load_state(const AlgorithmCheckpoint& in) {
  // Runs after init(), so residuals_ is already population-sized and empty.
  for (std::size_t i = 0; i < residuals_.size(); ++i) {
    const auto it = in.tensors.find("comp.residual." + std::to_string(i));
    if (it != in.tensors.end()) residuals_[i] = it->second;
  }
}

}  // namespace hetero
