// Client-update compression for communication-efficient FL (extension
// beyond the paper; the paper's Section 1 motivates FL deployments where
// uplink bandwidth is the bottleneck).
//
// Two standard lossy schemes over flat update vectors:
//   * top-k sparsification — keep the k largest-magnitude coordinates;
//   * uniform quantization — b-bit midrise quantization of the value range.
// Both come with an exact byte-cost model so benches can report
// accuracy-vs-bytes trade-offs, and CompressedFedAvg wires either (or both)
// into the FedAvg aggregation path with optional client-side error
// feedback (residual accumulation), the standard fix for sparsification
// bias.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/algorithm.h"

namespace hetero {

/// Sparse representation of a compressed update.
struct SparseUpdate {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  std::size_t dense_size = 0;

  /// Uplink cost: 4 bytes per index + 4 per value (float32 payload).
  std::size_t byte_cost() const {
    return indices.size() * (sizeof(std::uint32_t) + sizeof(float));
  }
};

/// Keeps the k largest-|value| coordinates of `dense`. k is clamped to the
/// vector size; k == 0 yields an empty update.
SparseUpdate top_k_sparsify(const Tensor& dense, std::size_t k);

/// Scatters a sparse update back to a dense tensor of its original size.
Tensor densify(const SparseUpdate& sparse);

/// Uniform b-bit quantization of a tensor (midrise over [min, max]);
/// returns the dequantized tensor (what the server would reconstruct).
/// bits in [1, 16]. Constant tensors are returned unchanged.
Tensor quantize_dequantize(const Tensor& dense, int bits);

/// FedAvg with lossy client->server update compression.
struct CompressionOptions {
  /// Fraction of coordinates kept by top-k (1.0 disables sparsification).
  float top_k_fraction = 0.1f;
  /// Quantization bits for the kept values (0 disables quantization).
  int quantize_bits = 0;
  /// Client-side error feedback: residuals from compression are carried
  /// into the next round's update (per client, persistent).
  bool error_feedback = true;
};

/// Split form (honours HS_THREADS through the ClientExecutor): the pure
/// client phase trains, folds in this client's error-feedback residual
/// (read-only — a client appears at most once per round, and residual
/// writes happen only in the serial aggregate, the SCAFFOLD pattern for
/// per-client persistent state), compresses, and returns the densified
/// transmitted update in ClientUpdate::state with the new residual in aux
/// and the true compressed wire cost in payload_bytes. The serial
/// aggregate equal-weight averages the transmitted updates in `selected`
/// order and stores the residuals, so results are bit-identical for any
/// thread count. Client observations report the actual compressed byte
/// cost, and the round's compression summary lands in RoundStats::extras
/// ("comp.dense_bytes", "comp.compressed_bytes", "comp.ratio"). Under
/// partial aggregation an excluded client's residual stays untouched — it
/// never transmitted, so it still owes the same error.
class CompressedFedAvg : public SplitFederatedAlgorithm {
 public:
  CompressedFedAvg(LocalTrainConfig cfg, CompressionOptions options);

  void init(Model& model, std::size_t num_clients) override;
  ClientUpdate local_update(Model& model, const Tensor& global,
                            std::size_t client_id, const Dataset& data,
                            Rng& client_rng) const override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  std::string name() const override { return "CompressedFedAvg"; }

  /// Bytes a dense float32 update would have cost last round (per client).
  std::size_t last_dense_bytes() const { return last_dense_bytes_; }
  /// Mean compressed bytes actually "sent" per client last round.
  std::size_t last_compressed_bytes() const { return last_compressed_bytes_; }

  /// Round-level checkpoint hooks: per-client error-feedback residuals are
  /// the cross-round state (only non-empty residuals are recorded).
  void save_state(AlgorithmCheckpoint& out) const override;
  void load_state(const AlgorithmCheckpoint& in) override;

 private:
  LocalTrainConfig cfg_;
  CompressionOptions options_;
  std::vector<Tensor> residuals_;  // per-client error feedback
  std::size_t last_dense_bytes_ = 0;
  std::size_t last_compressed_bytes_ = 0;
};

}  // namespace hetero
