// Client-update compression for communication-efficient FL (extension
// beyond the paper; the paper's Section 1 motivates FL deployments where
// uplink bandwidth is the bottleneck).
//
// Two standard lossy schemes over flat update vectors:
//   * top-k sparsification — keep the k largest-magnitude coordinates;
//   * uniform quantization — b-bit midrise quantization of the value range.
// Both come with an exact byte-cost model so benches can report
// accuracy-vs-bytes trade-offs, and CompressedFedAvg wires either (or both)
// into the FedAvg aggregation path with optional client-side error
// feedback (residual accumulation), the standard fix for sparsification
// bias.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/algorithm.h"

namespace hetero {

/// Sparse representation of a compressed update.
struct SparseUpdate {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  std::size_t dense_size = 0;

  /// Uplink cost: 4 bytes per index + 4 per value (float32 payload).
  std::size_t byte_cost() const {
    return indices.size() * (sizeof(std::uint32_t) + sizeof(float));
  }
};

/// Keeps the k largest-|value| coordinates of `dense`. k is clamped to the
/// vector size; k == 0 yields an empty update.
SparseUpdate top_k_sparsify(const Tensor& dense, std::size_t k);

/// Scatters a sparse update back to a dense tensor of its original size.
Tensor densify(const SparseUpdate& sparse);

/// Uniform b-bit quantization of a tensor (midrise over [min, max]);
/// returns the dequantized tensor (what the server would reconstruct).
/// bits in [1, 16]. Constant tensors are returned unchanged.
Tensor quantize_dequantize(const Tensor& dense, int bits);

/// FedAvg with lossy client->server update compression.
struct CompressionOptions {
  /// Fraction of coordinates kept by top-k (1.0 disables sparsification).
  float top_k_fraction = 0.1f;
  /// Quantization bits for the kept values (0 disables quantization).
  int quantize_bits = 0;
  /// Client-side error feedback: residuals from compression are carried
  /// into the next round's update (per client, persistent).
  bool error_feedback = true;
};

class CompressedFedAvg : public FederatedAlgorithm {
 public:
  CompressedFedAvg(LocalTrainConfig cfg, CompressionOptions options);

  void init(Model& model, std::size_t num_clients) override;
  std::string name() const override { return "CompressedFedAvg"; }

  /// Bytes a dense float32 update would have cost last round (per client).
  std::size_t last_dense_bytes() const { return last_dense_bytes_; }
  /// Mean compressed bytes actually "sent" per client last round.
  std::size_t last_compressed_bytes() const { return last_compressed_bytes_; }

 protected:
  /// Serial by construction: per-client error-feedback residuals are
  /// read-modify-write shared state, so as_split() stays nullptr. Client
  /// observations report the actual compressed byte cost, and the round's
  /// compression summary lands in RoundStats::extras ("comp.dense_bytes",
  /// "comp.compressed_bytes", "comp.ratio").
  RoundStats do_run_round(Model& model,
                          const std::vector<std::size_t>& selected,
                          const std::vector<Dataset>& client_data, Rng& rng,
                          RoundContext& ctx) override;

 private:
  LocalTrainConfig cfg_;
  CompressionOptions options_;
  std::vector<Tensor> residuals_;  // per-client error feedback
  std::size_t last_dense_bytes_ = 0;
  std::size_t last_compressed_bytes_ = 0;
};

}  // namespace hetero
