#include "fl/eval.h"

#include <algorithm>
#include <numeric>

#include "kernels/kernels.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace hetero {
namespace {

/// Runs the model over the dataset in eval mode and returns stacked logits.
/// The EvalScope marks every forward below as inference-only, which is what
/// lets HS_EVAL=int8 reroute them (server-side eval and HeteroSwitch's
/// L_init / post-training probes all funnel through here) while training
/// forwards stay in f32 unconditionally.
Tensor forward_all(Model& model, const Dataset& data, std::size_t batch_size) {
  HS_CHECK(!data.empty(), "forward_all: empty dataset");
  const kernels::EvalScope eval_scope;
  Tensor logits;
  std::size_t out_dim = 0;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, data.size());
    idx.resize(end - start);
    std::iota(idx.begin(), idx.end(), start);
    Tensor out = model.forward(data.gather_x(idx), /*train=*/false);
    if (logits.empty()) {
      out_dim = out.dim(1);
      // The batch loop covers [0, data.size()) exactly once, so every row
      // is written before the tensor is read.
      logits = Tensor::uninit({data.size(), out_dim});
    }
    for (std::size_t i = 0; i < idx.size(); ++i) {
      std::copy(out.data() + i * out_dim, out.data() + (i + 1) * out_dim,
                logits.data() + idx[i] * out_dim);
    }
  }
  return logits;
}

}  // namespace

double evaluate_loss(Model& model, const Dataset& data,
                     std::size_t batch_size) {
  Tensor logits = forward_all(model, data, batch_size);
  if (data.is_multi_label()) {
    return BceWithLogits()(logits, data.multi_targets(), false).loss;
  }
  return SoftmaxCrossEntropy()(logits, data.labels(), false).loss;
}

double evaluate_accuracy(Model& model, const Dataset& data,
                         std::size_t batch_size) {
  HS_CHECK(!data.is_multi_label(),
           "evaluate_accuracy: use evaluate_average_precision for multi-label");
  Tensor logits = forward_all(model, data, batch_size);
  return accuracy(logits, data.labels());
}

double average_precision(const std::vector<float>& scores,
                         const std::vector<bool>& relevant) {
  HS_CHECK(scores.size() == relevant.size(),
           "average_precision: size mismatch");
  std::size_t positives = 0;
  for (bool r : relevant) positives += r ? 1 : 0;
  if (positives == 0) return 0.0;

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return scores[a] > scores[b];
  });
  double ap = 0.0;
  std::size_t hits = 0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    if (relevant[order[rank]]) {
      ++hits;
      ap += static_cast<double>(hits) / static_cast<double>(rank + 1);
    }
  }
  return ap / static_cast<double>(positives);
}

ClassificationReport classification_report(Model& model, const Dataset& data,
                                           std::size_t num_classes,
                                           std::size_t batch_size) {
  HS_CHECK(!data.is_multi_label(),
           "classification_report: single-label data required");
  HS_CHECK(num_classes > 0, "classification_report: zero classes");
  Tensor logits = forward_all(model, data, batch_size);
  HS_CHECK(logits.dim(1) == num_classes,
           "classification_report: class-count mismatch with model output");
  const auto preds = argmax_rows(logits);

  ClassificationReport report;
  report.confusion.assign(num_classes,
                          std::vector<std::size_t>(num_classes, 0));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::size_t truth = data.labels()[i];
    HS_CHECK(truth < num_classes, "classification_report: label out of range");
    ++report.confusion[truth][preds[i]];
    if (preds[i] == truth) ++correct;
  }
  report.accuracy = static_cast<double>(correct) /
                    static_cast<double>(data.size());
  report.per_class_recall.assign(num_classes, 0.0);
  double recall_sum = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::size_t total = 0;
    for (std::size_t p = 0; p < num_classes; ++p) {
      total += report.confusion[c][p];
    }
    if (total == 0) continue;
    report.per_class_recall[c] =
        static_cast<double>(report.confusion[c][c]) /
        static_cast<double>(total);
    recall_sum += report.per_class_recall[c];
    ++present;
  }
  report.macro_recall = present ? recall_sum / static_cast<double>(present)
                                : 0.0;
  return report;
}

double evaluate_average_precision(Model& model, const Dataset& data,
                                  std::size_t batch_size) {
  HS_CHECK(data.is_multi_label(),
           "evaluate_average_precision: needs a multi-label dataset");
  Tensor logits = forward_all(model, data, batch_size);
  const std::size_t n = data.size();
  const std::size_t l = data.multi_targets().dim(1);
  double sum_ap = 0.0;
  std::size_t counted = 0;
  std::vector<float> scores(n);
  std::vector<bool> relevant(n);
  for (std::size_t label = 0; label < l; ++label) {
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      scores[i] = logits.at(i, label);
      relevant[i] = data.multi_targets().at(i, label) > 0.5f;
      any = any || relevant[i];
    }
    if (!any) continue;  // labels absent from the set are skipped (macro AP)
    sum_ap += average_precision(scores, relevant);
    ++counted;
  }
  return counted ? sum_ap / static_cast<double>(counted) : 0.0;
}

}  // namespace hetero
