// Model evaluation: loss, accuracy, and multi-label average precision.
#pragma once

#include "data/dataset.h"
#include "nn/model.h"

namespace hetero {

/// Mean loss of the model on a dataset (no gradient, eval-mode batch norm).
/// Uses softmax-CE for single-label data, BCE for multi-label.
double evaluate_loss(Model& model, const Dataset& data,
                     std::size_t batch_size = 32);

/// Top-1 accuracy on a single-label dataset.
double evaluate_accuracy(Model& model, const Dataset& data,
                         std::size_t batch_size = 32);

/// Macro-averaged average precision (area under the precision-recall curve,
/// averaged over labels with at least one positive) on a multi-label
/// dataset. Scores are the sigmoid of the logits.
double evaluate_average_precision(Model& model, const Dataset& data,
                                  std::size_t batch_size = 32);

/// AP of one label column given (score, relevance) pairs — exposed for unit
/// tests.
double average_precision(const std::vector<float>& scores,
                         const std::vector<bool>& relevant);

/// Detailed single-label evaluation: confusion matrix and per-class recall.
struct ClassificationReport {
  /// confusion[true_class][predicted_class] = count.
  std::vector<std::vector<std::size_t>> confusion;
  std::vector<double> per_class_recall;  ///< 0 for classes with no samples
  double accuracy = 0.0;
  /// Mean recall over classes that appear in the data.
  double macro_recall = 0.0;
};

ClassificationReport classification_report(Model& model, const Dataset& data,
                                           std::size_t num_classes,
                                           std::size_t batch_size = 32);

}  // namespace hetero
