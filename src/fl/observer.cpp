#include "fl/observer.h"

#include <algorithm>
#include <cstdint>

#include "fl/algorithm.h"
#include "fl/simulation.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace hetero {

ClientObservation make_observation(const ClientUpdate& update,
                                   std::size_t order) {
  ClientObservation o;
  o.client_id = update.client_id;
  o.order = order;
  o.weight = update.weight;
  o.train_loss = update.train_loss;
  o.flags = update.flags;
  o.update_bytes = static_cast<std::size_t>(update_payload_bytes(update));
  o.train_seconds = update.train_seconds;
  return o;
}

void RoundContext::finish_client(const ClientObservation& client) {
  client_seconds_sum += client.train_seconds;
  client_seconds_max = std::max(client_seconds_max, client.train_seconds);
  if (observer) observer->on_client_end(round, client);
}

void RoundContext::finish_client(const ClientUpdate& update,
                                 std::size_t order) {
  finish_client(make_observation(update, order));
}

// --------------------------------------------------------- MulticastObserver

void MulticastObserver::add(RoundObserver* child) {
  if (child) children_.push_back(child);
}

void MulticastObserver::on_round_begin(
    std::size_t round, const std::vector<std::size_t>& selected) {
  for (RoundObserver* c : children_) c->on_round_begin(round, selected);
}

void MulticastObserver::on_client_end(std::size_t round,
                                      const ClientObservation& client) {
  for (RoundObserver* c : children_) c->on_client_end(round, client);
}

void MulticastObserver::on_round_end(std::size_t round,
                                     const RoundStats& stats) {
  for (RoundObserver* c : children_) c->on_round_end(round, stats);
}

void MulticastObserver::on_eval(std::size_t round,
                                const DeviceMetrics& metrics) {
  for (RoundObserver* c : children_) c->on_eval(round, metrics);
}

// ---------------------------------------------------------- CallbackObserver

void CallbackObserver::on_round_end(std::size_t round,
                                    const RoundStats& stats) {
  if (fn_) fn_(round, stats.mean_train_loss);
}

std::unique_ptr<RoundObserver> observer_from_callback(
    std::function<void(std::size_t, double)> fn) {
  return std::make_unique<CallbackObserver>(std::move(fn));
}

// ----------------------------------------------------------- TracingObserver

void TracingObserver::on_round_begin(std::size_t round,
                                     const std::vector<std::size_t>& selected) {
  obs::JsonObjectBuilder b = tracer_.event("round_begin");
  b.add("round", static_cast<std::uint64_t>(round));
  b.add("k", static_cast<std::uint64_t>(selected.size()));
  std::vector<std::uint64_t> clients(selected.begin(), selected.end());
  b.add_array("clients", clients);
  tracer_.write(b);
}

void TracingObserver::on_client_end(std::size_t round,
                                    const ClientObservation& client) {
  obs::JsonObjectBuilder b = tracer_.event("client_end");
  b.add("round", static_cast<std::uint64_t>(round));
  b.add("client", static_cast<std::uint64_t>(client.client_id));
  b.add("order", static_cast<std::uint64_t>(client.order));
  b.add("weight", client.weight);
  b.add("loss", client.train_loss);
  b.add("flags", static_cast<std::uint64_t>(client.flags));
  b.add("bytes", static_cast<std::uint64_t>(client.update_bytes));
  // Emitted only when a fault fired so zero-fault traces are byte-identical
  // to traces from builds without the fault layer.
  if (client.fault != 0) b.add("fault", static_cast<std::uint64_t>(client.fault));
  // Virtual-clock fields (deterministic — emitted regardless of the
  // timings flag). "vseconds" appears only when the client occupied
  // virtual time; the scheduler provenance trio only for scheduled runs,
  // so sync traces stay byte-identical to pre-scheduler builds.
  if (client.virtual_seconds > 0.0) b.add("vseconds", client.virtual_seconds);
  if (client.scheduled) {
    b.add("vt", client.virtual_time);
    b.add("version", client.version);
    b.add("staleness", static_cast<std::uint64_t>(client.staleness));
  }
  if (tracer_.include_timings()) b.add("seconds", client.train_seconds);
  tracer_.write(b);
}

void TracingObserver::on_round_end(std::size_t round, const RoundStats& stats) {
  obs::JsonObjectBuilder b = tracer_.event("round_end");
  b.add("round", static_cast<std::uint64_t>(round));
  b.add("loss", stats.mean_train_loss);
  b.add("loss_min", stats.min_train_loss);
  b.add("loss_max", stats.max_train_loss);
  b.add("clients", static_cast<std::uint64_t>(stats.num_clients));
  b.add("weight", stats.weight_sum);
  b.add("bytes_up", static_cast<std::uint64_t>(stats.bytes_up));
  b.add("bytes_down", static_cast<std::uint64_t>(stats.bytes_down));
  // Virtual round makespan — deterministic, so emitted independent of the
  // timings flag, but only when virtual time actually passed (clean sync
  // rounds stay byte-identical to pre-scheduler traces).
  if (stats.virtual_seconds > 0.0) b.add("vseconds", stats.virtual_seconds);
  // std::map iterates keys sorted, keeping the emitted field order stable.
  // pop.* extras are timing-class data: gen_seconds is wall time, and under
  // LRU eviction the hit/miss split can depend on worker interleaving — so
  // they are gated with the timings flag to keep deterministic traces
  // byte-identical across thread counts.
  for (const auto& [key, value] : stats.extras) {
    if (!tracer_.include_timings() && key.rfind("pop.", 0) == 0) continue;
    b.add(key, value);
  }
  if (tracer_.include_timings()) b.add("seconds", stats.round_seconds);
  tracer_.write(b);
}

void TracingObserver::on_eval(std::size_t round, const DeviceMetrics& metrics) {
  obs::JsonObjectBuilder b = tracer_.event("eval");
  b.add("round", static_cast<std::uint64_t>(round));
  b.add("average", metrics.average);
  b.add("variance", metrics.variance);
  b.add("worst_case", metrics.worst_case);
  b.add("devices", static_cast<std::uint64_t>(metrics.per_device.size()));
  b.add_array("per_device", metrics.per_device);
  tracer_.write(b);
}

// ----------------------------------------------------------- MetricsObserver

void MetricsObserver::on_round_begin(std::size_t /*round*/,
                                     const std::vector<std::size_t>& selected) {
  registry_.counter("fl.rounds").add(1);
  registry_.counter("fl.clients").add(selected.size());
}

void MetricsObserver::on_client_end(std::size_t /*round*/,
                                    const ClientObservation& client) {
  registry_.histogram("fl.client_loss").observe(client.train_loss);
  registry_.histogram("fl.client_seconds").observe(client.train_seconds);
  if (client.virtual_seconds > 0.0) {
    registry_.histogram("fl.client_vseconds").observe(client.virtual_seconds);
  }
  if (client.scheduled) {
    registry_.histogram("fl.client_staleness")
        .observe(static_cast<double>(client.staleness));
  }
  if (client.fault != 0) registry_.counter("fl.client_faults").add(1);
}

void MetricsObserver::on_round_end(std::size_t /*round*/,
                                   const RoundStats& stats) {
  registry_.histogram("fl.round_loss").observe(stats.mean_train_loss);
  registry_.histogram("fl.round_seconds").observe(stats.round_seconds);
  registry_.gauge("fl.last_round_loss").set(stats.mean_train_loss);
  registry_.counter("fl.bytes_up").add(stats.bytes_up);
  registry_.counter("fl.bytes_down").add(stats.bytes_down);
  for (const auto& [key, value] : stats.extras) {
    registry_.gauge("fl.extra." + key).set(value);
  }
}

void MetricsObserver::on_eval(std::size_t /*round*/,
                              const DeviceMetrics& metrics) {
  registry_.gauge("fl.eval_average").set(metrics.average);
  registry_.gauge("fl.eval_variance").set(metrics.variance);
  registry_.gauge("fl.eval_worst_case").set(metrics.worst_case);
}

}  // namespace hetero
