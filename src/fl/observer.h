// RoundObserver: the simulation's telemetry API (DESIGN.md §8).
//
// One observer sees every phase of a federated run:
//   on_round_begin(round, selected)   before any client trains
//   on_client_end(round, observation) once per client, in `selected` order
//   on_round_end(round, stats)        after the server aggregate
//   on_eval(round, metrics)           at eval checkpoints and the final eval
//
// Delivery contract: all events fire on the simulation's caller thread.
// The parallel executor buffers per-worker client results and flushes them
// in `selected` order, so the event stream — like the simulation results
// themselves — is deterministic for any thread count (the determinism
// contract of §7). Only ClientObservation::train_seconds and
// RoundStats::round_seconds are wall-clock and therefore nondeterministic;
// TracingObserver can omit them to produce byte-identical traces.
//
// This header is include-light on purpose (the runtime layer includes it
// through fl/algorithm.h): heavyweight types are forward-declared and the
// concrete observers live in observer.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace hetero {

struct ClientUpdate;
struct DeviceMetrics;
struct RoundStats;

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Scalar view of one finished client update — everything an observer may
/// want from a ClientUpdate except the tensor payloads.
struct ClientObservation {
  std::size_t client_id = 0;
  std::size_t order = 0;        ///< position in the round's `selected` list
  double weight = 0.0;          ///< aggregation weight (sample count)
  double train_loss = 0.0;
  unsigned flags = 0;           ///< algorithm-specific bits (e.g. switches)
  std::size_t update_bytes = 0; ///< uplink payload estimate (state + aux)
  double train_seconds = 0.0;   ///< wall time; NOT deterministic
  /// Virtual seconds this client occupied the simulated timeline: injected
  /// straggler delay + retry backoff + modeled compute time (timeout_s for
  /// timed-out clients). Deterministic, unlike train_seconds, so
  /// TracingObserver emits it even with timings off — but only when
  /// non-zero, keeping delay-free traces byte-identical to older builds.
  double virtual_seconds = 0.0;
  /// Fault disposition of this client (a FaultKind value; see
  /// runtime/faults.h). 0 = clean update; non-zero marks a straggler or a
  /// client whose update was excluded from aggregation. TracingObserver
  /// only emits the field when non-zero, so zero-fault traces stay
  /// byte-identical to builds without the fault layer.
  unsigned fault = 0;
  /// Event-scheduler provenance (DESIGN.md §11); only meaningful when
  /// `scheduled` is set, and only then do the trace fields appear.
  bool scheduled = false;
  double virtual_time = 0.0;    ///< virtual timestamp of the commit
  std::uint64_t version = 0;    ///< server model version trained against
  std::size_t staleness = 0;    ///< server versions committed since dispatch
};

/// Builds the scalar view of a ClientUpdate (update_bytes honours
/// ClientUpdate::payload_bytes, else counts the state and aux tensors at
/// 4 bytes/parameter).
ClientObservation make_observation(const ClientUpdate& update,
                                   std::size_t order);

/// The observation interface. All hooks default to no-ops so observers
/// implement only what they need.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  virtual void on_round_begin(std::size_t /*round*/,
                              const std::vector<std::size_t>& /*selected*/) {}
  virtual void on_client_end(std::size_t /*round*/,
                             const ClientObservation& /*client*/) {}
  virtual void on_round_end(std::size_t /*round*/,
                            const RoundStats& /*stats*/) {}
  virtual void on_eval(std::size_t /*round*/,
                       const DeviceMetrics& /*metrics*/) {}
};

/// Per-round execution context threaded through FederatedAlgorithm::
/// run_round and the ClientExecutor: carries the observer (may be null)
/// plus the per-client wall-time accounting every execution path fills —
/// including the serial-only algorithms (DP-FedAvg, CompressedFedAvg), so
/// RuntimeStats::client_seconds_* is populated on every path.
struct RoundContext {
  std::size_t round = 0;
  RoundObserver* observer = nullptr;  ///< non-owning; null = no telemetry

  double client_seconds_sum = 0.0;
  double client_seconds_max = 0.0;

  /// Records one client's wall time and, when an observer is attached,
  /// delivers its observation.
  void finish_client(const ClientObservation& client);
  /// Convenience: finish_client(make_observation(update, order)).
  void finish_client(const ClientUpdate& update, std::size_t order);
};

/// Fans events out to any number of child observers (registration order).
class MulticastObserver : public RoundObserver {
 public:
  /// Null children are ignored, so callers can add conditionally.
  void add(RoundObserver* child);
  bool empty() const { return children_.empty(); }

  void on_round_begin(std::size_t round,
                      const std::vector<std::size_t>& selected) override;
  void on_client_end(std::size_t round,
                     const ClientObservation& client) override;
  void on_round_end(std::size_t round, const RoundStats& stats) override;
  void on_eval(std::size_t round, const DeviceMetrics& metrics) override;

 private:
  std::vector<RoundObserver*> children_;
};

/// Adapter for the deprecated SimulationConfig::on_round callback: forwards
/// on_round_end as fn(round, stats.mean_train_loss).
class CallbackObserver : public RoundObserver {
 public:
  explicit CallbackObserver(std::function<void(std::size_t, double)> fn)
      : fn_(std::move(fn)) {}

  void on_round_end(std::size_t round, const RoundStats& stats) override;

 private:
  std::function<void(std::size_t, double)> fn_;
};

/// Wraps a legacy (round, mean-loss) callback in a RoundObserver.
std::unique_ptr<RoundObserver> observer_from_callback(
    std::function<void(std::size_t, double)> fn);

/// Emits the trace events of DESIGN.md §8 through an obs::Tracer. Honours
/// the tracer's include_timings flag: with timings off the emitted trace is
/// byte-identical for any thread count.
class TracingObserver : public RoundObserver {
 public:
  explicit TracingObserver(obs::Tracer& tracer) : tracer_(tracer) {}

  void on_round_begin(std::size_t round,
                      const std::vector<std::size_t>& selected) override;
  void on_client_end(std::size_t round,
                     const ClientObservation& client) override;
  void on_round_end(std::size_t round, const RoundStats& stats) override;
  void on_eval(std::size_t round, const DeviceMetrics& metrics) override;

 private:
  obs::Tracer& tracer_;
};

/// Feeds an obs::MetricsRegistry:
///   counters   fl.rounds, fl.clients, fl.bytes_up, fl.bytes_down,
///              fl.client_faults (clients with a non-zero fault kind)
///   histograms fl.client_loss, fl.client_seconds, fl.round_loss,
///              fl.round_seconds
///   gauges     fl.last_round_loss, fl.eval_average, fl.eval_variance,
///              fl.eval_worst_case, plus fl.extra.<key> for every
///              per-algorithm RoundStats extra.
class MetricsObserver : public RoundObserver {
 public:
  explicit MetricsObserver(obs::MetricsRegistry& registry)
      : registry_(registry) {}

  void on_round_begin(std::size_t round,
                      const std::vector<std::size_t>& selected) override;
  void on_client_end(std::size_t round,
                     const ClientObservation& client) override;
  void on_round_end(std::size_t round, const RoundStats& stats) override;
  void on_eval(std::size_t round, const DeviceMetrics& metrics) override;

 private:
  obs::MetricsRegistry& registry_;
};

}  // namespace hetero
