#include "fl/population.h"

#include <algorithm>

#include "runtime/sched/delay_model.h"
#include "util/rng.h"

namespace hetero {
namespace {

/// Builds one client's local dataset: samples_per_client scenes with labels
/// drawn uniformly over classes, captured by the client's device.
Dataset build_client_dataset(const DeviceProfile& device,
                             std::size_t num_samples,
                             const SceneGenerator& scenes,
                             const CaptureConfig& cfg, Rng& rng) {
  const std::size_t side =
      cfg.raw_mode ? cfg.raw_tensor_size : cfg.tensor_size;
  const std::size_t channels = cfg.raw_mode ? 4 : 3;
  Tensor xs({num_samples, channels, side, side});
  std::vector<std::size_t> labels(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const std::size_t cls = rng.uniform_int(SceneGenerator::kNumClasses);
    const Image scene = scenes.generate(cls, rng);
    xs.set_slice0(i, capture_to_tensor(scene, device, cfg, rng));
    labels[i] = cls;
  }
  return Dataset(std::move(xs), std::move(labels));
}

}  // namespace

FlPopulation build_population(const std::vector<DeviceProfile>& devices,
                              const PopulationConfig& cfg,
                              const SceneGenerator& scenes, Rng& rng) {
  HS_CHECK(!devices.empty(), "build_population: no devices");
  HS_CHECK(cfg.num_clients > 0, "build_population: no clients");
  FlPopulation pop;
  pop.device_names.reserve(devices.size());
  for (const auto& d : devices) pop.device_names.push_back(d.name);
  pop.device_speed_scale = device_speed_scales(devices);

  // Device assignment for each client.
  std::vector<double> shares;
  for (const auto& d : devices) shares.push_back(d.market_share);
  auto excluded = [&](std::size_t dev) {
    return std::find(cfg.exclude_from_training.begin(),
                     cfg.exclude_from_training.end(),
                     dev) != cfg.exclude_from_training.end();
  };
  pop.client_device.reserve(cfg.num_clients);
  std::size_t rr = 0;  // round-robin cursor for uniform assignment
  for (std::size_t i = 0; i < cfg.num_clients; ++i) {
    std::size_t dev = 0;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      if (cfg.assignment == DeviceAssignment::kMarketShare) {
        dev = rng.categorical(shares);
      } else {
        dev = rr++ % devices.size();
      }
      if (!excluded(dev)) break;
    }
    HS_CHECK(!excluded(dev),
             "build_population: all devices excluded from training");
    pop.client_device.push_back(dev);
  }

  // Client datasets.
  pop.client_train.reserve(cfg.num_clients);
  for (std::size_t i = 0; i < cfg.num_clients; ++i) {
    Rng client_rng = rng.fork(1000 + i);
    pop.client_train.push_back(
        build_client_dataset(devices[pop.client_device[i]],
                             cfg.samples_per_client, scenes, cfg.capture,
                             client_rng));
  }

  // Per-device test sets: same scene distribution, disjoint rng stream.
  pop.device_test.reserve(devices.size());
  for (std::size_t d = 0; d < devices.size(); ++d) {
    Rng test_rng = rng.fork(900000 + d);
    pop.device_test.push_back(build_device_dataset(
        devices[d], cfg.test_per_class, scenes, cfg.capture, test_rng));
  }
  return pop;
}

FlPopulation build_flair_population(const std::vector<DeviceProfile>& devices,
                                    std::size_t num_clients,
                                    std::size_t samples_per_client,
                                    std::size_t test_per_device,
                                    const CaptureConfig& capture,
                                    const FlairSceneGenerator& scenes,
                                    Rng& rng) {
  HS_CHECK(!devices.empty(), "build_flair_population: no devices");
  HS_CHECK(num_clients > 0, "build_flair_population: no clients");
  FlPopulation pop;
  for (const auto& d : devices) pop.device_names.push_back(d.name);
  pop.device_speed_scale = device_speed_scales(devices);

  std::vector<double> shares;
  for (const auto& d : devices) shares.push_back(d.market_share);

  for (std::size_t i = 0; i < num_clients; ++i) {
    const std::size_t dev = rng.categorical(shares);
    pop.client_device.push_back(dev);
    Rng client_rng = rng.fork(2000 + i);
    const auto prefs = scenes.sample_user_preferences(client_rng);
    pop.client_train.push_back(build_flair_user_dataset(
        devices[dev], prefs, samples_per_client, scenes, capture, client_rng));
  }

  // Device test sets use a flat label profile (no user skew) so per-device
  // AP differences isolate the device effect.
  const std::vector<double> flat(FlairSceneGenerator::kNumLabels,
                                 1.0 / FlairSceneGenerator::kNumLabels);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    Rng test_rng = rng.fork(910000 + d);
    pop.device_test.push_back(build_flair_user_dataset(
        devices[d], flat, test_per_device, scenes, capture, test_rng));
  }
  return pop;
}

}  // namespace hetero
