#include "fl/population.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "kernels/internal.h"
#include "runtime/sched/delay_model.h"
#include "util/config.h"
#include "util/rng.h"

namespace hetero {
namespace {

// Per-client and per-device stream keys (DESIGN.md §12). Data streams keep
// the legacy single-tag forks (fork(1000 + i) / fork(2000 + i)) so client
// contents survive the redesign; the device assignment and the test sets
// use two-key forks, whose streams are decorrelated from every single-tag
// stream — at million-client scale `1000 + i` would otherwise collide with
// a test tag.
constexpr std::uint64_t kAssignTag = 0xA551;          // (kAssignTag, client)
constexpr std::uint64_t kSingleDataBase = 1000;       // 1000 + client
constexpr std::uint64_t kFlairDataBase = 2000;        // 2000 + client
constexpr std::uint64_t kSingleTestTag = 0x7E5701;    // (kSingleTestTag, dev)
constexpr std::uint64_t kFlairTestTag = 0x7E5702;     // (kFlairTestTag, dev)
// Per-image render stream inside one client: forked off the client stream
// AFTER its serial metadata draws, keyed on the image index. This is what
// lets the image loop run on any intra-op worker count with bit-identical
// output — stream contents depend only on (client stream state, i), never
// on execution order.
constexpr std::uint64_t kImageTag = 0x1316E;          // (kImageTag, image)

void check_spec(const PopulationSpec& spec) {
  HS_CHECK(!spec.devices.empty(), "PopulationSpec: no devices");
  HS_CHECK(spec.num_clients > 0, "PopulationSpec: no clients");
  if (spec.kind == PopulationSpec::Kind::kSingleLabel) {
    HS_CHECK(spec.scenes != nullptr, "PopulationSpec: scenes required");
  } else {
    HS_CHECK(spec.flair_scenes != nullptr,
             "PopulationSpec: flair_scenes required");
  }
}

/// HS_POP_CACHE: LRU capacity in clients (default 64, 0 disables). Strict:
/// a set-but-malformed value throws instead of silently running uncached.
std::size_t pop_cache_capacity_from_env() {
  const auto v = env_string("HS_POP_CACHE");
  if (!v) return 64;
  std::size_t parsed = 0;
  for (char c : *v) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("HS_POP_CACHE: invalid capacity '" + *v +
                                  "' (expected a non-negative integer)");
    }
    parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
  }
  return parsed;
}

}  // namespace

PopulationSpec PopulationSpec::single_label(std::vector<DeviceProfile> devices,
                                            const PopulationConfig& cfg,
                                            const SceneGenerator& scenes) {
  PopulationSpec spec;
  spec.kind = Kind::kSingleLabel;
  spec.devices = std::move(devices);
  spec.num_clients = cfg.num_clients;
  spec.samples_per_client = cfg.samples_per_client;
  spec.test_samples = cfg.test_per_class;
  spec.assignment = cfg.assignment;
  spec.capture = cfg.capture;
  spec.exclude_from_training = cfg.exclude_from_training;
  spec.scenes = &scenes;
  return spec;
}

PopulationSpec PopulationSpec::flair(std::vector<DeviceProfile> devices,
                                     std::size_t num_clients,
                                     std::size_t samples_per_client,
                                     std::size_t test_per_device,
                                     const CaptureConfig& capture,
                                     const FlairSceneGenerator& scenes) {
  PopulationSpec spec;
  spec.kind = Kind::kFlair;
  spec.devices = std::move(devices);
  spec.num_clients = num_clients;
  spec.samples_per_client = samples_per_client;
  spec.test_samples = test_per_device;
  spec.assignment = DeviceAssignment::kMarketShare;
  spec.capture = capture;
  spec.flair_scenes = &scenes;
  return spec;
}

VirtualPopulation::VirtualPopulation(PopulationSpec spec, const Rng& root)
    : spec_(std::move(spec)),
      root_(root),
      cache_capacity_(pop_cache_capacity_from_env()) {
  check_spec(spec_);
  const std::size_t num_devices = spec_.devices.size();
  auto excluded = [&](std::size_t dev) {
    return std::find(spec_.exclude_from_training.begin(),
                     spec_.exclude_from_training.end(),
                     dev) != spec_.exclude_from_training.end();
  };

  // Assignment tables: zeroed shares for excluded devices (market share) and
  // the ordered non-excluded device list (uniform round-robin). Zeroing is
  // distributionally identical to the old draw-and-retry loop, but needs
  // one categorical draw per client instead of a data-dependent count.
  assign_shares_.reserve(num_devices);
  double total_share = 0.0;
  for (std::size_t d = 0; d < num_devices; ++d) {
    const double share = excluded(d) ? 0.0 : spec_.devices[d].market_share;
    assign_shares_.push_back(share);
    total_share += share > 0.0 ? share : 0.0;
    if (!excluded(d)) allowed_.push_back(d);
  }
  HS_CHECK(!allowed_.empty(),
           "VirtualPopulation: all devices excluded from training");
  if (spec_.assignment == DeviceAssignment::kMarketShare) {
    // categorical() treats an all-zero weight vector as uniform, which
    // would silently re-admit excluded devices.
    HS_CHECK(total_share > 0.0,
             "VirtualPopulation: no market share left after exclusions");
  }

  device_names_.reserve(num_devices);
  for (const DeviceProfile& d : spec_.devices) device_names_.push_back(d.name);
  device_speed_scale_ = device_speed_scales(spec_.devices);

  // Per-device test sets: resident (O(#devices)), disjoint streams.
  device_test_.reserve(num_devices);
  if (spec_.kind == PopulationSpec::Kind::kSingleLabel) {
    for (std::size_t d = 0; d < num_devices; ++d) {
      Rng test_rng = root_.fork(kSingleTestTag, d);
      device_test_.push_back(build_device_dataset(spec_.devices[d],
                                                  spec_.test_samples,
                                                  *spec_.scenes, spec_.capture,
                                                  test_rng));
    }
  } else {
    // Flat label profile (no user skew) so per-device AP differences
    // isolate the device effect.
    const std::vector<double> flat(FlairSceneGenerator::kNumLabels,
                                   1.0 / FlairSceneGenerator::kNumLabels);
    for (std::size_t d = 0; d < num_devices; ++d) {
      Rng test_rng = root_.fork(kFlairTestTag, d);
      device_test_.push_back(build_flair_user_dataset(
          spec_.devices[d], flat, spec_.test_samples, *spec_.flair_scenes,
          spec_.capture, test_rng));
    }
  }
}

std::size_t VirtualPopulation::device_of(std::size_t client) const {
  HS_CHECK(client < spec_.num_clients, "VirtualPopulation: bad client id");
  if (spec_.assignment == DeviceAssignment::kUniform) {
    // Cyclic walk of the non-excluded devices — the same sequence the old
    // round-robin-with-retries cursor produced.
    return allowed_[client % allowed_.size()];
  }
  Rng assign_rng = root_.fork(kAssignTag, client);
  return assign_rng.categorical(assign_shares_);
}

const Dataset& VirtualPopulation::client_dataset(std::size_t client,
                                                 ClientSlot& slot) const {
  HS_CHECK(client < spec_.num_clients, "VirtualPopulation: bad client id");
  if (cache_capacity_ > 0) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_index_.find(client);
    if (it != cache_index_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      // Copy while holding the lock: a later insert may evict this entry,
      // so the caller must never see a reference into the list.
      slot.data = it->second->data;
      return slot.data;
    }
  }
  // Every non-hit call is one miss — also with the cache disabled, so
  // hits + misses == materializations holds unconditionally.
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  generate_into(client, slot);
  if (cache_capacity_ > 0) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_index_.find(client) == cache_index_.end()) {
      cache_lru_.push_front(CacheEntry{client, slot.data});
      cache_index_[client] = cache_lru_.begin();
      if (cache_lru_.size() > cache_capacity_) {
        cache_index_.erase(cache_lru_.back().client);
        cache_lru_.pop_back();
      }
    }
    // A racing worker may have inserted the same client while we generated;
    // both produced identical bytes (pure function of (spec, root, id)), so
    // keeping the first insert is correct.
  }
  return slot.data;
}

std::uint64_t VirtualPopulation::cache_hits() const {
  return cache_hits_.load(std::memory_order_relaxed);
}

std::uint64_t VirtualPopulation::cache_misses() const {
  return cache_misses_.load(std::memory_order_relaxed);
}

bool VirtualPopulation::population_counters(PopulationCounters& out) const {
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.materializations = out.cache_hits + out.cache_misses;
  out.gen_seconds = gen_seconds_.load(std::memory_order_relaxed);
  return true;
}

void VirtualPopulation::generate_into(std::size_t client,
                                      ClientSlot& slot) const {
  const auto t0 = std::chrono::steady_clock::now();
  const DeviceProfile& device = spec_.devices[device_of(client)];
  const std::size_t n = spec_.samples_per_client;

  // Recycle the slot's buffers (Workspace arena idiom): reclaim them from
  // the previously materialized dataset, reallocate only on a geometry
  // change, and hand them back to a fresh Dataset below.
  slot.data.release_buffers(slot.xs, slot.labels, slot.targets);

  // Per-image rendering fans out over any installed intra-op context: each
  // image draws from its own (kImageTag, i) fork of the client stream —
  // taken AFTER the serial metadata draws below — and writes a disjoint
  // slot slice, so output bytes are identical for every worker count. A
  // capture is far above the helper's FLOP floor; pass the slab size as a
  // stand-in estimate.
  const double est_flops = 1e9;

  if (spec_.kind == PopulationSpec::Kind::kSingleLabel) {
    const CaptureConfig& cap = spec_.capture;
    const std::size_t side =
        cap.raw_mode ? cap.raw_tensor_size : cap.tensor_size;
    const std::size_t channels = cap.raw_mode ? 4 : 3;
    const std::vector<std::size_t> shape = {n, channels, side, side};
    if (slot.xs.shape() != shape) slot.xs = Tensor(shape);
    slot.labels.assign(n, 0);
    Rng rng = root_.fork(kSingleDataBase + client);
    // Serial metadata pass: one class draw per image, in image order.
    for (std::size_t i = 0; i < n; ++i) {
      slot.labels[i] = rng.uniform_int(SceneGenerator::kNumClasses);
    }
    kernels::detail::intra_for(n, est_flops, [&](std::size_t i) {
      Rng img_rng = rng.fork(kImageTag, i);
      const Image scene = spec_.scenes->generate(slot.labels[i], img_rng);
      slot.xs.set_slice0(i, capture_to_tensor(scene, device, cap, img_rng));
    });
    slot.data = Dataset(std::move(slot.xs), std::move(slot.labels));
  } else {
    // Preferences from the client stream, then per-image label set + scene
    // + capture from the image stream.
    HS_CHECK(!spec_.capture.raw_mode,
             "VirtualPopulation: RAW mode not supported for FLAIR");
    const std::size_t side = spec_.capture.tensor_size;
    const std::vector<std::size_t> shape = {n, 3, side, side};
    const std::vector<std::size_t> tshape = {n,
                                             FlairSceneGenerator::kNumLabels};
    if (slot.xs.shape() != shape) slot.xs = Tensor(shape);
    if (slot.targets.shape() != tshape) {
      slot.targets = Tensor(tshape);
    } else {
      slot.targets.zero();
    }
    Rng rng = root_.fork(kFlairDataBase + client);
    const std::vector<double> prefs =
        spec_.flair_scenes->sample_user_preferences(rng);
    kernels::detail::intra_for(n, est_flops, [&](std::size_t i) {
      Rng img_rng = rng.fork(kImageTag, i);
      const auto label_set =
          spec_.flair_scenes->sample_label_set(prefs, img_rng);
      const Image scene = spec_.flair_scenes->generate(label_set, img_rng);
      slot.xs.set_slice0(
          i, capture_to_tensor(scene, device, spec_.capture, img_rng));
      for (std::size_t l : label_set) slot.targets.at(i, l) = 1.0f;
    });
    slot.data = Dataset(std::move(slot.xs), std::move(slot.targets));
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  gen_seconds_.fetch_add(dt.count(), std::memory_order_relaxed);
}

FlPopulation VirtualPopulation::materialize_all() const {
  FlPopulation pop;
  pop.device_names = device_names_;
  pop.device_speed_scale = device_speed_scale_;
  pop.device_test = device_test_;
  pop.client_device.reserve(spec_.num_clients);
  pop.client_train.reserve(spec_.num_clients);
  for (std::size_t i = 0; i < spec_.num_clients; ++i) {
    pop.client_device.push_back(device_of(i));
    ClientSlot slot;
    // Bypasses the LRU: a one-shot full sweep would only churn it (and pay
    // one extra Dataset copy per client).
    generate_into(i, slot);
    pop.client_train.push_back(std::move(slot.data));
  }
  return pop;
}

MaterializedPopulation::MaterializedPopulation(const PopulationSpec& spec,
                                               const Rng& root)
    : owned_(VirtualPopulation(spec, root).materialize_all()), pop_(&owned_) {}

MaterializedPopulation::MaterializedPopulation(FlPopulation population)
    : owned_(std::move(population)), pop_(&owned_) {}

MaterializedPopulation::MaterializedPopulation(const FlPopulation* borrowed)
    : pop_(borrowed) {
  HS_CHECK(borrowed != nullptr, "MaterializedPopulation: null population");
}

FlPopulation make_population(const PopulationSpec& spec, const Rng& root) {
  return VirtualPopulation(spec, root).materialize_all();
}

FlPopulation build_population(const std::vector<DeviceProfile>& devices,
                              const PopulationConfig& cfg,
                              const SceneGenerator& scenes, Rng& rng) {
  return make_population(PopulationSpec::single_label(devices, cfg, scenes),
                         rng);
}

FlPopulation build_flair_population(const std::vector<DeviceProfile>& devices,
                                    std::size_t num_clients,
                                    std::size_t samples_per_client,
                                    std::size_t test_per_device,
                                    const CaptureConfig& capture,
                                    const FlairSceneGenerator& scenes,
                                    Rng& rng) {
  return make_population(
      PopulationSpec::flair(devices, num_clients, samples_per_client,
                            test_per_device, capture, scenes),
      rng);
}

}  // namespace hetero
