// Federated population construction: clients, their device assignments, and
// per-device-type test sets.
//
// Device types are assigned to clients by market share (Table 1 /
// Section 4.1) or uniformly; every client's local data is captured with its
// own device's sensor + ISP, so the population exhibits exactly the
// system-induced heterogeneity under study.
#pragma once

#include <string>
#include <vector>

#include "data/builder.h"
#include "data/dataset.h"
#include "device/device_profile.h"
#include "scene/flair_gen.h"
#include "scene/scene_gen.h"

namespace hetero {

struct FlPopulation {
  std::vector<Dataset> client_train;        ///< one dataset per client
  std::vector<std::size_t> client_device;   ///< device index per client
  std::vector<Dataset> device_test;         ///< held-out set per device type
  std::vector<std::string> device_names;
  /// Relative compute slowdown per device type, derived from the profile's
  /// performance tier (tier_speed_scale; H < M < L). Drives the event
  /// scheduler's DelayModel and, with HS_FAULTS "tiers=1", stretches
  /// injected straggler delays per hardware class. Empty = homogeneous.
  std::vector<double> device_speed_scale;
};

/// How clients are assigned device types.
enum class DeviceAssignment {
  kMarketShare,  ///< proportional to DeviceProfile::market_share
  kUniform,      ///< round-robin over device types
};

struct PopulationConfig {
  std::size_t num_clients = 100;          ///< N
  std::size_t samples_per_client = 24;    ///< local dataset size
  std::size_t test_per_class = 6;         ///< per-device test samples/class
  DeviceAssignment assignment = DeviceAssignment::kMarketShare;
  CaptureConfig capture;
  /// Device types to exclude from *training* clients (leave-one-out DG);
  /// their test sets are still built.
  std::vector<std::size_t> exclude_from_training;
};

/// Builds a single-label (12-class) population over the given devices.
FlPopulation build_population(const std::vector<DeviceProfile>& devices,
                              const PopulationConfig& cfg,
                              const SceneGenerator& scenes, Rng& rng);

/// Builds a FLAIR-style multi-label population: every client is a "user"
/// with its own label-preference profile and its own (long-tail) device.
/// test_per_device samples are generated per device type with neutral
/// preferences.
FlPopulation build_flair_population(const std::vector<DeviceProfile>& devices,
                                    std::size_t num_clients,
                                    std::size_t samples_per_client,
                                    std::size_t test_per_device,
                                    const CaptureConfig& capture,
                                    const FlairSceneGenerator& scenes,
                                    Rng& rng);

}  // namespace hetero
