// Federated population construction: clients, their device assignments, and
// per-device-type test sets.
//
// Device types are assigned to clients by market share (Table 1 /
// Section 4.1) or uniformly; every client's local data is captured with its
// own device's sensor + ISP, so the population exhibits exactly the
// system-induced heterogeneity under study.
//
// Since the ClientProvider redesign (DESIGN.md §12) the single source of
// truth for WHAT a population contains is PopulationSpec + a root Rng; the
// same recipe backs two providers:
//   * VirtualPopulation     — generates any client on demand, O(k) memory;
//   * MaterializedPopulation — the eager pre-PR layout (FlPopulation), with
//     contents produced by the identical recipe, so the two are
//     bit-identical per client for the same (spec, root).
// Every per-client quantity is keyed on the client id via Rng::fork — never
// on build order — which is what makes O(1) random access possible.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/builder.h"
#include "data/dataset.h"
#include "device/device_profile.h"
#include "fl/client_provider.h"
#include "scene/flair_gen.h"
#include "scene/scene_gen.h"
#include "util/rng.h"

namespace hetero {

struct FlPopulation {
  std::vector<Dataset> client_train;        ///< one dataset per client
  std::vector<std::size_t> client_device;   ///< device index per client
  std::vector<Dataset> device_test;         ///< held-out set per device type
  std::vector<std::string> device_names;
  /// Relative compute slowdown per device type, derived from the profile's
  /// performance tier (tier_speed_scale; H < M < L). Drives the event
  /// scheduler's DelayModel and, with HS_FAULTS "tiers=1", stretches
  /// injected straggler delays per hardware class. Empty = homogeneous.
  std::vector<double> device_speed_scale;
};

/// How clients are assigned device types.
enum class DeviceAssignment {
  kMarketShare,  ///< proportional to DeviceProfile::market_share
  kUniform,      ///< round-robin over device types
};

struct PopulationConfig {
  std::size_t num_clients = 100;          ///< N
  std::size_t samples_per_client = 24;    ///< local dataset size
  std::size_t test_per_class = 6;         ///< per-device test samples/class
  DeviceAssignment assignment = DeviceAssignment::kMarketShare;
  CaptureConfig capture;
  /// Device types to exclude from *training* clients (leave-one-out DG);
  /// their test sets are still built.
  std::vector<std::size_t> exclude_from_training;
};

/// The unified declarative recipe behind both population kinds (the old
/// build_population / build_flair_population signature pair collapsed into
/// one struct + factory). The scene generators are borrowed: the caller
/// keeps them alive for the life of any provider built from the spec.
struct PopulationSpec {
  enum class Kind {
    kSingleLabel,  ///< 12-class scenes, one label per sample
    kFlair,        ///< FLAIR-style multi-label users with preference skew
  };

  Kind kind = Kind::kSingleLabel;
  std::vector<DeviceProfile> devices;
  std::size_t num_clients = 100;
  std::size_t samples_per_client = 24;
  /// Test-set size knob: per-class samples for kSingleLabel (each device
  /// test set holds test_samples * kNumClasses images), total per-device
  /// samples for kFlair.
  std::size_t test_samples = 6;
  DeviceAssignment assignment = DeviceAssignment::kMarketShare;
  CaptureConfig capture;
  /// Honoured by BOTH kinds (the old build_flair_population silently
  /// ignored PopulationConfig::exclude_from_training; the spec path fixes
  /// that): excluded devices get no training clients but keep a test set.
  std::vector<std::size_t> exclude_from_training;
  const SceneGenerator* scenes = nullptr;             ///< kSingleLabel
  const FlairSceneGenerator* flair_scenes = nullptr;  ///< kFlair

  /// Builds a single-label spec from the legacy PopulationConfig knobs.
  static PopulationSpec single_label(std::vector<DeviceProfile> devices,
                                     const PopulationConfig& cfg,
                                     const SceneGenerator& scenes);

  /// Builds a FLAIR-style multi-label spec (market-share device draw,
  /// per-user preference profiles, flat-profile per-device test sets).
  static PopulationSpec flair(std::vector<DeviceProfile> devices,
                              std::size_t num_clients,
                              std::size_t samples_per_client,
                              std::size_t test_per_device,
                              const CaptureConfig& capture,
                              const FlairSceneGenerator& scenes);
};

/// Lazy population: generates any client's (device assignment, scene draws,
/// ISP capture, local dataset) on demand from (spec, root). Memory is
/// O(#devices) for the resident test sets plus whatever slots the caller
/// provides — independent of num_clients. Everything is keyed per client:
///   device assignment   root.fork(kAssignTag, client)
///   single-label data   root.fork(1000 + client)      (legacy keying)
///   FLAIR prefs + data  root.fork(2000 + client)      (legacy keying)
///   device test sets    root.fork(kTestTag(kind), device)
/// so client_dataset(i) is a pure function of (spec, root, i).
class VirtualPopulation final : public ClientProvider {
 public:
  /// Validates the spec and eagerly builds only the O(#devices) parts
  /// (test sets, names, speed scales). `root` is copied; the caller's
  /// stream is not advanced.
  VirtualPopulation(PopulationSpec spec, const Rng& root);

  std::size_t num_clients() const override { return spec_.num_clients; }
  std::size_t device_of(std::size_t client) const override;
  double work_of(std::size_t /*client*/) const override {
    return static_cast<double>(spec_.samples_per_client);
  }
  const Dataset& client_dataset(std::size_t client,
                                ClientSlot& slot) const override;
  const std::vector<Dataset>& device_test() const override {
    return device_test_;
  }
  const std::vector<std::string>& device_names() const override {
    return device_names_;
  }
  const std::vector<double>& device_speed_scale() const override {
    return device_speed_scale_;
  }

  const PopulationSpec& spec() const { return spec_; }

  /// Eagerly runs the recipe for every client into an FlPopulation —
  /// exactly what MaterializedPopulation serves. O(N) memory, by request.
  FlPopulation materialize_all() const;

  /// Dataset-LRU introspection (see client_dataset): capacity comes from
  /// HS_POP_CACHE (default 64 clients, 0 disables; anything that is not a
  /// non-negative integer throws at construction).
  std::size_t cache_capacity() const { return cache_capacity_; }
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;

  /// Cumulative materialization accounting: every client_dataset call is
  /// one materialization and exactly one hit or miss (a disabled cache
  /// counts every call as a miss), so hits + misses == materializations by
  /// construction. gen_seconds is wall time inside the generation recipe.
  bool population_counters(PopulationCounters& out) const override;

 private:
  /// Runs the full recipe for `client` into `slot` (the pre-cache
  /// client_dataset body). Pure function of (spec, root, client): the
  /// serial draws (class/label-set metadata) come first, then each image
  /// renders from its own fork of the client stream, so the per-image loop
  /// fans out over any installed kernels::IntraOpContext with bit-identical
  /// results for every worker count.
  void generate_into(std::size_t client, ClientSlot& slot) const;

  PopulationSpec spec_;
  Rng root_;
  std::vector<double> assign_shares_;  ///< market shares, excluded zeroed
  std::vector<std::size_t> allowed_;   ///< non-excluded devices, in order
  std::vector<Dataset> device_test_;
  std::vector<std::string> device_names_;
  std::vector<double> device_speed_scale_;

  // LRU of materialized client datasets, keyed by client id (the spec and
  // root are fixed per provider, so the id alone identifies the bytes).
  // client_dataset used to re-run the whole scene + ISP recipe every time a
  // client repeated across rounds; now a repeat is one Dataset copy. Hits
  // copy under the lock (an evicted entry must never be referenced by a
  // caller); misses generate outside the lock so concurrent runtime workers
  // only serialize on the map, not on the ISP pipeline.
  struct CacheEntry {
    std::size_t client;
    Dataset data;
  };
  std::size_t cache_capacity_;
  mutable std::mutex cache_mu_;
  mutable std::list<CacheEntry> cache_lru_;  // front = most recent
  mutable std::unordered_map<std::size_t, std::list<CacheEntry>::iterator>
      cache_index_;
  // Counted outside the LRU lock (misses are tallied even when the cache is
  // disabled), so plain atomics instead of mutex-guarded integers.
  mutable std::atomic<std::uint64_t> cache_hits_{0};
  mutable std::atomic<std::uint64_t> cache_misses_{0};
  mutable std::atomic<double> gen_seconds_{0.0};
};

/// Eager population: serves a resident FlPopulation through the provider
/// interface. Construct from a spec (runs the VirtualPopulation recipe for
/// every client), adopt a built FlPopulation, or borrow one the caller
/// keeps alive (the FlPopulation-based run_simulation overload does this).
class MaterializedPopulation final : public ClientProvider {
 public:
  MaterializedPopulation(const PopulationSpec& spec, const Rng& root);
  explicit MaterializedPopulation(FlPopulation population);
  explicit MaterializedPopulation(const FlPopulation* borrowed);

  std::size_t num_clients() const override {
    return pop_->client_train.size();
  }
  std::size_t device_of(std::size_t client) const override {
    return client < pop_->client_device.size() ? pop_->client_device[client]
                                               : 0;
  }
  double work_of(std::size_t client) const override {
    return static_cast<double>(pop_->client_train.at(client).size());
  }
  const Dataset& client_dataset(std::size_t client,
                                ClientSlot&) const override {
    return pop_->client_train.at(client);
  }
  const std::vector<Dataset>& device_test() const override {
    return pop_->device_test;
  }
  const std::vector<std::string>& device_names() const override {
    return pop_->device_names;
  }
  const std::vector<double>& device_speed_scale() const override {
    return pop_->device_speed_scale;
  }
  const std::vector<Dataset>* dataset_vector() const override {
    return &pop_->client_train;
  }

  const FlPopulation& population() const { return *pop_; }

 private:
  FlPopulation owned_;
  const FlPopulation* pop_;  ///< &owned_ unless borrowing
};

/// Factory: eagerly builds the spec'd population (VirtualPopulation's
/// recipe, all clients). The root Rng is copied, never advanced.
FlPopulation make_population(const PopulationSpec& spec, const Rng& root);

/// Deprecated shim over make_population (use PopulationSpec::single_label).
/// Kept so existing benches compile unchanged. Unlike the pre-provider
/// builder it no longer advances `rng` — every caller in the tree passes a
/// dedicated single-use stream, which is still the right usage.
FlPopulation build_population(const std::vector<DeviceProfile>& devices,
                              const PopulationConfig& cfg,
                              const SceneGenerator& scenes, Rng& rng);

/// Deprecated shim over make_population (use PopulationSpec::flair).
FlPopulation build_flair_population(const std::vector<DeviceProfile>& devices,
                                    std::size_t num_clients,
                                    std::size_t samples_per_client,
                                    std::size_t test_per_device,
                                    const CaptureConfig& capture,
                                    const FlairSceneGenerator& scenes,
                                    Rng& rng);

}  // namespace hetero
