#include "fl/privacy.h"

#include "util/rng.h"

namespace hetero {

float clip_to_norm(Tensor& update, float clip_norm) {
  HS_CHECK(clip_norm > 0.0f, "clip_to_norm: clip_norm must be positive");
  const float norm = update.norm();
  if (norm <= clip_norm || norm == 0.0f) return 1.0f;
  const float scale = clip_norm / norm;
  update *= scale;
  return scale;
}

DpFedAvg::DpFedAvg(LocalTrainConfig cfg, DpOptions options)
    : cfg_(cfg), options_(options), noise_rng_(options.noise_seed) {
  HS_CHECK(options_.clip_norm > 0.0f, "DpFedAvg: clip_norm must be positive");
  HS_CHECK(options_.noise_multiplier >= 0.0f,
           "DpFedAvg: noise multiplier must be non-negative");
}

void DpFedAvg::init(Model& model, std::size_t num_clients) {
  (void)model;
  (void)num_clients;
  noise_rng_ = Rng(options_.noise_seed);
}

ClientUpdate DpFedAvg::local_update(Model& model, const Tensor& global,
                                    std::size_t client_id, const Dataset& data,
                                    Rng& client_rng) const {
  model.set_state(global);
  const float loss = local_train(model, data, cfg_, client_rng);
  Tensor delta = model.state() - global;
  const bool was_clipped = clip_to_norm(delta, options_.clip_norm) < 1.0f;
  ClientUpdate u;
  u.client_id = client_id;
  u.state = std::move(delta);  // the clipped delta, not the raw state
  // The weight only feeds loss reporting; aggregation is equal-weight (a
  // sample-size-weighted mean would leak dataset sizes).
  u.weight = static_cast<double>(data.size());
  u.train_loss = static_cast<double>(loss);
  u.flags = was_clipped ? 1u : 0u;
  return u;
}

RoundStats DpFedAvg::aggregate(Model& model, const Tensor& global,
                               std::vector<ClientUpdate>& updates) {
  HS_CHECK(!updates.empty(), "DpFedAvg: no client updates");
  RoundStats stats = summarize_updates(updates, model.state_size());
  Tensor update_sum({global.size()});
  std::size_t clipped = 0;
  for (const ClientUpdate& u : updates) {
    update_sum += u.state;
    if (u.flags & 1u) ++clipped;
  }
  const float inv_k = 1.0f / static_cast<float>(updates.size());
  update_sum *= inv_k;

  // Gaussian mechanism on the averaged update. Under partial aggregation
  // K is the surviving client count, so the per-coordinate sensitivity
  // bound clip/K (and with it sigma) adapts to the clients actually
  // averaged.
  last_sigma_ = static_cast<double>(options_.noise_multiplier) *
                options_.clip_norm * inv_k;
  if (last_sigma_ > 0.0) {
    for (std::size_t i = 0; i < update_sum.size(); ++i) {
      update_sum[i] +=
          static_cast<float>(noise_rng_.normal(0.0, last_sigma_));
    }
  }
  last_clip_fraction_ =
      static_cast<double>(clipped) / static_cast<double>(updates.size());

  Tensor new_state = global + update_sum;
  model.set_state(new_state);
  stats.extras["dp.noise_stddev"] = last_sigma_;
  stats.extras["dp.clip_fraction"] = last_clip_fraction_;
  return stats;
}

void DpFedAvg::save_state(AlgorithmCheckpoint& out) const {
  const RngState s = noise_rng_.save_state();
  out.words["dp.rng.s0"] = s.s[0];
  out.words["dp.rng.s1"] = s.s[1];
  out.words["dp.rng.s2"] = s.s[2];
  out.words["dp.rng.s3"] = s.s[3];
  out.words["dp.rng.cached_has"] = s.has_cached_normal ? 1 : 0;
  out.scalars["dp.rng.cached"] = s.cached_normal;
  out.scalars["dp.last_sigma"] = last_sigma_;
  out.scalars["dp.last_clip_fraction"] = last_clip_fraction_;
}

void DpFedAvg::load_state(const AlgorithmCheckpoint& in) {
  const auto s0 = in.words.find("dp.rng.s0");
  if (s0 == in.words.end()) return;
  RngState s;
  s.s[0] = s0->second;
  s.s[1] = in.words.at("dp.rng.s1");
  s.s[2] = in.words.at("dp.rng.s2");
  s.s[3] = in.words.at("dp.rng.s3");
  s.has_cached_normal = in.words.at("dp.rng.cached_has") != 0;
  s.cached_normal = in.scalars.at("dp.rng.cached");
  noise_rng_.restore_state(s);
  const auto sig = in.scalars.find("dp.last_sigma");
  if (sig != in.scalars.end()) last_sigma_ = sig->second;
  const auto cf = in.scalars.find("dp.last_clip_fraction");
  if (cf != in.scalars.end()) last_clip_fraction_ = cf->second;
}

}  // namespace hetero
