#include "fl/privacy.h"

#include "util/rng.h"

namespace hetero {

float clip_to_norm(Tensor& update, float clip_norm) {
  HS_CHECK(clip_norm > 0.0f, "clip_to_norm: clip_norm must be positive");
  const float norm = update.norm();
  if (norm <= clip_norm || norm == 0.0f) return 1.0f;
  const float scale = clip_norm / norm;
  update *= scale;
  return scale;
}

DpFedAvg::DpFedAvg(LocalTrainConfig cfg, DpOptions options)
    : cfg_(cfg), options_(options), noise_rng_(options.noise_seed) {
  HS_CHECK(options_.clip_norm > 0.0f, "DpFedAvg: clip_norm must be positive");
  HS_CHECK(options_.noise_multiplier >= 0.0f,
           "DpFedAvg: noise multiplier must be non-negative");
}

void DpFedAvg::init(Model& model, std::size_t num_clients) {
  (void)model;
  (void)num_clients;
  noise_rng_ = Rng(options_.noise_seed);
}

RoundStats DpFedAvg::run_round(Model& model,
                               const std::vector<std::size_t>& selected,
                               const std::vector<Dataset>& client_data,
                               Rng& rng) {
  HS_CHECK(!selected.empty(), "DpFedAvg: no clients selected");
  const Tensor global = model.state();

  Tensor update_sum({global.size()});
  double loss_sum = 0.0, weight_sum = 0.0;
  std::size_t clipped = 0;
  for (std::size_t id : selected) {
    const Dataset& data = client_data.at(id);
    model.set_state(global);
    Rng client_rng = rng.fork(id);
    const float loss = local_train(model, data, cfg_, client_rng);
    Tensor delta = model.state() - global;
    if (clip_to_norm(delta, options_.clip_norm) < 1.0f) ++clipped;
    // DP aggregation weights clients equally (sample-size weighting would
    // leak dataset sizes).
    update_sum += delta;
    loss_sum += loss * static_cast<double>(data.size());
    weight_sum += static_cast<double>(data.size());
  }
  const float inv_k = 1.0f / static_cast<float>(selected.size());
  update_sum *= inv_k;

  // Gaussian mechanism on the averaged update.
  last_sigma_ = static_cast<double>(options_.noise_multiplier) *
                options_.clip_norm * inv_k;
  if (last_sigma_ > 0.0) {
    for (std::size_t i = 0; i < update_sum.size(); ++i) {
      update_sum[i] +=
          static_cast<float>(noise_rng_.normal(0.0, last_sigma_));
    }
  }
  last_clip_fraction_ =
      static_cast<double>(clipped) / static_cast<double>(selected.size());

  Tensor new_state = global + update_sum;
  model.set_state(new_state);
  return RoundStats{loss_sum / weight_sum};
}

}  // namespace hetero
