#include "fl/privacy.h"

#include <chrono>

#include "util/rng.h"

namespace hetero {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

float clip_to_norm(Tensor& update, float clip_norm) {
  HS_CHECK(clip_norm > 0.0f, "clip_to_norm: clip_norm must be positive");
  const float norm = update.norm();
  if (norm <= clip_norm || norm == 0.0f) return 1.0f;
  const float scale = clip_norm / norm;
  update *= scale;
  return scale;
}

DpFedAvg::DpFedAvg(LocalTrainConfig cfg, DpOptions options)
    : cfg_(cfg), options_(options), noise_rng_(options.noise_seed) {
  HS_CHECK(options_.clip_norm > 0.0f, "DpFedAvg: clip_norm must be positive");
  HS_CHECK(options_.noise_multiplier >= 0.0f,
           "DpFedAvg: noise multiplier must be non-negative");
}

void DpFedAvg::init(Model& model, std::size_t num_clients) {
  (void)model;
  (void)num_clients;
  noise_rng_ = Rng(options_.noise_seed);
}

RoundStats DpFedAvg::do_run_round(Model& model,
                                  const std::vector<std::size_t>& selected,
                                  const std::vector<Dataset>& client_data,
                                  Rng& rng, RoundContext& ctx) {
  HS_CHECK(!selected.empty(), "DpFedAvg: no clients selected");
  const Tensor global = model.state();

  Tensor update_sum({global.size()});
  RoundStats stats;
  stats.num_clients = selected.size();
  double loss_sum = 0.0, weight_sum = 0.0;
  double loss_min = 0.0, loss_max = 0.0;
  std::size_t clipped = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::size_t id = selected[i];
    const Dataset& data = client_data.at(id);
    model.set_state(global);
    Rng client_rng = rng.fork(id);
    const Clock::time_point c0 = Clock::now();
    const float loss = local_train(model, data, cfg_, client_rng);
    const double client_seconds = seconds_since(c0);
    Tensor delta = model.state() - global;
    const bool was_clipped = clip_to_norm(delta, options_.clip_norm) < 1.0f;
    if (was_clipped) ++clipped;
    // DP aggregation weights clients equally (sample-size weighting would
    // leak dataset sizes).
    update_sum += delta;
    loss_sum += loss * static_cast<double>(data.size());
    weight_sum += static_cast<double>(data.size());
    const double l = static_cast<double>(loss);
    loss_min = (i == 0) ? l : std::min(loss_min, l);
    loss_max = (i == 0) ? l : std::max(loss_max, l);

    ClientObservation obs;
    obs.client_id = id;
    obs.order = i;
    obs.weight = static_cast<double>(data.size());
    obs.train_loss = l;
    obs.flags = was_clipped ? 1u : 0u;
    obs.update_bytes = delta.size() * sizeof(float);
    obs.train_seconds = client_seconds;
    ctx.finish_client(obs);
    stats.bytes_up += static_cast<std::uint64_t>(delta.size() * sizeof(float));
  }
  const float inv_k = 1.0f / static_cast<float>(selected.size());
  update_sum *= inv_k;

  // Gaussian mechanism on the averaged update.
  last_sigma_ = static_cast<double>(options_.noise_multiplier) *
                options_.clip_norm * inv_k;
  if (last_sigma_ > 0.0) {
    for (std::size_t i = 0; i < update_sum.size(); ++i) {
      update_sum[i] +=
          static_cast<float>(noise_rng_.normal(0.0, last_sigma_));
    }
  }
  last_clip_fraction_ =
      static_cast<double>(clipped) / static_cast<double>(selected.size());

  Tensor new_state = global + update_sum;
  model.set_state(new_state);
  stats.mean_train_loss = loss_sum / weight_sum;
  stats.min_train_loss = loss_min;
  stats.max_train_loss = loss_max;
  stats.weight_sum = weight_sum;
  stats.bytes_down = static_cast<std::uint64_t>(selected.size()) *
                     static_cast<std::uint64_t>(global.size()) * sizeof(float);
  stats.extras["dp.noise_stddev"] = last_sigma_;
  stats.extras["dp.clip_fraction"] = last_clip_fraction_;
  return stats;
}

}  // namespace hetero
