// Differential-privacy mechanisms for federated aggregation (extension
// beyond the paper; FL's privacy motivation is the paper's Section 1).
//
// DpFedAvg implements the standard DP-FedAvg recipe:
//   1. each client's *update* (state delta from the incoming global state)
//      is L2-clipped to clip_norm;
//   2. the server averages clipped updates and adds Gaussian noise with
//      stddev noise_multiplier * clip_norm / K to every coordinate.
// A simple moments-style accountant is out of scope; the class reports the
// per-round noise scale so callers can budget externally.
#pragma once

#include "fl/algorithm.h"
#include "util/rng.h"

namespace hetero {

struct DpOptions {
  float clip_norm = 1.0f;        ///< L2 bound on each client update
  float noise_multiplier = 0.1f; ///< sigma = multiplier * clip / K
  std::uint64_t noise_seed = 7;  ///< server-side noise stream seed
};

/// Clips a flat update vector to the given L2 norm (in place); returns the
/// scaling factor applied (1 when already within the bound).
float clip_to_norm(Tensor& update, float clip_norm);

/// Split form (honours HS_THREADS through the ClientExecutor): the pure
/// client phase trains and L2-clips the state delta — ClientUpdate::state
/// carries the CLIPPED DELTA, not the post-training state, and flags bit 0
/// records whether clipping fired. The serial aggregate equal-weight
/// averages the deltas (sample-size weighting would leak dataset sizes)
/// and applies the Gaussian mechanism from the server-side noise stream,
/// which stays strictly serial, so results are bit-identical for any
/// thread count. Under partial aggregation the mean and the noise scale
/// sigma = multiplier * clip / K use the surviving client count K.
/// RoundStats::extras reports "dp.noise_stddev" and "dp.clip_fraction".
class DpFedAvg : public SplitFederatedAlgorithm {
 public:
  DpFedAvg(LocalTrainConfig cfg, DpOptions options);

  void init(Model& model, std::size_t num_clients) override;
  ClientUpdate local_update(Model& model, const Tensor& global,
                            std::size_t client_id, const Dataset& data,
                            Rng& client_rng) const override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  std::string name() const override { return "DP-FedAvg"; }

  /// Noise stddev applied per coordinate in the last round.
  double last_noise_stddev() const { return last_sigma_; }
  /// Fraction of client updates clipped in the last round.
  double last_clip_fraction() const { return last_clip_fraction_; }

  /// Round-level checkpoint hooks: the server noise stream's cursor is the
  /// cross-round state — resuming must continue the exact noise sequence.
  void save_state(AlgorithmCheckpoint& out) const override;
  void load_state(const AlgorithmCheckpoint& in) override;

 private:
  LocalTrainConfig cfg_;
  DpOptions options_;
  Rng noise_rng_;
  double last_sigma_ = 0.0;
  double last_clip_fraction_ = 0.0;
};

}  // namespace hetero
