#include "fl/simulation.h"

#include "fl/eval.h"
#include "runtime/client_executor.h"
#include "runtime/sched/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hetero {
namespace {

/// Runs the async/buffered virtual-clock scheduler (DESIGN.md §11) and
/// maps its accounting into SimulationResult. `rounds` counts server
/// flushes; eval checkpoints fire on the same eval_every grid as sync.
SimulationResult run_scheduled(Model& model, SplitFederatedAlgorithm& split,
                               const ClientProvider& population,
                               const SimulationConfig& cfg,
                               RoundObserver* observer) {
  EventScheduler sched(cfg.num_threads, cfg.sched);

  FaultOptions faults = cfg.faults;
  if (faults.device_tier_delays) {
    // Lazy per-client scale: identical values to the old O(N) table
    // (device_speed_scale indexed through the client's device), but never
    // materialized, so it works unchanged for million-client providers.
    faults.delay_scale_fn = [&population](std::size_t client) {
      return population.speed_scale_of(client);
    };
  }
  sched.set_faults(faults);

  DelayModel delays;
  delays.base_compute_s = cfg.sched.base_compute_s;
  delays.jitter_frac = 0.1;
  delays.provider = &population;
  sched.set_delay_model(std::move(delays));

  SimulationResult result;
  auto on_flush = [&](std::size_t done) {
    if (cfg.eval_every > 0 && done % cfg.eval_every == 0 &&
        done < cfg.rounds) {
      DeviceMetrics checkpoint = evaluate_per_device(model, population);
      if (observer) observer->on_eval(done, checkpoint);
      result.checkpoints.emplace_back(done, std::move(checkpoint));
    }
  };

  Rng rng(cfg.seed);
  split.init(model, population.num_clients());
  SchedulerRunResult run =
      sched.run(model, split, cfg.rounds, cfg.clients_per_round, population,
                rng, observer, on_flush);

  result.train_loss_history = std::move(run.loss_history);
  RuntimeStats& rt = result.runtime;
  rt.threads = sched.num_threads();
  rt.total_seconds = run.total_seconds;
  rt.round_seconds = std::move(run.flush_seconds);
  rt.virtual_seconds = run.virtual_seconds;
  rt.round_virtual_seconds = std::move(run.flush_virtual_seconds);
  rt.client_seconds_sum = run.client_seconds_sum;
  rt.client_seconds_max = run.client_seconds_max;
  rt.clients_dropped = run.clients_dropped;
  rt.clients_quarantined = run.clients_quarantined;
  rt.clients_straggled = run.clients_straggled;
  rt.fault_retries = run.fault_retries;
  rt.rounds_aborted = run.flushes_aborted;
  rt.clients_dispatched = run.clients_dispatched;
  rt.updates_committed = run.updates_committed;
  rt.staleness_max = run.staleness_max;
  rt.staleness_mean =
      run.updates_committed > 0
          ? run.staleness_sum / static_cast<double>(run.updates_committed)
          : 0.0;
  return result;
}

DeviceMetrics evaluate_device_tests(Model& model,
                                    const std::vector<Dataset>& tests) {
  HS_CHECK(!tests.empty(), "evaluate_per_device: no test sets");
  DeviceMetrics m;
  m.per_device.reserve(tests.size());
  for (const Dataset& test : tests) {
    const double v = test.is_multi_label()
                         ? evaluate_average_precision(model, test)
                         : evaluate_accuracy(model, test);
    m.per_device.push_back(v);
  }
  m.average = mean(m.per_device);
  m.variance = variance(m.per_device);
  m.worst_case = min_value(m.per_device);
  return m;
}

/// Deterministic run counters persisted in a checkpoint; wall-clock fields
/// are deliberately absent (they are not replayable).
void save_runtime_counters(const RuntimeStats& rt,
                           std::map<std::string, double>& out) {
  out["dropped"] = static_cast<double>(rt.clients_dropped);
  out["quarantined"] = static_cast<double>(rt.clients_quarantined);
  out["straggled"] = static_cast<double>(rt.clients_straggled);
  out["retries"] = static_cast<double>(rt.fault_retries);
  out["aborted"] = static_cast<double>(rt.rounds_aborted);
  out["serial_fallback"] = rt.serial_fallback ? 1.0 : 0.0;
}

void load_runtime_counters(const std::map<std::string, double>& in,
                           RuntimeStats& rt) {
  auto get = [&](const char* key) {
    const auto it = in.find(key);
    return it != in.end() ? it->second : 0.0;
  };
  rt.clients_dropped = static_cast<std::size_t>(get("dropped"));
  rt.clients_quarantined = static_cast<std::size_t>(get("quarantined"));
  rt.clients_straggled = static_cast<std::size_t>(get("straggled"));
  rt.fault_retries = static_cast<std::size_t>(get("retries"));
  rt.rounds_aborted = static_cast<std::size_t>(get("aborted"));
  rt.serial_fallback = get("serial_fallback") != 0.0;
}

}  // namespace

DeviceMetrics evaluate_per_device(Model& model, const FlPopulation& pop) {
  return evaluate_device_tests(model, pop.device_test);
}

DeviceMetrics evaluate_per_device(Model& model, const ClientProvider& pop) {
  return evaluate_device_tests(model, pop.device_test());
}

SimulationResult run_simulation(Model& model, FederatedAlgorithm& algorithm,
                                const FlPopulation& population,
                                const SimulationConfig& cfg) {
  const MaterializedPopulation provider(&population);
  return run_simulation(model, algorithm, provider, cfg);
}

SimulationResult run_simulation(Model& model, FederatedAlgorithm& algorithm,
                                const ClientProvider& population,
                                const SimulationConfig& cfg) {
  // The provider interface carries N through num_clients(), so the sync
  // loop, the scheduler, and the fault layer all size off one value here —
  // the per-path size checks this block replaces lived in each branch.
  const std::size_t num_clients = population.num_clients();
  HS_CHECK(num_clients > 0, "run_simulation: no clients");
  HS_CHECK(cfg.clients_per_round > 0 && cfg.clients_per_round <= num_clients,
           "run_simulation: bad clients_per_round");

  // Fan telemetry out to the configured observer and, for compatibility,
  // the deprecated on_round callback wrapped as an observer.
  MulticastObserver fanout;
  fanout.add(cfg.observer);
  std::unique_ptr<RoundObserver> legacy;
  if (cfg.on_round) {
    legacy = observer_from_callback(cfg.on_round);
    fanout.add(legacy.get());
  }
  RoundObserver* observer = fanout.empty() ? nullptr : &fanout;

  if (cfg.sched.scheduled()) {
    // Async / buffered modes run on the virtual-clock event scheduler.
    // Sync deliberately does NOT: the loop below is the original path, so
    // sync output stays byte-identical to pre-scheduler builds.
    SplitFederatedAlgorithm* split = algorithm.as_split();
    HS_CHECK(split != nullptr,
             "run_simulation: scheduled modes require a split algorithm");
    HS_CHECK(!cfg.checkpoint.enabled(),
             "run_simulation: checkpoint/resume supports the sync loop only");
    HS_CHECK(cfg.edge_groups == 0,
             "run_simulation: edge aggregation supports the sync loop only");
    SimulationResult result =
        run_scheduled(model, *split, population, cfg, observer);
    result.final_metrics = evaluate_per_device(model, population);
    if (observer) observer->on_eval(cfg.rounds, result.final_metrics);
    return result;
  }

  Rng rng(cfg.seed);
  algorithm.init(model, num_clients);
  ClientExecutor executor(cfg.num_threads);
  FaultOptions faults = cfg.faults;
  if (faults.device_tier_delays) {
    faults.delay_scale_fn = [&population](std::size_t client) {
      return population.speed_scale_of(client);
    };
  }
  executor.set_faults(faults);
  executor.set_edge_groups(cfg.edge_groups);

  SimulationResult result;
  std::size_t start_round = 0;
  if (cfg.checkpoint.enabled() && cfg.checkpoint.resume) {
    SimulationCheckpoint ck;
    if (read_checkpoint(checkpoint_path(cfg.checkpoint), ck)) {
      // Resume only a run with the same identity: the checkpointed streams
      // and histories are meaningless under a different configuration.
      HS_CHECK(ck.seed == cfg.seed,
               "run_simulation: checkpoint seed mismatch");
      HS_CHECK(ck.num_clients == num_clients,
               "run_simulation: checkpoint population size mismatch");
      HS_CHECK(ck.clients_per_round == cfg.clients_per_round,
               "run_simulation: checkpoint clients_per_round mismatch");
      HS_CHECK(ck.algorithm == algorithm.name(),
               "run_simulation: checkpoint algorithm mismatch");
      HS_CHECK(ck.model_state.size() == model.state_size(),
               "run_simulation: checkpoint model size mismatch");
      model.set_state(ck.model_state);
      algorithm.load_state(ck.algo);  // after init(): state is sized
      rng.restore_state(ck.rng);
      start_round = static_cast<std::size_t>(ck.next_round);
      result.train_loss_history = std::move(ck.loss_history);
      result.runtime.round_virtual_seconds =
          std::move(ck.round_virtual_seconds);
      for (double v : result.runtime.round_virtual_seconds) {
        result.runtime.virtual_seconds += v;
      }
      load_runtime_counters(ck.counters, result.runtime);
    }
  }

  result.train_loss_history.reserve(cfg.rounds);
  result.runtime.threads = executor.num_threads();
  result.runtime.round_seconds.reserve(
      cfg.rounds > start_round ? cfg.rounds - start_round : 0);
  // Provider counters are cumulative over the provider's lifetime (it may
  // back several runs); report this run's share as a delta.
  PopulationCounters pop_begin;
  const bool has_pop_counters = population.population_counters(pop_begin);
  for (std::size_t round = start_round; round < cfg.rounds; ++round) {
    const auto selected =
        rng.sample_without_replacement(num_clients, cfg.clients_per_round);
    Rng round_rng = rng.fork(round);
    RoundRuntime round_runtime;
    RoundContext ctx;
    ctx.round = round;
    ctx.observer = observer;
    const RoundStats stats =
        executor.run_round(model, algorithm, selected, population, round_rng,
                           &round_runtime, &ctx);
    result.runtime.round_seconds.push_back(round_runtime.round_seconds);
    result.runtime.total_seconds += round_runtime.round_seconds;
    result.runtime.round_virtual_seconds.push_back(
        round_runtime.virtual_seconds);
    result.runtime.virtual_seconds += round_runtime.virtual_seconds;
    result.runtime.client_seconds_sum += round_runtime.client_seconds_sum;
    result.runtime.client_seconds_max = std::max(
        result.runtime.client_seconds_max, round_runtime.client_seconds_max);
    result.runtime.serial_fallback |= round_runtime.serial_fallback;
    result.runtime.clients_dropped += round_runtime.clients_dropped;
    result.runtime.clients_quarantined += round_runtime.clients_quarantined;
    result.runtime.clients_straggled += round_runtime.clients_straggled;
    result.runtime.fault_retries += round_runtime.retries;
    result.runtime.rounds_aborted += round_runtime.aborted ? 1 : 0;
    result.train_loss_history.push_back(stats.mean_train_loss);
    if (cfg.eval_every > 0 && (round + 1) % cfg.eval_every == 0 &&
        round + 1 < cfg.rounds) {
      DeviceMetrics checkpoint = evaluate_per_device(model, population);
      if (observer) observer->on_eval(round + 1, checkpoint);
      result.checkpoints.emplace_back(round + 1, std::move(checkpoint));
    }
    if (cfg.checkpoint.enabled() &&
        ((round + 1) % cfg.checkpoint.every == 0 || round + 1 == cfg.rounds)) {
      SimulationCheckpoint ck;
      ck.next_round = round + 1;
      ck.seed = cfg.seed;
      ck.num_clients = num_clients;
      ck.clients_per_round = cfg.clients_per_round;
      ck.algorithm = algorithm.name();
      ck.rng = rng.save_state();
      ck.model_state = model.state();
      ck.loss_history = result.train_loss_history;
      ck.round_virtual_seconds = result.runtime.round_virtual_seconds;
      save_runtime_counters(result.runtime, ck.counters);
      algorithm.save_state(ck.algo);
      write_checkpoint(checkpoint_path(cfg.checkpoint), ck);
    }
  }
  if (has_pop_counters) {
    PopulationCounters pop_end;
    population.population_counters(pop_end);
    result.runtime.pop_materializations = static_cast<std::size_t>(
        pop_end.materializations - pop_begin.materializations);
    result.runtime.pop_cache_hits =
        static_cast<std::size_t>(pop_end.cache_hits - pop_begin.cache_hits);
    result.runtime.pop_cache_misses = static_cast<std::size_t>(
        pop_end.cache_misses - pop_begin.cache_misses);
    result.runtime.pop_gen_seconds =
        pop_end.gen_seconds - pop_begin.gen_seconds;
  }
  result.final_metrics = evaluate_per_device(model, population);
  if (observer) observer->on_eval(cfg.rounds, result.final_metrics);
  return result;
}

}  // namespace hetero
