#include "fl/simulation.h"

#include "fl/eval.h"
#include "runtime/client_executor.h"
#include "runtime/sched/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hetero {
namespace {

/// Per-client delay/compute scale: device_speed_scale indexed through
/// client_device. Empty when the population carries no speed tiers.
std::vector<double> client_speed_scales(const FlPopulation& pop) {
  if (pop.device_speed_scale.empty()) return {};
  std::vector<double> scales;
  scales.reserve(pop.client_device.size());
  for (std::size_t dev : pop.client_device) {
    scales.push_back(dev < pop.device_speed_scale.size()
                         ? pop.device_speed_scale[dev]
                         : 1.0);
  }
  return scales;
}

/// Runs the async/buffered virtual-clock scheduler (DESIGN.md §11) and
/// maps its accounting into SimulationResult. `rounds` counts server
/// flushes; eval checkpoints fire on the same eval_every grid as sync.
SimulationResult run_scheduled(Model& model, SplitFederatedAlgorithm& split,
                               const FlPopulation& population,
                               const SimulationConfig& cfg,
                               RoundObserver* observer) {
  EventScheduler sched(cfg.num_threads, cfg.sched);

  FaultOptions faults = cfg.faults;
  const std::vector<double> scales = client_speed_scales(population);
  if (faults.device_tier_delays) faults.client_delay_scale = scales;
  sched.set_faults(faults);

  DelayModel delays;
  delays.base_compute_s = cfg.sched.base_compute_s;
  delays.jitter_frac = 0.1;
  delays.client_scale = scales;
  delays.client_work.reserve(population.client_train.size());
  for (const Dataset& d : population.client_train) {
    delays.client_work.push_back(static_cast<double>(d.size()));
  }
  sched.set_delay_model(std::move(delays));

  SimulationResult result;
  auto on_flush = [&](std::size_t done) {
    if (cfg.eval_every > 0 && done % cfg.eval_every == 0 &&
        done < cfg.rounds) {
      DeviceMetrics checkpoint = evaluate_per_device(model, population);
      if (observer) observer->on_eval(done, checkpoint);
      result.checkpoints.emplace_back(done, std::move(checkpoint));
    }
  };

  Rng rng(cfg.seed);
  split.init(model, population.client_train.size());
  SchedulerRunResult run =
      sched.run(model, split, cfg.rounds, cfg.clients_per_round,
                population.client_train, rng, observer, on_flush);

  result.train_loss_history = std::move(run.loss_history);
  RuntimeStats& rt = result.runtime;
  rt.threads = sched.num_threads();
  rt.total_seconds = run.total_seconds;
  rt.round_seconds = std::move(run.flush_seconds);
  rt.virtual_seconds = run.virtual_seconds;
  rt.round_virtual_seconds = std::move(run.flush_virtual_seconds);
  rt.client_seconds_sum = run.client_seconds_sum;
  rt.client_seconds_max = run.client_seconds_max;
  rt.clients_dropped = run.clients_dropped;
  rt.clients_quarantined = run.clients_quarantined;
  rt.clients_straggled = run.clients_straggled;
  rt.fault_retries = run.fault_retries;
  rt.rounds_aborted = run.flushes_aborted;
  rt.clients_dispatched = run.clients_dispatched;
  rt.updates_committed = run.updates_committed;
  rt.staleness_max = run.staleness_max;
  rt.staleness_mean =
      run.updates_committed > 0
          ? run.staleness_sum / static_cast<double>(run.updates_committed)
          : 0.0;
  return result;
}

}  // namespace

DeviceMetrics evaluate_per_device(Model& model, const FlPopulation& pop) {
  HS_CHECK(!pop.device_test.empty(), "evaluate_per_device: no test sets");
  DeviceMetrics m;
  m.per_device.reserve(pop.device_test.size());
  for (const Dataset& test : pop.device_test) {
    const double v = test.is_multi_label()
                         ? evaluate_average_precision(model, test)
                         : evaluate_accuracy(model, test);
    m.per_device.push_back(v);
  }
  m.average = mean(m.per_device);
  m.variance = variance(m.per_device);
  m.worst_case = min_value(m.per_device);
  return m;
}

SimulationResult run_simulation(Model& model, FederatedAlgorithm& algorithm,
                                const FlPopulation& population,
                                const SimulationConfig& cfg) {
  HS_CHECK(!population.client_train.empty(), "run_simulation: no clients");
  HS_CHECK(cfg.clients_per_round > 0 &&
               cfg.clients_per_round <= population.client_train.size(),
           "run_simulation: bad clients_per_round");

  // Fan telemetry out to the configured observer and, for compatibility,
  // the deprecated on_round callback wrapped as an observer.
  MulticastObserver fanout;
  fanout.add(cfg.observer);
  std::unique_ptr<RoundObserver> legacy;
  if (cfg.on_round) {
    legacy = observer_from_callback(cfg.on_round);
    fanout.add(legacy.get());
  }
  RoundObserver* observer = fanout.empty() ? nullptr : &fanout;

  if (cfg.sched.scheduled()) {
    // Async / buffered modes run on the virtual-clock event scheduler.
    // Sync deliberately does NOT: the loop below is the original path, so
    // sync output stays byte-identical to pre-scheduler builds.
    SplitFederatedAlgorithm* split = algorithm.as_split();
    HS_CHECK(split != nullptr,
             "run_simulation: scheduled modes require a split algorithm");
    SimulationResult result =
        run_scheduled(model, *split, population, cfg, observer);
    result.final_metrics = evaluate_per_device(model, population);
    if (observer) observer->on_eval(cfg.rounds, result.final_metrics);
    return result;
  }

  Rng rng(cfg.seed);
  algorithm.init(model, population.client_train.size());
  ClientExecutor executor(cfg.num_threads);
  FaultOptions faults = cfg.faults;
  if (faults.device_tier_delays) {
    faults.client_delay_scale = client_speed_scales(population);
  }
  executor.set_faults(faults);

  SimulationResult result;
  result.train_loss_history.reserve(cfg.rounds);
  result.runtime.threads = executor.num_threads();
  result.runtime.round_seconds.reserve(cfg.rounds);
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    const auto selected = rng.sample_without_replacement(
        population.client_train.size(), cfg.clients_per_round);
    Rng round_rng = rng.fork(round);
    RoundRuntime round_runtime;
    RoundContext ctx;
    ctx.round = round;
    ctx.observer = observer;
    const RoundStats stats =
        executor.run_round(model, algorithm, selected, population.client_train,
                           round_rng, &round_runtime, &ctx);
    result.runtime.round_seconds.push_back(round_runtime.round_seconds);
    result.runtime.total_seconds += round_runtime.round_seconds;
    result.runtime.round_virtual_seconds.push_back(
        round_runtime.virtual_seconds);
    result.runtime.virtual_seconds += round_runtime.virtual_seconds;
    result.runtime.client_seconds_sum += round_runtime.client_seconds_sum;
    result.runtime.client_seconds_max = std::max(
        result.runtime.client_seconds_max, round_runtime.client_seconds_max);
    result.runtime.serial_fallback |= round_runtime.serial_fallback;
    result.runtime.clients_dropped += round_runtime.clients_dropped;
    result.runtime.clients_quarantined += round_runtime.clients_quarantined;
    result.runtime.clients_straggled += round_runtime.clients_straggled;
    result.runtime.fault_retries += round_runtime.retries;
    result.runtime.rounds_aborted += round_runtime.aborted ? 1 : 0;
    result.train_loss_history.push_back(stats.mean_train_loss);
    if (cfg.eval_every > 0 && (round + 1) % cfg.eval_every == 0 &&
        round + 1 < cfg.rounds) {
      DeviceMetrics checkpoint = evaluate_per_device(model, population);
      if (observer) observer->on_eval(round + 1, checkpoint);
      result.checkpoints.emplace_back(round + 1, std::move(checkpoint));
    }
  }
  result.final_metrics = evaluate_per_device(model, population);
  if (observer) observer->on_eval(cfg.rounds, result.final_metrics);
  return result;
}

}  // namespace hetero
