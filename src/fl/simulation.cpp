#include "fl/simulation.h"

#include "fl/eval.h"
#include "runtime/client_executor.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hetero {

DeviceMetrics evaluate_per_device(Model& model, const FlPopulation& pop) {
  HS_CHECK(!pop.device_test.empty(), "evaluate_per_device: no test sets");
  DeviceMetrics m;
  m.per_device.reserve(pop.device_test.size());
  for (const Dataset& test : pop.device_test) {
    const double v = test.is_multi_label()
                         ? evaluate_average_precision(model, test)
                         : evaluate_accuracy(model, test);
    m.per_device.push_back(v);
  }
  m.average = mean(m.per_device);
  m.variance = variance(m.per_device);
  m.worst_case = min_value(m.per_device);
  return m;
}

SimulationResult run_simulation(Model& model, FederatedAlgorithm& algorithm,
                                const FlPopulation& population,
                                const SimulationConfig& cfg) {
  HS_CHECK(!population.client_train.empty(), "run_simulation: no clients");
  HS_CHECK(cfg.clients_per_round > 0 &&
               cfg.clients_per_round <= population.client_train.size(),
           "run_simulation: bad clients_per_round");
  Rng rng(cfg.seed);
  algorithm.init(model, population.client_train.size());
  ClientExecutor executor(cfg.num_threads);
  executor.set_faults(cfg.faults);

  // Fan telemetry out to the configured observer and, for compatibility,
  // the deprecated on_round callback wrapped as an observer.
  MulticastObserver fanout;
  fanout.add(cfg.observer);
  std::unique_ptr<RoundObserver> legacy;
  if (cfg.on_round) {
    legacy = observer_from_callback(cfg.on_round);
    fanout.add(legacy.get());
  }
  RoundObserver* observer = fanout.empty() ? nullptr : &fanout;

  SimulationResult result;
  result.train_loss_history.reserve(cfg.rounds);
  result.runtime.threads = executor.num_threads();
  result.runtime.round_seconds.reserve(cfg.rounds);
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    const auto selected = rng.sample_without_replacement(
        population.client_train.size(), cfg.clients_per_round);
    Rng round_rng = rng.fork(round);
    RoundRuntime round_runtime;
    RoundContext ctx;
    ctx.round = round;
    ctx.observer = observer;
    const RoundStats stats =
        executor.run_round(model, algorithm, selected, population.client_train,
                           round_rng, &round_runtime, &ctx);
    result.runtime.round_seconds.push_back(round_runtime.round_seconds);
    result.runtime.total_seconds += round_runtime.round_seconds;
    result.runtime.client_seconds_sum += round_runtime.client_seconds_sum;
    result.runtime.client_seconds_max = std::max(
        result.runtime.client_seconds_max, round_runtime.client_seconds_max);
    result.runtime.serial_fallback |= round_runtime.serial_fallback;
    result.runtime.clients_dropped += round_runtime.clients_dropped;
    result.runtime.clients_quarantined += round_runtime.clients_quarantined;
    result.runtime.clients_straggled += round_runtime.clients_straggled;
    result.runtime.fault_retries += round_runtime.retries;
    result.runtime.rounds_aborted += round_runtime.aborted ? 1 : 0;
    result.train_loss_history.push_back(stats.mean_train_loss);
    if (cfg.eval_every > 0 && (round + 1) % cfg.eval_every == 0 &&
        round + 1 < cfg.rounds) {
      DeviceMetrics checkpoint = evaluate_per_device(model, population);
      if (observer) observer->on_eval(round + 1, checkpoint);
      result.checkpoints.emplace_back(round + 1, std::move(checkpoint));
    }
  }
  result.final_metrics = evaluate_per_device(model, population);
  if (observer) observer->on_eval(cfg.rounds, result.final_metrics);
  return result;
}

}  // namespace hetero
