// The federated-learning simulation loop and the fairness / domain-
// generalization metrics of Section 6.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fl/algorithm.h"
#include "fl/checkpoint.h"
#include "fl/client_provider.h"
#include "fl/population.h"
#include "nn/model.h"
#include "runtime/faults.h"
#include "runtime/sched/sched_options.h"

namespace hetero {

/// Per-device evaluation of the global model plus the paper's summary
/// metrics: average accuracy (fairness), population variance of accuracy
/// across device types (fairness), worst-case accuracy (DG).
struct DeviceMetrics {
  std::vector<double> per_device;  ///< accuracy or AP per device type
  double average = 0.0;
  double variance = 0.0;   ///< population variance across device types
  double worst_case = 0.0;
};

/// Evaluates accuracy (or AP for multi-label test sets) on every device
/// test set of the population.
DeviceMetrics evaluate_per_device(Model& model, const FlPopulation& pop);
DeviceMetrics evaluate_per_device(Model& model, const ClientProvider& pop);

struct SimulationConfig {
  std::size_t rounds = 100;            ///< T
  std::size_t clients_per_round = 20;  ///< K
  std::uint64_t seed = 42;
  /// Evaluate per-device metrics every eval_every rounds (0 = only final).
  std::size_t eval_every = 0;
  /// Worker threads for the per-client training fan-out. 1 runs everything
  /// on the calling thread; 0 selects hardware_concurrency. Results are
  /// bit-identical for any value (see DESIGN.md, runtime contract).
  std::size_t num_threads = 1;
  /// Telemetry sink for the run's round/client/eval events (see
  /// fl/observer.h and DESIGN.md §8). Non-owning; null disables telemetry.
  RoundObserver* observer = nullptr;
  /// Deprecated: use `observer`. Still honoured through an internal
  /// CallbackObserver adapter — fires as (round, mean train loss) after
  /// every round, alongside (not instead of) `observer`.
  std::function<void(std::size_t, double)> on_round;
  /// Deterministic fault injection + partial-aggregation hardening (see
  /// runtime/faults.h and DESIGN.md §10). Defaults inject nothing and are
  /// byte-identical to a run without the fault layer. Populated from
  /// HS_FAULTS by the benches/CLI via parse_fault_spec.
  FaultOptions faults;
  /// Virtual-clock event scheduling (DESIGN.md §11). The default (sync)
  /// keeps the original round loop — byte-identical to pre-scheduler
  /// builds; async/buffered modes route rounds through the EventScheduler
  /// (requires a split algorithm). `rounds` then counts server flushes.
  /// Populated from HS_SCHED by the benches/CLI via parse_sched_spec.
  SchedulerOptions sched;
  /// Round-level checkpoint/resume (DESIGN.md §12; sync loop only —
  /// scheduled modes reject it). When enabled, the loop writes
  /// <dir>/checkpoint.bin every `every` completed rounds (plus at the final
  /// round) and, with resume on, continues a matching run bit-for-bit from
  /// an existing file: model state, algorithm cross-round state, sampling
  /// RNG cursor, loss/virtual-time histories, and fault counters all round-
  /// trip exactly. Wall-clock fields (round_seconds, total_seconds) and
  /// eval_every checkpoints cover only the rounds this process executed.
  /// Populated from HS_CHECKPOINT by the benches/CLI via
  /// parse_checkpoint_spec.
  CheckpointOptions checkpoint;
  /// Two-level edge-aggregation tree (DESIGN.md §14): >0 splits every
  /// round's survivors into this many contiguous selection blocks, folds
  /// each into one weighted digest (the PR 4 renormalized partial
  /// aggregation), and aggregates the digests — exactly the fold the
  /// distributed edge tier (src/net) runs, so a loopback run with matching
  /// num_edges is byte-identical to this in-process path. 0 keeps the flat
  /// fold. Sync loop only; requires supports_partial_aggregation().
  std::size_t edge_groups = 0;
};

/// Wall- and virtual-time accounting of one simulation run. The two clocks
/// never mix (DESIGN.md §11): *_seconds fields are nondeterministic wall
/// time; virtual_* fields are deterministic simulated time (injected
/// delays, backoffs, modeled compute).
struct RuntimeStats {
  std::size_t threads = 1;     ///< resolved executor thread count
  double total_seconds = 0.0;  ///< wall time across all rounds
  std::vector<double> round_seconds;  ///< per-round wall time
  /// Total virtual time: summed round makespans (sync) or the final
  /// virtual-clock reading (scheduled modes). 0 when no virtual time passed.
  double virtual_seconds = 0.0;
  /// Per-round virtual makespan (sync) / per-flush clock span (scheduled).
  std::vector<double> round_virtual_seconds;
  /// Summed / worst per-client local-training wall time. Populated on
  /// every execution path, including serial-only algorithms.
  double client_seconds_sum = 0.0;
  double client_seconds_max = 0.0;
  /// True when the algorithm had no split client phase, so rounds ran its
  /// own serial implementation regardless of num_threads.
  bool serial_fallback = false;
  /// Fault totals over the whole run (all zero for clean zero-fault runs).
  std::size_t clients_dropped = 0;      ///< dropout + timeout + failed
  std::size_t clients_quarantined = 0;  ///< non-finite updates excluded
  std::size_t clients_straggled = 0;    ///< delayed but aggregated
  std::size_t fault_retries = 0;        ///< transient-failure retries used
  std::size_t rounds_aborted = 0;       ///< rounds below the min_clients floor
  /// Scheduled-mode accounting (zero under sync).
  std::size_t clients_dispatched = 0;  ///< total client dispatches
  std::size_t updates_committed = 0;   ///< usable updates aggregated
  std::size_t staleness_max = 0;       ///< worst update staleness seen
  double staleness_mean = 0.0;         ///< mean over committed updates
  /// Population-materialization totals over the run, from
  /// ClientProvider::population_counters (all zero for eager providers).
  /// pop_hits + pop_misses == pop_materializations always holds.
  std::size_t pop_materializations = 0;  ///< client datasets served
  std::size_t pop_cache_hits = 0;        ///< served from the dataset LRU
  std::size_t pop_cache_misses = 0;      ///< ran the generation recipe
  double pop_gen_seconds = 0.0;          ///< wall time inside generation
};

struct SimulationResult {
  DeviceMetrics final_metrics;
  std::vector<double> train_loss_history;  ///< one entry per round
  /// Metrics captured at each eval_every checkpoint (empty if disabled).
  std::vector<std::pair<std::size_t, DeviceMetrics>> checkpoints;
  RuntimeStats runtime;
};

/// Runs T rounds of the algorithm on the population, mutating the model.
/// Per round, K clients are sampled uniformly without replacement from the
/// population (device skew is already baked into the provider's device
/// assignment). This provider form is primary: a VirtualPopulation runs a
/// 1M-client federation in O(k) memory per round, and is bit-identical to
/// the MaterializedPopulation built from the same (spec, root).
SimulationResult run_simulation(Model& model, FederatedAlgorithm& algorithm,
                                const ClientProvider& population,
                                const SimulationConfig& cfg);

/// Legacy entry point over an eager FlPopulation; borrows it through a
/// MaterializedPopulation and behaves identically to pre-provider builds.
SimulationResult run_simulation(Model& model, FederatedAlgorithm& algorithm,
                                const FlPopulation& population,
                                const SimulationConfig& cfg);

}  // namespace hetero
