#include "fl/trainer.h"

#include "nn/loss.h"
#include "util/rng.h"

namespace hetero {

float local_train(Model& model, const Dataset& data,
                  const LocalTrainConfig& cfg, Rng& rng,
                  const TrainHooks& hooks) {
  HS_CHECK(!data.empty(), "local_train: empty dataset");
  HS_CHECK(cfg.epochs > 0, "local_train: epochs must be positive");

  Sgd opt(model.net(), SgdOptions{cfg.lr, cfg.momentum, cfg.weight_decay});
  SoftmaxCrossEntropy ce;
  BceWithLogits bce;
  model.zero_grad();

  DataLoader loader(data, cfg.batch_size, rng);
  double loss_sum = 0.0;
  std::size_t batch_idx = 0;
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    if (e > 0) loader.reset(rng);
    for (std::size_t b = 0; b < loader.num_batches(); ++b) {
      Batch batch = loader.batch(b);
      if (hooks.transform_batch) hooks.transform_batch(batch, rng);

      Tensor logits = model.forward(batch.x, /*train=*/true);
      LossResult lr = data.is_multi_label()
                          ? bce(logits, batch.multi_targets)
                          : ce(logits, batch.labels);
      model.backward(lr.grad);
      if (hooks.post_grad) hooks.post_grad(model);
      opt.step_and_zero();
      if (hooks.post_step) hooks.post_step(model, batch_idx);

      loss_sum += lr.loss;
      ++batch_idx;
    }
  }
  return batch_idx ? static_cast<float>(loss_sum / batch_idx) : 0.0f;
}

}  // namespace hetero
