// Local SGD training loop shared by every federated algorithm's client side
// (and by the centralized characterization experiments).
//
// Hooks let algorithms customize the loop without reimplementing it:
//   * transform_batch - client-side data augmentation (HeteroSwitch's ISP
//     transforms run here, fresh randomness per batch);
//   * post_grad       - gradient edits after backward, before the step
//     (FedProx's proximal term, SCAFFOLD's control variates);
//   * post_step       - runs after each optimizer step (SWAD weight
//     averaging accumulates here).
#pragma once

#include <functional>

#include "data/dataset.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace hetero {

class Rng;

struct LocalTrainConfig {
  float lr = 0.1f;
  std::size_t epochs = 1;
  std::size_t batch_size = 10;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

struct TrainHooks {
  std::function<void(Batch&, Rng&)> transform_batch;
  std::function<void(Model&)> post_grad;
  std::function<void(Model&, std::size_t batch_idx)> post_step;
};

/// Trains the model in place on the dataset; returns the running-average
/// train loss over all batches (the paper's L_train from Algorithm 1,
/// line 14: a running mean indexed by batch).
float local_train(Model& model, const Dataset& data,
                  const LocalTrainConfig& cfg, Rng& rng,
                  const TrainHooks& hooks = {});

}  // namespace hetero
