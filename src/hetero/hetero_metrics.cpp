#include "hetero/hetero_metrics.h"

#include <algorithm>
#include <cmath>

namespace hetero {

DatasetSignature compute_signature(const Dataset& data) {
  HS_CHECK(!data.empty(), "compute_signature: empty dataset");
  HS_CHECK(data.channels() == 3, "compute_signature: RGB datasets only");
  const Tensor& xs = data.xs();
  const std::size_t n = xs.dim(0), h = xs.dim(2), w = xs.dim(3);
  const std::size_t plane = h * w;

  DatasetSignature sig;
  sig.num_samples = n;
  std::array<double, 3> sum{}, sq{};
  double grad_sum = 0.0;
  std::size_t grad_count = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const float* r = xs.data() + (i * 3 + 0) * plane;
    const float* g = xs.data() + (i * 3 + 1) * plane;
    const float* b = xs.data() + (i * 3 + 2) * plane;
    for (std::size_t c = 0; c < 3; ++c) {
      const float* p = xs.data() + (i * 3 + c) * plane;
      for (std::size_t j = 0; j < plane; ++j) {
        sum[c] += p[j];
        sq[c] += static_cast<double>(p[j]) * p[j];
      }
    }
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const std::size_t j = y * w + x;
        const double luma = 0.2126 * r[j] + 0.7152 * g[j] + 0.0722 * b[j];
        const int bin = std::clamp(static_cast<int>(luma * 16.0), 0, 15);
        sig.luma_hist[static_cast<std::size_t>(bin)] += 1.0;
        if (x + 1 < w) {
          const double luma_next = 0.2126 * r[j + 1] + 0.7152 * g[j + 1] +
                                   0.0722 * b[j + 1];
          grad_sum += std::abs(luma_next - luma);
          ++grad_count;
        }
      }
    }
  }

  const double count = static_cast<double>(n * plane);
  for (std::size_t c = 0; c < 3; ++c) {
    sig.channel_mean[c] = sum[c] / count;
    sig.channel_std[c] = std::sqrt(
        std::max(0.0, sq[c] / count - sig.channel_mean[c] * sig.channel_mean[c]));
  }
  for (double& bin : sig.luma_hist) bin /= count;
  sig.gradient_energy =
      grad_count ? grad_sum / static_cast<double>(grad_count) : 0.0;
  return sig;
}

double signature_distance(const DatasetSignature& a,
                          const DatasetSignature& b) {
  double d = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    d += std::abs(a.channel_mean[c] - b.channel_mean[c]);
    d += std::abs(a.channel_std[c] - b.channel_std[c]);
  }
  double hist = 0.0;
  for (std::size_t i = 0; i < a.luma_hist.size(); ++i) {
    hist += std::abs(a.luma_hist[i] - b.luma_hist[i]);
  }
  d += 0.5 * hist;
  const double ge = std::max(
      {a.gradient_energy, b.gradient_energy, 1e-9});
  d += std::abs(a.gradient_energy - b.gradient_energy) / ge;
  return d;
}

std::vector<std::vector<double>> pairwise_heterogeneity(
    const std::vector<const Dataset*>& datasets) {
  HS_CHECK(!datasets.empty(), "pairwise_heterogeneity: no datasets");
  std::vector<DatasetSignature> sigs;
  sigs.reserve(datasets.size());
  for (const Dataset* d : datasets) {
    HS_CHECK(d != nullptr, "pairwise_heterogeneity: null dataset");
    sigs.push_back(compute_signature(*d));
  }
  std::vector<std::vector<double>> m(datasets.size(),
                                     std::vector<double>(datasets.size(), 0));
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    for (std::size_t j = i + 1; j < sigs.size(); ++j) {
      m[i][j] = m[j][i] = signature_distance(sigs[i], sigs[j]);
    }
  }
  return m;
}

}  // namespace hetero
