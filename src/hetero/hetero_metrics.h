// Model-free measurement of system-induced data heterogeneity.
//
// Section 3 of the paper characterizes heterogeneity through model-quality
// degradation, which requires training. These utilities quantify the same
// phenomenon directly from image statistics, so a deployment can estimate
// *before training* how far apart two device populations are:
//
//  * DatasetSignature — compact per-dataset statistics: per-channel
//    mean/std, luminance histogram, and a gradient-energy (sharpness)
//    figure;
//  * signature_distance — symmetric distance between signatures
//    (channel-stat L1 + histogram L1 + relative sharpness gap);
//  * pairwise_heterogeneity — the full device-by-device distance matrix,
//    the statistics-level analogue of Table 2.
#pragma once

#include <array>
#include <vector>

#include "data/dataset.h"

namespace hetero {

struct DatasetSignature {
  std::array<double, 3> channel_mean{};
  std::array<double, 3> channel_std{};
  /// 16-bin luminance histogram (normalized to sum 1).
  std::array<double, 16> luma_hist{};
  /// Mean absolute horizontal gradient of luminance (sharpness proxy;
  /// distinguishes demosaic/denoise/compression styles).
  double gradient_energy = 0.0;
  std::size_t num_samples = 0;
};

/// Computes the signature of a dataset's images (expects (N,3,H,W)).
DatasetSignature compute_signature(const Dataset& data);

/// Symmetric distance between two signatures; 0 for identical statistics.
double signature_distance(const DatasetSignature& a,
                          const DatasetSignature& b);

/// Pairwise distance matrix between datasets (e.g. one per device type).
std::vector<std::vector<double>> pairwise_heterogeneity(
    const std::vector<const Dataset*>& datasets);

}  // namespace hetero
