#include "hetero/heteroswitch.h"

#include "fl/eval.h"
#include "kernels/kernels.h"
#include "util/rng.h"

namespace hetero {

const char* hetero_switch_mode_name(HeteroSwitchMode mode) {
  switch (mode) {
    case HeteroSwitchMode::kSelective: return "HeteroSwitch";
    case HeteroSwitchMode::kAlwaysIsp: return "ISP-Transformation";
    case HeteroSwitchMode::kAlwaysIspSwad: return "ISP+SWAD";
  }
  return "?";
}

HeteroSwitch::HeteroSwitch(LocalTrainConfig cfg, HeteroSwitchOptions options)
    : cfg_(cfg), options_(options), ema_(options.ema_alpha) {}

void HeteroSwitch::init(Model& model, std::size_t num_clients) {
  (void)model;
  (void)num_clients;
  ema_.reset();
  switch1_count_ = switch2_count_ = update_count_ = 0;
}

std::string HeteroSwitch::name() const {
  return hetero_switch_mode_name(options_.mode);
}

ClientUpdate HeteroSwitch::local_update(Model& model, const Tensor& global,
                                        std::size_t client_id,
                                        const Dataset& full_data,
                                        Rng& client_rng) const {
  model.set_state(global);
  // The switch decisions compare against the EMA as of the round start;
  // aggregate() only updates it after every client has trained.
  const double l_ema = ema_.value();

  // Optional validation split: the last validation_fraction of the
  // client's samples measure bias; the rest train. With kTrainLoss the
  // whole dataset does both (Algorithm 1 verbatim).
  Dataset train_split;
  Dataset val_split;
  const bool use_val = options_.criterion == BiasCriterion::kValidationSplit &&
                       full_data.size() >= 4;
  if (use_val) {
    const std::size_t n_val = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<float>(full_data.size()) *
                                    options_.validation_fraction));
    std::vector<std::size_t> train_idx, val_idx;
    for (std::size_t i = 0; i < full_data.size(); ++i) {
      (i + n_val < full_data.size() ? train_idx : val_idx).push_back(i);
    }
    train_split = full_data.subset(train_idx);
    val_split = full_data.subset(val_idx);
  }
  const Dataset& data = use_val ? train_split : full_data;
  const Dataset& probe = use_val ? val_split : full_data;

  // -- Algorithm 1, lines 2-5: bias measurement ---------------------------
  // L_init: loss of the incoming global model on this client's data.
  bool switch1 = false;
  switch (options_.mode) {
    case HeteroSwitchMode::kSelective: {
      // An unseeded EMA reads +inf and L_init < +inf holds vacuously; by
      // default the switches stay off until the EMA has a real value
      // (HeteroSwitchOptions::switch_on_unseeded_ema restores the legacy
      // fire-for-everyone round 0).
      if (!ema_.initialized() && !options_.switch_on_unseeded_ema) break;
      const double l_init = evaluate_loss(model, probe, probe_batch());
      switch1 = l_init < l_ema;
      break;
    }
    case HeteroSwitchMode::kAlwaysIsp:
    case HeteroSwitchMode::kAlwaysIspSwad:
      switch1 = true;
      break;
  }
  const bool use_swad =
      switch1 && options_.mode != HeteroSwitchMode::kAlwaysIsp;

  // -- Lines 6-21: local training with optional transform + SWAD ----------
  // Line 10: W_SWA initialized as a copy of W (the incoming weights).
  WeightAverager swa(model.params());
  TrainHooks hooks;
  if (switch1) {
    hooks.transform_batch = [this](Batch& batch, Rng& batch_rng) {
      apply_isp_transform_batch(batch.x, options_.transform, batch_rng);
    };
  }
  if (use_swad) {
    hooks.post_step = [&swa](Model& m, std::size_t) {
      swa.update(m.params());
    };
  }
  const float l_train = local_train(model, data, cfg_, client_rng, hooks);

  // -- Lines 22-29: Switch_2 decides which weights to return --------------
  // With the validation criterion the post-training loss is re-measured
  // on the held-out slice instead of reusing the running train loss.
  const double l_post = use_val
                            ? evaluate_loss(model, probe, probe_batch())
                            : static_cast<double>(l_train);
  bool switch2 = false;
  switch (options_.mode) {
    case HeteroSwitchMode::kSelective:
      switch2 = switch1 && l_post < l_ema;
      break;
    case HeteroSwitchMode::kAlwaysIspSwad:
      switch2 = true;  // always-on ablation returns the SWAD average
      break;
    case HeteroSwitchMode::kAlwaysIsp:
      switch2 = false;
      break;
  }
  if (switch2) model.set_params(swa.average());

  ClientUpdate u;
  u.client_id = client_id;
  u.state = model.state();
  // Aggregation weight is the client's FULL sample count even under the
  // validation criterion: holding out a probe slice changes what the
  // switches measure, not how much of the population this client speaks
  // for (weighting by the train split would silently down-weight every
  // client by validation_fraction relative to kTrainLoss).
  u.weight = static_cast<double>(full_data.size());
  u.train_loss = static_cast<double>(l_train);
  u.flags = (switch1 ? 1u : 0u) | (switch2 ? 2u : 0u);
  return u;
}

RoundStats HeteroSwitch::aggregate(Model& model, const Tensor& global,
                                   std::vector<ClientUpdate>& updates) {
  (void)global;
  HS_CHECK(!updates.empty(), "HeteroSwitch: no client updates");
  RoundStats stats = summarize_updates(updates, model.state_size());
  std::vector<Tensor> states;
  std::vector<double> weights;
  std::size_t round_switch1 = 0, round_switch2 = 0;
  states.reserve(updates.size());
  for (ClientUpdate& u : updates) {
    ++update_count_;
    if (u.flags & 1u) ++round_switch1;
    if (u.flags & 2u) ++round_switch2;
    states.push_back(std::move(u.state));
    weights.push_back(u.weight);
  }
  switch1_count_ += round_switch1;
  switch2_count_ += round_switch2;
  model.set_state(weighted_average_states(states, weights));
  // Eq. 1: fold the round's aggregated train loss into the EMA.
  ema_.update(stats.mean_train_loss);
  stats.extras["hs.switch1"] = static_cast<double>(round_switch1);
  stats.extras["hs.switch2"] = static_cast<double>(round_switch2);
  stats.extras["hs.ema_loss"] = ema_.value();
  if (kernels::eval_mode() == kernels::EvalMode::kInt8) {
    // Marks traces whose probe losses came through the quantized eval
    // path. Emitted only when the mode is on so default-mode traces stay
    // byte-identical to pre-int8 runs.
    stats.extras["hs.eval_int8"] = 1.0;
  }
  return stats;
}

void HeteroSwitch::save_state(AlgorithmCheckpoint& out) const {
  out.scalars["hs.ema"] = ema_.raw_value();
  out.words["hs.ema_init"] = ema_.initialized() ? 1 : 0;
  out.words["hs.switch1"] = switch1_count_;
  out.words["hs.switch2"] = switch2_count_;
  out.words["hs.updates"] = update_count_;
}

void HeteroSwitch::load_state(const AlgorithmCheckpoint& in) {
  const auto ema = in.scalars.find("hs.ema");
  const auto init = in.words.find("hs.ema_init");
  if (ema != in.scalars.end() && init != in.words.end()) {
    ema_.restore(ema->second, init->second != 0);
  }
  const auto s1 = in.words.find("hs.switch1");
  if (s1 != in.words.end()) switch1_count_ = s1->second;
  const auto s2 = in.words.find("hs.switch2");
  if (s2 != in.words.end()) switch2_count_ = s2->second;
  const auto up = in.words.find("hs.updates");
  if (up != in.words.end()) update_count_ = up->second;
}

}  // namespace hetero
