// HeteroSwitch (Section 5, Algorithm 1): selective client-side
// generalization against system-induced data heterogeneity.
//
// Per round, per client:
//   1. Bias measurement: L_init = loss of the incoming global model on the
//      client's data. If L_init < L_EMA (the server's exponential moving
//      average of aggregated train loss, eq. 1), the client's data
//      distribution is already well-learned by the global model — evidence
//      of bias toward this client's device — so Switch_1 turns ON.
//   2. If Switch_1: the client's batches receive random ISP transforms
//      (random WB + random gamma, eq. 2-3) and a SWAD running average of
//      the weights is maintained per batch.
//   3. If Switch_1 and the final train loss is still below L_EMA
//      (Switch_2), the client returns the SWAD average instead of the last
//      iterate — the strongest generalization — otherwise the plain
//      weights.
// The server aggregates returned states sample-weighted (FedAvg) and
// updates L_EMA with the round's mean train loss.
//
// `mode` exposes the paper's Table 4 ablations on the same code path:
//   kSelective      - full HeteroSwitch (switching logic active);
//   kAlwaysIsp      - "ISP Transformation" row: transforms always on,
//                     no SWAD;
//   kAlwaysIspSwad  - "+ SWAD" row: transforms + SWAD always on.
#pragma once

#include "fl/algorithm.h"
#include "hetero/swad.h"
#include "hetero/transforms.h"
#include "util/stats.h"

namespace hetero {

enum class HeteroSwitchMode { kSelective, kAlwaysIsp, kAlwaysIspSwad };

const char* hetero_switch_mode_name(HeteroSwitchMode mode);

/// What loss the switch decisions compare against L_EMA. Section 5.1: "We
/// use the EMA loss from previous communication rounds or the validation
/// loss as the criteria".
enum class BiasCriterion {
  kTrainLoss,        ///< Algorithm 1 verbatim: L_init / L_train on all data
  kValidationSplit,  ///< losses measured on a held-out slice of client data
};

struct HeteroSwitchOptions {
  HeteroSwitchMode mode = HeteroSwitchMode::kSelective;
  IspTransformConfig transform;  ///< WB degree 0.001, gamma degree 0.9
  double ema_alpha = 0.9;        ///< smoothing factor of eq. 1
  BiasCriterion criterion = BiasCriterion::kTrainLoss;
  /// Fraction of each client's data held out when criterion is
  /// kValidationSplit (the rest is trained on).
  float validation_fraction = 0.25f;
  /// Round-0 behavior of kSelective, made explicit: before the EMA has
  /// seen its first update it has no value to compare against. Default
  /// (false): both switches stay OFF until the EMA is seeded — round 0 is
  /// plain FedAvg, no client is flagged as biased by a vacuous comparison.
  /// true restores the legacy behavior where the empty EMA reads +inf and
  /// L_init < +inf fires Switch_1 for every client in round 0.
  bool switch_on_unseeded_ema = false;
  /// Forward batch size for the L_init / post-training probe evals. Eval
  /// batching is invisible to the measured losses in f32 (per-element
  /// reduction chains are batch-independent, DESIGN.md §13), so probes
  /// default to a larger batch than the paper's training B=10 purely to
  /// amortize per-batch forward overhead. 0 falls back to the training
  /// batch size.
  std::size_t probe_batch = 64;
};

class HeteroSwitch : public SplitFederatedAlgorithm {
 public:
  HeteroSwitch(LocalTrainConfig cfg, HeteroSwitchOptions options);

  void init(Model& model, std::size_t num_clients) override;
  /// Pure per-client phase: bias measurement against the round-start L_EMA,
  /// local training with optional ISP transforms + SWAD, switch decisions.
  /// Records Switch_1/Switch_2 in ClientUpdate::flags (bits 0/1); counters
  /// and the EMA are only touched in aggregate().
  ClientUpdate local_update(Model& model, const Tensor& global,
                            std::size_t client_id, const Dataset& data,
                            Rng& client_rng) const override;
  RoundStats aggregate(Model& model, const Tensor& global,
                       std::vector<ClientUpdate>& updates) override;
  std::string name() const override;

  /// Round-level checkpoint hooks: the L_EMA (value + seeded flag) and the
  /// lifetime switch counters are the only cross-round state.
  void save_state(AlgorithmCheckpoint& out) const override;
  void load_state(const AlgorithmCheckpoint& in) override;

  /// Current EMA of the aggregated train loss (+inf before round 0).
  double ema_loss() const { return ema_.value(); }

  /// Counters over the lifetime of the run (observability / tests).
  std::size_t switch1_activations() const { return switch1_count_; }
  std::size_t switch2_activations() const { return switch2_count_; }
  std::size_t client_updates() const { return update_count_; }

 private:
  /// Batch size for the probe evals (options_.probe_batch, falling back to
  /// the training batch size when 0).
  std::size_t probe_batch() const {
    return options_.probe_batch ? options_.probe_batch : cfg_.batch_size;
  }

  LocalTrainConfig cfg_;
  HeteroSwitchOptions options_;
  Ema ema_;
  std::size_t switch1_count_ = 0;
  std::size_t switch2_count_ = 0;
  std::size_t update_count_ = 0;
};

}  // namespace hetero
