#include "hetero/swad.h"

namespace hetero {

WeightAverager::WeightAverager(const Tensor& initial)
    : avg_(initial), count_(1) {}

void WeightAverager::update(const Tensor& weights) {
  if (count_ == 0) {
    avg_ = weights;
    count_ = 1;
    return;
  }
  HS_CHECK(weights.same_shape(avg_), "WeightAverager: shape mismatch");
  // avg <- (avg * k + w) / (k + 1), numerically: avg += (w - avg)/(k + 1).
  const float inv = 1.0f / static_cast<float>(count_ + 1);
  for (std::size_t i = 0; i < avg_.size(); ++i) {
    avg_[i] += (weights[i] - avg_[i]) * inv;
  }
  ++count_;
}

const Tensor& WeightAverager::average() const {
  HS_CHECK(count_ > 0, "WeightAverager: no samples");
  return avg_;
}

void WeightAverager::reset() {
  avg_ = Tensor();
  count_ = 0;
}

const char* averaging_mode_name(AveragingMode mode) {
  switch (mode) {
    case AveragingMode::kNone: return "none";
    case AveragingMode::kPerEpoch: return "SWA";
    case AveragingMode::kPerBatch: return "SWAD";
  }
  return "?";
}

}  // namespace hetero
