// Stochastic weight averaging (Section 5.2, "Model Generalization through
// SWAD").
//
// WeightAverager maintains the running mean of flat parameter vectors:
//     W_avg <- (W_avg * k + W) / (k + 1)
// which is Algorithm 1 line 17 with k the update index. SWAD averages after
// every *batch*; conventional SWA (Izmailov et al. 2018) averages once per
// *epoch*. Fig 7 compares the two.
#pragma once

#include "tensor/tensor.h"

namespace hetero {

class WeightAverager {
 public:
  WeightAverager() = default;

  /// Seeds the average with an initial weight vector (Algorithm 1 line 10:
  /// "Initialize W_SWA as copy of W"). Counts as the first sample.
  explicit WeightAverager(const Tensor& initial);

  /// Folds one weight snapshot into the running mean.
  void update(const Tensor& weights);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// The running average; must not be called before any update.
  const Tensor& average() const;

  void reset();

 private:
  Tensor avg_;
  std::size_t count_ = 0;
};

/// When weight snapshots are folded into the average.
enum class AveragingMode { kNone, kPerEpoch /*SWA*/, kPerBatch /*SWAD*/ };

const char* averaging_mode_name(AveragingMode mode);

}  // namespace hetero
