#include "hetero/transforms.h"

#include <algorithm>
#include <cmath>

#include "image/fastpath.h"
#include "kernels/isa.h"
#include "util/rng.h"

namespace hetero {
namespace {

void check_chw(const Tensor& t) {
  HS_CHECK(t.rank() == 3, "transform: tensor must be (C, H, W)");
}

HS_TILED_CLONES
void clamp_scale_plane(float* HS_RESTRICT plane, std::size_t n, float gain) {
  for (std::size_t i = 0; i < n; ++i) {
    plane[i] = std::clamp(plane[i] * gain, 0.0f, 1.0f);
  }
}

// Raw-buffer bodies shared by the Tensor entry points and the in-place
// batch path below (which transforms samples inside the NCHW slab instead
// of copying each one out and back). Identical RNG draw order either way.
void white_balance_planes(float* data, std::size_t c, std::size_t hw,
                          float degree, Rng& rng) {
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float gain = rng.uniform_f(1.0f - degree, 1.0f + degree);
    float* plane = data + ch * hw;
    if (img::fast_path()) {
      clamp_scale_plane(plane, hw, gain);
      continue;
    }
    for (std::size_t i = 0; i < hw; ++i) {
      plane[i] = std::clamp(plane[i] * gain, 0.0f, 1.0f);
    }
  }
}

void gamma_flat(float* data, std::size_t n, float degree, Rng& rng) {
  const float gamma = rng.uniform_f(1.0f - degree, 1.0f + degree);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = std::pow(std::clamp(data[i], 0.0f, 1.0f), gamma);
  }
}

// Fast-path inverse-map resample: the seed per-pixel chain verbatim with the
// row-invariant dy hoisted and raw plane pointers instead of checked at().
HS_TILED_CLONES
void affine_rows(const float* HS_RESTRICT src, float* HS_RESTRICT dst,
                 std::size_t c, std::size_t h, std::size_t w, float ca,
                 float sa, float tx, float ty, float cx, float cy) {
  const std::size_t hw = h * w;
  for (std::size_t y = 0; y < h; ++y) {
    const float dy = static_cast<float>(y) - cy - ty;
    for (std::size_t x = 0; x < w; ++x) {
      const float dx = static_cast<float>(x) - cx - tx;
      const float sx = ca * dx + sa * dy + cx;
      const float sy = -sa * dx + ca * dy + cy;
      const int x0 = static_cast<int>(std::floor(sx));
      const int y0 = static_cast<int>(std::floor(sy));
      const float fx = sx - static_cast<float>(x0);
      const float fy = sy - static_cast<float>(y0);
      auto sample = [&](std::size_t ch, int yy, int xx) -> float {
        if (yy < 0 || yy >= static_cast<int>(h) || xx < 0 ||
            xx >= static_cast<int>(w)) {
          return 0.0f;  // zero padding outside the frame
        }
        return src[ch * hw + static_cast<std::size_t>(yy) * w +
                   static_cast<std::size_t>(xx)];
      };
      for (std::size_t ch = 0; ch < c; ++ch) {
        const float top =
            sample(ch, y0, x0) * (1 - fx) + sample(ch, y0, x0 + 1) * fx;
        const float bot =
            sample(ch, y0 + 1, x0) * (1 - fx) + sample(ch, y0 + 1, x0 + 1) * fx;
        dst[ch * hw + y * w + x] = top * (1 - fy) + bot * fy;
      }
    }
  }
}

}  // namespace

void random_white_balance(Tensor& chw, float degree, Rng& rng) {
  check_chw(chw);
  HS_CHECK(degree >= 0.0f && degree < 1.0f, "random_white_balance: degree");
  white_balance_planes(chw.data(), chw.dim(0), chw.dim(1) * chw.dim(2),
                       degree, rng);
}

void random_gamma(Tensor& chw, float degree, Rng& rng) {
  check_chw(chw);
  HS_CHECK(degree >= 0.0f && degree < 1.0f, "random_gamma: degree");
  gamma_flat(chw.data(), chw.size(), degree, rng);
}

void random_affine(Tensor& chw, float degree, Rng& rng) {
  check_chw(chw);
  const std::size_t c = chw.dim(0), h = chw.dim(1), w = chw.dim(2);
  const float angle = rng.uniform_f(-0.52f, 0.52f) * degree;  // up to ~30 deg
  const float tx = rng.uniform_f(-0.2f, 0.2f) * degree * static_cast<float>(w);
  const float ty = rng.uniform_f(-0.2f, 0.2f) * degree * static_cast<float>(h);
  const float scale = rng.uniform_f(1.0f - 0.2f * degree, 1.0f + 0.2f * degree);
  const float ca = std::cos(angle) / scale, sa = std::sin(angle) / scale;
  const float cy = static_cast<float>(h) / 2.0f;
  const float cx = static_cast<float>(w) / 2.0f;

  Tensor out({c, h, w});
  if (img::fast_path()) {
    affine_rows(chw.data(), out.data(), c, h, w, ca, sa, tx, ty, cx, cy);
    chw = std::move(out);
    return;
  }
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      // Inverse-map output pixel to source coordinates.
      const float dx = static_cast<float>(x) - cx - tx;
      const float dy = static_cast<float>(y) - cy - ty;
      const float sx = ca * dx + sa * dy + cx;
      const float sy = -sa * dx + ca * dy + cy;
      const int x0 = static_cast<int>(std::floor(sx));
      const int y0 = static_cast<int>(std::floor(sy));
      const float fx = sx - static_cast<float>(x0);
      const float fy = sy - static_cast<float>(y0);
      auto sample = [&](std::size_t ch, int yy, int xx) -> float {
        if (yy < 0 || yy >= static_cast<int>(h) || xx < 0 ||
            xx >= static_cast<int>(w)) {
          return 0.0f;  // zero padding outside the frame
        }
        return chw.at(ch, static_cast<std::size_t>(yy),
                      static_cast<std::size_t>(xx));
      };
      for (std::size_t ch = 0; ch < c; ++ch) {
        const float top = sample(ch, y0, x0) * (1 - fx) +
                          sample(ch, y0, x0 + 1) * fx;
        const float bot = sample(ch, y0 + 1, x0) * (1 - fx) +
                          sample(ch, y0 + 1, x0 + 1) * fx;
        out.at(ch, y, x) = top * (1 - fy) + bot * fy;
      }
    }
  }
  chw = std::move(out);
}

void gaussian_noise(Tensor& chw, float degree, Rng& rng) {
  check_chw(chw);
  const float sigma = 0.1f * degree;
  for (float& v : chw.flat()) {
    v = std::clamp(v + static_cast<float>(rng.normal(0.0, sigma)), 0.0f, 1.0f);
  }
}

const char* transform_name(TransformKind kind) {
  switch (kind) {
    case TransformKind::kWhiteBalance: return "WB";
    case TransformKind::kGamma: return "Gamma";
    case TransformKind::kAffine: return "Affine";
    case TransformKind::kGaussianNoise: return "GaussianNoise";
  }
  return "?";
}

void apply_transform(Tensor& chw, TransformKind kind, float degree, Rng& rng) {
  switch (kind) {
    case TransformKind::kWhiteBalance:
      random_white_balance(chw, degree, rng);
      return;
    case TransformKind::kGamma:
      random_gamma(chw, degree, rng);
      return;
    case TransformKind::kAffine:
      random_affine(chw, degree, rng);
      return;
    case TransformKind::kGaussianNoise:
      gaussian_noise(chw, degree, rng);
      return;
  }
}

void apply_transform_batch(Tensor& nchw, TransformKind kind, float degree,
                           Rng& rng) {
  HS_CHECK(nchw.rank() == 4, "apply_transform_batch: tensor must be NCHW");
  for (std::size_t i = 0; i < nchw.dim(0); ++i) {
    Tensor sample = nchw.slice0(i);
    apply_transform(sample, kind, degree, rng);
    nchw.set_slice0(i, sample);
  }
}

IspTransformConfig paper_isp_transform() { return {0.001f, 0.9f}; }

IspTransformConfig tuned_isp_transform() { return {}; }

void apply_isp_transform_batch(Tensor& nchw, const IspTransformConfig& cfg,
                               Rng& rng) {
  HS_CHECK(nchw.rank() == 4, "apply_isp_transform_batch: tensor must be NCHW");
  HS_CHECK(cfg.wb_degree >= 0.0f && cfg.wb_degree < 1.0f,
           "apply_isp_transform_batch: wb degree");
  HS_CHECK(cfg.gamma_degree >= 0.0f && cfg.gamma_degree < 1.0f,
           "apply_isp_transform_batch: gamma degree");
  const std::size_t c = nchw.dim(1);
  const std::size_t hw = nchw.dim(2) * nchw.dim(3);
  for (std::size_t i = 0; i < nchw.dim(0); ++i) {
    float* sample = nchw.data() + i * c * hw;
    white_balance_planes(sample, c, hw, cfg.wb_degree, rng);
    gamma_flat(sample, c * hw, cfg.gamma_degree, rng);
  }
}

}  // namespace hetero
