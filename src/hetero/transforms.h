// Random ISP-style data transforms (Section 5.2, eq. 2-3) plus the two
// comparison transforms of Fig 7 (affine, Gaussian noise).
//
// All transforms operate on image tensors (C, H, W) or batches (N, C, H, W)
// with values in [0, 1]; each sample in a batch draws its own random
// parameters. `degree` controls the parameter range exactly as in the
// paper: factors are drawn from U(1 - degree, 1 + degree).
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace hetero {

class Rng;

/// Random white balance (eq. 2): independent per-channel gains
/// r_c ~ U(1 - degree, 1 + degree).
void random_white_balance(Tensor& chw, float degree, Rng& rng);

/// Random gamma (eq. 3): img^gamma with gamma ~ U(1 - degree, 1 + degree).
void random_gamma(Tensor& chw, float degree, Rng& rng);

/// Random affine: rotation up to ~30°*degree, translation up to
/// 20%*degree, scale in U(1 - 0.2*degree, 1 + 0.2*degree); bilinear
/// resampling with zero padding.
void random_affine(Tensor& chw, float degree, Rng& rng);

/// Additive Gaussian noise with stddev 0.1 * degree, clamped to [0, 1].
void gaussian_noise(Tensor& chw, float degree, Rng& rng);

/// Transform selector used by benches and HeteroSwitch.
enum class TransformKind { kWhiteBalance, kGamma, kAffine, kGaussianNoise };

const char* transform_name(TransformKind kind);

/// Applies one transform to a single (C, H, W) tensor.
void apply_transform(Tensor& chw, TransformKind kind, float degree, Rng& rng);

/// Applies a transform independently to every sample of an (N, C, H, W)
/// batch.
void apply_transform_batch(Tensor& nchw, TransformKind kind, float degree,
                           Rng& rng);

/// The ISP transformation: random WB followed by random gamma, per sample.
/// Defaults are the degrees selected by running the paper's Appendix A.2
/// grid search (WB in {0.001..0.9}, gamma in {0.1..0.9}) against *this*
/// repository's simulator; paper_isp_transform() gives the degrees the
/// authors selected for their smartphone dataset.
struct IspTransformConfig {
  float wb_degree = 0.1f;
  float gamma_degree = 0.5f;
};

/// Degrees the paper selected for its real-device dataset (Appendix A.2):
/// WB 0.001, gamma 0.9.
IspTransformConfig paper_isp_transform();

/// Degrees selected by the same grid search on this repo's simulator
/// (equals the IspTransformConfig defaults).
IspTransformConfig tuned_isp_transform();

void apply_isp_transform_batch(Tensor& nchw, const IspTransformConfig& cfg,
                               Rng& rng);

}  // namespace hetero
