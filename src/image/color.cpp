#include "image/color.h"

#include <cmath>
#include <stdexcept>

#include "image/fastpath.h"
#include "kernels/isa.h"

namespace hetero {
namespace {

// Same per-pixel left-to-right sum as the scalar loop below; clones only
// widen across pixels (no FMA), so the result is byte-identical.
HS_TILED_CLONES
void color_matrix_rows(const float* HS_RESTRICT src, float* HS_RESTRICT dst,
                       std::size_t n, float m0, float m1, float m2, float m3,
                       float m4, float m5, float m6, float m7, float m8) {
  for (std::size_t i = 0; i < n; ++i) {
    const float r = src[3 * i], g = src[3 * i + 1], b = src[3 * i + 2];
    dst[3 * i] = m0 * r + m1 * g + m2 * b;
    dst[3 * i + 1] = m3 * r + m4 * g + m5 * b;
    dst[3 * i + 2] = m6 * r + m7 * g + m8 * b;
  }
}

}  // namespace

Image apply_color_matrix(const Image& img, const ColorMatrix& m) {
  Image out(img.height(), img.width());
  const float* src = img.data();
  float* dst = out.data();
  const std::size_t n = img.num_pixels();
  if (img::fast_path()) {
    color_matrix_rows(src, dst, n, m[0], m[1], m[2], m[3], m[4], m[5], m[6],
                      m[7], m[8]);
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float r = src[3 * i], g = src[3 * i + 1], b = src[3 * i + 2];
    dst[3 * i] = m[0] * r + m[1] * g + m[2] * b;
    dst[3 * i + 1] = m[3] * r + m[4] * g + m[5] * b;
    dst[3 * i + 2] = m[6] * r + m[7] * g + m[8] * b;
  }
  return out;
}

ColorMatrix matmul3(const ColorMatrix& a, const ColorMatrix& b) {
  ColorMatrix c{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      float s = 0.0f;
      for (int k = 0; k < 3; ++k) s += a[i * 3 + k] * b[k * 3 + j];
      c[i * 3 + j] = s;
    }
  }
  return c;
}

ColorMatrix identity3() {
  return {1.0f, 0.0f, 0.0f, 0.0f, 1.0f, 0.0f, 0.0f, 0.0f, 1.0f};
}

ColorMatrix inverse3(const ColorMatrix& m) {
  const double a = m[0], b = m[1], c = m[2];
  const double d = m[3], e = m[4], f = m[5];
  const double g = m[6], h = m[7], i = m[8];
  const double det =
      a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g);
  if (std::abs(det) < 1e-12) {
    throw std::invalid_argument("inverse3: singular matrix");
  }
  const double inv = 1.0 / det;
  return {static_cast<float>((e * i - f * h) * inv),
          static_cast<float>((c * h - b * i) * inv),
          static_cast<float>((b * f - c * e) * inv),
          static_cast<float>((f * g - d * i) * inv),
          static_cast<float>((a * i - c * g) * inv),
          static_cast<float>((c * d - a * f) * inv),
          static_cast<float>((d * h - e * g) * inv),
          static_cast<float>((b * g - a * h) * inv),
          static_cast<float>((a * e - b * d) * inv)};
}

float srgb_encode(float linear) {
  if (linear <= 0.0f) return 0.0f;
  if (linear <= 0.0031308f) return 12.92f * linear;
  return 1.055f * std::pow(linear, 1.0f / 2.4f) - 0.055f;
}

float srgb_decode(float encoded) {
  if (encoded <= 0.0f) return 0.0f;
  if (encoded <= 0.04045f) return encoded / 12.92f;
  return std::pow((encoded + 0.055f) / 1.055f, 2.4f);
}

Image srgb_encode(const Image& linear) {
  Image out = linear;
  for (float& v : out.flat()) v = srgb_encode(v);
  return out;
}

Image srgb_decode(const Image& encoded) {
  Image out = encoded;
  for (float& v : out.flat()) v = srgb_decode(v);
  return out;
}

float luminance(float r, float g, float b) {
  return 0.2126f * r + 0.7152f * g + 0.0722f * b;
}

// IEC 61966-2-1 sRGB <-> XYZ (D65).
const ColorMatrix kSrgbToXyz = {0.4124f, 0.3576f, 0.1805f,
                                0.2126f, 0.7152f, 0.0722f,
                                0.0193f, 0.1192f, 0.9505f};
const ColorMatrix kXyzToSrgb = {3.2406f,  -1.5372f, -0.4986f,
                                -0.9689f, 1.8758f,  0.0415f,
                                0.0557f,  -0.2040f, 1.0570f};

// ROMM/ProPhoto primaries (D50); we fold the white point into the matrix,
// which is adequate to simulate an sRGB-trained model seeing ProPhoto data.
namespace {
const ColorMatrix kXyzToProphoto = {1.3460f,  -0.2556f, -0.0511f,
                                    -0.5446f, 1.5082f,  0.0205f,
                                    0.0f,     0.0f,     1.2123f};
}  // namespace

const ColorMatrix kSrgbToProphoto = matmul3(kXyzToProphoto, kSrgbToXyz);
const ColorMatrix kProphotoToSrgb = inverse3(kSrgbToProphoto);

// SMPTE Display-P3 (D65): much closer to sRGB than ProPhoto.
const ColorMatrix kSrgbToDisplayP3 = {0.8225f, 0.1774f, 0.0000f,
                                      0.0332f, 0.9669f, 0.0000f,
                                      0.0171f, 0.0724f, 0.9108f};
const ColorMatrix kDisplayP3ToSrgb = inverse3(kSrgbToDisplayP3);

void hsv_to_rgb(float h, float s, float v, float& r, float& g, float& b) {
  h = std::fmod(h, 360.0f);
  if (h < 0) h += 360.0f;
  const float c = v * s;
  const float hp = h / 60.0f;
  const float x = c * (1.0f - std::abs(std::fmod(hp, 2.0f) - 1.0f));
  float r1 = 0, g1 = 0, b1 = 0;
  if (hp < 1) {
    r1 = c; g1 = x;
  } else if (hp < 2) {
    r1 = x; g1 = c;
  } else if (hp < 3) {
    g1 = c; b1 = x;
  } else if (hp < 4) {
    g1 = x; b1 = c;
  } else if (hp < 5) {
    r1 = x; b1 = c;
  } else {
    r1 = c; b1 = x;
  }
  const float m = v - c;
  r = r1 + m;
  g = g1 + m;
  b = b1 + m;
}

}  // namespace hetero
