// Colour-science primitives: sRGB transfer function, 3x3 colour matrices,
// RGB<->XYZ and the ProPhoto (ROMM) primaries used by the gamut-mapping ISP
// stage, plus HSV helpers for the scene generator.
#pragma once

#include <array>

#include "image/image.h"

namespace hetero {

/// 3x3 colour matrix, row-major. out = M * in with in = (R,G,B)^T.
using ColorMatrix = std::array<float, 9>;

/// Applies a 3x3 matrix to every pixel of an image (in place copy-out).
Image apply_color_matrix(const Image& img, const ColorMatrix& m);

/// Matrix product a*b.
ColorMatrix matmul3(const ColorMatrix& a, const ColorMatrix& b);

/// Identity matrix.
ColorMatrix identity3();

/// Inverse of a 3x3 matrix; throws std::invalid_argument if singular.
ColorMatrix inverse3(const ColorMatrix& m);

/// sRGB electro-optical transfer: linear -> gamma-encoded, per component.
float srgb_encode(float linear);
/// Inverse transfer: gamma-encoded -> linear.
float srgb_decode(float encoded);

/// Encodes/decodes an entire image.
Image srgb_encode(const Image& linear);
Image srgb_decode(const Image& encoded);

/// Rec.709/sRGB luminance of a linear RGB pixel.
float luminance(float r, float g, float b);

/// Linear sRGB -> CIE XYZ (D65).
extern const ColorMatrix kSrgbToXyz;
/// CIE XYZ (D65) -> linear sRGB.
extern const ColorMatrix kXyzToSrgb;
/// Linear sRGB -> linear ProPhoto RGB (through XYZ; white-point handling is
/// simplified to a direct matrix, adequate for simulating gamut mismatch).
extern const ColorMatrix kSrgbToProphoto;
extern const ColorMatrix kProphotoToSrgb;
/// Linear sRGB -> linear Display-P3 (the mild wide gamut phone flagships
/// actually store) and back.
extern const ColorMatrix kSrgbToDisplayP3;
extern const ColorMatrix kDisplayP3ToSrgb;

/// HSV (h in [0,360), s,v in [0,1]) to linear-ish RGB; used for procedural
/// scene colours.
void hsv_to_rgb(float h, float s, float v, float& r, float& g, float& b);

}  // namespace hetero
