#include "image/fastpath.h"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/config.h"

namespace hetero::img {
namespace {

std::atomic<std::uint64_t> g_grow_count{0};

PathKind path_from_env() {
  const auto value = env_string("HS_ISP");
  if (!value) return PathKind::kFast;
  return parse_path_kind(*value);
}

std::atomic<PathKind>& active_slot() {
  // First touch resolves HS_ISP exactly once, under the static-init lock.
  static std::atomic<PathKind> slot{path_from_env()};
  return slot;
}

}  // namespace

PathKind parse_path_kind(const std::string& name) {
  if (name == "reference") return PathKind::kReference;
  if (name == "fast") return PathKind::kFast;
  throw std::invalid_argument("HS_ISP: unknown path \"" + name +
                              "\" (valid: reference, fast)");
}

const char* path_name(PathKind kind) {
  return kind == PathKind::kReference ? "reference" : "fast";
}

PathKind active_path() {
  return active_slot().load(std::memory_order_relaxed);
}

void set_active_path(PathKind kind) {
  active_slot().store(kind, std::memory_order_relaxed);
}

float* scratch(std::size_t slot, std::size_t count) {
  thread_local std::vector<std::vector<float>> slots;
  if (slot >= slots.size()) slots.resize(slot + 1);
  std::vector<float>& buf = slots[slot];
  if (buf.size() < count) {
    buf.resize(count);
    g_grow_count.fetch_add(1, std::memory_order_relaxed);
  }
  return buf.data();
}

std::uint64_t scratch_grow_count() {
  return g_grow_count.load(std::memory_order_relaxed);
}

}  // namespace hetero::img
