// Imaging-substrate fast-path dispatch (HS_ISP) and scratch arenas.
//
// The capture path (scene render -> sensor -> denoise -> demosaic -> WB ->
// gamut -> tone -> JPEG) ships two implementations of every hot per-pixel
// loop:
//   * reference - the seed scalar loops, kept verbatim as the oracle;
//   * fast      - plane/row-major passes over raw row pointers with AVX2
//                 target_clones dispatch and grow-only scratch arenas.
// Unlike HS_KERNEL=fast, the fast path here is *bit-exact by construction*:
// every per-pixel FP evaluation order is preserved (vectorization only
// widens across independent pixels, clones exclude FMA), so reference and
// fast outputs are byte-identical — asserted stage-by-stage across every
// Table-3 option and device profile by tests/test_isp_parity.cpp.
//
// HS_ISP=reference|fast selects the process-wide default (fast when unset);
// set_active_path() overrides it programmatically (tests, parity sweeps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hetero::img {

enum class PathKind {
  kReference,  ///< seed scalar loops (the parity oracle)
  kFast,       ///< row-major + target_clones passes, bit-exact (default)
};

/// Parses "reference" / "fast"; throws std::invalid_argument otherwise.
PathKind parse_path_kind(const std::string& name);

const char* path_name(PathKind kind);

/// Process-wide active path. First use reads HS_ISP (unknown values throw,
/// listing the valid modes); defaults to kFast. Thread-safe.
PathKind active_path();
void set_active_path(PathKind kind);

/// True when the fast implementations should run.
inline bool fast_path() { return active_path() == PathKind::kFast; }

/// Thread-local scratch arena for the fast stages: returns a buffer of at
/// least `count` floats for `slot`, growing the backing store only when a
/// new geometry exceeds everything seen before — steady-state captures of a
/// fixed raw size perform no heap allocation inside the stages. Contents
/// are undefined on entry. Slots are per-thread, so stages running on
/// different workers never share a buffer.
float* scratch(std::size_t slot, std::size_t count);

/// Distinct scratch slot ids (one per fast-stage temporary family).
enum ScratchSlot : std::size_t {
  kSlotDemosaicA = 0,  // AHD horizontal candidate / binning half-res
  kSlotDemosaicB,      // AHD vertical candidate
  kSlotDenoise,        // FBDD border medians / wavelet planes
  kSlotQuantile,       // white-balance channel quantile copies
  kSlotTone,           // tone-equalization luminance plane
  kSlotJpegA,          // JPEG YCbCr planes
  kSlotJpegB,          // JPEG channel plane scratch
  kSlotResize,         // resize_bilinear per-column tables
  kSlotScene,          // scene/flair per-column coordinate tables
  kSlotCount
};

/// Process-wide count of arena (re)allocations; the parity/bench suites
/// assert it stays flat across warmed-up captures of one geometry.
std::uint64_t scratch_grow_count();

}  // namespace hetero::img
