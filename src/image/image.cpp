#include "image/image.h"

#include <algorithm>
#include <cmath>

namespace hetero {

Image::Image(std::size_t height, std::size_t width)
    : h_(height), w_(width), data_(height * width * 3, 0.0f) {}

Image::Image(std::size_t height, std::size_t width, std::vector<float> data)
    : h_(height), w_(width), data_(std::move(data)) {
  HS_CHECK(data_.size() == h_ * w_ * 3, "Image: data size mismatch");
}

std::size_t Image::idx(std::size_t y, std::size_t x, std::size_t c) const {
  HS_CHECK(y < h_ && x < w_ && c < 3, "Image: index out of range");
  return (y * w_ + x) * 3 + c;
}

float& Image::at(std::size_t y, std::size_t x, std::size_t c) {
  return data_[idx(y, x, c)];
}

float Image::at(std::size_t y, std::size_t x, std::size_t c) const {
  return data_[idx(y, x, c)];
}

void Image::set_pixel(std::size_t y, std::size_t x, float r, float g,
                      float b) {
  const std::size_t base = idx(y, x, 0);
  data_[base] = r;
  data_[base + 1] = g;
  data_[base + 2] = b;
}

void Image::fill(float r, float g, float b) {
  for (std::size_t i = 0; i < data_.size(); i += 3) {
    data_[i] = r;
    data_[i + 1] = g;
    data_[i + 2] = b;
  }
}

void Image::clamp01() {
  for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

std::array<double, 3> Image::channel_means() const {
  std::array<double, 3> sum{0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < data_.size(); i += 3) {
    sum[0] += data_[i];
    sum[1] += data_[i + 1];
    sum[2] += data_[i + 2];
  }
  const double n = static_cast<double>(num_pixels());
  if (n > 0) {
    for (double& s : sum) s /= n;
  }
  return sum;
}

std::array<double, 3> Image::channel_max() const {
  std::array<double, 3> mx{0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < data_.size(); i += 3) {
    mx[0] = std::max<double>(mx[0], data_[i]);
    mx[1] = std::max<double>(mx[1], data_[i + 1]);
    mx[2] = std::max<double>(mx[2], data_[i + 2]);
  }
  return mx;
}

Tensor Image::to_tensor() const {
  Tensor t({3, h_, w_});
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        t.at(c, y, x) = std::clamp(data_[(y * w_ + x) * 3 + c], 0.0f, 1.0f);
      }
    }
  }
  return t;
}

Image Image::from_tensor(const Tensor& t) {
  HS_CHECK(t.rank() == 3 && t.dim(0) == 3, "Image::from_tensor: need (3,H,W)");
  Image img(t.dim(1), t.dim(2));
  for (std::size_t y = 0; y < img.h_; ++y) {
    for (std::size_t x = 0; x < img.w_; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        img.at(y, x, c) = t.at(c, y, x);
      }
    }
  }
  return img;
}

Image resize_bilinear(const Image& src, std::size_t out_h, std::size_t out_w) {
  HS_CHECK(!src.empty() && out_h > 0 && out_w > 0,
           "resize_bilinear: empty input or zero output size");
  Image dst(out_h, out_w);
  const double sy = static_cast<double>(src.height()) / out_h;
  const double sx = static_cast<double>(src.width()) / out_w;
  for (std::size_t y = 0; y < out_h; ++y) {
    // Sample at pixel centres for alignment-stable scaling.
    const double fy = std::max(0.0, (y + 0.5) * sy - 0.5);
    const std::size_t y0 = std::min(static_cast<std::size_t>(fy),
                                    src.height() - 1);
    const std::size_t y1 = std::min(y0 + 1, src.height() - 1);
    const float wy = static_cast<float>(fy - y0);
    for (std::size_t x = 0; x < out_w; ++x) {
      const double fx = std::max(0.0, (x + 0.5) * sx - 0.5);
      const std::size_t x0 = std::min(static_cast<std::size_t>(fx),
                                      src.width() - 1);
      const std::size_t x1 = std::min(x0 + 1, src.width() - 1);
      const float wx = static_cast<float>(fx - x0);
      for (std::size_t c = 0; c < 3; ++c) {
        const float top =
            src.at(y0, x0, c) * (1 - wx) + src.at(y0, x1, c) * wx;
        const float bot =
            src.at(y1, x0, c) * (1 - wx) + src.at(y1, x1, c) * wx;
        dst.at(y, x, c) = top * (1 - wy) + bot * wy;
      }
    }
  }
  return dst;
}

Image gaussian_blur(const Image& src, float sigma) {
  if (sigma <= 0.0f || src.empty()) return src;
  const int radius = std::max(1, static_cast<int>(std::ceil(2.5f * sigma)));
  std::vector<float> kernel(2 * radius + 1);
  float ksum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    kernel[i + radius] = std::exp(-0.5f * (i * i) / (sigma * sigma));
    ksum += kernel[i + radius];
  }
  for (float& k : kernel) k /= ksum;

  const int h = static_cast<int>(src.height());
  const int w = static_cast<int>(src.width());
  Image tmp(src.height(), src.width());
  Image dst(src.height(), src.width());
  // Horizontal pass with clamped borders.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i) {
          const int xx = std::clamp(x + i, 0, w - 1);
          acc += kernel[i + radius] *
                 src.at(static_cast<std::size_t>(y),
                        static_cast<std::size_t>(xx), c);
        }
        tmp.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), c) =
            acc;
      }
    }
  }
  // Vertical pass.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i) {
          const int yy = std::clamp(y + i, 0, h - 1);
          acc += kernel[i + radius] *
                 tmp.at(static_cast<std::size_t>(yy),
                        static_cast<std::size_t>(x), c);
        }
        dst.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), c) =
            acc;
      }
    }
  }
  return dst;
}

double image_mad(const Image& a, const Image& b) {
  HS_CHECK(a.height() == b.height() && a.width() == b.width(),
           "image_mad: size mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    s += std::abs(static_cast<double>(fa[i]) - fb[i]);
  }
  return s / static_cast<double>(fa.size());
}

}  // namespace hetero
