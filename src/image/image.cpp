#include "image/image.h"

#include <algorithm>
#include <cmath>

namespace hetero {

Image::Image(std::size_t height, std::size_t width)
    : h_(height), w_(width), data_(height * width * 3, 0.0f) {}

Image::Image(std::size_t height, std::size_t width, std::vector<float> data)
    : h_(height), w_(width), data_(std::move(data)) {
  HS_CHECK(data_.size() == h_ * w_ * 3, "Image: data size mismatch");
}

std::size_t Image::idx(std::size_t y, std::size_t x, std::size_t c) const {
  HS_CHECK(y < h_ && x < w_ && c < 3, "Image: index out of range");
  return (y * w_ + x) * 3 + c;
}

float& Image::at(std::size_t y, std::size_t x, std::size_t c) {
  return data_[idx(y, x, c)];
}

float Image::at(std::size_t y, std::size_t x, std::size_t c) const {
  return data_[idx(y, x, c)];
}

void Image::set_pixel(std::size_t y, std::size_t x, float r, float g,
                      float b) {
  const std::size_t base = idx(y, x, 0);
  data_[base] = r;
  data_[base + 1] = g;
  data_[base + 2] = b;
}

void Image::fill(float r, float g, float b) {
  for (std::size_t i = 0; i < data_.size(); i += 3) {
    data_[i] = r;
    data_[i + 1] = g;
    data_[i + 2] = b;
  }
}

void Image::clamp01() {
  for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

std::array<double, 3> Image::channel_means() const {
  std::array<double, 3> sum{0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < data_.size(); i += 3) {
    sum[0] += data_[i];
    sum[1] += data_[i + 1];
    sum[2] += data_[i + 2];
  }
  const double n = static_cast<double>(num_pixels());
  if (n > 0) {
    for (double& s : sum) s /= n;
  }
  return sum;
}

std::array<double, 3> Image::channel_max() const {
  std::array<double, 3> mx{0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < data_.size(); i += 3) {
    mx[0] = std::max<double>(mx[0], data_[i]);
    mx[1] = std::max<double>(mx[1], data_[i + 1]);
    mx[2] = std::max<double>(mx[2], data_[i + 2]);
  }
  return mx;
}

Tensor Image::to_tensor() const {
  // Mechanically identical to the per-element at() loops (same clamp per
  // element), just deinterleaving via raw plane pointers.
  Tensor t({3, h_, w_});
  const std::size_t n = h_ * w_;
  float* tp = t.data();
  const float* src = data_.data();
  float* r = tp;
  float* g = tp + n;
  float* b = tp + 2 * n;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = std::clamp(src[3 * i], 0.0f, 1.0f);
    g[i] = std::clamp(src[3 * i + 1], 0.0f, 1.0f);
    b[i] = std::clamp(src[3 * i + 2], 0.0f, 1.0f);
  }
  return t;
}

Image Image::from_tensor(const Tensor& t) {
  HS_CHECK(t.rank() == 3 && t.dim(0) == 3, "Image::from_tensor: need (3,H,W)");
  Image img(t.dim(1), t.dim(2));
  for (std::size_t y = 0; y < img.h_; ++y) {
    for (std::size_t x = 0; x < img.w_; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        img.at(y, x, c) = t.at(c, y, x);
      }
    }
  }
  return img;
}

Image resize_bilinear(const Image& src, std::size_t out_h, std::size_t out_w) {
  HS_CHECK(!src.empty() && out_h > 0 && out_w > 0,
           "resize_bilinear: empty input or zero output size");
  Image dst(out_h, out_w);
  const double sy = static_cast<double>(src.height()) / out_h;
  const double sx = static_cast<double>(src.width()) / out_w;
  // The column sample positions are row-invariant: hoist them into grow-only
  // per-thread tables (same expressions as the original per-pixel loop, so
  // the output is unchanged down to the bit).
  thread_local std::vector<std::size_t> tx0, tx1;
  thread_local std::vector<float> twx;
  if (tx0.size() < out_w) {
    tx0.resize(out_w);
    tx1.resize(out_w);
    twx.resize(out_w);
  }
  for (std::size_t x = 0; x < out_w; ++x) {
    const double fx = std::max(0.0, (x + 0.5) * sx - 0.5);
    tx0[x] = std::min(static_cast<std::size_t>(fx), src.width() - 1);
    tx1[x] = std::min(tx0[x] + 1, src.width() - 1);
    twx[x] = static_cast<float>(fx - tx0[x]);
  }
  const float* sp = src.data();
  float* dp = dst.data();
  const std::size_t sw = src.width();
  for (std::size_t y = 0; y < out_h; ++y) {
    // Sample at pixel centres for alignment-stable scaling.
    const double fy = std::max(0.0, (y + 0.5) * sy - 0.5);
    const std::size_t y0 = std::min(static_cast<std::size_t>(fy),
                                    src.height() - 1);
    const std::size_t y1 = std::min(y0 + 1, src.height() - 1);
    const float wy = static_cast<float>(fy - y0);
    const float* r0 = sp + y0 * sw * 3;
    const float* r1 = sp + y1 * sw * 3;
    float* drow = dp + y * out_w * 3;
    for (std::size_t x = 0; x < out_w; ++x) {
      const std::size_t a = tx0[x] * 3, b = tx1[x] * 3;
      const float wx = twx[x];
      for (std::size_t c = 0; c < 3; ++c) {
        const float top = r0[a + c] * (1 - wx) + r0[b + c] * wx;
        const float bot = r1[a + c] * (1 - wx) + r1[b + c] * wx;
        drow[x * 3 + c] = top * (1 - wy) + bot * wy;
      }
    }
  }
  return dst;
}

Image gaussian_blur(const Image& src, float sigma) {
  if (sigma <= 0.0f || src.empty()) return src;
  const int radius = std::max(1, static_cast<int>(std::ceil(2.5f * sigma)));
  std::vector<float> kernel(2 * radius + 1);
  float ksum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    kernel[i + radius] = std::exp(-0.5f * (i * i) / (sigma * sigma));
    ksum += kernel[i + radius];
  }
  for (float& k : kernel) k /= ksum;

  const int h = static_cast<int>(src.height());
  const int w = static_cast<int>(src.width());
  Image tmp(src.height(), src.width());
  Image dst(src.height(), src.width());
  const float* kp = kernel.data();
  const float* sp = src.data();
  float* tp = tmp.data();
  float* dp = dst.data();
  // Horizontal pass with clamped borders; interior columns skip the clamp
  // (where it is a no-op anyway), keeping each tap sum in the same order.
  const int xlo = std::min(radius, w);
  const int xhi = std::max(w - radius, xlo);
  for (int y = 0; y < h; ++y) {
    const float* srow = sp + static_cast<std::ptrdiff_t>(y) * w * 3;
    float* trow = tp + static_cast<std::ptrdiff_t>(y) * w * 3;
    for (int x = 0; x < w; ++x) {
      const bool interior = x >= xlo && x < xhi;
      for (std::size_t c = 0; c < 3; ++c) {
        float acc = 0.0f;
        if (interior) {
          const float* s = srow + static_cast<std::ptrdiff_t>(x - radius) * 3 +
                           static_cast<std::ptrdiff_t>(c);
          const int taps = 2 * radius + 1;
          for (int i = 0; i < taps; ++i) acc += kp[i] * s[3 * i];
        } else {
          for (int i = -radius; i <= radius; ++i) {
            const int xx = std::clamp(x + i, 0, w - 1);
            acc += kp[i + radius] * srow[xx * 3 + static_cast<int>(c)];
          }
        }
        trow[x * 3 + static_cast<int>(c)] = acc;
      }
    }
  }
  // Vertical pass.
  for (int y = 0; y < h; ++y) {
    const bool interior = y >= radius && y + radius < h;
    float* drow = dp + static_cast<std::ptrdiff_t>(y) * w * 3;
    for (int x = 0; x < w; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        float acc = 0.0f;
        if (interior) {
          const float* s = tp +
                           (static_cast<std::ptrdiff_t>(y - radius) * w + x) *
                               3 +
                           static_cast<std::ptrdiff_t>(c);
          const int taps = 2 * radius + 1;
          const std::ptrdiff_t stride = static_cast<std::ptrdiff_t>(w) * 3;
          for (int i = 0; i < taps; ++i) acc += kp[i] * s[stride * i];
        } else {
          for (int i = -radius; i <= radius; ++i) {
            const int yy = std::clamp(y + i, 0, h - 1);
            acc += kp[i + radius] *
                   tp[(static_cast<std::ptrdiff_t>(yy) * w + x) * 3 +
                      static_cast<std::ptrdiff_t>(c)];
          }
        }
        drow[x * 3 + static_cast<int>(c)] = acc;
      }
    }
  }
  return dst;
}

double image_mad(const Image& a, const Image& b) {
  HS_CHECK(a.height() == b.height() && a.width() == b.width(),
           "image_mad: size mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    s += std::abs(static_cast<double>(fa[i]) - fb[i]);
  }
  return s / static_cast<double>(fa.size());
}

}  // namespace hetero
