// Floating-point RGB image container used by the scene generator, the sensor
// model and the ISP pipeline.
//
// Pixels are interleaved HWC, float32. The *meaning* of the values depends on
// pipeline position: scene radiance and sensor output are linear-light;
// after tone transformation the image is display-referred (gamma encoded).
// Values are nominally in [0, 1] but intermediate stages may exceed the
// range; clamp() is applied at well-defined points (sensor saturation, final
// tensor conversion).
#pragma once

#include <cstddef>
#include <array>
#include <vector>

#include "tensor/tensor.h"

namespace hetero {

/// Interleaved float RGB image (HWC).
class Image {
 public:
  Image() = default;
  /// Black image of the given size.
  Image(std::size_t height, std::size_t width);
  Image(std::size_t height, std::size_t width, std::vector<float> data);

  std::size_t height() const { return h_; }
  std::size_t width() const { return w_; }
  std::size_t num_pixels() const { return h_ * w_; }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t y, std::size_t x, std::size_t c);
  float at(std::size_t y, std::size_t x, std::size_t c) const;

  /// Sets all three channels of a pixel.
  void set_pixel(std::size_t y, std::size_t x, float r, float g, float b);

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return std::span<float>(data_); }
  std::span<const float> flat() const { return std::span<const float>(data_); }

  void fill(float r, float g, float b);
  void clamp01();

  /// Per-channel means, e.g. for gray-world white balance.
  std::array<double, 3> channel_means() const;
  /// Per-channel maxima, e.g. for white-patch white balance.
  std::array<double, 3> channel_max() const;

  /// Converts to a CHW tensor of shape (3, H, W), clamped to [0,1].
  Tensor to_tensor() const;
  /// Builds an image from a (3, H, W) tensor.
  static Image from_tensor(const Tensor& t);

 private:
  std::size_t idx(std::size_t y, std::size_t x, std::size_t c) const;
  std::size_t h_ = 0, w_ = 0;
  std::vector<float> data_;
};

/// Bilinear resize to (out_h, out_w). Degenerate sizes are rejected.
Image resize_bilinear(const Image& src, std::size_t out_h, std::size_t out_w);

/// Separable Gaussian blur with the given sigma (sigma <= 0 returns a copy).
Image gaussian_blur(const Image& src, float sigma);

/// Mean absolute per-pixel difference between two same-sized images.
double image_mad(const Image& a, const Image& b);

}  // namespace hetero
