#include "image/ppm.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

namespace hetero {
namespace {

std::uint8_t to_byte(float v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
}

bool write_p6(const std::string& path, std::size_t h, std::size_t w,
              const std::vector<std::uint8_t>& rgb) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << w << ' ' << h << "\n255\n";
  out.write(reinterpret_cast<const char*>(rgb.data()),
            static_cast<std::streamsize>(rgb.size()));
  return static_cast<bool>(out);
}

}  // namespace

bool write_ppm(const std::string& path, const Image& img) {
  if (img.empty()) return false;
  std::vector<std::uint8_t> rgb(img.num_pixels() * 3);
  const float* src = img.data();
  for (std::size_t i = 0; i < rgb.size(); ++i) rgb[i] = to_byte(src[i]);
  return write_p6(path, img.height(), img.width(), rgb);
}

bool write_ppm_mosaic(const std::string& path, const RawImage& raw) {
  if (raw.empty()) return false;
  std::vector<std::uint8_t> rgb(raw.height() * raw.width() * 3, 0);
  for (std::size_t y = 0; y < raw.height(); ++y) {
    for (std::size_t x = 0; x < raw.width(); ++x) {
      const std::size_t base = (y * raw.width() + x) * 3;
      rgb[base + static_cast<std::size_t>(raw.channel_at(y, x))] =
          to_byte(raw.at(y, x));
    }
  }
  return write_p6(path, raw.height(), raw.width(), rgb);
}

}  // namespace hetero
