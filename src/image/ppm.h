// PPM (P6) image export — dependency-free way to eyeball what the sensor
// and ISP produce. Values are clamped to [0,1] and written as 8-bit RGB.
#pragma once

#include <string>

#include "image/image.h"
#include "image/raw_image.h"

namespace hetero {

/// Writes an RGB image as binary PPM; returns false on I/O failure.
bool write_ppm(const std::string& path, const Image& img);

/// Writes a Bayer mosaic as a grayscale-per-site PPM with the CFA colour
/// painted in (R sites red, etc.) — useful to visualize RAW captures.
bool write_ppm_mosaic(const std::string& path, const RawImage& raw);

}  // namespace hetero
