#include "image/raw_image.h"

#include <algorithm>

namespace hetero {

int bayer_channel(BayerPattern pattern, std::size_t y, std::size_t x) {
  const int py = static_cast<int>(y & 1);
  const int px = static_cast<int>(x & 1);
  // 2x2 tile layouts, row-major: {tile[0][0], tile[0][1], tile[1][0],
  // tile[1][1]} with 0=R,1=G,2=B.
  static constexpr int kTiles[4][4] = {
      {0, 1, 1, 2},  // RGGB
      {2, 1, 1, 0},  // BGGR
      {1, 0, 2, 1},  // GRBG
      {1, 2, 0, 1},  // GBRG
  };
  return kTiles[static_cast<int>(pattern)][py * 2 + px];
}

RawImage::RawImage(std::size_t height, std::size_t width, BayerPattern pattern)
    : h_(height), w_(width), pattern_(pattern), data_(height * width, 0.0f) {
  HS_CHECK(height % 2 == 0 && width % 2 == 0,
           "RawImage: dimensions must be even");
}

float& RawImage::at(std::size_t y, std::size_t x) {
  HS_CHECK(y < h_ && x < w_, "RawImage::at: index out of range");
  return data_[y * w_ + x];
}

float RawImage::at(std::size_t y, std::size_t x) const {
  HS_CHECK(y < h_ && x < w_, "RawImage::at: index out of range");
  return data_[y * w_ + x];
}

int RawImage::channel_at(std::size_t y, std::size_t x) const {
  return bayer_channel(pattern_, y, x);
}

Tensor RawImage::to_packed_tensor() const {
  HS_CHECK(!empty(), "RawImage::to_packed_tensor: empty image");
  const std::size_t oh = h_ / 2, ow = w_ / 2;
  Tensor t({4, oh, ow});
  for (std::size_t ty = 0; ty < oh; ++ty) {
    for (std::size_t tx = 0; tx < ow; ++tx) {
      // Gather the 2x2 CFA tile and route samples into canonical planes.
      float r = 0.0f, g1 = 0.0f, g2 = 0.0f, b = 0.0f;
      bool g_first = true;
      for (std::size_t dy = 0; dy < 2; ++dy) {
        for (std::size_t dx = 0; dx < 2; ++dx) {
          const std::size_t y = 2 * ty + dy, x = 2 * tx + dx;
          const float v = std::clamp(data_[y * w_ + x], 0.0f, 1.0f);
          switch (channel_at(y, x)) {
            case 0: r = v; break;
            case 2: b = v; break;
            default:
              if (g_first) {
                g1 = v;
                g_first = false;
              } else {
                g2 = v;
              }
          }
        }
      }
      t.at(0, ty, tx) = r;
      t.at(1, ty, tx) = g1;
      t.at(2, ty, tx) = g2;
      t.at(3, ty, tx) = b;
    }
  }
  return t;
}

}  // namespace hetero
