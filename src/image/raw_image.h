// RAW sensor data: a single-channel Bayer colour-filter-array mosaic, as
// produced by the sensor model before any ISP stage runs.
//
// The paper's Fig 2 trains directly on RAW captures; we support that by
// packing the mosaic into a 4-plane half-resolution tensor (R, G1, G2, B)
// without demosaicing, mirroring common RAW-ML practice.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace hetero {

/// Colour filter array layout. We model the common RGGB arrangement; the
/// enum exists so device profiles can vary the pattern (another HW knob).
enum class BayerPattern { kRGGB, kBGGR, kGRBG, kGBRG };

/// Channel (0=R, 1=G, 2=B) sampled at mosaic position (y, x).
int bayer_channel(BayerPattern pattern, std::size_t y, std::size_t x);

/// Single-channel Bayer mosaic with linear-light float samples in [0, 1].
class RawImage {
 public:
  RawImage() = default;
  /// Zero-filled mosaic; height and width must be even (full CFA tiles).
  RawImage(std::size_t height, std::size_t width,
           BayerPattern pattern = BayerPattern::kRGGB);

  std::size_t height() const { return h_; }
  std::size_t width() const { return w_; }
  BayerPattern pattern() const { return pattern_; }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t y, std::size_t x);
  float at(std::size_t y, std::size_t x) const;

  /// Colour channel sampled at (y, x) under this mosaic's pattern.
  int channel_at(std::size_t y, std::size_t x) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<const float> flat() const { return std::span<const float>(data_); }

  /// Packs the mosaic into a (4, H/2, W/2) tensor with fixed plane order
  /// (R, G1, G2, B) regardless of the CFA pattern, so models see a
  /// consistent channel semantics across devices.
  Tensor to_packed_tensor() const;

 private:
  std::size_t h_ = 0, w_ = 0;
  BayerPattern pattern_ = BayerPattern::kRGGB;
  std::vector<float> data_;
};

}  // namespace hetero
