#include "isp/compress.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "image/fastpath.h"
#include "kernels/isa.h"

namespace hetero {
namespace {

// ITU-T T.81 Annex K quantization tables.
constexpr std::array<int, 64> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

/// 8x8 DCT-II basis, precomputed.
struct DctBasis {
  std::array<float, 64> c{};  // c[u][x] = alpha(u) cos((2x+1)u pi / 16)
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      const float alpha =
          u == 0 ? 1.0f / std::sqrt(8.0f) : std::sqrt(2.0f / 8.0f);
      for (int x = 0; x < 8; ++x) {
        c[static_cast<std::size_t>(u * 8 + x)] =
            alpha * std::cos((2 * x + 1) * u * std::numbers::pi_v<float> /
                             16.0f);
      }
    }
  }
};

const DctBasis& dct_basis() {
  static const DctBasis basis;
  return basis;
}

/// Forward 8x8 DCT of block (row-major), in place via temp.
void dct8x8(std::array<float, 64>& block) {
  const auto& c = dct_basis().c;
  std::array<float, 64> tmp{};
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float s = 0.0f;
      for (int x = 0; x < 8; ++x) {
        s += block[static_cast<std::size_t>(y * 8 + x)] *
             c[static_cast<std::size_t>(u * 8 + x)];
      }
      tmp[static_cast<std::size_t>(y * 8 + u)] = s;
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float s = 0.0f;
      for (int y = 0; y < 8; ++y) {
        s += tmp[static_cast<std::size_t>(y * 8 + u)] *
             c[static_cast<std::size_t>(v * 8 + y)];
      }
      block[static_cast<std::size_t>(v * 8 + u)] = s;
    }
  }
}

/// Inverse 8x8 DCT.
void idct8x8(std::array<float, 64>& block) {
  const auto& c = dct_basis().c;
  std::array<float, 64> tmp{};
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      float s = 0.0f;
      for (int u = 0; u < 8; ++u) {
        s += block[static_cast<std::size_t>(v * 8 + u)] *
             c[static_cast<std::size_t>(u * 8 + x)];
      }
      tmp[static_cast<std::size_t>(v * 8 + x)] = s;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float s = 0.0f;
      for (int v = 0; v < 8; ++v) {
        s += tmp[static_cast<std::size_t>(v * 8 + x)] *
             c[static_cast<std::size_t>(v * 8 + y)];
      }
      block[static_cast<std::size_t>(y * 8 + x)] = s;
    }
  }
}

// ---------------------------------------------------------------- fast path
//
// Same per-block DCT math vectorized ACROSS blocks: eight horizontally
// adjacent blocks ride in an element-major SoA slab (element i of block b
// at soa[i * 8 + b]), so every scalar op of the seed per-block loops
// becomes one 8-lane vector op. Each lane accumulates exactly the seed
// term order (x, then y ascending), so per-block results are
// byte-identical; leftover and clipped blocks fall back to the seed
// per-block routines. Vectorizing WITHIN a block is a loss here: the
// seed's independent dot products already SLP-vectorize at -O3, and the
// transposed-accumulation form measures ~3x slower per block.

constexpr int kJpegLanes = 8;

/// Forward DCT of kJpegLanes blocks in SoA layout.
HS_ALWAYS_INLINE void dct8x8_soa(float* HS_RESTRICT soa,
                                 const float* HS_RESTRICT c) {
  float tmp[64 * kJpegLanes];
  // Rows: tmp[y][u] = sum_x block[y][x] * c[u][x], accumulated x-ascending.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc[kJpegLanes] = {};
      for (int x = 0; x < 8; ++x) {
        const float cv = c[u * 8 + x];
        const float* HS_RESTRICT s = soa + (y * 8 + x) * kJpegLanes;
        for (int b = 0; b < kJpegLanes; ++b) acc[b] += s[b] * cv;
      }
      float* HS_RESTRICT d = tmp + (y * 8 + u) * kJpegLanes;
      for (int b = 0; b < kJpegLanes; ++b) d[b] = acc[b];
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * c[v][y], accumulated y-ascending.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc[kJpegLanes] = {};
      for (int y = 0; y < 8; ++y) {
        const float cv = c[v * 8 + y];
        const float* HS_RESTRICT s = tmp + (y * 8 + u) * kJpegLanes;
        for (int b = 0; b < kJpegLanes; ++b) acc[b] += s[b] * cv;
      }
      float* HS_RESTRICT d = soa + (v * 8 + u) * kJpegLanes;
      for (int b = 0; b < kJpegLanes; ++b) d[b] = acc[b];
    }
  }
}

/// Inverse DCT of kJpegLanes blocks in SoA layout.
HS_ALWAYS_INLINE void idct8x8_soa(float* HS_RESTRICT soa,
                                  const float* HS_RESTRICT c) {
  float tmp[64 * kJpegLanes];
  // tmp[v][x] = sum_u block[v][u] * c[u][x], accumulated u-ascending.
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      float acc[kJpegLanes] = {};
      for (int u = 0; u < 8; ++u) {
        const float cv = c[u * 8 + x];
        const float* HS_RESTRICT s = soa + (v * 8 + u) * kJpegLanes;
        for (int b = 0; b < kJpegLanes; ++b) acc[b] += s[b] * cv;
      }
      float* HS_RESTRICT d = tmp + (v * 8 + x) * kJpegLanes;
      for (int b = 0; b < kJpegLanes; ++b) d[b] = acc[b];
    }
  }
  // out[y][x] = sum_v tmp[v][x] * c[v][y], accumulated v-ascending.
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc[kJpegLanes] = {};
      for (int v = 0; v < 8; ++v) {
        const float cv = c[v * 8 + y];
        const float* HS_RESTRICT s = tmp + (v * 8 + x) * kJpegLanes;
        for (int b = 0; b < kJpegLanes; ++b) acc[b] += s[b] * cv;
      }
      float* HS_RESTRICT d = soa + (y * 8 + x) * kJpegLanes;
      for (int b = 0; b < kJpegLanes; ++b) d[b] = acc[b];
    }
  }
}

/// Exact std::round (half away from zero) for finite x, in a form GCC can
/// vectorize: libm roundf is a per-element call the vectorizer cannot
/// widen, while trunc maps straight to a rounding instruction. `x -
/// trunc(x)` is exact for every finite float (the fractional part is
/// always representable), doubling it is exact (exponent bump), and
/// trunc(2 * frac) is then -1/0/+1 exactly when roundf would step away
/// from zero — branchless, so the quant loop widens to full vectors.
/// Sole deviation: -0.0 maps to +0.0 (roundf keeps the sign) — harmless
/// downstream because the quantized coefficients only reach the output
/// through sums where +-0.0 contribute identically.
HS_ALWAYS_INLINE float round_away(float x) {
  const float t = std::trunc(x);
  return t + std::trunc(2.0f * (x - t));
}

// The fast path keeps YCbCr PLANAR (one contiguous plane per channel) so
// the block loop reads unit-stride rows with no per-channel deinterleave
// pass; per-pixel arithmetic is the seed's, only the storage layout
// differs, so values are bit-identical.
HS_TILED_CLONES
void rgb_to_ycc_planar(const float* HS_RESTRICT src, float* HS_RESTRICT yp,
                       float* HS_RESTRICT cbp, float* HS_RESTRICT crp,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float r = src[3 * i] * 255.0f;
    const float g = src[3 * i + 1] * 255.0f;
    const float b = src[3 * i + 2] * 255.0f;
    yp[i] = 0.299f * r + 0.587f * g + 0.114f * b;
    cbp[i] = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
    crp[i] = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
  }
}

HS_TILED_CLONES
void ycc_to_rgb_planar(const float* HS_RESTRICT yp, const float* HS_RESTRICT cbp,
                       const float* HS_RESTRICT crp, float* HS_RESTRICT dst,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float y = yp[i];
    const float cb = cbp[i] - 128.0f;
    const float cr = crp[i] - 128.0f;
    dst[3 * i] = std::clamp((y + 1.402f * cr) / 255.0f, 0.0f, 1.0f);
    dst[3 * i + 1] =
        std::clamp((y - 0.344136f * cb - 0.714136f * cr) / 255.0f, 0.0f, 1.0f);
    dst[3 * i + 2] = std::clamp((y + 1.772f * cb) / 255.0f, 0.0f, 1.0f);
  }
}

/// One channel plane: groups of eight blocks through the SoA
/// DCT/quant/IDCT (leftover and clipped blocks through the seed per-block
/// routines), in place. Cloned so the lane loops widen to one AVX2
/// register each.
HS_TILED_CLONES
void jpeg_channel_fast(float* plane, std::size_t h, std::size_t w,
                       const std::array<int, 64>& q) {
  const auto& cb = dct_basis().c;
  float qf[64];
  for (int i = 0; i < 64; ++i) {
    qf[i] = static_cast<float>(q[static_cast<std::size_t>(i)]);
  }

  alignas(32) float soa[64 * kJpegLanes];
  for (std::size_t by = 0; by < h; by += 8) {
    std::size_t bx = 0;
    if (by + 8 <= h) {
      for (; bx + 8 * kJpegLanes <= w; bx += 8 * kJpegLanes) {
        for (int y = 0; y < 8; ++y) {
          const float* row = plane + (by + static_cast<std::size_t>(y)) * w + bx;
          for (int x = 0; x < 8; ++x) {
            float* d = soa + (y * 8 + x) * kJpegLanes;
            for (int b = 0; b < kJpegLanes; ++b) d[b] = row[b * 8 + x] - 128.0f;
          }
        }
        dct8x8_soa(soa, cb.data());
        for (int i = 0; i < 64; ++i) {
          const float qv = qf[i];
          float* v = soa + i * kJpegLanes;
          for (int b = 0; b < kJpegLanes; ++b) {
            v[b] = round_away(v[b] / qv) * qv;
          }
        }
        idct8x8_soa(soa, cb.data());
        for (int y = 0; y < 8; ++y) {
          float* row = plane + (by + static_cast<std::size_t>(y)) * w + bx;
          for (int x = 0; x < 8; ++x) {
            const float* s = soa + (y * 8 + x) * kJpegLanes;
            for (int b = 0; b < kJpegLanes; ++b) row[b * 8 + x] = s[b] + 128.0f;
          }
        }
      }
    }
    // Leftover / clipped blocks: the seed per-block path on the plane.
    for (; bx < w; bx += 8) {
      std::array<float, 64> block{};
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          const std::size_t yy = std::min(by + static_cast<std::size_t>(y), h - 1);
          const std::size_t xx = std::min(bx + static_cast<std::size_t>(x), w - 1);
          block[static_cast<std::size_t>(y * 8 + x)] = plane[yy * w + xx] - 128.0f;
        }
      }
      dct8x8(block);
      for (int i = 0; i < 64; ++i) {
        block[static_cast<std::size_t>(i)] =
            std::round(block[static_cast<std::size_t>(i)] / qf[i]) * qf[i];
      }
      idct8x8(block);
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          const std::size_t yy = by + static_cast<std::size_t>(y);
          const std::size_t xx = bx + static_cast<std::size_t>(x);
          if (yy < h && xx < w) {
            plane[yy * w + xx] = block[static_cast<std::size_t>(y * 8 + x)] + 128.0f;
          }
        }
      }
    }
  }
}

Image jpeg_roundtrip_fast(const Image& img, int quality) {
  const std::size_t h = img.height(), w = img.width();
  float* ycc = img::scratch(img::kSlotJpegA, h * w * 3);  // three planes
  rgb_to_ycc_planar(img.data(), ycc, ycc + h * w, ycc + 2 * h * w, h * w);
  for (std::size_t c = 0; c < 3; ++c) {
    const auto& base = c == 0 ? kLumaQuant : kChromaQuant;
    std::array<int, 64> q{};
    for (int i = 0; i < 64; ++i) {
      q[static_cast<std::size_t>(i)] =
          jpeg_scale_quant(base[static_cast<std::size_t>(i)], quality);
    }
    jpeg_channel_fast(ycc + c * h * w, h, w, q);
  }
  Image out(h, w);
  ycc_to_rgb_planar(ycc, ycc + h * w, ycc + 2 * h * w, out.data(), h * w);
  return out;
}

}  // namespace

int jpeg_scale_quant(int base, int quality) {
  quality = std::clamp(quality, 1, 99);
  const int scale =
      quality < 50 ? 5000 / quality : 200 - 2 * quality;  // libjpeg rule
  return std::clamp((base * scale + 50) / 100, 1, 255);
}

Image jpeg_roundtrip(const Image& img, int quality) {
  HS_CHECK(!img.empty(), "jpeg_roundtrip: empty image");
  if (quality <= 0 || quality >= 100) return img;
  if (img::fast_path()) return jpeg_roundtrip_fast(img, quality);

  const std::size_t h = img.height(), w = img.width();
  // RGB -> YCbCr (JFIF), values scaled to [0, 255] around the JPEG ranges.
  std::vector<float> ycc(h * w * 3);
  const float* src = img.data();
  for (std::size_t i = 0; i < h * w; ++i) {
    const float r = src[3 * i] * 255.0f;
    const float g = src[3 * i + 1] * 255.0f;
    const float b = src[3 * i + 2] * 255.0f;
    ycc[3 * i] = 0.299f * r + 0.587f * g + 0.114f * b;
    ycc[3 * i + 1] = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
    ycc[3 * i + 2] = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
  }

  // Per channel: 8x8 block DCT, quantize, dequantize, inverse DCT. Edge
  // blocks are padded by clamping.
  for (std::size_t c = 0; c < 3; ++c) {
    const auto& base = c == 0 ? kLumaQuant : kChromaQuant;
    std::array<int, 64> q{};
    for (int i = 0; i < 64; ++i) {
      q[static_cast<std::size_t>(i)] =
          jpeg_scale_quant(base[static_cast<std::size_t>(i)], quality);
    }
    for (std::size_t by = 0; by < h; by += 8) {
      for (std::size_t bx = 0; bx < w; bx += 8) {
        std::array<float, 64> block{};
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            const std::size_t yy = std::min(by + static_cast<std::size_t>(y),
                                            h - 1);
            const std::size_t xx = std::min(bx + static_cast<std::size_t>(x),
                                            w - 1);
            block[static_cast<std::size_t>(y * 8 + x)] =
                ycc[(yy * w + xx) * 3 + c] - 128.0f;
          }
        }
        dct8x8(block);
        for (int i = 0; i < 64; ++i) {
          const float qv = static_cast<float>(q[static_cast<std::size_t>(i)]);
          block[static_cast<std::size_t>(i)] =
              std::round(block[static_cast<std::size_t>(i)] / qv) * qv;
        }
        idct8x8(block);
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            const std::size_t yy = by + static_cast<std::size_t>(y);
            const std::size_t xx = bx + static_cast<std::size_t>(x);
            if (yy < h && xx < w) {
              ycc[(yy * w + xx) * 3 + c] =
                  block[static_cast<std::size_t>(y * 8 + x)] + 128.0f;
            }
          }
        }
      }
    }
  }

  // YCbCr -> RGB.
  Image out(h, w);
  float* dst = out.data();
  for (std::size_t i = 0; i < h * w; ++i) {
    const float y = ycc[3 * i];
    const float cb = ycc[3 * i + 1] - 128.0f;
    const float cr = ycc[3 * i + 2] - 128.0f;
    dst[3 * i] = std::clamp((y + 1.402f * cr) / 255.0f, 0.0f, 1.0f);
    dst[3 * i + 1] =
        std::clamp((y - 0.344136f * cb - 0.714136f * cr) / 255.0f, 0.0f, 1.0f);
    dst[3 * i + 2] = std::clamp((y + 1.772f * cb) / 255.0f, 0.0f, 1.0f);
  }
  return out;
}

}  // namespace hetero
