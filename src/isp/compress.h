// JPEG-style lossy compression model.
//
// We reproduce the parts of JPEG that alter pixel statistics (what a trained
// model actually sees): YCbCr conversion, 8x8 block DCT, quantization with
// the Annex-K luma/chroma tables scaled by the libjpeg quality factor, and
// reconstruction. Entropy coding is omitted — it is lossless and invisible
// to the model. Quality outside (0, 100) disables the stage.
#pragma once

#include "image/image.h"

namespace hetero {

/// Applies the compress->decompress round trip at the given quality (1-99).
/// quality <= 0 or >= 100 returns the input unchanged.
Image jpeg_roundtrip(const Image& img, int quality);

/// libjpeg-style scaling of a base quantization table entry by quality.
int jpeg_scale_quant(int base, int quality);

}  // namespace hetero
