#include "isp/demosaic.h"

#include <algorithm>
#include <cmath>

namespace hetero {
namespace {

/// Clamped mosaic read.
struct MosaicView {
  const RawImage& raw;
  int h, w;

  float operator()(int y, int x) const {
    y = std::clamp(y, 0, h - 1);
    x = std::clamp(x, 0, w - 1);
    return raw.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x));
  }
  int ch(int y, int x) const {
    y = std::clamp(y, 0, h - 1);
    x = std::clamp(x, 0, w - 1);
    return raw.channel_at(static_cast<std::size_t>(y),
                          static_cast<std::size_t>(x));
  }
};

/// Fills the green plane of `out` at non-green sites by plain 4-neighbour
/// averaging; copies known samples everywhere.
void copy_known_samples(const MosaicView& m, Image& out) {
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
             static_cast<std::size_t>(m.ch(y, x))) = m(y, x);
    }
  }
}

Image demosaic_bilinear(const MosaicView& m) {
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  copy_known_samples(m, out);
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const int own = m.ch(y, x);
      for (int c = 0; c < 3; ++c) {
        if (c == own) continue;
        // Average all samples of channel c in the 3x3 neighbourhood.
        float sum = 0.0f;
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dy == 0 && dx == 0) continue;
            if (m.ch(y + dy, x + dx) == c) {
              sum += m(y + dy, x + dx);
              ++count;
            }
          }
        }
        out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
               static_cast<std::size_t>(c)) = count ? sum / count : 0.0f;
      }
    }
  }
  return out;
}

/// Interpolates green at every non-green site, either gradient-directed
/// (PPG) or fixed direction (AHD candidates), with Laplacian correction from
/// the co-located channel.
enum class GreenDir { kAdaptive, kHorizontal, kVertical };

void interpolate_green(const MosaicView& m, Image& out, GreenDir dir) {
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const int own = m.ch(y, x);
      if (own == 1) {
        out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1) =
            m(y, x);
        continue;
      }
      // Gradient-corrected estimates along each axis.
      const float gh = (m(y, x - 1) + m(y, x + 1)) / 2.0f +
                       (2.0f * m(y, x) - m(y, x - 2) - m(y, x + 2)) / 4.0f;
      const float gv = (m(y - 1, x) + m(y + 1, x)) / 2.0f +
                       (2.0f * m(y, x) - m(y - 2, x) - m(y + 2, x)) / 4.0f;
      float g;
      switch (dir) {
        case GreenDir::kHorizontal: g = gh; break;
        case GreenDir::kVertical: g = gv; break;
        case GreenDir::kAdaptive:
        default: {
          const float grad_h = std::abs(m(y, x - 1) - m(y, x + 1)) +
                               std::abs(2.0f * m(y, x) - m(y, x - 2) -
                                        m(y, x + 2));
          const float grad_v = std::abs(m(y - 1, x) - m(y + 1, x)) +
                               std::abs(2.0f * m(y, x) - m(y - 2, x) -
                                        m(y + 2, x));
          if (grad_h < grad_v) {
            g = gh;
          } else if (grad_v < grad_h) {
            g = gv;
          } else {
            g = (gh + gv) / 2.0f;
          }
        }
      }
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1) =
          std::clamp(g, 0.0f, 1.0f);
    }
  }
}

/// Recovers R and B everywhere from colour differences against the
/// interpolated green plane (standard second pass shared by PPG and AHD).
void interpolate_rb(const MosaicView& m, Image& out) {
  auto green = [&](int y, int x) {
    y = std::clamp(y, 0, m.h - 1);
    x = std::clamp(x, 0, m.w - 1);
    return out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1);
  };
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const int own = m.ch(y, x);
      for (int c = 0; c <= 2; c += 2) {  // R and B planes
        if (c == own) {
          out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
                 static_cast<std::size_t>(c)) = m(y, x);
          continue;
        }
        // Average colour difference (C - G) over the nearest C samples.
        float diff = 0.0f;
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dy == 0 && dx == 0) continue;
            if (m.ch(y + dy, x + dx) == c) {
              diff += m(y + dy, x + dx) - green(y + dy, x + dx);
              ++count;
            }
          }
        }
        const float v = green(y, x) + (count ? diff / count : 0.0f);
        out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
               static_cast<std::size_t>(c)) = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
}

Image demosaic_ppg(const MosaicView& m) {
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  interpolate_green(m, out, GreenDir::kAdaptive);
  interpolate_rb(m, out);
  return out;
}

Image demosaic_ahd(const MosaicView& m) {
  // Two candidate green planes.
  Image out_h(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  Image out_v(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  interpolate_green(m, out_h, GreenDir::kHorizontal);
  interpolate_green(m, out_v, GreenDir::kVertical);

  // Per-pixel homogeneity: pick the direction whose local green plane is
  // smoother (lower 3x3 total variation), a laptop-scale proxy for AHD's
  // CIELab homogeneity maps.
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  auto tv = [&](const Image& g, int y, int x) {
    float acc = 0.0f;
    const float centre = g.at(static_cast<std::size_t>(std::clamp(y, 0, m.h - 1)),
                              static_cast<std::size_t>(std::clamp(x, 0, m.w - 1)),
                              1);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int yy = std::clamp(y + dy, 0, m.h - 1);
        const int xx = std::clamp(x + dx, 0, m.w - 1);
        acc += std::abs(g.at(static_cast<std::size_t>(yy),
                             static_cast<std::size_t>(xx), 1) -
                        centre);
      }
    }
    return acc;
  };
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const Image& pick = tv(out_h, y, x) <= tv(out_v, y, x) ? out_h : out_v;
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1) =
          pick.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1);
    }
  }
  interpolate_rb(m, out);
  return out;
}

Image demosaic_binning(const MosaicView& m) {
  // 2x2 CFA tile -> one RGB superpixel at half resolution.
  const int oh = m.h / 2, ow = m.w / 2;
  Image half(static_cast<std::size_t>(oh), static_cast<std::size_t>(ow));
  for (int ty = 0; ty < oh; ++ty) {
    for (int tx = 0; tx < ow; ++tx) {
      float rgb[3] = {0, 0, 0};
      int counts[3] = {0, 0, 0};
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const int c = m.ch(2 * ty + dy, 2 * tx + dx);
          rgb[c] += m(2 * ty + dy, 2 * tx + dx);
          ++counts[c];
        }
      }
      for (int c = 0; c < 3; ++c) {
        if (counts[c]) rgb[c] /= static_cast<float>(counts[c]);
      }
      half.set_pixel(static_cast<std::size_t>(ty), static_cast<std::size_t>(tx),
                     rgb[0], rgb[1], rgb[2]);
    }
  }
  // Upscale back so downstream stages see the native resolution; the lost
  // high-frequency detail is the binning signature.
  return resize_bilinear(half, static_cast<std::size_t>(m.h),
                         static_cast<std::size_t>(m.w));
}

}  // namespace

const char* demosaic_name(DemosaicAlgo algo) {
  switch (algo) {
    case DemosaicAlgo::kBilinear: return "bilinear";
    case DemosaicAlgo::kPPG: return "ppg";
    case DemosaicAlgo::kAHD: return "ahd";
    case DemosaicAlgo::kPixelBinning: return "pixel-binning";
  }
  return "?";
}

Image demosaic(const RawImage& raw, DemosaicAlgo algo) {
  HS_CHECK(!raw.empty(), "demosaic: empty RAW input");
  const MosaicView m{raw, static_cast<int>(raw.height()),
                     static_cast<int>(raw.width())};
  switch (algo) {
    case DemosaicAlgo::kBilinear: return demosaic_bilinear(m);
    case DemosaicAlgo::kPPG: return demosaic_ppg(m);
    case DemosaicAlgo::kAHD: return demosaic_ahd(m);
    case DemosaicAlgo::kPixelBinning: return demosaic_binning(m);
  }
  return demosaic_bilinear(m);
}

}  // namespace hetero
