#include "isp/demosaic.h"

#include <algorithm>
#include <cmath>

#include "image/fastpath.h"
#include "kernels/isa.h"

namespace hetero {
namespace {

/// Clamped mosaic read.
struct MosaicView {
  const RawImage& raw;
  int h, w;

  float operator()(int y, int x) const {
    y = std::clamp(y, 0, h - 1);
    x = std::clamp(x, 0, w - 1);
    return raw.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x));
  }
  int ch(int y, int x) const {
    y = std::clamp(y, 0, h - 1);
    x = std::clamp(x, 0, w - 1);
    return raw.channel_at(static_cast<std::size_t>(y),
                          static_cast<std::size_t>(x));
  }
};

/// Fills the green plane of `out` at non-green sites by plain 4-neighbour
/// averaging; copies known samples everywhere.
void copy_known_samples(const MosaicView& m, Image& out) {
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
             static_cast<std::size_t>(m.ch(y, x))) = m(y, x);
    }
  }
}

Image demosaic_bilinear(const MosaicView& m) {
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  copy_known_samples(m, out);
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const int own = m.ch(y, x);
      for (int c = 0; c < 3; ++c) {
        if (c == own) continue;
        // Average all samples of channel c in the 3x3 neighbourhood.
        float sum = 0.0f;
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dy == 0 && dx == 0) continue;
            if (m.ch(y + dy, x + dx) == c) {
              sum += m(y + dy, x + dx);
              ++count;
            }
          }
        }
        out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
               static_cast<std::size_t>(c)) = count ? sum / count : 0.0f;
      }
    }
  }
  return out;
}

/// Interpolates green at every non-green site, either gradient-directed
/// (PPG) or fixed direction (AHD candidates), with Laplacian correction from
/// the co-located channel.
enum class GreenDir { kAdaptive, kHorizontal, kVertical };

void interpolate_green(const MosaicView& m, Image& out, GreenDir dir) {
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const int own = m.ch(y, x);
      if (own == 1) {
        out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1) =
            m(y, x);
        continue;
      }
      // Gradient-corrected estimates along each axis.
      const float gh = (m(y, x - 1) + m(y, x + 1)) / 2.0f +
                       (2.0f * m(y, x) - m(y, x - 2) - m(y, x + 2)) / 4.0f;
      const float gv = (m(y - 1, x) + m(y + 1, x)) / 2.0f +
                       (2.0f * m(y, x) - m(y - 2, x) - m(y + 2, x)) / 4.0f;
      float g;
      switch (dir) {
        case GreenDir::kHorizontal: g = gh; break;
        case GreenDir::kVertical: g = gv; break;
        case GreenDir::kAdaptive:
        default: {
          const float grad_h = std::abs(m(y, x - 1) - m(y, x + 1)) +
                               std::abs(2.0f * m(y, x) - m(y, x - 2) -
                                        m(y, x + 2));
          const float grad_v = std::abs(m(y - 1, x) - m(y + 1, x)) +
                               std::abs(2.0f * m(y, x) - m(y - 2, x) -
                                        m(y + 2, x));
          if (grad_h < grad_v) {
            g = gh;
          } else if (grad_v < grad_h) {
            g = gv;
          } else {
            g = (gh + gv) / 2.0f;
          }
        }
      }
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1) =
          std::clamp(g, 0.0f, 1.0f);
    }
  }
}

/// Recovers R and B everywhere from colour differences against the
/// interpolated green plane (standard second pass shared by PPG and AHD).
void interpolate_rb(const MosaicView& m, Image& out) {
  auto green = [&](int y, int x) {
    y = std::clamp(y, 0, m.h - 1);
    x = std::clamp(x, 0, m.w - 1);
    return out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1);
  };
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const int own = m.ch(y, x);
      for (int c = 0; c <= 2; c += 2) {  // R and B planes
        if (c == own) {
          out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
                 static_cast<std::size_t>(c)) = m(y, x);
          continue;
        }
        // Average colour difference (C - G) over the nearest C samples.
        float diff = 0.0f;
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dy == 0 && dx == 0) continue;
            if (m.ch(y + dy, x + dx) == c) {
              diff += m(y + dy, x + dx) - green(y + dy, x + dx);
              ++count;
            }
          }
        }
        const float v = green(y, x) + (count ? diff / count : 0.0f);
        out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
               static_cast<std::size_t>(c)) = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
}

Image demosaic_ppg(const MosaicView& m) {
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  interpolate_green(m, out, GreenDir::kAdaptive);
  interpolate_rb(m, out);
  return out;
}

Image demosaic_ahd(const MosaicView& m) {
  // Two candidate green planes.
  Image out_h(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  Image out_v(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  interpolate_green(m, out_h, GreenDir::kHorizontal);
  interpolate_green(m, out_v, GreenDir::kVertical);

  // Per-pixel homogeneity: pick the direction whose local green plane is
  // smoother (lower 3x3 total variation), a laptop-scale proxy for AHD's
  // CIELab homogeneity maps.
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  auto tv = [&](const Image& g, int y, int x) {
    float acc = 0.0f;
    const float centre = g.at(static_cast<std::size_t>(std::clamp(y, 0, m.h - 1)),
                              static_cast<std::size_t>(std::clamp(x, 0, m.w - 1)),
                              1);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int yy = std::clamp(y + dy, 0, m.h - 1);
        const int xx = std::clamp(x + dx, 0, m.w - 1);
        acc += std::abs(g.at(static_cast<std::size_t>(yy),
                             static_cast<std::size_t>(xx), 1) -
                        centre);
      }
    }
    return acc;
  };
  for (int y = 0; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) {
      const Image& pick = tv(out_h, y, x) <= tv(out_v, y, x) ? out_h : out_v;
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1) =
          pick.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1);
    }
  }
  interpolate_rb(m, out);
  return out;
}

Image demosaic_binning(const MosaicView& m) {
  // 2x2 CFA tile -> one RGB superpixel at half resolution.
  const int oh = m.h / 2, ow = m.w / 2;
  Image half(static_cast<std::size_t>(oh), static_cast<std::size_t>(ow));
  for (int ty = 0; ty < oh; ++ty) {
    for (int tx = 0; tx < ow; ++tx) {
      float rgb[3] = {0, 0, 0};
      int counts[3] = {0, 0, 0};
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const int c = m.ch(2 * ty + dy, 2 * tx + dx);
          rgb[c] += m(2 * ty + dy, 2 * tx + dx);
          ++counts[c];
        }
      }
      for (int c = 0; c < 3; ++c) {
        if (counts[c]) rgb[c] /= static_cast<float>(counts[c]);
      }
      half.set_pixel(static_cast<std::size_t>(ty), static_cast<std::size_t>(tx),
                     rgb[0], rgb[1], rgb[2]);
    }
  }
  // Upscale back so downstream stages see the native resolution; the lost
  // high-frequency detail is the binning signature.
  return resize_bilinear(half, static_cast<std::size_t>(m.h),
                         static_cast<std::size_t>(m.w));
}

// ---------------------------------------------------------------- fast path
//
// Row-major rewrites of the seed loops above (HS_ISP=fast). Interior pixels
// — no clamped neighbour — run over raw row pointers through per-CFA-phase
// offset tables built in the same dy/dx iteration order as the scalar scans,
// so every floating-point accumulation happens in the seed order and the
// output is byte-identical (asserted by tests/test_isp_parity.cpp). Border
// rings reuse the clamped MosaicView math verbatim.

/// Same-channel neighbour offsets around one CFA phase, 3x3 window, in the
/// scalar loop's dy/dx order. `off` indexes the mosaic, `off3` the HWC image
/// (the same displacement times three channels).
struct OffsetTab {
  int n = 0;
  int off[8];
  int off3[8];
};

OffsetTab make_tab(const int pc[2][2], int py, int px, int c, int w) {
  OffsetTab t;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dy == 0 && dx == 0) continue;
      if (pc[(py + dy) & 1][(px + dx) & 1] == c) {
        t.off[t.n] = dy * w + dx;
        t.off3[t.n] = (dy * w + dx) * 3;
        ++t.n;
      }
    }
  }
  return t;
}

/// CFA phase channels pc[y&1][x&1] plus the per-phase, per-channel tables.
struct MosaicTabs {
  int pc[2][2];
  OffsetTab tab[2][2][3];
};

MosaicTabs make_tabs(const MosaicView& m) {
  MosaicTabs t;
  for (int py = 0; py < 2; ++py) {
    for (int px = 0; px < 2; ++px) {
      t.pc[py][px] = m.ch(py, px);
    }
  }
  for (int py = 0; py < 2; ++py) {
    for (int px = 0; px < 2; ++px) {
      for (int c = 0; c < 3; ++c) {
        t.tab[py][px][c] = make_tab(t.pc, py, px, c, m.w);
      }
    }
  }
  return t;
}

/// One bilinear pixel through the clamped view (border fallback); the body
/// is the seed per-pixel scan.
void bilinear_pixel(const MosaicView& m, Image& out, int y, int x) {
  const int own = m.ch(y, x);
  out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
         static_cast<std::size_t>(own)) = m(y, x);
  for (int c = 0; c < 3; ++c) {
    if (c == own) continue;
    float sum = 0.0f;
    int count = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dy == 0 && dx == 0) continue;
        if (m.ch(y + dy, x + dx) == c) {
          sum += m(y + dy, x + dx);
          ++count;
        }
      }
    }
    out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
           static_cast<std::size_t>(c)) = count ? sum / count : 0.0f;
  }
}

HS_TILED_CLONES
void bilinear_interior(const float* HS_RESTRICT raw, float* HS_RESTRICT out,
                       int h, int w, const MosaicTabs& t) {
  for (int y = 1; y < h - 1; ++y) {
    const int py = y & 1;
    const float* rp = raw + static_cast<std::ptrdiff_t>(y) * w;
    float* op = out + static_cast<std::ptrdiff_t>(y) * w * 3;
    for (int x = 1; x < w - 1; ++x) {
      const int own = t.pc[py][x & 1];
      float* o = op + x * 3;
      o[own] = rp[x];
      for (int c = 0; c < 3; ++c) {
        if (c == own) continue;
        const OffsetTab& tab = t.tab[py][x & 1][c];
        float sum = 0.0f;
        for (int k = 0; k < tab.n; ++k) sum += rp[x + tab.off[k]];
        o[c] = tab.n ? sum / tab.n : 0.0f;
      }
    }
  }
}

Image demosaic_bilinear_fast(const MosaicView& m) {
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  const MosaicTabs t = make_tabs(m);
  bilinear_interior(m.raw.data(), out.data(), m.h, m.w, t);
  for (int x = 0; x < m.w; ++x) {
    bilinear_pixel(m, out, 0, x);
    if (m.h > 1) bilinear_pixel(m, out, m.h - 1, x);
  }
  for (int y = 1; y < m.h - 1; ++y) {
    bilinear_pixel(m, out, y, 0);
    if (m.w > 1) bilinear_pixel(m, out, y, m.w - 1);
  }
  return out;
}

/// One green pixel through the clamped view (border fallback for the fast
/// PPG/AHD paths); writes `stride`-spaced output (3 = HWC green channel,
/// 1 = bare candidate plane).
void green_pixel(const MosaicView& m, float* outg, int stride, int y, int x,
                 GreenDir dir) {
  float* o = outg + (static_cast<std::ptrdiff_t>(y) * m.w + x) * stride;
  if (m.ch(y, x) == 1) {
    *o = m(y, x);
    return;
  }
  const float gh = (m(y, x - 1) + m(y, x + 1)) / 2.0f +
                   (2.0f * m(y, x) - m(y, x - 2) - m(y, x + 2)) / 4.0f;
  const float gv = (m(y - 1, x) + m(y + 1, x)) / 2.0f +
                   (2.0f * m(y, x) - m(y - 2, x) - m(y + 2, x)) / 4.0f;
  float g;
  switch (dir) {
    case GreenDir::kHorizontal: g = gh; break;
    case GreenDir::kVertical: g = gv; break;
    case GreenDir::kAdaptive:
    default: {
      const float grad_h =
          std::abs(m(y, x - 1) - m(y, x + 1)) +
          std::abs(2.0f * m(y, x) - m(y, x - 2) - m(y, x + 2));
      const float grad_v =
          std::abs(m(y - 1, x) - m(y + 1, x)) +
          std::abs(2.0f * m(y, x) - m(y - 2, x) - m(y + 2, x));
      if (grad_h < grad_v) {
        g = gh;
      } else if (grad_v < grad_h) {
        g = gv;
      } else {
        g = (gh + gv) / 2.0f;
      }
    }
  }
  *o = std::clamp(g, 0.0f, 1.0f);
}

HS_TILED_CLONES
void green_interior(const float* HS_RESTRICT raw, float* HS_RESTRICT outg,
                    int h, int w, int stride, const MosaicTabs& t,
                    GreenDir dir) {
  for (int y = 2; y < h - 2; ++y) {
    const int py = y & 1;
    const float* rp = raw + static_cast<std::ptrdiff_t>(y) * w;
    float* op = outg + static_cast<std::ptrdiff_t>(y) * w * stride;
    for (int x = 2; x < w - 2; ++x) {
      const float v = rp[x];
      if (t.pc[py][x & 1] == 1) {
        op[x * stride] = v;
        continue;
      }
      const float gh = (rp[x - 1] + rp[x + 1]) / 2.0f +
                       (2.0f * v - rp[x - 2] - rp[x + 2]) / 4.0f;
      const float gv = (rp[x - w] + rp[x + w]) / 2.0f +
                       (2.0f * v - rp[x - 2 * w] - rp[x + 2 * w]) / 4.0f;
      float g;
      switch (dir) {
        case GreenDir::kHorizontal: g = gh; break;
        case GreenDir::kVertical: g = gv; break;
        case GreenDir::kAdaptive:
        default: {
          const float grad_h = std::abs(rp[x - 1] - rp[x + 1]) +
                               std::abs(2.0f * v - rp[x - 2] - rp[x + 2]);
          const float grad_v = std::abs(rp[x - w] - rp[x + w]) +
                               std::abs(2.0f * v - rp[x - 2 * w] -
                                        rp[x + 2 * w]);
          if (grad_h < grad_v) {
            g = gh;
          } else if (grad_v < grad_h) {
            g = gv;
          } else {
            g = (gh + gv) / 2.0f;
          }
        }
      }
      op[x * stride] = std::clamp(g, 0.0f, 1.0f);
    }
  }
}

/// Full green pass: interior kernel plus the two-pixel clamped border ring.
void interpolate_green_fast(const MosaicView& m, const MosaicTabs& t,
                            float* outg, int stride, GreenDir dir) {
  green_interior(m.raw.data(), outg, m.h, m.w, stride, t, dir);
  const int ylo = std::min(2, m.h), yhi = std::max(m.h - 2, ylo);
  for (int y = 0; y < ylo; ++y) {
    for (int x = 0; x < m.w; ++x) green_pixel(m, outg, stride, y, x, dir);
  }
  for (int y = yhi; y < m.h; ++y) {
    for (int x = 0; x < m.w; ++x) green_pixel(m, outg, stride, y, x, dir);
  }
  for (int y = ylo; y < yhi; ++y) {
    for (int x = 0; x < std::min(2, m.w); ++x) {
      green_pixel(m, outg, stride, y, x, dir);
    }
    for (int x = std::max(m.w - 2, std::min(2, m.w)); x < m.w; ++x) {
      green_pixel(m, outg, stride, y, x, dir);
    }
  }
}

/// One R/B pixel through the clamped view (border fallback); seed math.
void rb_pixel(const MosaicView& m, Image& out, int y, int x) {
  auto green = [&](int yy, int xx) {
    yy = std::clamp(yy, 0, m.h - 1);
    xx = std::clamp(xx, 0, m.w - 1);
    return out.at(static_cast<std::size_t>(yy), static_cast<std::size_t>(xx),
                  1);
  };
  const int own = m.ch(y, x);
  for (int c = 0; c <= 2; c += 2) {
    if (c == own) {
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
             static_cast<std::size_t>(c)) = m(y, x);
      continue;
    }
    float diff = 0.0f;
    int count = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dy == 0 && dx == 0) continue;
        if (m.ch(y + dy, x + dx) == c) {
          diff += m(y + dy, x + dx) - green(y + dy, x + dx);
          ++count;
        }
      }
    }
    const float v = green(y, x) + (count ? diff / count : 0.0f);
    out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
           static_cast<std::size_t>(c)) = std::clamp(v, 0.0f, 1.0f);
  }
}

HS_TILED_CLONES
void rb_interior(const float* HS_RESTRICT raw, float* HS_RESTRICT out, int h,
                 int w, const MosaicTabs& t) {
  for (int y = 1; y < h - 1; ++y) {
    const int py = y & 1;
    const float* rp = raw + static_cast<std::ptrdiff_t>(y) * w;
    float* op = out + static_cast<std::ptrdiff_t>(y) * w * 3;
    for (int x = 1; x < w - 1; ++x) {
      const int own = t.pc[py][x & 1];
      float* o = op + x * 3;
      const float g0 = o[1];
      for (int c = 0; c <= 2; c += 2) {
        if (c == own) {
          o[c] = rp[x];
          continue;
        }
        const OffsetTab& tab = t.tab[py][x & 1][c];
        float diff = 0.0f;
        for (int k = 0; k < tab.n; ++k) {
          diff += rp[x + tab.off[k]] - o[1 + tab.off3[k]];
        }
        const float v = g0 + (tab.n ? diff / tab.n : 0.0f);
        o[c] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
}

void interpolate_rb_fast(const MosaicView& m, const MosaicTabs& t,
                         Image& out) {
  rb_interior(m.raw.data(), out.data(), m.h, m.w, t);
  for (int x = 0; x < m.w; ++x) {
    rb_pixel(m, out, 0, x);
    if (m.h > 1) rb_pixel(m, out, m.h - 1, x);
  }
  for (int y = 1; y < m.h - 1; ++y) {
    rb_pixel(m, out, y, 0);
    if (m.w > 1) rb_pixel(m, out, y, m.w - 1);
  }
}

Image demosaic_ppg_fast(const MosaicView& m) {
  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  const MosaicTabs t = make_tabs(m);
  interpolate_green_fast(m, t, out.data() + 1, 3, GreenDir::kAdaptive);
  interpolate_rb_fast(m, t, out);
  return out;
}

/// 3x3 total variation of one green plane (border fallback); seed math,
/// including the zero-valued centre term so the accumulation order matches.
float tv_plane(const float* g, int h, int w, int y, int x) {
  float acc = 0.0f;
  const float centre = g[static_cast<std::ptrdiff_t>(std::clamp(y, 0, h - 1)) *
                             w +
                         std::clamp(x, 0, w - 1)];
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const int yy = std::clamp(y + dy, 0, h - 1);
      const int xx = std::clamp(x + dx, 0, w - 1);
      acc += std::abs(g[static_cast<std::ptrdiff_t>(yy) * w + xx] - centre);
    }
  }
  return acc;
}

HS_TILED_CLONES
void ahd_pick_interior(const float* HS_RESTRICT gh,
                       const float* HS_RESTRICT gv, float* HS_RESTRICT out,
                       int h, int w) {
  for (int y = 1; y < h - 1; ++y) {
    const float* hp = gh + static_cast<std::ptrdiff_t>(y) * w;
    const float* vp = gv + static_cast<std::ptrdiff_t>(y) * w;
    float* op = out + static_cast<std::ptrdiff_t>(y) * w * 3;
    for (int x = 1; x < w - 1; ++x) {
      const float ch = hp[x];
      const float cv = vp[x];
      float th = 0.0f, tt = 0.0f;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          th += std::abs(hp[dy * w + x + dx] - ch);
          tt += std::abs(vp[dy * w + x + dx] - cv);
        }
      }
      op[x * 3 + 1] = th <= tt ? ch : cv;
    }
  }
}

Image demosaic_ahd_fast(const MosaicView& m) {
  const MosaicTabs t = make_tabs(m);
  const std::size_t plane = static_cast<std::size_t>(m.h) *
                            static_cast<std::size_t>(m.w);
  float* gh = img::scratch(img::kSlotDemosaicA, plane);
  float* gv = img::scratch(img::kSlotDemosaicB, plane);
  interpolate_green_fast(m, t, gh, 1, GreenDir::kHorizontal);
  interpolate_green_fast(m, t, gv, 1, GreenDir::kVertical);

  Image out(static_cast<std::size_t>(m.h), static_cast<std::size_t>(m.w));
  ahd_pick_interior(gh, gv, out.data(), m.h, m.w);
  auto pick_pixel = [&](int y, int x) {
    const float th = tv_plane(gh, m.h, m.w, y, x);
    const float tt = tv_plane(gv, m.h, m.w, y, x);
    const float* src = th <= tt ? gh : gv;
    out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x), 1) =
        src[static_cast<std::ptrdiff_t>(y) * m.w + x];
  };
  for (int x = 0; x < m.w; ++x) {
    pick_pixel(0, x);
    if (m.h > 1) pick_pixel(m.h - 1, x);
  }
  for (int y = 1; y < m.h - 1; ++y) {
    pick_pixel(y, 0);
    if (m.w > 1) pick_pixel(y, m.w - 1);
  }
  interpolate_rb_fast(m, t, out);
  return out;
}

Image demosaic_binning_fast(const MosaicView& m) {
  const int oh = m.h / 2, ow = m.w / 2;
  Image half(static_cast<std::size_t>(oh), static_cast<std::size_t>(ow));
  const MosaicTabs t = make_tabs(m);
  const float* raw = m.raw.data();
  float* hp = half.data();
  for (int ty = 0; ty < oh; ++ty) {
    const float* r0 = raw + static_cast<std::ptrdiff_t>(2 * ty) * m.w;
    const float* r1 = r0 + m.w;
    float* o = hp + static_cast<std::ptrdiff_t>(ty) * ow * 3;
    for (int tx = 0; tx < ow; ++tx) {
      float rgb[3] = {0, 0, 0};
      int counts[3] = {0, 0, 0};
      const float v[4] = {r0[2 * tx], r0[2 * tx + 1], r1[2 * tx],
                          r1[2 * tx + 1]};
      const int c[4] = {t.pc[0][0], t.pc[0][1], t.pc[1][0], t.pc[1][1]};
      for (int k = 0; k < 4; ++k) {
        rgb[c[k]] += v[k];
        ++counts[c[k]];
      }
      for (int cc = 0; cc < 3; ++cc) {
        if (counts[cc]) rgb[cc] /= static_cast<float>(counts[cc]);
      }
      o[tx * 3] = rgb[0];
      o[tx * 3 + 1] = rgb[1];
      o[tx * 3 + 2] = rgb[2];
    }
  }
  return resize_bilinear(half, static_cast<std::size_t>(m.h),
                         static_cast<std::size_t>(m.w));
}

}  // namespace

const char* demosaic_name(DemosaicAlgo algo) {
  switch (algo) {
    case DemosaicAlgo::kBilinear: return "bilinear";
    case DemosaicAlgo::kPPG: return "ppg";
    case DemosaicAlgo::kAHD: return "ahd";
    case DemosaicAlgo::kPixelBinning: return "pixel-binning";
  }
  return "?";
}

Image demosaic(const RawImage& raw, DemosaicAlgo algo) {
  HS_CHECK(!raw.empty(), "demosaic: empty RAW input");
  const MosaicView m{raw, static_cast<int>(raw.height()),
                     static_cast<int>(raw.width())};
  if (img::fast_path()) {
    switch (algo) {
      case DemosaicAlgo::kBilinear: return demosaic_bilinear_fast(m);
      case DemosaicAlgo::kPPG: return demosaic_ppg_fast(m);
      case DemosaicAlgo::kAHD: return demosaic_ahd_fast(m);
      case DemosaicAlgo::kPixelBinning: return demosaic_binning_fast(m);
    }
    return demosaic_bilinear_fast(m);
  }
  switch (algo) {
    case DemosaicAlgo::kBilinear: return demosaic_bilinear(m);
    case DemosaicAlgo::kPPG: return demosaic_ppg(m);
    case DemosaicAlgo::kAHD: return demosaic_ahd(m);
    case DemosaicAlgo::kPixelBinning: return demosaic_binning(m);
  }
  return demosaic_bilinear(m);
}

}  // namespace hetero
