// Demosaicing: Bayer mosaic -> full-colour image.
//
// Table 3 of the paper compares three demosaic families; we implement
// laptop-scale versions of each plus plain bilinear:
//   * kBilinear     - classic bilinear interpolation (reference).
//   * kPPG          - "Pixel Grouping"-style gradient-directed green
//                     interpolation with colour-difference R/B recovery
//                     (the paper's Baseline column).
//   * kAHD          - adaptive homogeneity-directed: interpolate green
//                     horizontally and vertically, pick per-pixel the
//                     direction with the more homogeneous result.
//   * kPixelBinning - 2x2 CFA superpixel binning to half resolution,
//                     upscaled back (the low-light mode of cheap sensors).
#pragma once

#include "image/image.h"
#include "image/raw_image.h"

namespace hetero {

enum class DemosaicAlgo { kBilinear, kPPG, kAHD, kPixelBinning };

const char* demosaic_name(DemosaicAlgo algo);

/// Demosaics a RAW mosaic at its native resolution.
Image demosaic(const RawImage& raw, DemosaicAlgo algo);

}  // namespace hetero
