#include "isp/denoise.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "image/fastpath.h"
#include "kernels/isa.h"

namespace hetero {
namespace {

RawImage denoise_fbdd(const RawImage& raw) {
  // Median over same-colour neighbours in a 5x5 window, blended 50/50 with
  // the original sample: removes impulse noise while keeping detail (a
  // laptop-scale stand-in for FBDD's full banding/impulse pipeline).
  const int h = static_cast<int>(raw.height());
  const int w = static_cast<int>(raw.width());
  RawImage out(raw.height(), raw.width(), raw.pattern());
  std::vector<float> samples;
  samples.reserve(9);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int own = raw.channel_at(static_cast<std::size_t>(y),
                                     static_cast<std::size_t>(x));
      samples.clear();
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          const int yy = std::clamp(y + dy, 0, h - 1);
          const int xx = std::clamp(x + dx, 0, w - 1);
          if (raw.channel_at(static_cast<std::size_t>(yy),
                             static_cast<std::size_t>(xx)) == own) {
            samples.push_back(raw.at(static_cast<std::size_t>(yy),
                                     static_cast<std::size_t>(xx)));
          }
        }
      }
      std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                       samples.end());
      const float med = samples[samples.size() / 2];
      const float orig =
          raw.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x));
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x)) =
          0.5f * orig + 0.5f * med;
    }
  }
  return out;
}

/// One-level 2-D Haar soft-threshold denoise of a single plane (in place).
void haar_denoise_plane(std::vector<float>& plane, std::size_t h,
                        std::size_t w) {
  if (h < 2 || w < 2) return;
  const std::size_t hh = h / 2, hw = w / 2;
  std::vector<float> ll(hh * hw), lh(hh * hw), hl(hh * hw), hhb(hh * hw);
  for (std::size_t y = 0; y < hh; ++y) {
    for (std::size_t x = 0; x < hw; ++x) {
      const float a = plane[(2 * y) * w + 2 * x];
      const float b = plane[(2 * y) * w + 2 * x + 1];
      const float c = plane[(2 * y + 1) * w + 2 * x];
      const float d = plane[(2 * y + 1) * w + 2 * x + 1];
      ll[y * hw + x] = (a + b + c + d) / 4.0f;
      lh[y * hw + x] = (a - b + c - d) / 4.0f;
      hl[y * hw + x] = (a + b - c - d) / 4.0f;
      hhb[y * hw + x] = (a - b - c + d) / 4.0f;
    }
  }
  // BayesShrink-style noise estimate from the diagonal detail band.
  std::vector<float> abs_hh(hhb.size());
  for (std::size_t i = 0; i < hhb.size(); ++i) abs_hh[i] = std::abs(hhb[i]);
  std::nth_element(abs_hh.begin(), abs_hh.begin() + abs_hh.size() / 2,
                   abs_hh.end());
  const float sigma = abs_hh[abs_hh.size() / 2] / 0.6745f;
  const float t = 1.5f * sigma;
  auto soft = [t](float v) {
    if (v > t) return v - t;
    if (v < -t) return v + t;
    return 0.0f;
  };
  for (auto* band : {&lh, &hl, &hhb}) {
    for (float& v : *band) v = soft(v);
  }
  // Inverse Haar.
  for (std::size_t y = 0; y < hh; ++y) {
    for (std::size_t x = 0; x < hw; ++x) {
      const float s = ll[y * hw + x];
      const float e1 = lh[y * hw + x];
      const float e2 = hl[y * hw + x];
      const float e3 = hhb[y * hw + x];
      plane[(2 * y) * w + 2 * x] = s + e1 + e2 + e3;
      plane[(2 * y) * w + 2 * x + 1] = s - e1 + e2 - e3;
      plane[(2 * y + 1) * w + 2 * x] = s + e1 - e2 - e3;
      plane[(2 * y + 1) * w + 2 * x + 1] = s - e1 - e2 + e3;
    }
  }
}

RawImage denoise_wavelet(const RawImage& raw) {
  // Treat the mosaic as four half-resolution colour planes (one per CFA
  // site), denoise each, and reassemble — wavelets never mix colours.
  const std::size_t h = raw.height(), w = raw.width();
  const std::size_t ph = h / 2, pw = w / 2;
  RawImage out(h, w, raw.pattern());
  for (std::size_t sy = 0; sy < 2; ++sy) {
    for (std::size_t sx = 0; sx < 2; ++sx) {
      std::vector<float> plane(ph * pw);
      for (std::size_t y = 0; y < ph; ++y) {
        for (std::size_t x = 0; x < pw; ++x) {
          plane[y * pw + x] = raw.at(2 * y + sy, 2 * x + sx);
        }
      }
      haar_denoise_plane(plane, ph, pw);
      for (std::size_t y = 0; y < ph; ++y) {
        for (std::size_t x = 0; x < pw; ++x) {
          out.at(2 * y + sy, 2 * x + sx) =
              std::clamp(plane[y * pw + x], 0.0f, 1.0f);
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------- fast path
//
// HS_ISP=fast rewrites of the loops above; byte-identical results (the
// blend/threshold arithmetic is untouched and a median is a k-th order
// statistic, so any exact selection yields the seed value). See
// tests/test_isp_parity.cpp.

/// Exact median of 9 via the classic minimal exchange network (Paeth /
/// Devillard). Produces the 5th-smallest element — the same value
/// nth_element(begin, begin+4, end) selects.
HS_ALWAYS_INLINE float median9(float* HS_RESTRICT p) {
  auto sort2 = [](float& a, float& b) {
    const float lo = std::min(a, b), hi = std::max(a, b);
    a = lo;
    b = hi;
  };
  sort2(p[1], p[2]); sort2(p[4], p[5]); sort2(p[7], p[8]);
  sort2(p[0], p[1]); sort2(p[3], p[4]); sort2(p[6], p[7]);
  sort2(p[1], p[2]); sort2(p[4], p[5]); sort2(p[7], p[8]);
  sort2(p[0], p[3]); sort2(p[5], p[8]); sort2(p[4], p[7]);
  sort2(p[3], p[6]); sort2(p[1], p[4]); sort2(p[2], p[5]);
  sort2(p[4], p[7]); sort2(p[4], p[2]); sort2(p[6], p[4]);
  sort2(p[4], p[2]);
  return p[4];
}

/// Comparator schedule of Batcher's odd-even mergesort for 16 inputs (63
/// exchanges), generated once at first use — correct by construction
/// rather than a memorized network. Sorting 13 samples padded with three
/// +inf sentinels leaves the median at element 6.
struct Batcher16 {
  int n = 0;
  std::uint8_t a[72], b[72];
  Batcher16() {
    constexpr int kN = 16;
    for (int p = 1; p < kN; p <<= 1) {
      for (int k = p; k >= 1; k >>= 1) {
        for (int j = k % p; j + k < kN; j += 2 * k) {
          for (int i = 0; i < k && i + j + k < kN; ++i) {
            if ((i + j) / (2 * p) == (i + j + k) / (2 * p)) {
              a[n] = static_cast<std::uint8_t>(i + j);
              b[n] = static_cast<std::uint8_t>(i + j + k);
              ++n;
            }
          }
        }
      }
    }
  }
};

const Batcher16& batcher16() {
  static const Batcher16 net;
  return net;
}

/// Exact median of 13 (the Bayer G-phase same-channel count in a 5x5
/// window): branchless sorting network over the padded 16-vector. Any
/// exact selection returns the value nth_element(s, s+6, s+13) would.
HS_ALWAYS_INLINE float median13(const float* HS_RESTRICT src,
                                const Batcher16& net) {
  float s[16];
  for (int i = 0; i < 13; ++i) s[i] = src[i];
  s[13] = s[14] = s[15] = std::numeric_limits<float>::infinity();
  for (int i = 0; i < net.n; ++i) {
    float& x = s[net.a[i]];
    float& y = s[net.b[i]];
    const float lo = std::min(x, y), hi = std::max(x, y);
    x = lo;
    y = hi;
  }
  return s[6];
}

/// Same-channel offsets of one CFA phase inside the 5x5 window, in the
/// scalar dy/dx scan order. Interior-only (no clamping).
struct FbddTab {
  int n = 0;
  int off[25];
};

RawImage denoise_fbdd_fast(const RawImage& raw) {
  const int h = static_cast<int>(raw.height());
  const int w = static_cast<int>(raw.width());
  RawImage out(raw.height(), raw.width(), raw.pattern());

  int pc[2][2];
  for (int py = 0; py < 2; ++py) {
    for (int px = 0; px < 2; ++px) {
      pc[py][px] = raw.channel_at(static_cast<std::size_t>(std::min(py, h - 1)),
                                  static_cast<std::size_t>(std::min(px, w - 1)));
    }
  }
  FbddTab tab[2][2];
  for (int py = 0; py < 2; ++py) {
    for (int px = 0; px < 2; ++px) {
      FbddTab& t = tab[py][px];
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          if (pc[(py + dy) & 1][(px + dx) & 1] == pc[py][px]) {
            t.off[t.n++] = dy * w + dx;
          }
        }
      }
    }
  }

  const float* HS_RESTRICT rp = raw.data();
  float* HS_RESTRICT op = out.data();
  const Batcher16& net = batcher16();
  for (int y = 2; y < h - 2; ++y) {
    const int py = y & 1;
    const float* row = rp + static_cast<std::ptrdiff_t>(y) * w;
    float* orow = op + static_cast<std::ptrdiff_t>(y) * w;
    for (int x = 2; x < w - 2; ++x) {
      const FbddTab& t = tab[py][x & 1];
      float s[25];
      for (int k = 0; k < t.n; ++k) s[k] = row[x + t.off[k]];
      float med;
      if (t.n == 9) {
        med = median9(s);
      } else if (t.n == 13) {
        med = median13(s, net);
      } else {
        std::nth_element(s, s + t.n / 2, s + t.n);
        med = s[t.n / 2];
      }
      orow[x] = 0.5f * row[x] + 0.5f * med;
    }
  }

  // Clamped border ring (two pixels): the seed per-pixel scan verbatim.
  auto border_pixel = [&](int y, int x) {
    const int own = pc[y & 1][x & 1];
    float s[25];
    int n = 0;
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        const int yy = std::clamp(y + dy, 0, h - 1);
        const int xx = std::clamp(x + dx, 0, w - 1);
        if (pc[yy & 1][xx & 1] == own) {
          s[n++] = rp[static_cast<std::ptrdiff_t>(yy) * w + xx];
        }
      }
    }
    std::nth_element(s, s + n / 2, s + n);
    const float orig = rp[static_cast<std::ptrdiff_t>(y) * w + x];
    op[static_cast<std::ptrdiff_t>(y) * w + x] = 0.5f * orig + 0.5f * s[n / 2];
  };
  const int ylo = std::min(2, h), yhi = std::max(h - 2, ylo);
  for (int y = 0; y < ylo; ++y) {
    for (int x = 0; x < w; ++x) border_pixel(y, x);
  }
  for (int y = yhi; y < h; ++y) {
    for (int x = 0; x < w; ++x) border_pixel(y, x);
  }
  for (int y = ylo; y < yhi; ++y) {
    for (int x = 0; x < std::min(2, w); ++x) border_pixel(y, x);
    for (int x = std::max(w - 2, std::min(2, w)); x < w; ++x) border_pixel(y, x);
  }
  return out;
}

HS_TILED_CLONES
void haar_forward(const float* HS_RESTRICT plane, float* HS_RESTRICT ll,
                  float* HS_RESTRICT lh, float* HS_RESTRICT hl,
                  float* HS_RESTRICT hhb, std::size_t hh, std::size_t hw,
                  std::size_t w) {
  for (std::size_t y = 0; y < hh; ++y) {
    const float* r0 = plane + (2 * y) * w;
    const float* r1 = r0 + w;
    for (std::size_t x = 0; x < hw; ++x) {
      const float a = r0[2 * x];
      const float b = r0[2 * x + 1];
      const float c = r1[2 * x];
      const float d = r1[2 * x + 1];
      ll[y * hw + x] = (a + b + c + d) / 4.0f;
      lh[y * hw + x] = (a - b + c - d) / 4.0f;
      hl[y * hw + x] = (a + b - c - d) / 4.0f;
      hhb[y * hw + x] = (a - b - c + d) / 4.0f;
    }
  }
}

HS_TILED_CLONES
void haar_inverse(float* HS_RESTRICT plane, const float* HS_RESTRICT ll,
                  const float* HS_RESTRICT lh, const float* HS_RESTRICT hl,
                  const float* HS_RESTRICT hhb, std::size_t hh, std::size_t hw,
                  std::size_t w) {
  for (std::size_t y = 0; y < hh; ++y) {
    float* r0 = plane + (2 * y) * w;
    float* r1 = r0 + w;
    for (std::size_t x = 0; x < hw; ++x) {
      const float s = ll[y * hw + x];
      const float e1 = lh[y * hw + x];
      const float e2 = hl[y * hw + x];
      const float e3 = hhb[y * hw + x];
      r0[2 * x] = s + e1 + e2 + e3;
      r0[2 * x + 1] = s - e1 + e2 - e3;
      r1[2 * x] = s + e1 - e2 - e3;
      r1[2 * x + 1] = s - e1 - e2 + e3;
    }
  }
}

HS_TILED_CLONES
void soft_threshold(float* HS_RESTRICT band, std::size_t n, float t) {
  for (std::size_t i = 0; i < n; ++i) {
    const float v = band[i];
    band[i] = v > t ? v - t : (v < -t ? v + t : 0.0f);
  }
}

/// haar_denoise_plane over caller-supplied band scratch (no allocation).
void haar_denoise_plane_fast(float* plane, std::size_t h, std::size_t w,
                             float* bands) {
  if (h < 2 || w < 2) return;
  const std::size_t hh = h / 2, hw = w / 2, n = hh * hw;
  float* ll = bands;
  float* lh = ll + n;
  float* hl = lh + n;
  float* hhb = hl + n;
  float* abs_hh = hhb + n;
  haar_forward(plane, ll, lh, hl, hhb, hh, hw, w);
  for (std::size_t i = 0; i < n; ++i) abs_hh[i] = std::abs(hhb[i]);
  std::nth_element(abs_hh, abs_hh + n / 2, abs_hh + n);
  const float sigma = abs_hh[n / 2] / 0.6745f;
  const float t = 1.5f * sigma;
  soft_threshold(lh, n, t);
  soft_threshold(hl, n, t);
  soft_threshold(hhb, n, t);
  haar_inverse(plane, ll, lh, hl, hhb, hh, hw, w);
}

RawImage denoise_wavelet_fast(const RawImage& raw) {
  const std::size_t h = raw.height(), w = raw.width();
  const std::size_t ph = h / 2, pw = w / 2;
  RawImage out(h, w, raw.pattern());
  const std::size_t plane_n = ph * pw;
  const std::size_t band_n = (ph / 2) * (pw / 2);
  float* plane = img::scratch(img::kSlotDenoise, plane_n + 5 * band_n);
  float* bands = plane + plane_n;
  const float* rp = raw.data();
  float* op = out.data();
  for (std::size_t sy = 0; sy < 2; ++sy) {
    for (std::size_t sx = 0; sx < 2; ++sx) {
      for (std::size_t y = 0; y < ph; ++y) {
        const float* src = rp + (2 * y + sy) * w + sx;
        float* dst = plane + y * pw;
        for (std::size_t x = 0; x < pw; ++x) dst[x] = src[2 * x];
      }
      haar_denoise_plane_fast(plane, ph, pw, bands);
      for (std::size_t y = 0; y < ph; ++y) {
        const float* src = plane + y * pw;
        float* dst = op + (2 * y + sy) * w + sx;
        for (std::size_t x = 0; x < pw; ++x) {
          dst[2 * x] = std::clamp(src[x], 0.0f, 1.0f);
        }
      }
    }
  }
  return out;
}

}  // namespace

const char* denoise_name(DenoiseAlgo algo) {
  switch (algo) {
    case DenoiseAlgo::kNone: return "none";
    case DenoiseAlgo::kFBDD: return "fbdd";
    case DenoiseAlgo::kWavelet: return "wavelet-bayesshrink";
  }
  return "?";
}

RawImage denoise(const RawImage& raw, DenoiseAlgo algo) {
  HS_CHECK(!raw.empty(), "denoise: empty RAW input");
  if (img::fast_path()) {
    switch (algo) {
      case DenoiseAlgo::kNone: return raw;
      case DenoiseAlgo::kFBDD: return denoise_fbdd_fast(raw);
      case DenoiseAlgo::kWavelet: return denoise_wavelet_fast(raw);
    }
    return raw;
  }
  switch (algo) {
    case DenoiseAlgo::kNone: return raw;
    case DenoiseAlgo::kFBDD: return denoise_fbdd(raw);
    case DenoiseAlgo::kWavelet: return denoise_wavelet(raw);
  }
  return raw;
}

}  // namespace hetero
