#include "isp/denoise.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hetero {
namespace {

RawImage denoise_fbdd(const RawImage& raw) {
  // Median over same-colour neighbours in a 5x5 window, blended 50/50 with
  // the original sample: removes impulse noise while keeping detail (a
  // laptop-scale stand-in for FBDD's full banding/impulse pipeline).
  const int h = static_cast<int>(raw.height());
  const int w = static_cast<int>(raw.width());
  RawImage out(raw.height(), raw.width(), raw.pattern());
  std::vector<float> samples;
  samples.reserve(9);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int own = raw.channel_at(static_cast<std::size_t>(y),
                                     static_cast<std::size_t>(x));
      samples.clear();
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          const int yy = std::clamp(y + dy, 0, h - 1);
          const int xx = std::clamp(x + dx, 0, w - 1);
          if (raw.channel_at(static_cast<std::size_t>(yy),
                             static_cast<std::size_t>(xx)) == own) {
            samples.push_back(raw.at(static_cast<std::size_t>(yy),
                                     static_cast<std::size_t>(xx)));
          }
        }
      }
      std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                       samples.end());
      const float med = samples[samples.size() / 2];
      const float orig =
          raw.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x));
      out.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x)) =
          0.5f * orig + 0.5f * med;
    }
  }
  return out;
}

/// One-level 2-D Haar soft-threshold denoise of a single plane (in place).
void haar_denoise_plane(std::vector<float>& plane, std::size_t h,
                        std::size_t w) {
  if (h < 2 || w < 2) return;
  const std::size_t hh = h / 2, hw = w / 2;
  std::vector<float> ll(hh * hw), lh(hh * hw), hl(hh * hw), hhb(hh * hw);
  for (std::size_t y = 0; y < hh; ++y) {
    for (std::size_t x = 0; x < hw; ++x) {
      const float a = plane[(2 * y) * w + 2 * x];
      const float b = plane[(2 * y) * w + 2 * x + 1];
      const float c = plane[(2 * y + 1) * w + 2 * x];
      const float d = plane[(2 * y + 1) * w + 2 * x + 1];
      ll[y * hw + x] = (a + b + c + d) / 4.0f;
      lh[y * hw + x] = (a - b + c - d) / 4.0f;
      hl[y * hw + x] = (a + b - c - d) / 4.0f;
      hhb[y * hw + x] = (a - b - c + d) / 4.0f;
    }
  }
  // BayesShrink-style noise estimate from the diagonal detail band.
  std::vector<float> abs_hh(hhb.size());
  for (std::size_t i = 0; i < hhb.size(); ++i) abs_hh[i] = std::abs(hhb[i]);
  std::nth_element(abs_hh.begin(), abs_hh.begin() + abs_hh.size() / 2,
                   abs_hh.end());
  const float sigma = abs_hh[abs_hh.size() / 2] / 0.6745f;
  const float t = 1.5f * sigma;
  auto soft = [t](float v) {
    if (v > t) return v - t;
    if (v < -t) return v + t;
    return 0.0f;
  };
  for (auto* band : {&lh, &hl, &hhb}) {
    for (float& v : *band) v = soft(v);
  }
  // Inverse Haar.
  for (std::size_t y = 0; y < hh; ++y) {
    for (std::size_t x = 0; x < hw; ++x) {
      const float s = ll[y * hw + x];
      const float e1 = lh[y * hw + x];
      const float e2 = hl[y * hw + x];
      const float e3 = hhb[y * hw + x];
      plane[(2 * y) * w + 2 * x] = s + e1 + e2 + e3;
      plane[(2 * y) * w + 2 * x + 1] = s - e1 + e2 - e3;
      plane[(2 * y + 1) * w + 2 * x] = s + e1 - e2 - e3;
      plane[(2 * y + 1) * w + 2 * x + 1] = s - e1 - e2 + e3;
    }
  }
}

RawImage denoise_wavelet(const RawImage& raw) {
  // Treat the mosaic as four half-resolution colour planes (one per CFA
  // site), denoise each, and reassemble — wavelets never mix colours.
  const std::size_t h = raw.height(), w = raw.width();
  const std::size_t ph = h / 2, pw = w / 2;
  RawImage out(h, w, raw.pattern());
  for (std::size_t sy = 0; sy < 2; ++sy) {
    for (std::size_t sx = 0; sx < 2; ++sx) {
      std::vector<float> plane(ph * pw);
      for (std::size_t y = 0; y < ph; ++y) {
        for (std::size_t x = 0; x < pw; ++x) {
          plane[y * pw + x] = raw.at(2 * y + sy, 2 * x + sx);
        }
      }
      haar_denoise_plane(plane, ph, pw);
      for (std::size_t y = 0; y < ph; ++y) {
        for (std::size_t x = 0; x < pw; ++x) {
          out.at(2 * y + sy, 2 * x + sx) =
              std::clamp(plane[y * pw + x], 0.0f, 1.0f);
        }
      }
    }
  }
  return out;
}

}  // namespace

const char* denoise_name(DenoiseAlgo algo) {
  switch (algo) {
    case DenoiseAlgo::kNone: return "none";
    case DenoiseAlgo::kFBDD: return "fbdd";
    case DenoiseAlgo::kWavelet: return "wavelet-bayesshrink";
  }
  return "?";
}

RawImage denoise(const RawImage& raw, DenoiseAlgo algo) {
  HS_CHECK(!raw.empty(), "denoise: empty RAW input");
  switch (algo) {
    case DenoiseAlgo::kNone: return raw;
    case DenoiseAlgo::kFBDD: return denoise_fbdd(raw);
    case DenoiseAlgo::kWavelet: return denoise_wavelet(raw);
  }
  return raw;
}

}  // namespace hetero
