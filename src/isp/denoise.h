// RAW-domain denoising (runs before demosaic, as in real pipelines and in
// the paper's Table 3 stage order).
//
//   * kNone    - stage omitted ('-' in Table 3).
//   * kFBDD    - FBDD-style impulse suppression: median filtering over
//                same-colour CFA neighbours, blended with the original.
//   * kWavelet - BayesShrink-style wavelet soft thresholding: one-level Haar
//                transform per CFA colour plane with a noise estimate from
//                the median absolute deviation of the detail band.
#pragma once

#include "image/raw_image.h"

namespace hetero {

enum class DenoiseAlgo { kNone, kFBDD, kWavelet };

const char* denoise_name(DenoiseAlgo algo);

RawImage denoise(const RawImage& raw, DenoiseAlgo algo);

}  // namespace hetero
