#include "isp/gamut.h"

namespace hetero {

const char* gamut_name(GamutAlgo algo) {
  switch (algo) {
    case GamutAlgo::kNone: return "none";
    case GamutAlgo::kSrgb: return "srgb";
    case GamutAlgo::kProphoto: return "prophoto";
    case GamutAlgo::kDisplayP3: return "display-p3";
  }
  return "?";
}

Image gamut_map(const Image& img, GamutAlgo algo, const ColorMatrix& ccm) {
  HS_CHECK(!img.empty(), "gamut_map: empty image");
  switch (algo) {
    case GamutAlgo::kNone:
      return img;
    case GamutAlgo::kSrgb: {
      Image out = apply_color_matrix(img, ccm);
      out.clamp01();
      return out;
    }
    case GamutAlgo::kProphoto: {
      Image out = apply_color_matrix(img, matmul3(kSrgbToProphoto, ccm));
      out.clamp01();
      return out;
    }
    case GamutAlgo::kDisplayP3: {
      Image out = apply_color_matrix(img, matmul3(kSrgbToDisplayP3, ccm));
      out.clamp01();
      return out;
    }
  }
  return img;
}

}  // namespace hetero
