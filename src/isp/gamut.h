// Gamut mapping: returns sensor-native colours to a standard working gamut.
//
// The stage applies the device's colour-correction matrix (CCM, the inverse
// of its sensor spectral response) to land in the target primaries:
//   * kNone     - stage omitted: colours stay in the sensor-native space
//                 (the characteristic desaturation/shift of skipping CCM).
//   * kSrgb     - CCM into linear sRGB (Baseline column of Table 3).
//   * kProphoto - CCM into ProPhoto/ROMM primaries, *stored* as if sRGB —
//                 the extreme untagged-wide-gamut mismatch (Table 3 Opt 2).
//   * kDisplayP3 - CCM into Display-P3, stored untagged — the milder wide
//                 gamut flagship phones actually produce.
#pragma once

#include "image/color.h"
#include "image/image.h"

namespace hetero {

enum class GamutAlgo { kNone, kSrgb, kProphoto, kDisplayP3 };

const char* gamut_name(GamutAlgo algo);

/// Maps sensor-native linear RGB into the target gamut. `ccm` is the
/// device's sensor-to-sRGB colour-correction matrix.
Image gamut_map(const Image& img, GamutAlgo algo, const ColorMatrix& ccm);

}  // namespace hetero
