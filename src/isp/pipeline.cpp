#include "isp/pipeline.h"

#include <algorithm>
#include <sstream>

namespace hetero {

const char* isp_stage_name(IspStage stage) {
  switch (stage) {
    case IspStage::kDenoise: return "denoising";
    case IspStage::kDemosaic: return "demosaicing";
    case IspStage::kWhiteBalance: return "color-transformation(WB)";
    case IspStage::kGamut: return "gamut-mapping";
    case IspStage::kTone: return "tone-transformation";
    case IspStage::kCompress: return "image-compression";
  }
  return "?";
}

IspConfig IspConfig::baseline(const ColorMatrix& ccm) {
  IspConfig c;
  c.ccm = ccm;
  return c;
}

IspConfig IspConfig::with_stage_option(IspStage stage, int option) const {
  HS_CHECK(option == 1 || option == 2, "with_stage_option: option must be 1/2");
  IspConfig c = *this;
  switch (stage) {
    case IspStage::kDenoise:
      // Table 3: Option 1 = omit, Option 2 = wavelet-BayesShrink.
      c.denoise = option == 1 ? DenoiseAlgo::kNone : DenoiseAlgo::kWavelet;
      break;
    case IspStage::kDemosaic:
      // Demosaic cannot be omitted; Option 1 = pixel binning, 2 = AHD.
      c.demosaic =
          option == 1 ? DemosaicAlgo::kPixelBinning : DemosaicAlgo::kAHD;
      break;
    case IspStage::kWhiteBalance:
      // Option 1 = omit, Option 2 = white patch.
      c.wb = option == 1 ? WhiteBalanceAlgo::kNone
                         : WhiteBalanceAlgo::kWhitePatch;
      break;
    case IspStage::kGamut:
      // Option 1 = omit, Option 2 = ProPhoto.
      c.gamut = option == 1 ? GamutAlgo::kNone : GamutAlgo::kProphoto;
      break;
    case IspStage::kTone:
      // Option 1 = omit, Option 2 = gamma + tone equalization.
      c.tone = option == 1 ? ToneAlgo::kNone : ToneAlgo::kSrgbGammaEq;
      break;
    case IspStage::kCompress:
      // Option 1 = omit, Option 2 = JPEG quality 50.
      c.jpeg_quality = option == 1 ? 0 : 50;
      break;
  }
  return c;
}

std::string IspConfig::describe() const {
  std::ostringstream os;
  os << denoise_name(denoise) << " | " << demosaic_name(demosaic) << " | "
     << white_balance_name(wb) << " | " << gamut_name(gamut) << " | "
     << tone_name(tone) << " | jpeg="
     << (jpeg_quality > 0 && jpeg_quality < 100 ? std::to_string(jpeg_quality)
                                                : "off");
  return os.str();
}

Image run_isp(const RawImage& raw, const IspConfig& config) {
  HS_CHECK(!raw.empty(), "run_isp: empty RAW input");
  RawImage levelled = raw;
  if (config.black_level > 0.0f && config.black_level < 1.0f) {
    const float bl = config.black_level;
    const float scale = 1.0f / (1.0f - bl);
    float* p = levelled.data();
    const std::size_t n = levelled.height() * levelled.width();
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = std::max(0.0f, (p[i] - bl) * scale);
    }
  }
  RawImage clean = denoise(levelled, config.denoise);
  Image img = demosaic(clean, config.demosaic);
  img = white_balance(img, config.wb);
  img = gamut_map(img, config.gamut, config.ccm);
  img = tone_transform(img, config.tone);
  img.clamp01();
  img = jpeg_roundtrip(img, config.jpeg_quality);
  return img;
}

Image run_isp_resized(const RawImage& raw, const IspConfig& config,
                      std::size_t out_size) {
  Image img = run_isp(raw, config);
  if (img.height() != out_size || img.width() != out_size) {
    img = resize_bilinear(img, out_size, out_size);
  }
  return img;
}

}  // namespace hetero
