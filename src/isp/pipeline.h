// Composable ISP pipeline: RAW mosaic -> display-referred RGB image,
// mirroring Fig 1 step (2) of the paper:
//
//   Denoise -> Demosaic -> White balance -> Gamut map -> Tone -> Compress
//
// Every stage is swappable or omittable, which is exactly what Table 3 /
// Fig 3 ablate. IspConfig::ccm carries the device's colour-correction
// matrix (from SensorModel::ccm()) consumed by the gamut stage.
#pragma once

#include <string>

#include "image/color.h"
#include "image/image.h"
#include "image/raw_image.h"
#include "isp/compress.h"
#include "isp/demosaic.h"
#include "isp/denoise.h"
#include "isp/gamut.h"
#include "isp/tone.h"
#include "isp/white_balance.h"

namespace hetero {

/// The six ISP stages of Table 3 (used to index ablations).
enum class IspStage {
  kDenoise,
  kDemosaic,
  kWhiteBalance,
  kGamut,
  kTone,
  kCompress
};

const char* isp_stage_name(IspStage stage);

struct IspConfig {
  DenoiseAlgo denoise = DenoiseAlgo::kFBDD;
  DemosaicAlgo demosaic = DemosaicAlgo::kPPG;
  WhiteBalanceAlgo wb = WhiteBalanceAlgo::kGrayWorld;
  GamutAlgo gamut = GamutAlgo::kSrgb;
  ToneAlgo tone = ToneAlgo::kSrgbGamma;
  int jpeg_quality = 85;  ///< <= 0 disables compression
  ColorMatrix ccm = identity3();  ///< device colour-correction matrix
  /// Sensor black level (ADC pedestal) subtracted and rescaled before any
  /// other stage — the very first thing a real ISP does. RAW-domain
  /// training data keeps the pedestal (a per-device signature, Fig 2);
  /// processed data has it normalized away.
  float black_level = 0.0f;

  /// The paper's Table 3 Baseline column (FBDD, PPG, gray-world, sRGB,
  /// sRGB gamma, JPEG Q85) with the given CCM.
  static IspConfig baseline(const ColorMatrix& ccm = identity3());

  /// Returns a copy with one stage set to Table 3's Option 1 / Option 2.
  /// option must be 1 or 2; stages whose option is '-' (omit) map to the
  /// appropriate kNone/disabled value.
  IspConfig with_stage_option(IspStage stage, int option) const;

  /// Short human-readable description of the configuration.
  std::string describe() const;
};

/// Runs the full pipeline at native RAW resolution.
Image run_isp(const RawImage& raw, const IspConfig& config);

/// Runs the pipeline and resizes the result to out_size x out_size — the
/// "to tensor" step of Fig 1 (3) happens via Image::to_tensor afterwards.
Image run_isp_resized(const RawImage& raw, const IspConfig& config,
                      std::size_t out_size);

}  // namespace hetero
