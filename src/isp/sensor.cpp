#include "isp/sensor.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace hetero {

SensorModel::SensorModel(SensorConfig config) : config_(std::move(config)) {
  HS_CHECK(config_.raw_height % 2 == 0 && config_.raw_width % 2 == 0 &&
               config_.raw_height > 0 && config_.raw_width > 0,
           "SensorModel: mosaic dimensions must be positive and even");
  HS_CHECK(config_.bit_depth >= 4 && config_.bit_depth <= 16,
           "SensorModel: bit depth out of range");
}

RawImage SensorModel::capture(const Image& scene, Rng& rng) const {
  HS_CHECK(!scene.empty(), "SensorModel::capture: empty scene");
  const SensorConfig& c = config_;

  // (1) Optics: lens point-spread blur in the scene domain, then sample the
  // focal plane at sensor resolution.
  Image focal = gaussian_blur(scene, c.optics_blur_sigma);
  focal = resize_bilinear(focal, c.raw_height, c.raw_width);

  // (2) Spectral response: scene radiance to sensor-native channel signal.
  focal = apply_color_matrix(focal, c.spectral_response);

  // (2b) Per-shot illuminant / auto-white-point tint: a colour-temperature
  // factor tilting R against B, plus a smaller magenta-green shift. The
  // white-balance ISP stage is what removes this downstream.
  if (c.illuminant_variation > 0.0f) {
    const float temp =
        std::exp(static_cast<float>(rng.normal(0.0, c.illuminant_variation)));
    const float green = std::exp(static_cast<float>(
        rng.normal(0.0, c.illuminant_variation / 3.0)));
    for (std::size_t i = 0; i < focal.num_pixels(); ++i) {
      focal.data()[3 * i] *= temp;
      focal.data()[3 * i + 1] *= green;
      focal.data()[3 * i + 2] /= temp;
    }
  }

  RawImage raw(c.raw_height, c.raw_width, c.pattern);
  const float cy = (static_cast<float>(c.raw_height) - 1.0f) / 2.0f;
  const float cx = (static_cast<float>(c.raw_width) - 1.0f) / 2.0f;
  const float max_r2 = cy * cy + cx * cx;
  const float levels = static_cast<float>((1 << c.bit_depth) - 1);

  for (std::size_t y = 0; y < c.raw_height; ++y) {
    for (std::size_t x = 0; x < c.raw_width; ++x) {
      const int ch = raw.channel_at(y, x);
      float signal =
          focal.at(y, x, static_cast<std::size_t>(ch)) * c.exposure_gain;
      signal = std::max(signal, 0.0f);

      // (3) Vignetting: radial cos^4-style falloff.
      const float dy = static_cast<float>(y) - cy;
      const float dx = static_cast<float>(x) - cx;
      const float falloff = 1.0f - c.vignetting * (dy * dy + dx * dx) / max_r2;
      signal *= falloff;

      // (4) Noise: shot (signal-dependent) + read (additive).
      const float shot_sigma = c.shot_noise * std::sqrt(signal);
      signal += static_cast<float>(rng.normal(0.0, shot_sigma));
      signal += static_cast<float>(rng.normal(0.0, c.read_noise));

      // (5) Black level (ADC pedestal; gain maps full-scale signal to
      // full-well, so codes span [black_level, 1]), saturation clip, ADC
      // quantization.
      signal = std::clamp(signal * (1.0f - c.black_level) + c.black_level,
                          0.0f, 1.0f);
      signal = std::round(signal * levels) / levels;
      raw.at(y, x) = signal;
    }
  }
  return raw;
}

ColorMatrix SensorModel::ccm() const {
  // White-preserving colour-correction matrix: the inverse of the spectral
  // response with each row normalized to sum 1, so CCM * (1,1,1)^T =
  // (1,1,1)^T. Real ISPs factor colour correction this way — the CCM fixes
  // hue/saturation (channel mixing) while the *white point* (the sensor's
  // raw cast plus the illuminant) is the white-balance stage's job. Without
  // this factorization, skipping WB would be a no-op because the CCM would
  // silently fix the cast too.
  ColorMatrix inv = inverse3(config_.spectral_response);
  for (int r = 0; r < 3; ++r) {
    float row_sum = 0.0f;
    for (int c = 0; c < 3; ++c) row_sum += inv[static_cast<std::size_t>(r * 3 + c)];
    HS_CHECK(std::abs(row_sum) > 1e-6f, "SensorModel::ccm: degenerate row");
    for (int c = 0; c < 3; ++c) inv[static_cast<std::size_t>(r * 3 + c)] /= row_sum;
  }
  return inv;
}

}  // namespace hetero
