// Camera sensor model: scene radiance -> Bayer RAW mosaic.
//
// This is the "HW" half of system-induced data heterogeneity. Each device
// profile carries its own SensorConfig; two sensors photographing the same
// scene radiance produce different RAW data because of:
//   * spectral response   - a 3x3 matrix mapping scene-linear sRGB radiance
//                           into sensor-native channel responses (colour
//                           cast / crosstalk; differs per CMOS generation),
//   * optics              - lens PSF blur (focal length / aperture proxy),
//   * vignetting          - radial light falloff,
//   * exposure gain       - auto-exposure calibration differences,
//   * noise               - signal-dependent shot noise + additive read
//                           noise (pixel size proxy: small pixels -> more
//                           noise),
//   * black level + ADC quantization at the sensor bit depth,
//   * resolution          - mosaic size (binning-class sensors are smaller).
//
// The capture path mirrors Fig 1 step (1) of the paper.
#pragma once

#include "image/color.h"
#include "image/image.h"
#include "image/raw_image.h"

namespace hetero {

class Rng;

struct SensorConfig {
  std::size_t raw_height = 64;
  std::size_t raw_width = 64;
  BayerPattern pattern = BayerPattern::kRGGB;
  /// Scene-linear sRGB -> sensor-native RGB response.
  ColorMatrix spectral_response = identity3();
  float optics_blur_sigma = 0.4f;  ///< lens PSF, in scene pixels
  float vignetting = 0.10f;        ///< relative falloff at the corners
  float exposure_gain = 1.0f;
  float shot_noise = 0.010f;  ///< variance = shot_noise^2 * signal
  float read_noise = 0.002f;  ///< additive Gaussian stddev
  float black_level = 0.00f;  ///< pedestal added before quantization
  int bit_depth = 10;         ///< ADC levels = 2^bit_depth
  /// Per-capture illuminant / auto-white-point variation: each shot draws a
  /// random colour-temperature tint (log-normal, this sigma) that scales R
  /// up / B down (or vice versa) plus a smaller green shift. This is the
  /// cast the ISP's white-balance stage exists to remove — without a
  /// varying illuminant, omitting WB would be a no-op and Fig 3's dominant
  /// effect (56% degradation from skipping WB) could not reproduce.
  float illuminant_variation = 0.20f;
};

class SensorModel {
 public:
  explicit SensorModel(SensorConfig config);

  const SensorConfig& config() const { return config_; }

  /// Captures a linear-light scene image into a RAW Bayer mosaic.
  /// Deterministic given the rng state.
  RawImage capture(const Image& scene, Rng& rng) const;

  /// Colour-correction matrix the ISP should use to return sensor-native
  /// colours to sRGB: the inverse of the spectral response.
  ColorMatrix ccm() const;

 private:
  SensorConfig config_;
};

}  // namespace hetero
