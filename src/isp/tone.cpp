#include "isp/tone.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "image/color.h"
#include "image/fastpath.h"
#include "kernels/isa.h"

namespace hetero {
namespace {

/// Partial (30%) histogram equalization of the luminance channel, applied as
/// a per-pixel luminance gain so hue is preserved.
Image tone_equalize(const Image& img) {
  constexpr int kBins = 64;
  constexpr float kBlend = 0.3f;
  const std::size_t n = img.num_pixels();
  if (n == 0) return img;

  std::array<double, kBins> hist{};
  const float* data = img.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float y =
        luminance(data[3 * i], data[3 * i + 1], data[3 * i + 2]);
    const int bin = std::clamp(static_cast<int>(y * kBins), 0, kBins - 1);
    hist[static_cast<std::size_t>(bin)] += 1.0;
  }
  std::array<double, kBins> cdf{};
  double acc = 0.0;
  for (int b = 0; b < kBins; ++b) {
    acc += hist[static_cast<std::size_t>(b)];
    cdf[static_cast<std::size_t>(b)] = acc / static_cast<double>(n);
  }

  Image out = img;
  float* dst = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float y = luminance(dst[3 * i], dst[3 * i + 1], dst[3 * i + 2]);
    if (y <= 1e-6f) continue;
    const int bin = std::clamp(static_cast<int>(y * kBins), 0, kBins - 1);
    const float target =
        (1.0f - kBlend) * y +
        kBlend * static_cast<float>(cdf[static_cast<std::size_t>(bin)]);
    const float gain = target / y;
    for (std::size_t c = 0; c < 3; ++c) {
      dst[3 * i + c] = std::clamp(dst[3 * i + c] * gain, 0.0f, 1.0f);
    }
  }
  return out;
}

// ---------------------------------------------------------------- fast path

/// Second pass of tone_equalize over raw rows. The CDF is pre-cast to float
/// (same cast the scalar loop performs per pixel), every per-pixel chain is
/// untouched, so outputs are byte-identical.
HS_TILED_CLONES
void equalize_rows(float* HS_RESTRICT dst, std::size_t n,
                   const float* HS_RESTRICT cdf, int bins, float blend) {
  for (std::size_t i = 0; i < n; ++i) {
    const float y = luminance(dst[3 * i], dst[3 * i + 1], dst[3 * i + 2]);
    if (y <= 1e-6f) continue;
    const int bin = std::clamp(static_cast<int>(y * static_cast<float>(bins)),
                               0, bins - 1);
    const float target = (1.0f - blend) * y + blend * cdf[bin];
    const float gain = target / y;
    for (std::size_t c = 0; c < 3; ++c) {
      dst[3 * i + c] = std::clamp(dst[3 * i + c] * gain, 0.0f, 1.0f);
    }
  }
}

Image tone_equalize_fast(const Image& img) {
  constexpr int kBins = 64;
  constexpr float kBlend = 0.3f;
  const std::size_t n = img.num_pixels();
  if (n == 0) return img;

  // Histogram counts are sums of exact 1.0s — order-independent.
  std::array<double, kBins> hist{};
  const float* data = img.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float y = luminance(data[3 * i], data[3 * i + 1], data[3 * i + 2]);
    const int bin = std::clamp(static_cast<int>(y * kBins), 0, kBins - 1);
    hist[static_cast<std::size_t>(bin)] += 1.0;
  }
  float* cdf = img::scratch(img::kSlotTone, kBins);
  double acc = 0.0;
  for (int b = 0; b < kBins; ++b) {
    acc += hist[static_cast<std::size_t>(b)];
    cdf[b] = static_cast<float>(acc / static_cast<double>(n));
  }

  Image out = img;
  equalize_rows(out.data(), n, cdf, kBins, kBlend);
  return out;
}

}  // namespace

const char* tone_name(ToneAlgo algo) {
  switch (algo) {
    case ToneAlgo::kNone: return "none";
    case ToneAlgo::kSrgbGamma: return "srgb-gamma";
    case ToneAlgo::kSrgbGammaEq: return "srgb-gamma+equalization";
  }
  return "?";
}

Image tone_transform(const Image& img, ToneAlgo algo) {
  HS_CHECK(!img.empty(), "tone_transform: empty image");
  switch (algo) {
    case ToneAlgo::kNone:
      return img;
    case ToneAlgo::kSrgbGamma:
      return srgb_encode(img);
    case ToneAlgo::kSrgbGammaEq:
      return img::fast_path() ? tone_equalize_fast(srgb_encode(img))
                              : tone_equalize(srgb_encode(img));
  }
  return img;
}

}  // namespace hetero
