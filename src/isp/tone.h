// Tone transformation: linear-light -> display-referred encoding.
//
//   * kNone        - stage omitted: the tensor sees linear-light values
//                    (dark mid-tones; the paper's most damaging omission
//                    after white balance).
//   * kSrgbGamma   - standard sRGB gamma correction (Baseline).
//   * kSrgbGammaEq - sRGB gamma followed by partial luminance histogram
//                    equalization ("tone equalization", Option 2).
#pragma once

#include "image/image.h"

namespace hetero {

enum class ToneAlgo { kNone, kSrgbGamma, kSrgbGammaEq };

const char* tone_name(ToneAlgo algo);

Image tone_transform(const Image& img, ToneAlgo algo);

}  // namespace hetero
