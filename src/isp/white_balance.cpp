#include "isp/white_balance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "image/fastpath.h"
#include "kernels/isa.h"

namespace hetero {
namespace {

constexpr float kEps = 1e-6f;

/// Per-channel value at the given brightness quantile (0..1).
std::array<float, 3> channel_quantile(const Image& img, double q) {
  std::array<float, 3> out{1.0f, 1.0f, 1.0f};
  const std::size_t n = img.num_pixels();
  if (n == 0) return out;
  std::vector<float> vals(n);
  for (std::size_t c = 0; c < 3; ++c) {
    const float* data = img.data();
    for (std::size_t i = 0; i < n; ++i) vals[i] = data[3 * i + c];
    const std::size_t k = std::min(
        n - 1, static_cast<std::size_t>(q * static_cast<double>(n - 1)));
    std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(k),
                     vals.end());
    out[c] = vals[k];
  }
  return out;
}

// ---------------------------------------------------------------- fast path

/// channel_quantile over the arena: same k-th order statistic (value is
/// independent of how nth_element permutes the rest), zero allocation.
std::array<float, 3> channel_quantile_fast(const Image& img, double q) {
  std::array<float, 3> out{1.0f, 1.0f, 1.0f};
  const std::size_t n = img.num_pixels();
  if (n == 0) return out;
  float* HS_RESTRICT vals = img::scratch(img::kSlotQuantile, n);
  const float* HS_RESTRICT data = img.data();
  const std::size_t k = std::min(
      n - 1, static_cast<std::size_t>(q * static_cast<double>(n - 1)));
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < n; ++i) vals[i] = data[3 * i + c];
    std::nth_element(vals, vals + k, vals + n);
    out[c] = vals[k];
  }
  return out;
}

HS_TILED_CLONES
void apply_gains(float* HS_RESTRICT data, std::size_t n, float g0, float g1,
                 float g2) {
  for (std::size_t i = 0; i < n; ++i) {
    data[3 * i] *= g0;
    data[3 * i + 1] *= g1;
    data[3 * i + 2] *= g2;
  }
}

}  // namespace

const char* white_balance_name(WhiteBalanceAlgo algo) {
  switch (algo) {
    case WhiteBalanceAlgo::kNone: return "none";
    case WhiteBalanceAlgo::kGrayWorld: return "gray-world";
    case WhiteBalanceAlgo::kWhitePatch: return "white-patch";
  }
  return "?";
}

std::array<float, 3> white_balance_gains(const Image& img,
                                         WhiteBalanceAlgo algo) {
  switch (algo) {
    case WhiteBalanceAlgo::kNone:
      return {1.0f, 1.0f, 1.0f};
    case WhiteBalanceAlgo::kGrayWorld: {
      // Anchor to green: gains make all channel means equal the green mean.
      const auto means = img.channel_means();
      const float g = static_cast<float>(means[1]);
      return {g / std::max(static_cast<float>(means[0]), kEps), 1.0f,
              g / std::max(static_cast<float>(means[2]), kEps)};
    }
    case WhiteBalanceAlgo::kWhitePatch: {
      // Anchor to the 99th-percentile highlights ("the white patch").
      const auto peaks = img::fast_path() ? channel_quantile_fast(img, 0.99)
                                          : channel_quantile(img, 0.99);
      const float g = std::max(peaks[1], kEps);
      return {g / std::max(peaks[0], kEps), 1.0f,
              g / std::max(peaks[2], kEps)};
    }
  }
  return {1.0f, 1.0f, 1.0f};
}

Image white_balance(const Image& img, WhiteBalanceAlgo algo) {
  HS_CHECK(!img.empty(), "white_balance: empty image");
  if (algo == WhiteBalanceAlgo::kNone) return img;
  const auto gains = white_balance_gains(img, algo);
  Image out = img;
  float* data = out.data();
  const std::size_t n = out.num_pixels();
  if (img::fast_path()) {
    apply_gains(data, n, gains[0], gains[1], gains[2]);
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) data[3 * i + c] *= gains[c];
  }
  return out;
}

}  // namespace hetero
