// Colour (white balance) transformation — the ISP stage the paper found most
// influential (Fig 3: omitting WB degrades accuracy by 56%).
//
//   * kNone       - stage omitted.
//   * kGrayWorld  - scales channels so their means match the green mean
//                   (Ebner 2007), the Baseline column of Table 3.
//   * kWhitePatch - scales channels so the brightest-percentile values
//                   align (the "max-RGB" assumption).
#pragma once

#include "image/image.h"

namespace hetero {

enum class WhiteBalanceAlgo { kNone, kGrayWorld, kWhitePatch };

const char* white_balance_name(WhiteBalanceAlgo algo);

/// Applies white balance to a linear-light RGB image.
Image white_balance(const Image& img, WhiteBalanceAlgo algo);

/// The per-channel gains the algorithm would apply (exposed for tests).
std::array<float, 3> white_balance_gains(const Image& img,
                                         WhiteBalanceAlgo algo);

}  // namespace hetero
