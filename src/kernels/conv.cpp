// Batched grouped convolution on raw buffers.
//
// Patch-matrix ("cols") layout is kind-dependent and the backward pass must
// be called with the same kind that produced the buffer (src/nn/conv2d
// caches the kind used at forward):
//   kReference — (sample, group)-major blocks, each a contiguous
//                (patch, oh*ow) matrix: the seed cache, one slab per
//                (sample, group), driving one GEMM per sample per group.
//   kTiled/kFast — group-major blocks, each a batched (patch, n*oh*ow)
//                matrix whose column s*oh*ow + i is output pixel i of
//                sample s: one GEMM per group for the whole mini-batch.
//                Two layer shapes skip the unfold and retain the input
//                tensor verbatim instead ((n, in_c, h*w) order): 1x1/
//                stride-1/pad-0 layers run per-sample GEMMs straight on
//                the x/y/grad slabs, and depthwise layers (one input and
//                one output channel per group) convolve the image planes
//                directly.
//
// im2col/col2im here are copies/adjoint-scatters — exact in either
// direction — so both kinds share one strided implementation; the per-row
// valid-range precomputation only removes the per-pixel bounds branches,
// visiting elements in the seed loop order.
//
// The fast kind shares every structural path (and the cols layout) with
// tiled — only the GEMMs it dispatches to differ — so Conv2d's cached-kind
// contract holds for it unchanged.
//
// Forward activations, input gradients and bias gradients are bit-identical
// across the reference and tiled kinds: every structural fast path
// preserves the reference per-element chains
// (patch rows reduced in ascending order, col2im's add order, zero-weight
// rows skipped, padded taps contributing exact zeros). The weight gradient
// is the one tensor that drifts: the tiled kind reduces it in f32 over the
// whole mini-batch (vector-friendly association) where the reference takes
// one f64 dot per sample — the parity suite bounds the difference and
// DESIGN.md §9 calls it out.
#include "kernels/kernels.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "kernels/internal.h"
#include "kernels/isa.h"

namespace hetero::kernels {

// Blocked transpose of a (rows, ld) matrix into (ld, rows) order, so the
// weight-gradient GEMM (and the int8 eval path, which shares it through
// internal.h) can reduce over the batched column index with unit-stride
// loads.
HS_TILED_CLONES
void detail::transpose_to(const float* HS_RESTRICT src, std::size_t rows,
                          std::size_t ld, float* HS_RESTRICT dst) {
  constexpr std::size_t kB = 32;
  for (std::size_t i0 = 0; i0 < ld; i0 += kB) {
    const std::size_t ib = std::min(kB, ld - i0);
    for (std::size_t r0 = 0; r0 < rows; r0 += kB) {
      const std::size_t rb = std::min(kB, rows - r0);
      for (std::size_t i = i0; i < i0 + ib; ++i) {
        float* HS_RESTRICT drow = dst + i * rows + r0;
        for (std::size_t r = 0; r < rb; ++r) {
          drow[r] = src[(r0 + r) * ld + i];
        }
      }
    }
  }
}

namespace {

using detail::transpose_to;

// Workspace slot map: slot 0 is left to the caller (src/nn keeps the
// retained cols buffer there); forward/backward scratch lives above it.
constexpr std::size_t kSlotYt = 1;
constexpr std::size_t kSlotGo = 2;
constexpr std::size_t kSlotDcols = 3;
constexpr std::size_t kSlotCols = 4;   // non-retained (inference) cols
constexpr std::size_t kSlotColsT = 5;  // transposed cols for the dW GEMM

struct ValidRange {
  std::size_t lo, hi;  // valid output index range [lo, hi)
};

// Output positions o with 0 <= o*stride + k - pad < extent.
ValidRange valid_range(std::size_t out, std::size_t stride, std::size_t k,
                       std::size_t pad, std::size_t extent) {
  const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(k) -
                             static_cast<std::ptrdiff_t>(pad);
  const std::ptrdiff_t st = static_cast<std::ptrdiff_t>(stride);
  std::ptrdiff_t lo = 0;
  if (off < 0) lo = (-off + st - 1) / st;
  std::ptrdiff_t hi =
      (static_cast<std::ptrdiff_t>(extent) - off + st - 1) / st;
  lo = std::clamp<std::ptrdiff_t>(lo, 0, static_cast<std::ptrdiff_t>(out));
  hi = std::clamp<std::ptrdiff_t>(hi, lo, static_cast<std::ptrdiff_t>(out));
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

/// 1x1, stride-1, unpadded convolution: im2col is the identity reshape, so
/// the tiled kind bypasses it entirely (see the layout note above).
bool pointwise(const ConvShape& s) {
  return s.kernel == 1 && s.stride == 1 && s.pad == 0;
}

/// Depthwise layers (one input and one output channel per group) convolve
/// the image planes directly in the tiled kind. The last clause guarantees
/// the per-channel patch matrix is at least as large as the image plane, so
/// the retained-input copy fits in the caller's cols buffer.
bool depthwise_direct(const ConvShape& s) {
  return s.group_in_c() == 1 && s.group_out_c() == 1 && s.kernel > 1 &&
         s.kernel * s.kernel * s.out_h() * s.out_w() >= s.in_h * s.in_w;
}

/// One depthwise output plane, accumulated straight from the shifted input
/// rows: the same per-element chain (patch rows ascending, zero-weight rows
/// skipped, padded taps contributing exact zeros, bias added last) as
/// im2col + the reference GEMM + the bias pass, so the result is
/// bit-identical to the reference kind.
HS_TILED_CLONES
void depthwise_forward_plane(const ConvShape& s,
                             const float* HS_RESTRICT chan,
                             const float* HS_RESTRICT wrow, const float* bias,
                             float* HS_RESTRICT dst) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  std::fill(dst, dst + oh * ow, 0.0f);
  std::size_t row = 0;
  for (std::size_t ky = 0; ky < s.kernel; ++ky) {
    const ValidRange ry = valid_range(oh, s.stride, ky, s.pad, s.in_h);
    for (std::size_t kx = 0; kx < s.kernel; ++kx, ++row) {
      const float wv = wrow[row];
      if (wv == 0.0f) continue;  // the reference GEMM's zero-skip
      const ValidRange rx = valid_range(ow, s.stride, kx, s.pad, s.in_w);
      const std::ptrdiff_t off_x = static_cast<std::ptrdiff_t>(kx) -
                                   static_cast<std::ptrdiff_t>(s.pad);
      for (std::size_t oy = ry.lo; oy < ry.hi; ++oy) {
        const std::size_t iy = oy * s.stride + ky - s.pad;
        const float* HS_RESTRICT srow = chan + iy * s.in_w;
        float* HS_RESTRICT orow = dst + oy * ow;
        if (s.stride == 1) {
          const float* HS_RESTRICT src =
              srow + static_cast<std::ptrdiff_t>(rx.lo) + off_x;
          const std::size_t len = rx.hi - rx.lo;
          for (std::size_t i = 0; i < len; ++i) {
            orow[rx.lo + i] += wv * src[i];
          }
        } else {
          const float* HS_RESTRICT src =
              srow + static_cast<std::ptrdiff_t>(rx.lo * s.stride) + off_x;
          float* HS_RESTRICT op = orow + rx.lo;
          const std::size_t st = s.stride, len = rx.hi - rx.lo;
          for (std::size_t i = 0; i < len; ++i) op[i] += wv * src[i * st];
        }
      }
    }
  }
  if (bias) {
    const float bv = *bias;
    for (std::size_t i = 0; i < oh * ow; ++i) dst[i] += bv;
  }
}

/// One depthwise plane of the backward pass. dX replays col2im's exact add
/// order (patch row outer, output pixel inner; zero-weight rows contribute
/// exact zeros and are skipped), so grad_in is bit-identical to the
/// reference kind. dW reduces each patch tap in four striped f32 lanes
/// summed at the end — the tiled weight-gradient reassociation.
HS_TILED_CLONES
void depthwise_backward_plane(const ConvShape& s, const float* HS_RESTRICT go,
                              const float* HS_RESTRICT chan,
                              const float* HS_RESTRICT wrow,
                              float* HS_RESTRICT gwrow,
                              float* HS_RESTRICT gin) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  std::size_t row = 0;
  for (std::size_t ky = 0; ky < s.kernel; ++ky) {
    const ValidRange ry = valid_range(oh, s.stride, ky, s.pad, s.in_h);
    for (std::size_t kx = 0; kx < s.kernel; ++kx, ++row) {
      const ValidRange rx = valid_range(ow, s.stride, kx, s.pad, s.in_w);
      const std::ptrdiff_t off_x = static_cast<std::ptrdiff_t>(kx) -
                                   static_cast<std::ptrdiff_t>(s.pad);
      const float wv = wrow[row];
      float lanes[4] = {0.0f};
      for (std::size_t oy = ry.lo; oy < ry.hi; ++oy) {
        const std::size_t iy = oy * s.stride + ky - s.pad;
        const float* HS_RESTRICT grow = go + oy * ow;
        const float* HS_RESTRICT srow = chan + iy * s.in_w;
        float* HS_RESTRICT drow = gin + iy * s.in_w;
        const std::size_t len = rx.hi - rx.lo;
        if (s.stride == 1) {
          const std::ptrdiff_t o =
              static_cast<std::ptrdiff_t>(rx.lo) + off_x;
          const float* HS_RESTRICT sp = srow + o;
          float* HS_RESTRICT dp = drow + o;
          const float* HS_RESTRICT gp = grow + rx.lo;
          std::size_t i = 0;
          for (; i + 4 <= len; i += 4) {
            for (std::size_t l = 0; l < 4; ++l) {
              lanes[l] += gp[i + l] * sp[i + l];
            }
          }
          for (; i < len; ++i) lanes[i & 3] += gp[i] * sp[i];
          if (wv != 0.0f) {
            for (std::size_t j = 0; j < len; ++j) dp[j] += wv * gp[j];
          }
        } else {
          const float* HS_RESTRICT sp =
              srow + static_cast<std::ptrdiff_t>(rx.lo * s.stride) + off_x;
          float* HS_RESTRICT dp =
              drow + static_cast<std::ptrdiff_t>(rx.lo * s.stride) + off_x;
          const float* HS_RESTRICT gp = grow + rx.lo;
          const std::size_t st = s.stride;
          std::size_t i = 0;
          for (; i + 4 <= len; i += 4) {
            for (std::size_t l = 0; l < 4; ++l) {
              lanes[l] += gp[i + l] * sp[(i + l) * st];
            }
          }
          for (; i < len; ++i) lanes[i & 3] += gp[i] * sp[i * st];
          if (wv != 0.0f) {
            for (std::size_t j = 0; j < len; ++j) dp[j * st] += wv * gp[j];
          }
        }
      }
      gwrow[row] += ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
    }
  }
}

// ------------------------------------------- fixed-shape depthwise planes --
//
// The depthwise layers of the paper models are tiny (4-16 px planes), so
// runtime-length inner loops spend more time on bookkeeping than on math.
// For the handful of (out_w, kernel, stride) combinations those models
// produce, the templates below compile fully unrolled tap loops with
// register accumulators over a zero-padded stack copy of the plane.
//
// Padding keeps this bit-identical to the reference chain: every tap is
// applied at full width, with halo taps contributing the same exact zeros
// the reference reads out of its patch matrix. Adding (or skipping) signed
// zeros cannot diverge either, because an accumulator that starts at +0
// and only ever adds terms can never become -0.
constexpr std::size_t kDwPadPlane = 18 * 18;  // largest padded plane (16+2)^2

template <std::size_t OW, std::size_t K, std::size_t ST>
inline void dw_fwd_body(const ConvShape& s, const float* HS_RESTRICT chan,
                        const float* HS_RESTRICT wrow, const float* bias,
                        float* HS_RESTRICT dst) {
  const std::size_t p = s.pad, ih = s.in_h, iw = s.in_w, oh = s.out_h();
  const std::size_t pw = iw + 2 * p, ph = ih + 2 * p;
  float xpad[kDwPadPlane];
  std::fill(xpad, xpad + ph * pw, 0.0f);
  for (std::size_t r = 0; r < ih; ++r) {
    std::copy(chan + r * iw, chan + (r + 1) * iw, xpad + (r + p) * pw + p);
  }
  for (std::size_t oy = 0; oy < oh; ++oy) {
    const float* HS_RESTRICT base = xpad + oy * ST * pw;
    float acc[OW] = {};
    for (std::size_t ky = 0; ky < K; ++ky) {
      const float* HS_RESTRICT r0 = base + ky * pw;
      for (std::size_t kx = 0; kx < K; ++kx) {
        const float wv = wrow[ky * K + kx];
        for (std::size_t l = 0; l < OW; ++l) acc[l] += wv * r0[l * ST + kx];
      }
    }
    float* HS_RESTRICT orow = dst + oy * OW;
    if (bias) {
      const float bv = *bias;
      for (std::size_t l = 0; l < OW; ++l) orow[l] = acc[l] + bv;
    } else {
      for (std::size_t l = 0; l < OW; ++l) orow[l] = acc[l];
    }
  }
}

template <std::size_t OW, std::size_t K, std::size_t ST>
inline void dw_bwd_body(const ConvShape& s, const float* HS_RESTRICT go,
                        const float* HS_RESTRICT chan,
                        const float* HS_RESTRICT wrow,
                        float* HS_RESTRICT gwrow, float* HS_RESTRICT gin) {
  const std::size_t p = s.pad, ih = s.in_h, iw = s.in_w, oh = s.out_h();
  const std::size_t pw = iw + 2 * p, ph = ih + 2 * p;
  float xpad[kDwPadPlane], gpad[kDwPadPlane];
  std::fill(xpad, xpad + ph * pw, 0.0f);
  std::fill(gpad, gpad + ph * pw, 0.0f);
  for (std::size_t r = 0; r < ih; ++r) {
    std::copy(chan + r * iw, chan + (r + 1) * iw, xpad + (r + p) * pw + p);
  }
  // Tap-major, like col2im, so the dX chains match the reference exactly;
  // dW reduces per-tap lane accumulators (the weight-gradient drift).
  for (std::size_t ky = 0; ky < K; ++ky) {
    for (std::size_t kx = 0; kx < K; ++kx) {
      const float wv = wrow[ky * K + kx];
      float lanes[OW] = {};
      for (std::size_t oy = 0; oy < oh; ++oy) {
        const float* HS_RESTRICT grow = go + oy * OW;
        const float* HS_RESTRICT xr = xpad + (oy * ST + ky) * pw + kx;
        float* HS_RESTRICT gr = gpad + (oy * ST + ky) * pw + kx;
        for (std::size_t l = 0; l < OW; ++l) {
          lanes[l] += grow[l] * xr[l * ST];
          gr[l * ST] += wv * grow[l];
        }
      }
      float tap = 0.0f;
      for (std::size_t l = 0; l < OW; ++l) tap += lanes[l];
      gwrow[ky * K + kx] += tap;
    }
  }
  // Drop the halo; the interior chains equal col2im's adds onto the
  // zero-initialized grad_in, so a straight copy preserves every bit.
  for (std::size_t r = 0; r < ih; ++r) {
    const float* HS_RESTRICT src = gpad + (r + p) * pw + p;
    float* HS_RESTRICT drow = gin + r * iw;
    for (std::size_t c = 0; c < iw; ++c) drow[c] = src[c];
  }
}

using DwFwdFn = void (*)(const ConvShape&, const float*, const float*,
                         const float*, float*);
using DwBwdFn = void (*)(const ConvShape&, const float*, const float*,
                         const float*, float*, float*);

#define HS_DW_FIXED(OW, K, ST)                                              \
  HS_TILED_CLONES void dw_fwd_##OW##_##K##_##ST(                            \
      const ConvShape& s, const float* chan, const float* wrow,             \
      const float* bias, float* dst) {                                      \
    dw_fwd_body<OW, K, ST>(s, chan, wrow, bias, dst);                       \
  }                                                                         \
  HS_TILED_CLONES void dw_bwd_##OW##_##K##_##ST(                            \
      const ConvShape& s, const float* go, const float* chan,               \
      const float* wrow, float* gwrow, float* gin) {                        \
    dw_bwd_body<OW, K, ST>(s, go, chan, wrow, gwrow, gin);                  \
  }

HS_DW_FIXED(16, 3, 1)
HS_DW_FIXED(8, 3, 1)
HS_DW_FIXED(8, 3, 2)
HS_DW_FIXED(4, 3, 1)
HS_DW_FIXED(4, 3, 2)
HS_DW_FIXED(4, 5, 2)

#undef HS_DW_FIXED

/// Fixed-shape plane kernels for the square depthwise geometries the paper
/// models use; nullptr when no specialization fits (the strided generic
/// planes handle everything else).
std::pair<DwFwdFn, DwBwdFn> dw_fixed(const ConvShape& s) {
  const std::size_t ow = s.out_w();
  if (s.out_h() != ow ||
      (s.in_h + 2 * s.pad) * (s.in_w + 2 * s.pad) > kDwPadPlane) {
    return {nullptr, nullptr};
  }
  if (s.kernel == 3 && s.stride == 1) {
    if (ow == 16) return {dw_fwd_16_3_1, dw_bwd_16_3_1};
    if (ow == 8) return {dw_fwd_8_3_1, dw_bwd_8_3_1};
    if (ow == 4) return {dw_fwd_4_3_1, dw_bwd_4_3_1};
  }
  if (s.kernel == 3 && s.stride == 2) {
    if (ow == 8) return {dw_fwd_8_3_2, dw_bwd_8_3_2};
    if (ow == 4) return {dw_fwd_4_3_2, dw_bwd_4_3_2};
  }
  if (s.kernel == 5 && s.stride == 2 && ow == 4) {
    return {dw_fwd_4_5_2, dw_bwd_4_5_2};
  }
  return {nullptr, nullptr};
}

void add_bias_channel_sums(const ConvShape& s, const float* grad_out,
                           float* gb) {
  const std::size_t ohow = s.out_h() * s.out_w();
  for (std::size_t smp = 0; smp < s.n; ++smp) {
    for (std::size_t c = 0; c < s.out_c; ++c) {
      const float* src = grad_out + ((smp * s.out_c) + c) * ohow;
      double acc = 0.0;
      for (std::size_t i = 0; i < ohow; ++i) acc += src[i];
      gb[c] += static_cast<float>(acc);
    }
  }
}

// Shared im2col/col2im bodies. The public entry points below compile on the
// baseline ISA (the reference kind uses them as the seed did); the tiled
// conv paths call the *_tiled twins, whose runtime-dispatched clones
// vectorize the same copies/adjoint scatters — pure data movement, so the
// results are identical whichever twin runs.
inline void im2col_impl(const float* img, const ConvShape& s, std::size_t c0,
                        float* dst, std::size_t ld, std::size_t col0) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const std::size_t gic = s.group_in_c();
  std::size_t row = 0;
  for (std::size_t c = 0; c < gic; ++c) {
    const float* chan = img + (c0 + c) * s.in_h * s.in_w;
    for (std::size_t ky = 0; ky < s.kernel; ++ky) {
      const ValidRange ry = valid_range(oh, s.stride, ky, s.pad, s.in_h);
      for (std::size_t kx = 0; kx < s.kernel; ++kx, ++row) {
        const ValidRange rx = valid_range(ow, s.stride, kx, s.pad, s.in_w);
        const std::ptrdiff_t off_x = static_cast<std::ptrdiff_t>(kx) -
                                     static_cast<std::ptrdiff_t>(s.pad);
        float* out_row = dst + row * ld + col0;
        if (s.stride == 1 && s.in_w == ow && ry.lo < ry.hi) {
          // Same row stride on both sides (k = 2*pad + 1), so the valid
          // rows form one contiguous span in the image and in the patch
          // row alike: copy them in a single block, then zero the edge
          // columns the block brought along from neighbouring image rows.
          // Same values as the per-row path, ~one memcpy instead of oh.
          const std::size_t iy0 = ry.lo * s.stride + ky - s.pad;
          const float* src = chan + iy0 * s.in_w +
                             static_cast<std::ptrdiff_t>(rx.lo) + off_x;
          float* blk = out_row + ry.lo * ow + rx.lo;
          const std::size_t len =
              (ry.hi - ry.lo - 1) * ow + (rx.hi - rx.lo);
          std::copy(src, src + len, blk);
          std::fill(out_row, out_row + ry.lo * ow + rx.lo, 0.0f);
          std::fill(out_row + (ry.hi - 1) * ow + rx.hi, out_row + oh * ow,
                    0.0f);
          if (rx.lo > 0 || rx.hi < ow) {
            for (std::size_t oy = ry.lo; oy + 1 < ry.hi; ++oy) {
              float* edge = out_row + oy * ow + rx.hi;
              std::fill(edge, edge + (ow - (rx.hi - rx.lo)), 0.0f);
            }
          }
          continue;
        }
        for (std::size_t oy = 0; oy < oh; ++oy) {
          float* orow = out_row + oy * ow;
          if (oy < ry.lo || oy >= ry.hi) {
            std::fill(orow, orow + ow, 0.0f);
            continue;
          }
          const std::size_t iy = oy * s.stride + ky - s.pad;
          const float* srow = chan + iy * s.in_w;
          std::fill(orow, orow + rx.lo, 0.0f);
          if (s.stride == 1) {
            const float* src = srow + static_cast<std::ptrdiff_t>(rx.lo) +
                               off_x;
            std::copy(src, src + (rx.hi - rx.lo), orow + rx.lo);
          } else {
            for (std::size_t ox = rx.lo; ox < rx.hi; ++ox) {
              orow[ox] =
                  srow[static_cast<std::ptrdiff_t>(ox * s.stride) + off_x];
            }
          }
          std::fill(orow + rx.hi, orow + ow, 0.0f);
        }
      }
    }
  }
}

inline void col2im_impl(const float* src, const ConvShape& s, std::size_t c0,
                        std::size_t ld, std::size_t col0, float* img) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const std::size_t gic = s.group_in_c();
  std::size_t row = 0;
  for (std::size_t c = 0; c < gic; ++c) {
    float* chan = img + (c0 + c) * s.in_h * s.in_w;
    for (std::size_t ky = 0; ky < s.kernel; ++ky) {
      const ValidRange ry = valid_range(oh, s.stride, ky, s.pad, s.in_h);
      for (std::size_t kx = 0; kx < s.kernel; ++kx, ++row) {
        const ValidRange rx = valid_range(ow, s.stride, kx, s.pad, s.in_w);
        const std::ptrdiff_t off_x = static_cast<std::ptrdiff_t>(kx) -
                                     static_cast<std::ptrdiff_t>(s.pad);
        const float* in_row = src + row * ld + col0;
        for (std::size_t oy = ry.lo; oy < ry.hi; ++oy) {
          const std::size_t iy = oy * s.stride + ky - s.pad;
          float* drow = chan + iy * s.in_w;
          const float* irow = in_row + oy * ow;
          for (std::size_t ox = rx.lo; ox < rx.hi; ++ox) {
            drow[static_cast<std::ptrdiff_t>(ox * s.stride) + off_x] +=
                irow[ox];
          }
        }
      }
    }
  }
}

HS_TILED_CLONES
void im2col_tiled(const float* img, const ConvShape& s, std::size_t c0,
                  float* dst, std::size_t ld, std::size_t col0) {
  im2col_impl(img, s, c0, dst, ld, col0);
}

HS_TILED_CLONES
void col2im_tiled_add(const float* src, const ConvShape& s, std::size_t c0,
                      std::size_t ld, std::size_t col0, float* img) {
  col2im_impl(src, s, c0, ld, col0, img);
}

}  // namespace

void im2col_strided(const float* img, const ConvShape& s, std::size_t c0,
                    float* dst, std::size_t ld, std::size_t col0) {
  im2col_impl(img, s, c0, dst, ld, col0);
}

void col2im_strided_add(const float* src, const ConvShape& s, std::size_t c0,
                        std::size_t ld, std::size_t col0, float* img) {
  col2im_impl(src, s, c0, ld, col0, img);
}

void conv2d_forward(KernelKind kind, const ConvShape& s, const float* x,
                    const float* w, const float* bias, float* y,
                    float* cols, Workspace& ws) {
  const std::size_t ohow = s.out_h() * s.out_w();
  const std::size_t gic = s.group_in_c(), goc = s.group_out_c();
  const std::size_t patch = s.patch();
  const std::size_t img_stride = s.in_c * s.in_h * s.in_w;
  // A caller-provided cols slab means a training forward: backward will
  // replay from it, so the direct (pointwise/depthwise) paths must retain
  // the input there. Eval forwards pass none — skip that copy entirely.
  const bool retain = cols != nullptr;
  if (!cols) cols = ws.get(kSlotCols, s.cols_size());

  if (kind == KernelKind::kReference) {
    // Seed path: one im2col + one GEMM per sample per group, with fresh
    // weight/output slabs per call — the parity and performance oracle.
    for (std::size_t smp = 0; smp < s.n; ++smp) {
      for (std::size_t grp = 0; grp < s.groups; ++grp) {
        float* cols_sg = cols + (smp * s.groups + grp) * patch * ohow;
        im2col_strided(x + smp * img_stride, s, grp * gic, cols_sg, ohow, 0);
        std::vector<float> wg(w + grp * goc * patch,
                              w + (grp + 1) * goc * patch);
        std::vector<float> out(goc * ohow);
        gemm_nn(kind, wg.data(), cols_sg, out.data(), goc, patch, ohow,
                false);
        std::copy(out.begin(), out.end(),
                  y + ((smp * s.out_c) + grp * goc) * ohow);
      }
      if (bias) {
        for (std::size_t c = 0; c < s.out_c; ++c) {
          float* dst = y + ((smp * s.out_c) + c) * ohow;
          for (std::size_t i = 0; i < ohow; ++i) dst[i] += bias[c];
        }
      }
    }
    return;
  }

  if (pointwise(s)) {
    // Retain the input verbatim for backward; run the GEMMs directly on
    // the x/y slabs (contiguous per sample per group), no gather/scatter.
    // Samples write disjoint y slabs, so the intra-op split over them is
    // bit-exact for any worker count.
    if (retain) std::copy(x, x + s.n * img_stride, cols);
    detail::intra_for(
        s.n, 2.0 * static_cast<double>(s.n) * s.out_c * gic * ohow,
        [&](std::size_t smp) {
          for (std::size_t grp = 0; grp < s.groups; ++grp) {
            gemm_nn(kind, w + grp * goc * gic,
                    x + smp * img_stride + grp * gic * ohow,
                    y + ((smp * s.out_c) + grp * goc) * ohow, goc, gic, ohow,
                    false);
          }
          if (bias) {
            for (std::size_t c = 0; c < s.out_c; ++c) {
              float* dst = y + ((smp * s.out_c) + c) * ohow;
              for (std::size_t i = 0; i < ohow; ++i) dst[i] += bias[c];
            }
          }
        });
    return;
  }

  if (depthwise_direct(s)) {
    // Retain the input verbatim (backward reads it for dW) and convolve
    // each plane directly — no patch matrix, no per-group GEMM setup.
    // Every (sample, channel) plane is independent.
    if (retain) std::copy(x, x + s.n * img_stride, cols);
    const std::size_t ihw = s.in_h * s.in_w;
    const DwFwdFn fixed = dw_fixed(s).first;
    const DwFwdFn plane = fixed ? fixed : depthwise_forward_plane;
    detail::intra_for(
        s.n * s.out_c,
        2.0 * static_cast<double>(s.n) * s.out_c * patch * ohow,
        [&](std::size_t t) {
          const std::size_t smp = t / s.out_c, c = t % s.out_c;
          plane(s, x + smp * img_stride + c * ihw, w + c * patch,
                bias ? bias + c : nullptr, y + ((smp * s.out_c) + c) * ohow);
        });
    return;
  }

  const std::size_t ld = s.n * ohow;
  for (std::size_t grp = 0; grp < s.groups; ++grp) {
    float* cols_g = cols + grp * patch * ld;
    // Samples own disjoint column ranges of the group's patch matrix.
    detail::intra_for(s.n, 2.0 * static_cast<double>(patch) * ld,
                      [&](std::size_t smp) {
                        im2col_tiled(x + smp * img_stride, s, grp * gic,
                                     cols_g, ld, smp * ohow);
                      });
    float* yt = ws.get(kSlotYt, goc * ld);
    gemm_nn(kind, w + grp * goc * patch, cols_g, yt, goc, patch, ld, false);
    // Scatter the (goc, n*oh*ow) result into (n, out_c, oh, ow) order,
    // fusing the bias add (same per-element arithmetic as the seed's
    // copy-then-add).
    for (std::size_t oc = 0; oc < goc; ++oc) {
      const std::size_t ch = grp * goc + oc;
      const float* src = yt + oc * ld;
      for (std::size_t smp = 0; smp < s.n; ++smp) {
        float* dst = y + ((smp * s.out_c) + ch) * ohow;
        const float* ssrc = src + smp * ohow;
        if (bias) {
          const float bv = bias[ch];
          for (std::size_t i = 0; i < ohow; ++i) dst[i] = ssrc[i] + bv;
        } else {
          std::copy(ssrc, ssrc + ohow, dst);
        }
      }
    }
  }
}

void conv2d_backward(KernelKind kind, const ConvShape& s,
                     const float* grad_out, const float* w, const float* cols,
                     float* gw, float* gb, float* grad_in, Workspace& ws) {
  const std::size_t ohow = s.out_h() * s.out_w();
  const std::size_t gic = s.group_in_c(), goc = s.group_out_c();
  const std::size_t patch = s.patch();
  const std::size_t img_stride = s.in_c * s.in_h * s.in_w;

  if (kind == KernelKind::kReference) {
    for (std::size_t smp = 0; smp < s.n; ++smp) {
      for (std::size_t grp = 0; grp < s.groups; ++grp) {
        const float* go =
            grad_out + ((smp * s.out_c) + grp * goc) * ohow;  // (goc, ohow)
        const float* cols_sg =
            cols + (smp * s.groups + grp) * patch * ohow;
        // dW_g += go * cols^T -> (goc, patch), via a fresh slab (seed
        // rounding: per-sample reduction, then one f32 add per sample).
        std::vector<float> dwg(goc * patch);
        gemm_nt(kind, go, cols_sg, dwg.data(), goc, ohow, patch, false);
        float* gws = gw + grp * goc * patch;
        for (std::size_t i = 0; i < goc * patch; ++i) gws[i] += dwg[i];
        // dCols = W_g^T * go -> (patch, ohow), folded straight into the
        // grad_in slab (bit-identical to folding into a zeroed scratch
        // image and adding it on).
        std::vector<float> wg(w + grp * goc * patch,
                              w + (grp + 1) * goc * patch);
        std::vector<float> dcols(patch * ohow);
        gemm_tn(kind, wg.data(), go, dcols.data(), goc, patch, ohow, false);
        col2im_strided_add(dcols.data(), s, grp * gic, ohow, 0,
                           grad_in + smp * img_stride);
      }
    }
    if (gb) add_bias_channel_sums(s, grad_out, gb);
    return;
  }

  if (pointwise(s)) {
    // cols holds the forward input verbatim. Per-sample GEMMs straight on
    // the slabs: dW reduces in f32 over a transposed input pack (the tiled
    // weight-gradient reassociation), and dX folds into the
    // zero-initialized grad_in (the 1x1 col2im is the identity add).
    for (std::size_t smp = 0; smp < s.n; ++smp) {
      for (std::size_t grp = 0; grp < s.groups; ++grp) {
        const float* go = grad_out + ((smp * s.out_c) + grp * goc) * ohow;
        const float* xs = cols + smp * img_stride + grp * gic * ohow;
        if (kind == KernelKind::kFast) {
          // The fast nt kernel packs its own B tiles, so the explicit
          // transpose below is pure overhead for it. Same ascending
          // reduction over oh*ow per element; FMA drift only.
          gemm_nt(kind, go, xs, gw + grp * goc * gic, goc, ohow, gic, true);
        } else {
          float* xt = ws.get(kSlotColsT, ohow * gic);
          transpose_to(xs, gic, ohow, xt);
          gemm_nn(kind, go, xt, gw + grp * goc * gic, goc, ohow, gic, true);
        }
        gemm_tn(kind, w + grp * goc * gic, go,
                grad_in + smp * img_stride + grp * gic * ohow, goc, gic,
                ohow, true);
      }
    }
    if (gb) add_bias_channel_sums(s, grad_out, gb);
    return;
  }

  if (depthwise_direct(s)) {
    // cols holds the forward input verbatim; one direct pass per plane.
    // Split over channels, not samples: each channel's dW taps accumulate
    // across the batch, so one task owns a channel and walks its samples in
    // ascending order — the same per-tap chain as the serial smp-outer
    // loop, which only interleaved independent channels differently.
    const std::size_t ihw = s.in_h * s.in_w;
    const DwBwdFn fixed = dw_fixed(s).second;
    const DwBwdFn plane = fixed ? fixed : depthwise_backward_plane;
    detail::intra_for(
        s.out_c, 4.0 * static_cast<double>(s.n) * s.out_c * patch * ohow,
        [&](std::size_t c) {
          for (std::size_t smp = 0; smp < s.n; ++smp) {
            plane(s, grad_out + ((smp * s.out_c) + c) * ohow,
                  cols + smp * img_stride + c * ihw, w + c * patch,
                  gw + c * patch, grad_in + smp * img_stride + c * ihw);
          }
        });
    if (gb) add_bias_channel_sums(s, grad_out, gb);
    return;
  }

  const std::size_t ld = s.n * ohow;
  for (std::size_t grp = 0; grp < s.groups; ++grp) {
    // Gather the group's gradient rows into batched (goc, n*oh*ow) order.
    float* go_b = ws.get(kSlotGo, goc * ld);
    for (std::size_t oc = 0; oc < goc; ++oc) {
      for (std::size_t smp = 0; smp < s.n; ++smp) {
        const float* src =
            grad_out + ((smp * s.out_c) + grp * goc + oc) * ohow;
        std::copy(src, src + ohow, go_b + oc * ld + smp * ohow);
      }
    }
    const float* cols_g = cols + grp * patch * ld;
    // dW_g += go_b · cols_g^T, computed as an f32 GEMM against the packed
    // transpose — one reduction over the whole batch per element, in
    // ascending column order (the tiled weight-gradient reassociation).
    // The fast nt kernel packs its own B tiles, so it takes cols_g
    // directly and the explicit transpose is skipped.
    if (kind == KernelKind::kFast) {
      gemm_nt(kind, go_b, cols_g, gw + grp * goc * patch, goc, ld, patch,
              true);
    } else {
      float* colst = ws.get(kSlotColsT, ld * patch);
      transpose_to(cols_g, patch, ld, colst);
      gemm_nn(kind, go_b, colst, gw + grp * goc * patch, goc, ld, patch,
              true);
    }
    // dCols = W_g^T · go_b, folded per sample straight into grad_in.
    float* dcols = ws.get(kSlotDcols, patch * ld);
    gemm_tn(kind, w + grp * goc * patch, go_b, dcols, goc, patch, ld, false);
    // Each sample folds its own column range into its own grad_in slab.
    detail::intra_for(s.n, 2.0 * static_cast<double>(patch) * ld,
                      [&](std::size_t smp) {
                        col2im_tiled_add(dcols, s, grp * gic, ld, smp * ohow,
                                         grad_in + smp * img_stride);
                      });
  }
  if (gb) add_bias_channel_sums(s, grad_out, gb);
}

}  // namespace hetero::kernels
