// GEMM kernels. The reference variants are the seed repository's scalar
// loops; the tiled variants block for cache and tile registers while
// reducing over k in increasing order with the same accumulation precision,
// which makes every tiled GEMM bit-identical to its reference twin for
// finite inputs (the parity suite asserts exact equality).
#include "kernels/kernels.h"

#include <algorithm>

#include "kernels/isa.h"

namespace hetero::kernels {

namespace {

// Cache-block sizes (floats). The j block keeps one B panel plus the active
// C rows streaming through L1/L2; the k block bounds the panel height.
constexpr std::size_t kJBlock = 1024;
constexpr std::size_t kKBlock = 256;

// ------------------------------------------------------------- reference --

void gemm_nn_reference(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n) {
  // i-k-j loop order keeps the inner loop contiguous over B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_nt_reference(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n,
                       bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      float* dst = c + i * n + j;
      if (accumulate) {
        *dst += static_cast<float>(s);
      } else {
        *dst = static_cast<float>(s);
      }
    }
  }
}

void gemm_tn_reference(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = c + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// ----------------------------------------------------------------- tiled --

// C += A·B restricted to rows [i, i+rows) and the (k0, j0) block. Four
// independent C-row accumulators per pass share each B row; every C element
// still receives its k contributions in increasing order, in f32 — the same
// per-element arithmetic as the reference i-k-j loop.
HS_TILED_CLONES
void gemm_nn_block(const float* HS_RESTRICT a, const float* HS_RESTRICT b,
                   float* HS_RESTRICT c, std::size_t m, std::size_t k,
                   std::size_t n, std::size_t k0, std::size_t kb,
                   std::size_t j0, std::size_t jb) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    float* HS_RESTRICT c0 = c + (i + 0) * n + j0;
    float* HS_RESTRICT c1 = c + (i + 1) * n + j0;
    float* HS_RESTRICT c2 = c + (i + 2) * n + j0;
    float* HS_RESTRICT c3 = c + (i + 3) * n + j0;
    for (std::size_t kk = k0; kk < k0 + kb; ++kk) {
      const float a0 = a[(i + 0) * k + kk];
      const float a1 = a[(i + 1) * k + kk];
      const float a2 = a[(i + 2) * k + kk];
      const float a3 = a[(i + 3) * k + kk];
      const float* HS_RESTRICT br = b + kk * n + j0;
      for (std::size_t j = 0; j < jb; ++j) {
        c0[j] += a0 * br[j];
        c1[j] += a1 * br[j];
        c2[j] += a2 * br[j];
        c3[j] += a3 * br[j];
      }
    }
  }
  for (; i < m; ++i) {
    float* HS_RESTRICT crow = c + i * n + j0;
    for (std::size_t kk = k0; kk < k0 + kb; ++kk) {
      const float aik = a[i * k + kk];
      const float* HS_RESTRICT br = b + kk * n + j0;
      for (std::size_t j = 0; j < jb; ++j) crow[j] += aik * br[j];
    }
  }
}

void gemm_nn_tiled(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kJBlock) {
    const std::size_t jb = std::min(kJBlock, n - j0);
    // k blocks ascend, so each C element reduces over k in increasing order.
    for (std::size_t k0 = 0; k0 < k; k0 += kKBlock) {
      const std::size_t kb = std::min(kKBlock, k - k0);
      gemm_nn_block(a, b, c, m, k, n, k0, kb, j0, jb);
    }
  }
}

// Column-tile width and row-chunk height of the nt kernel. A (kKBlock x
// kNtJT) transposed B tile lives on the stack (32 KiB) and is shared by a
// chunk of kNtMI A rows, so the inner loop reads both operands contiguously
// and the widening f64 adds vectorize across the 8 independent outputs.
constexpr std::size_t kNtJT = 8;
constexpr std::size_t kNtMI = 32;

HS_TILED_CLONES
void gemm_nt_tiled(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, bool accumulate) {
  // Dot-product form: each output's f64 accumulator runs over k in
  // increasing order (k blocks ascend, one accumulator per output held
  // across blocks) — the reference per-element arithmetic, float product
  // widened into a double sum.
  float bt[kKBlock * kNtJT];     // transposed B tile
  double acc[kNtMI * kNtJT];     // per-(row, column) accumulators
  std::size_t j = 0;
  for (; j + kNtJT <= n; j += kNtJT) {
    for (std::size_t i0 = 0; i0 < m; i0 += kNtMI) {
      const std::size_t ib = std::min(kNtMI, m - i0);
      std::fill(acc, acc + ib * kNtJT, 0.0);
      for (std::size_t k0 = 0; k0 < k; k0 += kKBlock) {
        const std::size_t kb = std::min(kKBlock, k - k0);
        for (std::size_t kk = 0; kk < kb; ++kk) {
          for (std::size_t jj = 0; jj < kNtJT; ++jj) {
            bt[kk * kNtJT + jj] = b[(j + jj) * k + k0 + kk];
          }
        }
        for (std::size_t ii = 0; ii < ib; ++ii) {
          const float* HS_RESTRICT arow = a + (i0 + ii) * k + k0;
          double* HS_RESTRICT srow = acc + ii * kNtJT;
          for (std::size_t kk = 0; kk < kb; ++kk) {
            const float av = arow[kk];
            const float* HS_RESTRICT btr = bt + kk * kNtJT;
            for (std::size_t jj = 0; jj < kNtJT; ++jj) {
              srow[jj] += static_cast<double>(av * btr[jj]);
            }
          }
        }
      }
      for (std::size_t ii = 0; ii < ib; ++ii) {
        float* dst = c + (i0 + ii) * n + j;
        const double* srow = acc + ii * kNtJT;
        if (accumulate) {
          for (std::size_t jj = 0; jj < kNtJT; ++jj) {
            dst[jj] += static_cast<float>(srow[jj]);
          }
        } else {
          for (std::size_t jj = 0; jj < kNtJT; ++jj) {
            dst[jj] = static_cast<float>(srow[jj]);
          }
        }
      }
    }
  }
  // Remainder columns: plain dot products (reference arithmetic).
  for (; j < n; ++j) {
    const float* HS_RESTRICT brow = b + j * k;
    for (std::size_t i = 0; i < m; ++i) {
      const float* HS_RESTRICT arow = a + i * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      float* dst = c + i * n + j;
      if (accumulate) {
        *dst += static_cast<float>(s);
      } else {
        *dst = static_cast<float>(s);
      }
    }
  }
}

HS_TILED_CLONES
void gemm_tn_tiled(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n) {
  // Outer-product form reducing over m. Four C rows per pass share each B
  // row; every C element accumulates in increasing i, in f32 — the
  // reference arithmetic.
  for (std::size_t j0 = 0; j0 < n; j0 += kJBlock) {
    const std::size_t jb = std::min(kJBlock, n - j0);
    std::size_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      float* HS_RESTRICT c0 = c + (kk + 0) * n + j0;
      float* HS_RESTRICT c1 = c + (kk + 1) * n + j0;
      float* HS_RESTRICT c2 = c + (kk + 2) * n + j0;
      float* HS_RESTRICT c3 = c + (kk + 3) * n + j0;
      for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a + i * k + kk;
        const float a0 = arow[0];
        const float a1 = arow[1];
        const float a2 = arow[2];
        const float a3 = arow[3];
        const float* HS_RESTRICT br = b + i * n + j0;
        for (std::size_t j = 0; j < jb; ++j) {
          c0[j] += a0 * br[j];
          c1[j] += a1 * br[j];
          c2[j] += a2 * br[j];
          c3[j] += a3 * br[j];
        }
      }
    }
    for (; kk < k; ++kk) {
      float* HS_RESTRICT crow = c + kk * n + j0;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = a[i * k + kk];
        const float* HS_RESTRICT br = b + i * n + j0;
        for (std::size_t j = 0; j < jb; ++j) crow[j] += av * br[j];
      }
    }
  }
}

}  // namespace

void gemm_nn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  if (kind == KernelKind::kReference) {
    gemm_nn_reference(a, b, c, m, k, n);
  } else {
    gemm_nn_tiled(a, b, c, m, k, n);
  }
}

void gemm_nt(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  if (kind == KernelKind::kReference) {
    gemm_nt_reference(a, b, c, m, k, n, accumulate);
  } else {
    gemm_nt_tiled(a, b, c, m, k, n, accumulate);
  }
}

void gemm_tn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + k * n, 0.0f);
  if (kind == KernelKind::kReference) {
    gemm_tn_reference(a, b, c, m, k, n);
  } else {
    gemm_tn_tiled(a, b, c, m, k, n);
  }
}

}  // namespace hetero::kernels
