// GEMM kernels. The reference variants are the seed repository's scalar
// loops; the tiled variants block for cache and tile registers while
// reducing over k in increasing order with the same accumulation precision,
// which makes every tiled GEMM bit-identical to its reference twin for
// finite inputs (the parity suite asserts exact equality). The fast
// variants (gemm_fast.cpp) reuse the same blocking under FMA contraction.
//
// The public dispatch functions also own the intra-op task grids: a tiled
// or fast GEMM is cut into regions along fixed row/column block boundaries
// — a function of the problem shape only, never of the worker count — and
// each region computes its outputs' full reduction chains. Running the
// regions serially or on a ScopedIntraOp worker pool therefore yields
// bit-identical results (DESIGN.md §13).
#include "kernels/kernels.h"

#include <algorithm>

#include "kernels/internal.h"
#include "kernels/isa.h"

namespace hetero::kernels {

namespace {

// Cache-block sizes (floats). The j block keeps one B panel plus the active
// C rows streaming through L1/L2; the k block bounds the panel height.
constexpr std::size_t kJBlock = 1024;
constexpr std::size_t kKBlock = 256;

// ------------------------------------------------------------- reference --

void gemm_nn_reference(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n) {
  // i-k-j loop order keeps the inner loop contiguous over B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_nt_reference(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n,
                       bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      float* dst = c + i * n + j;
      if (accumulate) {
        *dst += static_cast<float>(s);
      } else {
        *dst = static_cast<float>(s);
      }
    }
  }
}

void gemm_tn_reference(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = c + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// ----------------------------------------------------------------- tiled --

// C += A·B restricted to rows [i0, i0+ib) and the (k0, j0) block. Four
// independent C-row accumulators per pass share each B row; every C element
// still receives its k contributions in increasing order, in f32 — the same
// per-element arithmetic as the reference i-k-j loop.
HS_TILED_CLONES
void gemm_nn_block(const float* HS_RESTRICT a, const float* HS_RESTRICT b,
                   float* HS_RESTRICT c, std::size_t k, std::size_t n,
                   std::size_t i0, std::size_t ib, std::size_t k0,
                   std::size_t kb, std::size_t j0, std::size_t jb) {
  const std::size_t iend = i0 + ib;
  std::size_t i = i0;
  for (; i + 4 <= iend; i += 4) {
    float* HS_RESTRICT c0 = c + (i + 0) * n + j0;
    float* HS_RESTRICT c1 = c + (i + 1) * n + j0;
    float* HS_RESTRICT c2 = c + (i + 2) * n + j0;
    float* HS_RESTRICT c3 = c + (i + 3) * n + j0;
    for (std::size_t kk = k0; kk < k0 + kb; ++kk) {
      const float a0 = a[(i + 0) * k + kk];
      const float a1 = a[(i + 1) * k + kk];
      const float a2 = a[(i + 2) * k + kk];
      const float a3 = a[(i + 3) * k + kk];
      const float* HS_RESTRICT br = b + kk * n + j0;
      for (std::size_t j = 0; j < jb; ++j) {
        c0[j] += a0 * br[j];
        c1[j] += a1 * br[j];
        c2[j] += a2 * br[j];
        c3[j] += a3 * br[j];
      }
    }
  }
  for (; i < iend; ++i) {
    float* HS_RESTRICT crow = c + i * n + j0;
    for (std::size_t kk = k0; kk < k0 + kb; ++kk) {
      const float aik = a[i * k + kk];
      const float* HS_RESTRICT br = b + kk * n + j0;
      for (std::size_t j = 0; j < jb; ++j) crow[j] += aik * br[j];
    }
  }
}

// One intra-op region of the tiled nn GEMM: rows [i0, i0+ib), columns
// [j0, j0+jb), all of k (blocks ascend, so each C element reduces over k in
// increasing order).
void gemm_nn_tiled_region(const float* a, const float* b, float* c,
                          std::size_t k, std::size_t n, std::size_t i0,
                          std::size_t ib, std::size_t j0, std::size_t jb) {
  for (std::size_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::size_t kb = std::min(kKBlock, k - k0);
    gemm_nn_block(a, b, c, k, n, i0, ib, k0, kb, j0, jb);
  }
}

// Column-tile widths and row-chunk height of the nt kernel. A (kKBlock x
// JT) transposed B tile lives on the stack and is shared by a chunk of
// kNtMI A rows, so the inner loop reads both operands contiguously and the
// widening f64 adds vectorize across JT independent outputs. The wide
// 32-column tile keeps eight f64 vector accumulators in flight per row —
// enough independent add chains to hide the add latency that capped the
// old 8-column layout; 8 and scalar handle column remainders.
constexpr std::size_t kNtJT = 32;
constexpr std::size_t kNtJT2 = 8;
constexpr std::size_t kNtMI = 32;
constexpr std::size_t kNtJBlock = 512;

// One JT-wide column tile of the nt GEMM for rows [i0, i0+ib), ib <= kNtMI.
// Each output's f64 accumulator runs over k in increasing order (k blocks
// ascend, one accumulator per output held across blocks) — the reference
// per-element arithmetic, float product widened into a double sum.
template <std::size_t JT>
HS_ALWAYS_INLINE void nt_tile(const float* HS_RESTRICT a,
                    const float* HS_RESTRICT b,
                    float* HS_RESTRICT c, std::size_t k, std::size_t n,
                    std::size_t i0, std::size_t ib, std::size_t j,
                    bool accumulate) {
  float bt[kKBlock * JT];    // transposed B tile
  double acc[kNtMI * JT];    // per-(row, column) accumulators
  std::fill(acc, acc + ib * JT, 0.0);
  for (std::size_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::size_t kb = std::min(kKBlock, k - k0);
    for (std::size_t kk = 0; kk < kb; ++kk) {
      for (std::size_t jj = 0; jj < JT; ++jj) {
        bt[kk * JT + jj] = b[(j + jj) * k + k0 + kk];
      }
    }
    for (std::size_t ii = 0; ii < ib; ++ii) {
      const float* HS_RESTRICT arow = a + (i0 + ii) * k + k0;
      double* HS_RESTRICT srow = acc + ii * JT;
      for (std::size_t kk = 0; kk < kb; ++kk) {
        const float av = arow[kk];
        const float* HS_RESTRICT btr = bt + kk * JT;
        for (std::size_t jj = 0; jj < JT; ++jj) {
          srow[jj] += static_cast<double>(av * btr[jj]);
        }
      }
    }
  }
  for (std::size_t ii = 0; ii < ib; ++ii) {
    float* dst = c + (i0 + ii) * n + j;
    const double* srow = acc + ii * JT;
    if (accumulate) {
      for (std::size_t jj = 0; jj < JT; ++jj) {
        dst[jj] += static_cast<float>(srow[jj]);
      }
    } else {
      for (std::size_t jj = 0; jj < JT; ++jj) {
        dst[jj] = static_cast<float>(srow[jj]);
      }
    }
  }
}

// One intra-op region of the tiled nt GEMM: rows [i0, i0+ib) (ib <= kNtMI),
// columns [j0, j0+jb), cascading 32-wide -> 8-wide -> scalar column tiles.
// Tile-width boundaries depend only on the region bounds, and every path
// computes the identical per-element chain (f32 product, f64 sum over
// ascending k), so the cascade cannot change bits.
HS_TILED_CLONES
void gemm_nt_tiled_region(const float* HS_RESTRICT a,
                          const float* HS_RESTRICT b, float* HS_RESTRICT c,
                          std::size_t k, std::size_t n, std::size_t i0,
                          std::size_t ib, std::size_t j0, std::size_t jb,
                          bool accumulate) {
  const std::size_t jend = j0 + jb;
  std::size_t j = j0;
  for (; j + kNtJT <= jend; j += kNtJT) {
    nt_tile<kNtJT>(a, b, c, k, n, i0, ib, j, accumulate);
  }
  for (; j + kNtJT2 <= jend; j += kNtJT2) {
    nt_tile<kNtJT2>(a, b, c, k, n, i0, ib, j, accumulate);
  }
  for (; j < jend; ++j) {
    const float* HS_RESTRICT brow = b + j * k;
    for (std::size_t ii = 0; ii < ib; ++ii) {
      const float* HS_RESTRICT arow = a + (i0 + ii) * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      float* dst = c + (i0 + ii) * n + j;
      if (accumulate) {
        *dst += static_cast<float>(s);
      } else {
        *dst = static_cast<float>(s);
      }
    }
  }
}

// tn region granularity: panels of eight C rows (two four-row passes in
// gemm_tn_region_body) by j blocks sized to keep the active C rows in L1
// while B streams through.
constexpr std::size_t kTnPanel = 8;
constexpr std::size_t kTnJBlock = 512;

HS_TILED_CLONES
void gemm_tn_tiled_region(const float* a, const float* b, float* c,
                          std::size_t m, std::size_t k, std::size_t n,
                          std::size_t kk0, std::size_t kb, std::size_t j0,
                          std::size_t jb) {
  detail::gemm_tn_region_body(a, b, c, m, k, n, kk0, kb, j0, jb);
}

}  // namespace

void gemm_nn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  if (kind == KernelKind::kReference) {
    gemm_nn_reference(a, b, c, m, k, n);
    return;
  }
  constexpr std::size_t kIChunk = 8;
  const std::size_t nj = (n + kJBlock - 1) / kJBlock;
  const std::size_t ni = (m + kIChunk - 1) / kIChunk;
  detail::intra_for(ni * nj, 2.0 * static_cast<double>(m) * k * n,
                    [&](std::size_t t) {
                      const std::size_t i0 = (t / nj) * kIChunk;
                      const std::size_t j0 = (t % nj) * kJBlock;
                      const std::size_t ib = std::min(kIChunk, m - i0);
                      const std::size_t jb = std::min(kJBlock, n - j0);
                      if (kind == KernelKind::kFast) {
                        detail::gemm_nn_fast_region(a, b, c, m, k, n, i0, ib,
                                                    j0, jb);
                      } else {
                        gemm_nn_tiled_region(a, b, c, k, n, i0, ib, j0, jb);
                      }
                    });
}

void gemm_nt(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  if (kind == KernelKind::kReference) {
    gemm_nt_reference(a, b, c, m, k, n, accumulate);
    return;
  }
  const std::size_t ni = (m + kNtMI - 1) / kNtMI;
  const std::size_t nj = (n + kNtJBlock - 1) / kNtJBlock;
  detail::intra_for(ni * nj, 2.0 * static_cast<double>(m) * k * n,
                    [&](std::size_t t) {
                      const std::size_t i0 = (t / nj) * kNtMI;
                      const std::size_t j0 = (t % nj) * kNtJBlock;
                      const std::size_t ib = std::min(kNtMI, m - i0);
                      const std::size_t jb = std::min(kNtJBlock, n - j0);
                      if (kind == KernelKind::kFast) {
                        detail::gemm_nt_fast_region(a, b, c, m, k, n, i0, ib,
                                                    j0, jb, accumulate);
                      } else {
                        gemm_nt_tiled_region(a, b, c, k, n, i0, ib, j0, jb,
                                             accumulate);
                      }
                    });
}

void gemm_tn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + k * n, 0.0f);
  if (kind == KernelKind::kReference) {
    gemm_tn_reference(a, b, c, m, k, n);
    return;
  }
  const std::size_t np = (k + kTnPanel - 1) / kTnPanel;
  const std::size_t nj = (n + kTnJBlock - 1) / kTnJBlock;
  detail::intra_for(np * nj, 2.0 * static_cast<double>(m) * k * n,
                    [&](std::size_t t) {
                      const std::size_t kk0 = (t / nj) * kTnPanel;
                      const std::size_t j0 = (t % nj) * kTnJBlock;
                      const std::size_t kb = std::min(kTnPanel, k - kk0);
                      const std::size_t jb = std::min(kTnJBlock, n - j0);
                      if (kind == KernelKind::kFast) {
                        detail::gemm_tn_fast_region(a, b, c, m, k, n, kk0, kb,
                                                    j0, jb);
                      } else {
                        gemm_tn_tiled_region(a, b, c, m, k, n, kk0, kb, j0,
                                             jb);
                      }
                    });
}

}  // namespace hetero::kernels
