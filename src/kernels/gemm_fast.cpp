// Fast-kind (HS_KERNEL=fast) GEMM regions. This translation unit compiles
// with -ffp-contract=fast and x86-64-v3 target clones, so mul+add chains
// fuse into FMAs: per-element reductions still ascend over k / m, but each
// contraction rounds once instead of twice — and the accumulators are f32
// where the tiled nt kernel uses f64 — so results carry a documented,
// parity-suite-bounded drift against tiled/reference (DESIGN.md §13).
//
// The hot loops are written with explicit 8-lane vector-extension types
// (v8f) instead of relying on the autovectorizer: GCC fully unrolls a
// constant-trip-8 column loop before vectorization, then vectorizes the
// surrounding reduction loop instead — outer-loop vectorization whose
// in-loop shuffle/horizontal-add storm ran ~9x slower than these explicit
// register tiles. Lane arithmetic is identical to the scalar loop (per-lane
// mul/add, contracted to FMA like everything else in this TU), so the
// vector form changes codegen, not results. On the "default" clone the
// 32-byte vectors lower to paired SSE ops — still correct, just narrower.
//
// Region boundaries are chosen by the public dispatch in gemm.cpp; each
// region owns a disjoint C sub-matrix and computes its outputs' full
// reduction chains, so intra-op execution order cannot change bits.
#include <algorithm>
#include <cstring>

#include "kernels/internal.h"
#include "kernels/isa.h"

namespace hetero::kernels::detail {

namespace {

typedef float v8f __attribute__((vector_size(32)));

HS_ALWAYS_INLINE v8f load8(const float* p) {
  v8f v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

HS_ALWAYS_INLINE void store8(float* p, v8f v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

HS_ALWAYS_INLINE v8f splat8(float x) { return v8f{} + x; }

// ------------------------------------------------------------------- nn ----
// C(m x n) += A(m x k) · B(k x n). B rows are contiguous in j, so a column
// tile needs no packing: four A-row broadcasts and U row-tile loads feed
// 4*U independent FMA chains whose accumulators live in registers across
// the whole k loop (ascending k — the reference per-element order).

template <int U>
HS_ALWAYS_INLINE void nn_tile_v(const float* HS_RESTRICT a,
                                const float* HS_RESTRICT b,
                                float* HS_RESTRICT c, std::size_t k,
                                std::size_t n, std::size_t i0, std::size_t ib,
                                std::size_t j) {
  const std::size_t iend = i0 + ib;
  std::size_t i = i0;
  for (; i + 4 <= iend; i += 4) {
    v8f s0[U], s1[U], s2[U], s3[U];
    for (int u = 0; u < U; ++u) {
      s0[u] = load8(c + (i + 0) * n + j + 8 * u);
      s1[u] = load8(c + (i + 1) * n + j + 8 * u);
      s2[u] = load8(c + (i + 2) * n + j + 8 * u);
      s3[u] = load8(c + (i + 3) * n + j + 8 * u);
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const v8f a0 = splat8(a[(i + 0) * k + kk]);
      const v8f a1 = splat8(a[(i + 1) * k + kk]);
      const v8f a2 = splat8(a[(i + 2) * k + kk]);
      const v8f a3 = splat8(a[(i + 3) * k + kk]);
      const float* HS_RESTRICT br = b + kk * n + j;
      for (int u = 0; u < U; ++u) {
        const v8f bv = load8(br + 8 * u);
        s0[u] += a0 * bv;
        s1[u] += a1 * bv;
        s2[u] += a2 * bv;
        s3[u] += a3 * bv;
      }
    }
    for (int u = 0; u < U; ++u) {
      store8(c + (i + 0) * n + j + 8 * u, s0[u]);
      store8(c + (i + 1) * n + j + 8 * u, s1[u]);
      store8(c + (i + 2) * n + j + 8 * u, s2[u]);
      store8(c + (i + 3) * n + j + 8 * u, s3[u]);
    }
  }
  for (; i < iend; ++i) {
    v8f sr[U];
    for (int u = 0; u < U; ++u) sr[u] = load8(c + i * n + j + 8 * u);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const v8f av = splat8(a[i * k + kk]);
      const float* HS_RESTRICT br = b + kk * n + j;
      for (int u = 0; u < U; ++u) sr[u] += av * load8(br + 8 * u);
    }
    for (int u = 0; u < U; ++u) store8(c + i * n + j + 8 * u, sr[u]);
  }
}

// Scalar column tail: four rows per pass for independent FMA chains.
HS_ALWAYS_INLINE void nn_col_scalar(const float* HS_RESTRICT a,
                                    const float* HS_RESTRICT b,
                                    float* HS_RESTRICT c, std::size_t k,
                                    std::size_t n, std::size_t i0,
                                    std::size_t ib, std::size_t j) {
  const std::size_t iend = i0 + ib;
  std::size_t i = i0;
  for (; i + 4 <= iend; i += 4) {
    float s0 = c[(i + 0) * n + j], s1 = c[(i + 1) * n + j];
    float s2 = c[(i + 2) * n + j], s3 = c[(i + 3) * n + j];
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float bv = b[kk * n + j];
      s0 += a[(i + 0) * k + kk] * bv;
      s1 += a[(i + 1) * k + kk] * bv;
      s2 += a[(i + 2) * k + kk] * bv;
      s3 += a[(i + 3) * k + kk] * bv;
    }
    c[(i + 0) * n + j] = s0;
    c[(i + 1) * n + j] = s1;
    c[(i + 2) * n + j] = s2;
    c[(i + 3) * n + j] = s3;
  }
  for (; i < iend; ++i) {
    float s = c[i * n + j];
    for (std::size_t kk = 0; kk < k; ++kk) s += a[i * k + kk] * b[kk * n + j];
    c[i * n + j] = s;
  }
}

// ------------------------------------------------------------------- nt ----
// C(m x n) ?= A(m x k) · B(n x k)^T. A kKBlock x JT transposed B tile on
// the stack turns the strided B columns into contiguous rows; per-(row,
// column) f32 accumulators persist across ascending k blocks.

constexpr std::size_t kKBlock = 256;
constexpr std::size_t kNtMI = 32;  // must match gemm.cpp's nt row chunk

template <int U>
HS_ALWAYS_INLINE void nt_fast_tile(const float* HS_RESTRICT a,
                                   const float* HS_RESTRICT b,
                                   float* HS_RESTRICT c, std::size_t k,
                                   std::size_t n, std::size_t i0,
                                   std::size_t ib, std::size_t j,
                                   bool accumulate) {
  constexpr int JT = 8 * U;
  float bt[kKBlock * JT];
  float acc[kNtMI * JT];
  std::fill(acc, acc + ib * JT, 0.0f);
  for (std::size_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::size_t kb = std::min(kKBlock, k - k0);
    for (std::size_t kk = 0; kk < kb; ++kk) {
      for (int jj = 0; jj < JT; ++jj) {
        bt[kk * JT + jj] = b[(j + jj) * k + k0 + kk];
      }
    }
    std::size_t ii = 0;
    for (; ii + 4 <= ib; ii += 4) {
      const float* HS_RESTRICT a0 = a + (i0 + ii + 0) * k + k0;
      const float* HS_RESTRICT a1 = a + (i0 + ii + 1) * k + k0;
      const float* HS_RESTRICT a2 = a + (i0 + ii + 2) * k + k0;
      const float* HS_RESTRICT a3 = a + (i0 + ii + 3) * k + k0;
      v8f s0[U], s1[U], s2[U], s3[U];
      for (int u = 0; u < U; ++u) {
        s0[u] = load8(acc + (ii + 0) * JT + 8 * u);
        s1[u] = load8(acc + (ii + 1) * JT + 8 * u);
        s2[u] = load8(acc + (ii + 2) * JT + 8 * u);
        s3[u] = load8(acc + (ii + 3) * JT + 8 * u);
      }
      for (std::size_t kk = 0; kk < kb; ++kk) {
        const float* HS_RESTRICT btr = bt + kk * JT;
        const v8f v0 = splat8(a0[kk]);
        const v8f v1 = splat8(a1[kk]);
        const v8f v2 = splat8(a2[kk]);
        const v8f v3 = splat8(a3[kk]);
        for (int u = 0; u < U; ++u) {
          const v8f bv = load8(btr + 8 * u);
          s0[u] += v0 * bv;
          s1[u] += v1 * bv;
          s2[u] += v2 * bv;
          s3[u] += v3 * bv;
        }
      }
      for (int u = 0; u < U; ++u) {
        store8(acc + (ii + 0) * JT + 8 * u, s0[u]);
        store8(acc + (ii + 1) * JT + 8 * u, s1[u]);
        store8(acc + (ii + 2) * JT + 8 * u, s2[u]);
        store8(acc + (ii + 3) * JT + 8 * u, s3[u]);
      }
    }
    for (; ii < ib; ++ii) {
      const float* HS_RESTRICT arow = a + (i0 + ii) * k + k0;
      v8f sr[U];
      for (int u = 0; u < U; ++u) sr[u] = load8(acc + ii * JT + 8 * u);
      for (std::size_t kk = 0; kk < kb; ++kk) {
        const v8f av = splat8(arow[kk]);
        const float* HS_RESTRICT btr = bt + kk * JT;
        for (int u = 0; u < U; ++u) sr[u] += av * load8(btr + 8 * u);
      }
      for (int u = 0; u < U; ++u) store8(acc + ii * JT + 8 * u, sr[u]);
    }
  }
  for (std::size_t ii = 0; ii < ib; ++ii) {
    float* dst = c + (i0 + ii) * n + j;
    const float* srow = acc + ii * JT;
    if (accumulate) {
      for (int jj = 0; jj < JT; ++jj) dst[jj] += srow[jj];
    } else {
      for (int jj = 0; jj < JT; ++jj) dst[jj] = srow[jj];
    }
  }
}

// Narrow nt regions (few C rows) take a dot-product form instead: the
// transpose tile above amortizes its packing over the row block, and for
// row blocks this small the packing costs as much as the FMAs it feeds.
// In the nt layout both A rows and B rows are contiguous over k, so eight
// lanes of products accumulate straight from the streams and fold once at
// the end with a fixed-shape horizontal sum. This splits each reduction
// into eight interleaved chains — a reassociation inside the fast kind's
// documented drift budget (the parity suite covers this path), and still
// a pure function of the region, so thread count cannot change bits.

constexpr std::size_t kNtDotRows = 16;  // widest row block routed here

HS_ALWAYS_INLINE float hsum8(v8f v) {
  return ((v[0] + v[4]) + (v[1] + v[5])) + ((v[2] + v[6]) + (v[3] + v[7]));
}

HS_ALWAYS_INLINE void nt_dot_cols4(const float* HS_RESTRICT a,
                                   const float* HS_RESTRICT b,
                                   float* HS_RESTRICT c, std::size_t k,
                                   std::size_t n, std::size_t i0,
                                   std::size_t ib, std::size_t j,
                                   bool accumulate) {
  const float* HS_RESTRICT b0 = b + (j + 0) * k;
  const float* HS_RESTRICT b1 = b + (j + 1) * k;
  const float* HS_RESTRICT b2 = b + (j + 2) * k;
  const float* HS_RESTRICT b3 = b + (j + 3) * k;
  const std::size_t k8 = k & ~static_cast<std::size_t>(7);
  const std::size_t iend = i0 + ib;
  std::size_t i = i0;
  for (; i + 2 <= iend; i += 2) {
    const float* HS_RESTRICT a0 = a + (i + 0) * k;
    const float* HS_RESTRICT a1 = a + (i + 1) * k;
    v8f s00{}, s01{}, s02{}, s03{};
    v8f s10{}, s11{}, s12{}, s13{};
    for (std::size_t kk = 0; kk < k8; kk += 8) {
      const v8f av0 = load8(a0 + kk);
      const v8f av1 = load8(a1 + kk);
      const v8f bv0 = load8(b0 + kk);
      s00 += av0 * bv0;
      s10 += av1 * bv0;
      const v8f bv1 = load8(b1 + kk);
      s01 += av0 * bv1;
      s11 += av1 * bv1;
      const v8f bv2 = load8(b2 + kk);
      s02 += av0 * bv2;
      s12 += av1 * bv2;
      const v8f bv3 = load8(b3 + kk);
      s03 += av0 * bv3;
      s13 += av1 * bv3;
    }
    float r00 = hsum8(s00), r01 = hsum8(s01), r02 = hsum8(s02),
          r03 = hsum8(s03);
    float r10 = hsum8(s10), r11 = hsum8(s11), r12 = hsum8(s12),
          r13 = hsum8(s13);
    for (std::size_t kk = k8; kk < k; ++kk) {
      r00 += a0[kk] * b0[kk];
      r01 += a0[kk] * b1[kk];
      r02 += a0[kk] * b2[kk];
      r03 += a0[kk] * b3[kk];
      r10 += a1[kk] * b0[kk];
      r11 += a1[kk] * b1[kk];
      r12 += a1[kk] * b2[kk];
      r13 += a1[kk] * b3[kk];
    }
    float* d0 = c + (i + 0) * n + j;
    float* d1 = c + (i + 1) * n + j;
    if (accumulate) {
      d0[0] += r00;
      d0[1] += r01;
      d0[2] += r02;
      d0[3] += r03;
      d1[0] += r10;
      d1[1] += r11;
      d1[2] += r12;
      d1[3] += r13;
    } else {
      d0[0] = r00;
      d0[1] = r01;
      d0[2] = r02;
      d0[3] = r03;
      d1[0] = r10;
      d1[1] = r11;
      d1[2] = r12;
      d1[3] = r13;
    }
  }
  if (i < iend) {
    const float* HS_RESTRICT a0 = a + i * k;
    v8f s0{}, s1{}, s2{}, s3{};
    for (std::size_t kk = 0; kk < k8; kk += 8) {
      const v8f av = load8(a0 + kk);
      s0 += av * load8(b0 + kk);
      s1 += av * load8(b1 + kk);
      s2 += av * load8(b2 + kk);
      s3 += av * load8(b3 + kk);
    }
    float r0 = hsum8(s0), r1 = hsum8(s1), r2 = hsum8(s2), r3 = hsum8(s3);
    for (std::size_t kk = k8; kk < k; ++kk) {
      r0 += a0[kk] * b0[kk];
      r1 += a0[kk] * b1[kk];
      r2 += a0[kk] * b2[kk];
      r3 += a0[kk] * b3[kk];
    }
    float* d = c + i * n + j;
    if (accumulate) {
      d[0] += r0;
      d[1] += r1;
      d[2] += r2;
      d[3] += r3;
    } else {
      d[0] = r0;
      d[1] = r1;
      d[2] = r2;
      d[3] = r3;
    }
  }
}

// Scalar column tail of the nt region: four dot products at a time so the
// reduction chains overlap.
HS_ALWAYS_INLINE void nt_col_scalar(const float* HS_RESTRICT a,
                                    const float* HS_RESTRICT b,
                                    float* HS_RESTRICT c, std::size_t k,
                                    std::size_t n, std::size_t i0,
                                    std::size_t ib, std::size_t j,
                                    bool accumulate) {
  const float* HS_RESTRICT brow = b + j * k;
  const std::size_t iend = i0 + ib;
  std::size_t i = i0;
  for (; i + 4 <= iend; i += 4) {
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    const float* HS_RESTRICT a0 = a + (i + 0) * k;
    const float* HS_RESTRICT a1 = a + (i + 1) * k;
    const float* HS_RESTRICT a2 = a + (i + 2) * k;
    const float* HS_RESTRICT a3 = a + (i + 3) * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float bv = brow[kk];
      s0 += a0[kk] * bv;
      s1 += a1[kk] * bv;
      s2 += a2[kk] * bv;
      s3 += a3[kk] * bv;
    }
    float* dst = c + i * n + j;
    if (accumulate) {
      dst[0 * n] += s0;
      dst[1 * n] += s1;
      dst[2 * n] += s2;
      dst[3 * n] += s3;
    } else {
      dst[0 * n] = s0;
      dst[1 * n] = s1;
      dst[2 * n] = s2;
      dst[3 * n] = s3;
    }
  }
  for (; i < iend; ++i) {
    const float* HS_RESTRICT arow = a + i * k;
    float s = 0.0f;
    for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
    float* dst = c + i * n + j;
    if (accumulate) {
      *dst += s;
    } else {
      *dst = s;
    }
  }
}

// ------------------------------------------------------------------- tn ----
// C(k x n) += A(m x k)^T · B(m x n), reducing over m (ascending — the
// reference per-element order). Four C rows x U vectors of C columns stay
// in registers across the whole m loop; both A broadcasts and B row loads
// are contiguous enough that no packing is needed.

template <int U>
HS_ALWAYS_INLINE void tn_tile_v(const float* HS_RESTRICT a,
                                const float* HS_RESTRICT b,
                                float* HS_RESTRICT c, std::size_t m,
                                std::size_t k, std::size_t n, std::size_t kk0,
                                std::size_t kb, std::size_t j) {
  const std::size_t kend = kk0 + kb;
  std::size_t kk = kk0;
  for (; kk + 4 <= kend; kk += 4) {
    v8f s0[U], s1[U], s2[U], s3[U];
    for (int u = 0; u < U; ++u) {
      s0[u] = load8(c + (kk + 0) * n + j + 8 * u);
      s1[u] = load8(c + (kk + 1) * n + j + 8 * u);
      s2[u] = load8(c + (kk + 2) * n + j + 8 * u);
      s3[u] = load8(c + (kk + 3) * n + j + 8 * u);
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float* HS_RESTRICT arow = a + i * k + kk;
      const v8f a0 = splat8(arow[0]);
      const v8f a1 = splat8(arow[1]);
      const v8f a2 = splat8(arow[2]);
      const v8f a3 = splat8(arow[3]);
      const float* HS_RESTRICT br = b + i * n + j;
      for (int u = 0; u < U; ++u) {
        const v8f bv = load8(br + 8 * u);
        s0[u] += a0 * bv;
        s1[u] += a1 * bv;
        s2[u] += a2 * bv;
        s3[u] += a3 * bv;
      }
    }
    for (int u = 0; u < U; ++u) {
      store8(c + (kk + 0) * n + j + 8 * u, s0[u]);
      store8(c + (kk + 1) * n + j + 8 * u, s1[u]);
      store8(c + (kk + 2) * n + j + 8 * u, s2[u]);
      store8(c + (kk + 3) * n + j + 8 * u, s3[u]);
    }
  }
  for (; kk < kend; ++kk) {
    v8f sr[U];
    for (int u = 0; u < U; ++u) sr[u] = load8(c + kk * n + j + 8 * u);
    for (std::size_t i = 0; i < m; ++i) {
      const v8f av = splat8(a[i * k + kk]);
      const float* HS_RESTRICT br = b + i * n + j;
      for (int u = 0; u < U; ++u) sr[u] += av * load8(br + 8 * u);
    }
    for (int u = 0; u < U; ++u) store8(c + kk * n + j + 8 * u, sr[u]);
  }
}

// Scalar column tail of the tn region: four C rows at a time.
HS_ALWAYS_INLINE void tn_col_scalar(const float* HS_RESTRICT a,
                                    const float* HS_RESTRICT b,
                                    float* HS_RESTRICT c, std::size_t m,
                                    std::size_t k, std::size_t n,
                                    std::size_t kk0, std::size_t kb,
                                    std::size_t j) {
  const std::size_t kend = kk0 + kb;
  std::size_t kk = kk0;
  for (; kk + 4 <= kend; kk += 4) {
    float s0 = c[(kk + 0) * n + j], s1 = c[(kk + 1) * n + j];
    float s2 = c[(kk + 2) * n + j], s3 = c[(kk + 3) * n + j];
    for (std::size_t i = 0; i < m; ++i) {
      const float bv = b[i * n + j];
      const float* HS_RESTRICT arow = a + i * k + kk;
      s0 += arow[0] * bv;
      s1 += arow[1] * bv;
      s2 += arow[2] * bv;
      s3 += arow[3] * bv;
    }
    c[(kk + 0) * n + j] = s0;
    c[(kk + 1) * n + j] = s1;
    c[(kk + 2) * n + j] = s2;
    c[(kk + 3) * n + j] = s3;
  }
  for (; kk < kend; ++kk) {
    float s = c[kk * n + j];
    for (std::size_t i = 0; i < m; ++i) s += a[i * k + kk] * b[i * n + j];
    c[kk * n + j] = s;
  }
}

}  // namespace

HS_FAST_CLONES
void gemm_nn_fast_region(const float* a, const float* b, float* c,
                         std::size_t /*m*/, std::size_t k, std::size_t n,
                         std::size_t i0, std::size_t ib, std::size_t j0,
                         std::size_t jb) {
  const std::size_t jend = j0 + jb;
  std::size_t j = j0;
  for (; j + 16 <= jend; j += 16) nn_tile_v<2>(a, b, c, k, n, i0, ib, j);
  for (; j + 8 <= jend; j += 8) nn_tile_v<1>(a, b, c, k, n, i0, ib, j);
  for (; j < jend; ++j) nn_col_scalar(a, b, c, k, n, i0, ib, j);
}

HS_FAST_CLONES
void gemm_nt_fast_region(const float* a, const float* b, float* c,
                         std::size_t /*m*/, std::size_t k, std::size_t n,
                         std::size_t i0, std::size_t ib, std::size_t j0,
                         std::size_t jb, bool accumulate) {
  const std::size_t jend = j0 + jb;
  std::size_t j = j0;
  if (ib <= kNtDotRows) {
    for (; j + 4 <= jend; j += 4) {
      nt_dot_cols4(a, b, c, k, n, i0, ib, j, accumulate);
    }
    for (; j < jend; ++j) nt_col_scalar(a, b, c, k, n, i0, ib, j, accumulate);
    return;
  }
  for (; j + 16 <= jend; j += 16) {
    nt_fast_tile<2>(a, b, c, k, n, i0, ib, j, accumulate);
  }
  for (; j + 8 <= jend; j += 8) {
    nt_fast_tile<1>(a, b, c, k, n, i0, ib, j, accumulate);
  }
  for (; j < jend; ++j) nt_col_scalar(a, b, c, k, n, i0, ib, j, accumulate);
}

HS_FAST_CLONES
void gemm_tn_fast_region(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         std::size_t kk0, std::size_t kb, std::size_t j0,
                         std::size_t jb) {
  const std::size_t jend = j0 + jb;
  std::size_t j = j0;
  for (; j + 16 <= jend; j += 16) tn_tile_v<2>(a, b, c, m, k, n, kk0, kb, j);
  for (; j + 8 <= jend; j += 8) tn_tile_v<1>(a, b, c, m, k, n, kk0, kb, j);
  for (; j < jend; ++j) tn_col_scalar(a, b, c, m, k, n, kk0, kb, j);
}

}  // namespace hetero::kernels::detail
