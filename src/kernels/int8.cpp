// Int8 dynamic-quantized forward kernels (HS_EVAL=int8).
//
// Symmetric per-row quantization: scale = amax/127, codes rounded half away
// from zero and clamped to ±127. The i32 dot products are exact (integer
// adds are associative), so all rounding lives in the two quantization
// steps and the one f32 dequant multiply — which keeps the error model
// simple and the result deterministic for any loop order or thread count.
// The f32 eval path is untouched: these kernels only run when the nn layers
// see int8_eval_active() (EvalMode kInt8 inside an EvalScope), i.e. for
// HeteroSwitch's L_init probes and server-side eval, never for training.
#include <algorithm>
#include <cmath>

#include "kernels/internal.h"
#include "kernels/isa.h"
#include "kernels/kernels.h"

namespace hetero::kernels {

namespace {

// Workspace slots. 0-5 belong to the f32 conv paths (see conv.cpp's map);
// the int8 scratch lives above them. Int8 code buffers are carved out of
// float slots by reinterpretation — alignment is trivially satisfied and
// the arena stays a single recycled allocation per slot.
constexpr std::size_t kSlotYt = 1;     // dequantized (goc, n*oh*ow) tile
constexpr std::size_t kSlotCols = 4;   // f32 im2col patch matrices
constexpr std::size_t kSlotColsT = 5;  // transposed (pixel-major) patches
constexpr std::size_t kSlotQa = 6;     // quantized weights
constexpr std::size_t kSlotQb = 7;     // quantized activations/patches
constexpr std::size_t kSlotSa = 8;     // weight row scales
constexpr std::size_t kSlotSb = 9;     // activation row scales

std::int8_t* int8_slot(Workspace& ws, std::size_t slot, std::size_t count) {
  return reinterpret_cast<std::int8_t*>(ws.get(slot, (count + 3) / 4));
}

/// True when `wcache` already holds valid codes for a weight matrix of
/// `elems` elements at generation `version`. The generation is read once by
/// the caller *before* quantizing and stamped afterwards, so a concurrent
/// bump during the quantize at worst leaves an older stamp (extra
/// re-quantize later), never a stale hit.
bool cache_valid(const Int8WeightCache* wcache, std::uint64_t version,
                 std::size_t elems) {
  return wcache != nullptr && wcache->version == version &&
         wcache->elems == elems;
}

HS_TILED_CLONES
void quantize_rows_impl(const float* HS_RESTRICT src, std::size_t rows,
                        std::size_t cols, std::int8_t* HS_RESTRICT q,
                        float* HS_RESTRICT scales) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* HS_RESTRICT s = src + r * cols;
    std::int8_t* HS_RESTRICT d = q + r * cols;
    float amax = 0.0f;
    for (std::size_t i = 0; i < cols; ++i) {
      const float a = std::fabs(s[i]);
      amax = a > amax ? a : amax;
    }
    if (amax == 0.0f) {
      scales[r] = 0.0f;
      std::fill(d, d + cols, static_cast<std::int8_t>(0));
      continue;
    }
    scales[r] = amax / 127.0f;
    const float inv = 127.0f / amax;
    for (std::size_t i = 0; i < cols; ++i) {
      // Round half away from zero: branch-free, vectorizable, and
      // deterministic (no dependence on the FP environment's mode).
      const float v = s[i] * inv;
      const int code = static_cast<int>(v + (v >= 0.0f ? 0.5f : -0.5f));
      d[i] = static_cast<std::int8_t>(std::clamp(code, -127, 127));
    }
  }
}

HS_TILED_CLONES
void gemm_nt_int8_impl(const std::int8_t* HS_RESTRICT aq,
                       const float* HS_RESTRICT sa,
                       const std::int8_t* HS_RESTRICT bq,
                       const float* HS_RESTRICT sb, float* HS_RESTRICT c,
                       std::size_t m, std::size_t k, std::size_t n) {
  // 127*127*k stays far below 2^31 for any layer this repo lowers, so a
  // plain i32 accumulator is exact.
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* HS_RESTRICT arow = aq + i * k;
    const float si = sa[i];
    float* HS_RESTRICT crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* HS_RESTRICT brow = bq + j * k;
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) * brow[kk];
      }
      crow[j] = static_cast<float>(acc) * si * sb[j];
    }
  }
}

}  // namespace

void quantize_rows_int8(const float* src, std::size_t rows, std::size_t cols,
                        std::int8_t* q, float* scales) {
  quantize_rows_impl(src, rows, cols, q, scales);
}

void gemm_nt_int8(const std::int8_t* aq, const float* sa,
                  const std::int8_t* bq, const float* sb, float* c,
                  std::size_t m, std::size_t k, std::size_t n) {
  gemm_nt_int8_impl(aq, sa, bq, sb, c, m, k, n);
}

void linear_forward_int8(const float* x, const float* w, const float* bias,
                         float* y, std::size_t n, std::size_t in,
                         std::size_t out, Workspace& ws,
                         Int8WeightCache* wcache) {
  if (!int8_cache_enabled()) wcache = nullptr;
  const std::uint64_t version = wcache ? weight_version() : 0;
  std::int8_t* qw = int8_slot(ws, kSlotQa, out * in);
  std::int8_t* qx = int8_slot(ws, kSlotQb, n * in);
  float* sw = ws.get(kSlotSa, out);
  float* sx = ws.get(kSlotSb, n);
  if (!cache_valid(wcache, version, out * in)) {
    quantize_rows_impl(w, out, in, qw, sw);
    if (wcache) {
      wcache->version = version;
      wcache->elems = out * in;
    }
  }
  quantize_rows_impl(x, n, in, qx, sx);
  gemm_nt_int8_impl(qx, sx, qw, sw, y, n, in, out);
  if (bias) {
    for (std::size_t i = 0; i < n; ++i) {
      float* row = y + i * out;
      for (std::size_t j = 0; j < out; ++j) row[j] += bias[j];
    }
  }
}

void conv2d_forward_int8(const ConvShape& s, const float* x, const float* w,
                         const float* bias, float* y, Workspace& ws,
                         Int8WeightCache* wcache) {
  const std::size_t ohow = s.out_h() * s.out_w();
  const std::size_t gic = s.group_in_c(), goc = s.group_out_c();
  const std::size_t patch = s.patch();
  const std::size_t img_stride = s.in_c * s.in_h * s.in_w;

  if (gic == 1 && goc == 1 && s.kernel > 1) {
    // Depthwise: a 9-25 tap per-channel pass is memory-bound — quantizing
    // it buys nothing and costs accuracy. Stay on the f32 tiled planes.
    conv2d_forward(KernelKind::kTiled, s, x, w, bias, y, nullptr, ws);
    return;
  }

  // Per-out-channel weight scales, shared by every sample and group
  // iteration below — and by every later call at the same weight
  // generation, via the per-layer cache stamp.
  if (!int8_cache_enabled()) wcache = nullptr;
  const std::uint64_t version = wcache ? weight_version() : 0;
  std::int8_t* qw = int8_slot(ws, kSlotQa, s.out_c * patch);
  float* sw = ws.get(kSlotSa, s.out_c);
  if (!cache_valid(wcache, version, s.out_c * patch)) {
    quantize_rows_impl(w, s.out_c, patch, qw, sw);
    if (wcache) {
      wcache->version = version;
      wcache->elems = s.out_c * patch;
    }
  }

  if (s.kernel == 1 && s.stride == 1 && s.pad == 0) {
    // Pointwise: the patch matrix is the input verbatim; transpose each
    // sample's (gic, oh*ow) slab to pixel-major rows and quantize those
    // (one scale per output pixel).
    float* xt = ws.get(kSlotColsT, ohow * gic);
    std::int8_t* qx = int8_slot(ws, kSlotQb, ohow * gic);
    float* sx = ws.get(kSlotSb, ohow);
    float* yt = ws.get(kSlotYt, goc * ohow);
    for (std::size_t smp = 0; smp < s.n; ++smp) {
      for (std::size_t grp = 0; grp < s.groups; ++grp) {
        const float* xs = x + smp * img_stride + grp * gic * ohow;
        detail::transpose_to(xs, gic, ohow, xt);
        quantize_rows_impl(xt, ohow, gic, qx, sx);
        gemm_nt_int8_impl(qw + grp * goc * gic, sw + grp * goc, qx, sx, yt,
                          goc, gic, ohow);
        for (std::size_t oc = 0; oc < goc; ++oc) {
          const std::size_t ch = grp * goc + oc;
          float* dst = y + ((smp * s.out_c) + ch) * ohow;
          const float* src = yt + oc * ohow;
          if (bias) {
            const float bv = bias[ch];
            for (std::size_t i = 0; i < ohow; ++i) dst[i] = src[i] + bv;
          } else {
            std::copy(src, src + ohow, dst);
          }
        }
      }
    }
    return;
  }

  // Generic path: batched tiled im2col layout, transposed to pixel-major
  // rows, one quantized GEMM per group for the whole mini-batch.
  const std::size_t ld = s.n * ohow;
  float* cols = ws.get(kSlotCols, s.cols_size());
  float* colst = ws.get(kSlotColsT, ld * patch);
  std::int8_t* qc = int8_slot(ws, kSlotQb, ld * patch);
  float* sc = ws.get(kSlotSb, ld);
  float* yt = ws.get(kSlotYt, goc * ld);
  for (std::size_t grp = 0; grp < s.groups; ++grp) {
    float* cols_g = cols + grp * patch * ld;
    for (std::size_t smp = 0; smp < s.n; ++smp) {
      im2col_strided(x + smp * img_stride, s, grp * gic, cols_g, ld,
                     smp * ohow);
    }
    detail::transpose_to(cols_g, patch, ld, colst);
    quantize_rows_impl(colst, ld, patch, qc, sc);
    gemm_nt_int8_impl(qw + grp * goc * patch, sw + grp * goc, qc, sc, yt, goc,
                      patch, ld);
    for (std::size_t oc = 0; oc < goc; ++oc) {
      const std::size_t ch = grp * goc + oc;
      const float* src = yt + oc * ld;
      for (std::size_t smp = 0; smp < s.n; ++smp) {
        float* dst = y + ((smp * s.out_c) + ch) * ohow;
        const float* ssrc = src + smp * ohow;
        if (bias) {
          const float bv = bias[ch];
          for (std::size_t i = 0; i < ohow; ++i) dst[i] = ssrc[i] + bv;
        } else {
          std::copy(ssrc, ssrc + ohow, dst);
        }
      }
    }
  }
}

}  // namespace hetero::kernels
