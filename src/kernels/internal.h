// Cross-TU internals of the kernel layer: the fast-kind GEMM entry points
// (gemm_fast.cpp), the blocked transpose shared with the int8 eval path
// (defined in conv.cpp), and the intra-op task-grid helper. Not installed
// with the public kernels.h API.
#pragma once

#include <cstddef>
#include <functional>

#include "kernels/isa.h"
#include "kernels/kernels.h"

namespace hetero::kernels::detail {

// ------------------------------------------------------------ intra-op ----

/// Runs fn(t) for every task t in [0, tasks) — on the thread-local intra-op
/// context's workers when one is installed and the grid is worth splitting,
/// inline otherwise. Tasks must write disjoint outputs; because the grid
/// shape is fixed by the problem shape (never by the worker count), results
/// are bit-identical for any thread count (DESIGN.md §13).
template <typename Fn>
void intra_for(std::size_t tasks, double flops, Fn&& fn) {
  // Below ~1 MFLOP the fork/join overhead dominates any split.
  constexpr double kMinFlops = 1 << 20;
  const IntraOpContext& ctx = intra_op();
  if (ctx.run != nullptr && ctx.ways > 1 && tasks > 1 && flops >= kMinFlops) {
    ctx.run(tasks, std::function<void(std::size_t)>(std::forward<Fn>(fn)));
    return;
  }
  for (std::size_t t = 0; t < tasks; ++t) fn(t);
}

// ----------------------------------------------------- shared tn region ----

/// The gemm_tn inner structure: outer products reducing over m, four C rows
/// per pass sharing each streamed B row, restricted to C rows [kk0, kk0+kb)
/// and columns [j0, j0+jb). Four NAMED restrict pointers — not a pointer
/// array, and not more rows: restrict does not propagate through array
/// elements, and a wider pass pushes the vectorizer's runtime alias-check
/// count (one per write/write and write/read stream pair) past its limit,
/// silently de-vectorizing the j loop. Every C element accumulates in
/// increasing i, in f32 — the reference arithmetic — so the tiled
/// instantiation is bit-exact; the fast TU re-instantiates the same body
/// under FMA contraction.
HS_ALWAYS_INLINE void gemm_tn_region_body(const float* HS_RESTRICT a,
                                const float* HS_RESTRICT b,
                                float* HS_RESTRICT c, std::size_t m,
                                std::size_t k, std::size_t n, std::size_t kk0,
                                std::size_t kb, std::size_t j0,
                                std::size_t jb) {
  const std::size_t kend = kk0 + kb;
  std::size_t kk = kk0;
  for (; kk + 4 <= kend; kk += 4) {
    float* HS_RESTRICT c0 = c + (kk + 0) * n + j0;
    float* HS_RESTRICT c1 = c + (kk + 1) * n + j0;
    float* HS_RESTRICT c2 = c + (kk + 2) * n + j0;
    float* HS_RESTRICT c3 = c + (kk + 3) * n + j0;
    for (std::size_t i = 0; i < m; ++i) {
      const float* HS_RESTRICT arow = a + i * k + kk;
      const float a0 = arow[0], a1 = arow[1], a2 = arow[2], a3 = arow[3];
      const float* HS_RESTRICT br = b + i * n + j0;
      for (std::size_t j = 0; j < jb; ++j) {
        const float bv = br[j];
        c0[j] += a0 * bv;
        c1[j] += a1 * bv;
        c2[j] += a2 * bv;
        c3[j] += a3 * bv;
      }
    }
  }
  for (; kk < kend; ++kk) {
    float* HS_RESTRICT crow = c + kk * n + j0;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a[i * k + kk];
      const float* HS_RESTRICT br = b + i * n + j0;
      for (std::size_t j = 0; j < jb; ++j) crow[j] += av * br[j];
    }
  }
}

// ------------------------------------------------------ fast-kind GEMMs ----
// Region forms matching the tiled region functions in gemm.cpp (C already
// zeroed by the public dispatch when not accumulating; per-element
// reductions ascend), compiled in the -ffp-contract=fast TU with
// x86-64-v3 clones. gemm_nt_fast_region accumulates in f32, not f64.

void gemm_nn_fast_region(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         std::size_t i0, std::size_t ib, std::size_t j0,
                         std::size_t jb);
void gemm_nt_fast_region(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         std::size_t i0, std::size_t ib, std::size_t j0,
                         std::size_t jb, bool accumulate);
void gemm_tn_fast_region(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         std::size_t kk0, std::size_t kb, std::size_t j0,
                         std::size_t jb);

// ------------------------------------------------------------ transpose ----

/// Blocked transpose of a (rows, ld) matrix into (ld, rows) order. Defined
/// in conv.cpp (the dW packing); the int8 eval path reuses it to turn
/// patch-matrix columns into quantizable rows.
void transpose_to(const float* src, std::size_t rows, std::size_t ld,
                  float* dst);

}  // namespace hetero::kernels::detail
