// Internal ISA helpers shared by the tiled kernel translation units. Not
// installed with the public kernels.h API.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define HS_RESTRICT __restrict__
#else
#define HS_RESTRICT
#endif

#ifndef __has_attribute
#define __has_attribute(x) 0
#endif

// Helpers called from a target_clones function MUST be force-inlined into
// it: an out-of-line helper compiles for the default target only, so the
// wide clone would funnel its hot loops through baseline-ISA code. GCC
// honours always_inline across target boundaries when the callee has no
// target attribute of its own (the inlined body adopts the caller's ISA).
#if defined(__GNUC__) || defined(__clang__)
#define HS_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define HS_ALWAYS_INLINE inline
#endif

// Tiled kernels carry a runtime-dispatched AVX2 clone (GNU ifunc, picked by
// cpuid at load time). The clone list deliberately excludes "fma":
// vectorization only widens across independent output lanes and never
// reorders a per-element reduction chain, and without contraction the wide
// path computes bit-identical results to the baseline build — so the
// determinism contract holds on every CPU. Reference kernels stay on the
// baseline ISA: they are the seed loops, compiled as the seed compiled them.
#if defined(__x86_64__) && defined(__ELF__) &&            \
    __has_attribute(target_clones) &&                     \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define HS_TILED_CLONES __attribute__((target_clones("default", "avx2")))
// The fast kernels (HS_KERNEL=fast) are the opposite trade: their clone
// targets x86-64-v3 (AVX2 *and* FMA) and their translation unit compiles
// with -ffp-contract=fast, so mul+add chains fuse into FMAs. Fused
// contractions round once instead of twice, so fast results drift from the
// tiled/reference bits by a documented, parity-suite-bounded amount
// (DESIGN.md §13) — which is why they are a separate opt-in kind rather
// than a wider tiled clone.
#define HS_FAST_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define HS_TILED_CLONES
#define HS_FAST_CLONES
#endif
