// Internal ISA helpers shared by the tiled kernel translation units. Not
// installed with the public kernels.h API.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define HS_RESTRICT __restrict__
#else
#define HS_RESTRICT
#endif

#ifndef __has_attribute
#define __has_attribute(x) 0
#endif

// Tiled kernels carry a runtime-dispatched AVX2 clone (GNU ifunc, picked by
// cpuid at load time). The clone list deliberately excludes "fma":
// vectorization only widens across independent output lanes and never
// reorders a per-element reduction chain, and without contraction the wide
// path computes bit-identical results to the baseline build — so the
// determinism contract holds on every CPU. Reference kernels stay on the
// baseline ISA: they are the seed loops, compiled as the seed compiled them.
#if defined(__x86_64__) && defined(__ELF__) &&            \
    __has_attribute(target_clones) &&                     \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define HS_TILED_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define HS_TILED_CLONES
#endif
