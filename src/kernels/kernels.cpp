// Kernel dispatch (HS_KERNEL) and the plane reductions shared by
// BatchNorm2d and the SE block. The reductions keep the seed accumulation
// order and precision exactly (f64, increasing index), so routing the
// layers through them changes no results.
#include "kernels/kernels.h"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "util/config.h"

namespace hetero::kernels {

namespace {

// Unknown HS_KERNEL values used to silently mean "tiled", which turned
// typos (HS_KERNEL=Fast, HS_KERNEL=tilde) into quiet wrong-mode runs; both
// env knobs now reject anything outside their mode lists.
KernelKind kind_from_env() {
  const auto v = env_string("HS_KERNEL");
  return v ? parse_kernel_kind(*v) : KernelKind::kTiled;
}

EvalMode eval_mode_from_env() {
  const auto v = env_string("HS_EVAL");
  return v ? parse_eval_mode(*v) : EvalMode::kF32;
}

bool cache_from_env() {
  const auto v = env_string("HS_EVAL_CACHE");
  if (!v || *v == "on") return true;
  if (*v == "off") return false;
  throw std::invalid_argument("HS_EVAL_CACHE: unknown value '" + *v +
                              "' (valid values: on, off)");
}

std::atomic<KernelKind>& active_slot() {
  static std::atomic<KernelKind> slot{kind_from_env()};
  return slot;
}

std::atomic<EvalMode>& eval_slot() {
  static std::atomic<EvalMode> slot{eval_mode_from_env()};
  return slot;
}

std::atomic<bool>& cache_slot() {
  static std::atomic<bool> slot{cache_from_env()};
  return slot;
}

// Weight generation. Starts at 1 so the default Int8WeightCache stamp (0)
// can never match a live generation.
std::atomic<std::uint64_t> g_weight_version{1};

// Thread-local intra-op / eval-scope state. Plain thread_locals: both are
// strictly scope-managed (RAII installs/restores) and never observed from
// another thread.
thread_local IntraOpContext t_intra_op;
thread_local int t_eval_depth = 0;

}  // namespace

KernelKind active_kernel() {
  return active_slot().load(std::memory_order_relaxed);
}

void set_active_kernel(KernelKind kind) {
  active_slot().store(kind, std::memory_order_relaxed);
}

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kReference:
      return "reference";
    case KernelKind::kFast:
      return "fast";
    default:
      return "tiled";
  }
}

KernelKind parse_kernel_kind(const std::string& value) {
  if (value == "reference") return KernelKind::kReference;
  if (value == "tiled") return KernelKind::kTiled;
  if (value == "fast") return KernelKind::kFast;
  throw std::invalid_argument("HS_KERNEL: unknown kernel kind '" + value +
                              "' (valid modes: reference, tiled, fast)");
}

EvalMode eval_mode() { return eval_slot().load(std::memory_order_relaxed); }

void set_eval_mode(EvalMode mode) {
  eval_slot().store(mode, std::memory_order_relaxed);
}

const char* eval_mode_name(EvalMode mode) {
  return mode == EvalMode::kInt8 ? "int8" : "f32";
}

EvalMode parse_eval_mode(const std::string& value) {
  if (value == "f32") return EvalMode::kF32;
  if (value == "int8") return EvalMode::kInt8;
  throw std::invalid_argument("HS_EVAL: unknown eval mode '" + value +
                              "' (valid modes: f32, int8)");
}

EvalScope::EvalScope() { ++t_eval_depth; }
EvalScope::~EvalScope() { --t_eval_depth; }

bool int8_eval_active() {
  return t_eval_depth > 0 && eval_mode() == EvalMode::kInt8;
}

std::uint64_t weight_version() {
  return g_weight_version.load(std::memory_order_relaxed);
}

void bump_weight_version() {
  g_weight_version.fetch_add(1, std::memory_order_relaxed);
}

bool int8_cache_enabled() {
  return cache_slot().load(std::memory_order_relaxed);
}

void set_int8_cache_enabled(bool enabled) {
  cache_slot().store(enabled, std::memory_order_relaxed);
}

const IntraOpContext& intra_op() { return t_intra_op; }

ScopedIntraOp::ScopedIntraOp(
    std::function<void(std::size_t, const std::function<void(std::size_t)>&)>
        run,
    std::size_t ways)
    : saved_(std::move(t_intra_op)) {
  t_intra_op.run = std::move(run);
  t_intra_op.ways = ways;
}

ScopedIntraOp::~ScopedIntraOp() { t_intra_op = std::move(saved_); }

void plane_moments(const float* p, std::size_t count, double& sum,
                   double& sumsq) {
  double s = sum, sq = sumsq;
  for (std::size_t i = 0; i < count; ++i) {
    s += p[i];
    sq += static_cast<double>(p[i]) * p[i];
  }
  sum = s;
  sumsq = sq;
}

void bn_normalize_plane(const float* src, float* dst, float* xhat,
                        std::size_t count, float mean, float inv, float g,
                        float b) {
  for (std::size_t i = 0; i < count; ++i) {
    const float xh = (src[i] - mean) * inv;
    if (xhat) xhat[i] = xh;
    dst[i] = g * xh + b;
  }
}

void bn_reduce_plane(const float* dy, const float* xh, std::size_t count,
                     double& sum_dy, double& sum_dy_xhat) {
  double s = sum_dy, sx = sum_dy_xhat;
  for (std::size_t i = 0; i < count; ++i) {
    s += dy[i];
    sx += static_cast<double>(dy[i]) * xh[i];
  }
  sum_dy = s;
  sum_dy_xhat = sx;
}

void bn_apply_plane(const float* dy, const float* xh, float* dx,
                    std::size_t count, float g_inv, float k1, float k2) {
  for (std::size_t i = 0; i < count; ++i) {
    dx[i] = g_inv * (dy[i] - k1 - xh[i] * k2);
  }
}

void scale_plane(float* plane, std::size_t count, float s) {
  for (std::size_t i = 0; i < count; ++i) plane[i] *= s;
}

double se_backward_plane(const float* dy, const float* x, float* dx,
                         std::size_t count, float g) {
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += static_cast<double>(dy[i]) * x[i];
    dx[i] = dy[i] * g;
  }
  return acc;
}

}  // namespace hetero::kernels
