// Kernel dispatch (HS_KERNEL) and the plane reductions shared by
// BatchNorm2d and the SE block. The reductions keep the seed accumulation
// order and precision exactly (f64, increasing index), so routing the
// layers through them changes no results.
#include "kernels/kernels.h"

#include <atomic>

#include "util/config.h"

namespace hetero::kernels {

namespace {

KernelKind kind_from_env() {
  const auto v = env_string("HS_KERNEL");
  if (v && *v == "reference") return KernelKind::kReference;
  return KernelKind::kTiled;
}

std::atomic<KernelKind>& active_slot() {
  static std::atomic<KernelKind> slot{kind_from_env()};
  return slot;
}

}  // namespace

KernelKind active_kernel() {
  return active_slot().load(std::memory_order_relaxed);
}

void set_active_kernel(KernelKind kind) {
  active_slot().store(kind, std::memory_order_relaxed);
}

const char* kernel_name(KernelKind kind) {
  return kind == KernelKind::kReference ? "reference" : "tiled";
}

void plane_moments(const float* p, std::size_t count, double& sum,
                   double& sumsq) {
  double s = sum, sq = sumsq;
  for (std::size_t i = 0; i < count; ++i) {
    s += p[i];
    sq += static_cast<double>(p[i]) * p[i];
  }
  sum = s;
  sumsq = sq;
}

void bn_normalize_plane(const float* src, float* dst, float* xhat,
                        std::size_t count, float mean, float inv, float g,
                        float b) {
  for (std::size_t i = 0; i < count; ++i) {
    const float xh = (src[i] - mean) * inv;
    if (xhat) xhat[i] = xh;
    dst[i] = g * xh + b;
  }
}

void bn_reduce_plane(const float* dy, const float* xh, std::size_t count,
                     double& sum_dy, double& sum_dy_xhat) {
  double s = sum_dy, sx = sum_dy_xhat;
  for (std::size_t i = 0; i < count; ++i) {
    s += dy[i];
    sx += static_cast<double>(dy[i]) * xh[i];
  }
  sum_dy = s;
  sum_dy_xhat = sx;
}

void bn_apply_plane(const float* dy, const float* xh, float* dx,
                    std::size_t count, float g_inv, float k1, float k2) {
  for (std::size_t i = 0; i < count; ++i) {
    dx[i] = g_inv * (dy[i] - k1 - xh[i] * k2);
  }
}

void scale_plane(float* plane, std::size_t count, float s) {
  for (std::size_t i = 0; i < count; ++i) plane[i] *= s;
}

double se_backward_plane(const float* dy, const float* x, float* dx,
                         std::size_t count, float g) {
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += static_cast<double>(dy[i]) * x[i];
    dx[i] = dy[i] * g;
  }
  return acc;
}

}  // namespace hetero::kernels
