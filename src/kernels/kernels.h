// Batched, cache-blocked compute kernels for the training hot paths.
//
// This layer sits below src/tensor and src/nn: it works on raw float
// buffers only, so the NN layers can run their hot loops without
// constructing intermediate Tensors. Two implementations of every GEMM and
// convolution entry point are kept:
//
//   * kReference — the original scalar loops, byte-for-byte the seed
//     implementation. The oracle for the parity tests.
//   * kTiled     — cache-blocked, register-tiled loops with branch-free,
//     vectorizable inner kernels, and batched convolution (one im2col +
//     one GEMM per layer per group for the whole mini-batch instead of
//     per sample).
//   * kFast      — the tiled structure recompiled for x86-64-v3 with FMA
//     contraction and f32 nt accumulators: faster, but with documented
//     drift against tiled/reference (DESIGN.md §13; the parity suite
//     bounds it per layer). Opt-in via HS_KERNEL=fast.
//
// Determinism contract (DESIGN.md §9/§13): for a fixed kernel kind, results
// are bit-identical run-to-run and across thread counts — including any
// intra-op worker count (ScopedIntraOp below): GEMMs split over a task grid
// fixed by the problem shape, each task owning a disjoint output region
// whose per-element reduction chains are untouched. The tiled GEMMs reduce
// over k in increasing order with the same accumulation precision as the
// reference loops, so gemm_nn / gemm_nt / gemm_tn — and therefore
// conv2d_forward and the conv input gradient — are bit-identical across the
// reference and tiled kinds for finite inputs. The only reference↔tiled
// drift is the convolution weight/bias gradient for batch sizes > 1, where
// batching replaces per-sample rounding with one reduction over the whole
// batch (called out in DESIGN.md §9; parity tests bound it).
//
// HS_KERNEL=reference|tiled|fast selects the process default (tiled when
// unset; any other value is rejected with an error listing the valid
// modes); set_active_kernel() overrides it programmatically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "kernels/workspace.h"

namespace hetero::kernels {

enum class KernelKind { kReference, kTiled, kFast };

/// Process-wide kernel selection: HS_KERNEL env var on first use
/// ("reference", "tiled" or "fast"; unset means tiled, anything else
/// throws), overridable at runtime via set_active_kernel(). Thread-safe.
KernelKind active_kernel();
void set_active_kernel(KernelKind kind);
const char* kernel_name(KernelKind kind);

/// Strict mode parsing: returns the kind for "reference" / "tiled" /
/// "fast", throws std::invalid_argument listing the valid modes otherwise.
KernelKind parse_kernel_kind(const std::string& value);

// ------------------------------------------------- forward-only eval mode --
// HS_EVAL selects how inference-only passes (server-side eval and
// HeteroSwitch's per-round L_init probe) run: "f32" (default) keeps the
// active kernel kind; "int8" dynamically quantizes Linear and Conv2d
// forwards (per-channel scales, i32 dot, f32 dequant). Training passes are
// never quantized: the mode only applies inside an EvalScope, which
// fl/eval.cpp installs around its batched forward loop.

enum class EvalMode { kF32, kInt8 };

/// Process-wide eval-mode selection: HS_EVAL env var on first use ("f32" or
/// "int8"; unset means f32, anything else throws), overridable at runtime
/// via set_eval_mode(). Thread-safe.
EvalMode eval_mode();
void set_eval_mode(EvalMode mode);
const char* eval_mode_name(EvalMode mode);

/// Strict mode parsing: "f32" / "int8" or std::invalid_argument.
EvalMode parse_eval_mode(const std::string& value);

/// Marks the calling thread as running a forward-only eval pass for the
/// scope's lifetime (re-entrant). While active — and only then — an int8
/// eval mode reroutes Linear/Conv2d forwards to the quantized kernels.
class EvalScope {
 public:
  EvalScope();
  ~EvalScope();
  EvalScope(const EvalScope&) = delete;
  EvalScope& operator=(const EvalScope&) = delete;
};

/// True when eval_mode() == kInt8 and the calling thread is inside an
/// EvalScope.
bool int8_eval_active();

// ------------------------------------------------ int8 weight-code cache --
// The int8 eval path used to re-quantize every layer's weight matrix on
// every eval batch even though the weights cannot change mid-eval. The
// layers now keep the quantized weight codes in their Workspace and stamp
// them with the process-wide weight generation below; the quantize is
// skipped while the stamp matches. Any mutation of trained parameters
// (Sgd::step, Model::set_params/set_state) bumps the generation, so a
// stale code block can never be served.

/// Current weight generation (starts at 1, monotone). Thread-safe.
std::uint64_t weight_version();

/// Marks all cached weight codes stale. Called by every parameter-mutating
/// entry point; cheap enough (one relaxed atomic increment) to sit on the
/// training hot path.
void bump_weight_version();

/// HS_EVAL_CACHE env knob: "on" (default) / "off"; anything else throws.
/// Off forces the pre-cache behavior (re-quantize every call) — useful to
/// rule the cache out when debugging quantized-eval drift.
bool int8_cache_enabled();
void set_int8_cache_enabled(bool enabled);

/// Per-layer stamp for the quantized weight codes held in the layer's
/// Workspace (slots kSlotQa/kSlotSa of the int8 kernels). version 0 means
/// empty. Copies start cold, exactly like Workspace: a cloned layer's
/// workspace has no codes, so its stamp must not claim otherwise.
struct Int8WeightCache {
  std::uint64_t version = 0;  ///< weight_version() at quantize time; 0=empty
  std::size_t elems = 0;      ///< weight element count at quantize time

  Int8WeightCache() = default;
  Int8WeightCache(const Int8WeightCache&) {}
  Int8WeightCache& operator=(const Int8WeightCache&) { return *this; }
};

// ---------------------------------------------------- intra-op parallelism --
// A thread-local context carrying an optional worker handle (type-erased so
// this layer never depends on src/runtime). While installed, large GEMMs
// and conv lowerings split their fixed task grids across it; results stay
// bit-identical to the serial run for any worker count because block
// ownership is a function of the problem shape alone (DESIGN.md §13).

struct IntraOpContext {
  /// Runs fn(t) for every t in [0, tasks), in any order, possibly
  /// concurrently, and returns when all calls finished. Null → serial.
  std::function<void(std::size_t, const std::function<void(std::size_t)>&)>
      run;
  /// Workers behind `run` (1 → serial; contexts with ways <= 1 are ignored).
  std::size_t ways = 1;
};

/// The calling thread's current intra-op context (a serial default when no
/// ScopedIntraOp is live).
const IntraOpContext& intra_op();

/// Installs an intra-op context on the calling thread for the scope's
/// lifetime, restoring the previous one on exit. The context is
/// deliberately not inherited by the workers `run` fans out to, so nested
/// kernel calls inside a task run serially (no fork-bomb, no pool
/// deadlock).
class ScopedIntraOp {
 public:
  ScopedIntraOp(
      std::function<void(std::size_t,
                         const std::function<void(std::size_t)>&)> run,
      std::size_t ways);
  ~ScopedIntraOp();
  ScopedIntraOp(const ScopedIntraOp&) = delete;
  ScopedIntraOp& operator=(const ScopedIntraOp&) = delete;

 private:
  IntraOpContext saved_;
};

// ---------------------------------------------------------------- GEMM ----
// All shapes are row-major. When `accumulate` is true the result is added
// onto C (which must be initialized); otherwise C is overwritten.

/// C(m,n) = A(m,k) · B(k,n). f32 accumulation, increasing k.
void gemm_nn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate);

/// C(m,n) = A(m,k) · B(n,k)^T. f64 accumulation per element, increasing k.
void gemm_nt(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate);

/// C(k,n) = A(m,k)^T · B(m,n). f32 accumulation, increasing m.
void gemm_tn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate);

// --------------------------------------------------------- Convolution ----

/// Geometry of a batched, grouped 2-D convolution (cross-correlation).
struct ConvShape {
  std::size_t n = 1;            ///< batch size
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0;
  std::size_t kernel = 1, stride = 1, pad = 0;
  std::size_t groups = 1;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  std::size_t group_in_c() const { return in_c / groups; }
  std::size_t group_out_c() const { return out_c / groups; }
  /// Rows of a group's im2col matrix: (in_c/groups) * kernel * kernel.
  std::size_t patch() const { return group_in_c() * kernel * kernel; }
  /// Floats needed to retain the batched patch matrices of all groups.
  std::size_t cols_size() const {
    return groups * patch() * n * out_h() * out_w();
  }
};

/// Unfolds image `img` (c,h,w sub-view described by `s`, channels
/// [c0, c0+s.group_in_c())) into patch-matrix columns. The destination has
/// leading dimension `ld` (floats between consecutive rows) and the window
/// columns are written starting at column `col0`. Out-of-bounds (padding)
/// samples read as zero.
void im2col_strided(const float* img, const ConvShape& s, std::size_t c0,
                    float* dst, std::size_t ld, std::size_t col0);

/// Adjoint of im2col_strided: folds patch-matrix columns [col0, col0+ohw)
/// of `src` (leading dimension `ld`) back into image channels [c0, ...),
/// accumulating overlapping contributions onto `img` (not zeroed here).
void col2im_strided_add(const float* src, const ConvShape& s, std::size_t c0,
                        std::size_t ld, std::size_t col0, float* img);

/// Batched grouped convolution forward: y(n,out_c,oh,ow) = x * w (+ bias).
/// w is (out_c, in_c/groups, k, k); bias is (out_c) or nullptr. When
/// `cols_retained` is non-null it receives the batched per-group patch
/// matrices (ConvShape::cols_size() floats, caller-stable until backward);
/// otherwise scratch from `ws` is used. Allocation-free in steady state.
void conv2d_forward(KernelKind kind, const ConvShape& s, const float* x,
                    const float* w, const float* bias, float* y,
                    float* cols_retained, Workspace& ws);

/// Batched grouped convolution backward. Inputs: grad_out (n,out_c,oh,ow),
/// weights w, and the patch matrices retained by conv2d_forward. Outputs:
/// gw (+=, shape of w), gb (+= per-channel sums, nullptr to skip), and
/// grad_in (n,in_c,h,w), which must be zero-initialized — the fold-back
/// accumulates straight into it (no intermediate image). Allocation-free in
/// steady state.
void conv2d_backward(KernelKind kind, const ConvShape& s,
                     const float* grad_out, const float* w, const float* cols,
                     float* gw, float* gb, float* grad_in, Workspace& ws);

// ----------------------------------------------- Row/plane reductions ----
// Shared by BatchNorm2d and the SE block: contiguous-plane reductions and
// affine maps with pinned accumulation order (f64, increasing index), so
// moving them here changes no results.

/// sum += Σ p[i]; sumsq += Σ p[i]².
void plane_moments(const float* p, std::size_t count, double& sum,
                   double& sumsq);

/// dst[i] = g * (src[i] - mean) * inv + b; optionally records the
/// normalized value in xhat (pass nullptr to skip).
void bn_normalize_plane(const float* src, float* dst, float* xhat,
                        std::size_t count, float mean, float inv, float g,
                        float b);

/// sum_dy += Σ dy[i]; sum_dy_xhat += Σ dy[i]·xh[i].
void bn_reduce_plane(const float* dy, const float* xh, std::size_t count,
                     double& sum_dy, double& sum_dy_xhat);

/// dx[i] = g_inv * (dy[i] - k1 - xh[i] * k2).
void bn_apply_plane(const float* dy, const float* xh, float* dx,
                    std::size_t count, float g_inv, float k1, float k2);

/// plane[i] *= s.
void scale_plane(float* plane, std::size_t count, float s);

/// Fused SE-gate backward on one plane: dx[i] = dy[i] * g and returns
/// Σ dy[i]·x[i] in f64.
double se_backward_plane(const float* dy, const float* x, float* dx,
                         std::size_t count, float g);

// ------------------------------------------- int8 dynamic-quantized eval ----
// Forward-only inference kernels for HS_EVAL=int8: symmetric per-row
// dynamic quantization (scale = amax/127), int8×int8→i32 dot products
// (integer adds are exact, so the i32 reduction is associativity-free), and
// f32 dequantization. Used by the nn layers only while int8_eval_active().

/// Quantizes each row of a (rows, cols) f32 matrix to int8 with its own
/// symmetric scale: scales[r] = amax(row r)/127, q = round(src/scale)
/// clamped to ±127. An all-zero row gets scale 0 (and all-zero codes).
void quantize_rows_int8(const float* src, std::size_t rows, std::size_t cols,
                        std::int8_t* q, float* scales);

/// C(m,n) with c[i,j] = f32(dot_i32(aq row i, bq row j)) * sa[i] * sb[j].
/// Overwrites C. Rows of both operands are length k.
void gemm_nt_int8(const std::int8_t* aq, const float* sa,
                  const std::int8_t* bq, const float* sb, float* c,
                  std::size_t m, std::size_t k, std::size_t n);

/// Quantized Linear forward: y(n, out) = q(x)·q(w)^T dequantized (+ bias
/// when non-null). Per-sample input scales, per-out-feature weight scales.
/// When `wcache` is non-null and the cache knob is on, the weight codes are
/// reused across calls until the weight generation bumps (bit-identical to
/// re-quantizing: the codes are a pure function of the weight bytes).
void linear_forward_int8(const float* x, const float* w, const float* bias,
                         float* y, std::size_t n, std::size_t in,
                         std::size_t out, Workspace& ws,
                         Int8WeightCache* wcache = nullptr);

/// Quantized Conv2d forward over the batched im2col lowering: per-output-
/// pixel patch scales, per-out-channel weight scales, f32 bias fused into
/// the scatter. Depthwise layers (one in/out channel per group) fall back
/// to the f32 tiled planes — a 9-tap per-channel pass gains nothing from
/// quantization. Allocation-free in steady state (all scratch via `ws`).
void conv2d_forward_int8(const ConvShape& s, const float* x, const float* w,
                         const float* bias, float* y, Workspace& ws,
                         Int8WeightCache* wcache = nullptr);

}  // namespace hetero::kernels
