// Batched, cache-blocked compute kernels for the training hot paths.
//
// This layer sits below src/tensor and src/nn: it works on raw float
// buffers only, so the NN layers can run their hot loops without
// constructing intermediate Tensors. Two implementations of every GEMM and
// convolution entry point are kept:
//
//   * kReference — the original scalar loops, byte-for-byte the seed
//     implementation. The oracle for the parity tests.
//   * kTiled     — cache-blocked, register-tiled loops with branch-free,
//     vectorizable inner kernels, and batched convolution (one im2col +
//     one GEMM per layer per group for the whole mini-batch instead of
//     per sample).
//
// Determinism contract (DESIGN.md §9): for a fixed kernel kind, results are
// bit-identical run-to-run and across thread counts. In addition the tiled
// GEMMs reduce over k in increasing order with the same accumulation
// precision as the reference loops, so gemm_nn / gemm_nt / gemm_tn — and
// therefore conv2d_forward and the conv input gradient — are bit-identical
// across kernel kinds for finite inputs. The only cross-kernel drift is the
// convolution weight/bias gradient for batch sizes > 1, where batching
// replaces per-sample rounding with one reduction over the whole batch
// (called out in DESIGN.md §9; parity tests bound it).
//
// HS_KERNEL=reference|tiled selects the process default (tiled when unset);
// set_active_kernel() overrides it programmatically for tests and benches.
#pragma once

#include <cstddef>

#include "kernels/workspace.h"

namespace hetero::kernels {

enum class KernelKind { kReference, kTiled };

/// Process-wide kernel selection: HS_KERNEL env var on first use
/// ("reference" or "tiled"; anything else, including unset, means tiled),
/// overridable at runtime via set_active_kernel(). Thread-safe.
KernelKind active_kernel();
void set_active_kernel(KernelKind kind);
const char* kernel_name(KernelKind kind);

// ---------------------------------------------------------------- GEMM ----
// All shapes are row-major. When `accumulate` is true the result is added
// onto C (which must be initialized); otherwise C is overwritten.

/// C(m,n) = A(m,k) · B(k,n). f32 accumulation, increasing k.
void gemm_nn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate);

/// C(m,n) = A(m,k) · B(n,k)^T. f64 accumulation per element, increasing k.
void gemm_nt(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate);

/// C(k,n) = A(m,k)^T · B(m,n). f32 accumulation, increasing m.
void gemm_tn(KernelKind kind, const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, bool accumulate);

// --------------------------------------------------------- Convolution ----

/// Geometry of a batched, grouped 2-D convolution (cross-correlation).
struct ConvShape {
  std::size_t n = 1;            ///< batch size
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0;
  std::size_t kernel = 1, stride = 1, pad = 0;
  std::size_t groups = 1;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  std::size_t group_in_c() const { return in_c / groups; }
  std::size_t group_out_c() const { return out_c / groups; }
  /// Rows of a group's im2col matrix: (in_c/groups) * kernel * kernel.
  std::size_t patch() const { return group_in_c() * kernel * kernel; }
  /// Floats needed to retain the batched patch matrices of all groups.
  std::size_t cols_size() const {
    return groups * patch() * n * out_h() * out_w();
  }
};

/// Unfolds image `img` (c,h,w sub-view described by `s`, channels
/// [c0, c0+s.group_in_c())) into patch-matrix columns. The destination has
/// leading dimension `ld` (floats between consecutive rows) and the window
/// columns are written starting at column `col0`. Out-of-bounds (padding)
/// samples read as zero.
void im2col_strided(const float* img, const ConvShape& s, std::size_t c0,
                    float* dst, std::size_t ld, std::size_t col0);

/// Adjoint of im2col_strided: folds patch-matrix columns [col0, col0+ohw)
/// of `src` (leading dimension `ld`) back into image channels [c0, ...),
/// accumulating overlapping contributions onto `img` (not zeroed here).
void col2im_strided_add(const float* src, const ConvShape& s, std::size_t c0,
                        std::size_t ld, std::size_t col0, float* img);

/// Batched grouped convolution forward: y(n,out_c,oh,ow) = x * w (+ bias).
/// w is (out_c, in_c/groups, k, k); bias is (out_c) or nullptr. When
/// `cols_retained` is non-null it receives the batched per-group patch
/// matrices (ConvShape::cols_size() floats, caller-stable until backward);
/// otherwise scratch from `ws` is used. Allocation-free in steady state.
void conv2d_forward(KernelKind kind, const ConvShape& s, const float* x,
                    const float* w, const float* bias, float* y,
                    float* cols_retained, Workspace& ws);

/// Batched grouped convolution backward. Inputs: grad_out (n,out_c,oh,ow),
/// weights w, and the patch matrices retained by conv2d_forward. Outputs:
/// gw (+=, shape of w), gb (+= per-channel sums, nullptr to skip), and
/// grad_in (n,in_c,h,w), which must be zero-initialized — the fold-back
/// accumulates straight into it (no intermediate image). Allocation-free in
/// steady state.
void conv2d_backward(KernelKind kind, const ConvShape& s,
                     const float* grad_out, const float* w, const float* cols,
                     float* gw, float* gb, float* grad_in, Workspace& ws);

// ----------------------------------------------- Row/plane reductions ----
// Shared by BatchNorm2d and the SE block: contiguous-plane reductions and
// affine maps with pinned accumulation order (f64, increasing index), so
// moving them here changes no results.

/// sum += Σ p[i]; sumsq += Σ p[i]².
void plane_moments(const float* p, std::size_t count, double& sum,
                   double& sumsq);

/// dst[i] = g * (src[i] - mean) * inv + b; optionally records the
/// normalized value in xhat (pass nullptr to skip).
void bn_normalize_plane(const float* src, float* dst, float* xhat,
                        std::size_t count, float mean, float inv, float g,
                        float b);

/// sum_dy += Σ dy[i]; sum_dy_xhat += Σ dy[i]·xh[i].
void bn_reduce_plane(const float* dy, const float* xh, std::size_t count,
                     double& sum_dy, double& sum_dy_xhat);

/// dx[i] = g_inv * (dy[i] - k1 - xh[i] * k2).
void bn_apply_plane(const float* dy, const float* xh, float* dx,
                    std::size_t count, float g_inv, float k1, float k2);

/// plane[i] *= s.
void scale_plane(float* plane, std::size_t count, float s);

/// Fused SE-gate backward on one plane: dx[i] = dy[i] * g and returns
/// Σ dy[i]·x[i] in f64.
double se_backward_plane(const float* dy, const float* x, float* dx,
                         std::size_t count, float g);

}  // namespace hetero::kernels
