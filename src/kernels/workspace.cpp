#include "kernels/workspace.h"

#include <atomic>

namespace hetero::kernels {

namespace {
std::atomic<std::uint64_t> g_grow_count{0};
}  // namespace

float* Workspace::get(std::size_t slot, std::size_t count) {
  if (slot >= slots_.size()) {
    slots_.resize(slot + 1);
  }
  std::vector<float>& buf = slots_[slot];
  if (buf.size() < count) {
    buf.resize(count);
    g_grow_count.fetch_add(1, std::memory_order_relaxed);
  }
  return buf.data();
}

void Workspace::clear() { slots_.clear(); }

std::uint64_t Workspace::grow_count() {
  return g_grow_count.load(std::memory_order_relaxed);
}

}  // namespace hetero::kernels
