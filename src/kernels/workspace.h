// Workspace arena for the compute-kernel layer.
//
// A Workspace is a small set of named slots backed by monotonically growing
// float buffers. Layers own one Workspace each and route every scratch
// tensor of their forward/backward passes (im2col matrices, gathered
// gradient slabs, GEMM temporaries) through it, so a steady-state training
// step — same shapes as the previous step — performs no heap allocation in
// the conv/linear paths. The parallel client runtime (src/runtime) clones
// one model replica per worker thread, so a Workspace is only ever used by
// one thread at a time and needs no locking.
//
// grow_count() is a process-wide counter of slot (re)allocations; the
// kernel parity tests assert it stays flat across warmed-up training steps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hetero::kernels {

class Workspace {
 public:
  Workspace() = default;
  // A workspace is scratch: copies of a layer start cold.
  Workspace(const Workspace&) {}
  Workspace& operator=(const Workspace&) { return *this; }

  /// Returns a buffer of at least `count` floats for `slot`, growing the
  /// backing store when needed. Contents persist between calls that do not
  /// grow the slot (forward passes retain im2col matrices for backward this
  /// way); callers must not rely on the initial values.
  float* get(std::size_t slot, std::size_t count);

  /// Releases every slot's backing store.
  void clear();

  /// Process-wide number of slot allocations/growths since start-up.
  static std::uint64_t grow_count();

 private:
  std::vector<std::vector<float>> slots_;
};

}  // namespace hetero::kernels
