#include "net/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace hetero::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 address: " + host);
  }
  return addr;
}

// Conn ids ride in epoll_event.data.u64; the listener uses a sentinel.
constexpr std::uint64_t kListenerTag = ~0ull;

}  // namespace

EventLoop::EventLoop(std::size_t max_payload) : max_payload_(max_payload) {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
}

EventLoop::~EventLoop() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::size_t EventLoop::add_conn(int fd) {
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::size_t id = next_conn_++;
  Conn conn;
  conn.fd = fd;
  conn.parser = FrameParser(max_payload_);
  conns_.emplace(id, std::move(conn));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    conns_.erase(id);
    ::close(fd);
    throw_errno("epoll_ctl(ADD)");
  }
  return id;
}

void EventLoop::update_interest(std::size_t conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  const bool want_write = c.out.size() > c.out_off;
  if (want_write == c.want_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  c.want_write = want_write;
}

void EventLoop::listen(const std::string& host, std::uint16_t port) {
  if (listen_fd_ >= 0) throw std::runtime_error("EventLoop: already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind " + host);
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen");
  }
  set_nonblocking(fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    throw_errno("epoll_ctl(ADD listener)");
  }
  listen_fd_ = fd;
}

std::size_t EventLoop::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect " + host);
  }
  return add_conn(fd);
}

void EventLoop::send(std::size_t conn, FrameType type,
                     const std::vector<std::uint8_t>& payload) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;  // already closed; drop silently
  Conn& c = it->second;
  const std::vector<std::uint8_t> frame =
      encode_frame(type, run_, c.next_seq++, payload);
  ++counters_.frames_tx;
  counters_.bytes_tx += frame.size();
  c.out.insert(c.out.end(), frame.begin(), frame.end());
  flush_writes(conn);
}

void EventLoop::flush_writes(std::size_t conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::write(c.fd, c.out.data() + c.out_off,
                              c.out.size() - c.out_off);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn);
    return;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  }
  update_interest(conn);
}

void EventLoop::read_ready(std::size_t conn) {
  std::uint8_t buf[64 * 1024];
  while (true) {
    auto it = conns_.find(conn);
    if (it == conns_.end()) return;  // handler closed it mid-dispatch
    const ssize_t n = ::read(it->second.fd, buf, sizeof(buf));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {  // error or orderly peer shutdown
      close_conn(conn);
      return;
    }
    counters_.bytes_rx += static_cast<std::uint64_t>(n);
    it->second.parser.feed(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (true) {
      it = conns_.find(conn);
      if (it == conns_.end()) return;
      if (!it->second.parser.next(frame)) break;
      ++counters_.frames_rx;
      if (handler_) handler_(conn, frame);
    }
    it = conns_.find(conn);
    if (it == conns_.end()) return;
    if (it->second.parser.quarantined()) {
      ++counters_.frames_bad;
      ++counters_.conns_quarantined;
      close_conn(conn);
      return;
    }
  }
}

void EventLoop::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; keep serving
    }
    const std::size_t id = add_conn(fd);
    if (accept_handler_) accept_handler_(id);
  }
}

void EventLoop::close_conn(std::size_t conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  if (closed_handler_) closed_handler_(conn);
}

bool EventLoop::all_flushed() const {
  for (const auto& [id, conn] : conns_) {
    if (conn.out.size() > conn.out_off) return false;
  }
  return true;
}

bool EventLoop::run(const std::function<bool()>& done) {
  epoll_event events[64];
  while (true) {
    if (done && done() && all_flushed()) return true;
    if (conns_.empty() && listen_fd_ < 0) return done && done();
    const int n = ::epoll_wait(epoll_fd_, events, 64, 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kListenerTag) {
        accept_ready();
        continue;
      }
      const std::size_t conn = static_cast<std::size_t>(events[i].data.u64);
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // Drain what the kernel still has before closing on hangup.
        read_ready(conn);
        close_conn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) read_ready(conn);
      if (events[i].events & EPOLLOUT) flush_writes(conn);
    }
  }
}

}  // namespace hetero::net
