// Single-threaded epoll event loop: the socket transport behind
// `hsctl serve / client / edge` (DESIGN.md §14).
//
// The loop owns the sockets, the per-connection FrameParsers, and the write
// buffers; the protocol nodes (net/node.h) stay sans-io and see only
// (conn id, Frame) pairs. One thread, no locks: reads, writes, accepts, and
// node callbacks all interleave on the caller of run().
//
// Malformed input never reaches a node: the first bad frame on a connection
// quarantines its parser, bumps NetCounters::frames_bad /
// conns_quarantined, and closes the socket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/node.h"

namespace hetero::net {

class EventLoop : public FrameSink {
 public:
  using Handler = std::function<void(std::size_t conn, const Frame&)>;
  using ConnHandler = std::function<void(std::size_t conn)>;

  explicit EventLoop(std::size_t max_payload = kDefaultMaxPayload);
  ~EventLoop() override;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Frame delivery; required before run().
  void set_handler(Handler handler) { handler_ = std::move(handler); }
  /// Inbound connection accepted (server side).
  void set_accept_handler(ConnHandler handler) {
    accept_handler_ = std::move(handler);
  }
  /// Connection closed (peer hangup, error, or quarantine).
  void set_closed_handler(ConnHandler handler) {
    closed_handler_ = std::move(handler);
  }

  /// Run id stamped into every outgoing frame header (default 1).
  void set_run_id(std::uint64_t run) { run_ = run; }

  /// Starts accepting on host:port. Throws std::runtime_error on failure
  /// (e.g. sandboxed environments without bind permission).
  void listen(const std::string& host, std::uint16_t port);

  /// Connects to host:port (blocking handshake, then nonblocking I/O).
  /// Returns the new conn id; throws std::runtime_error on failure.
  std::size_t connect(const std::string& host, std::uint16_t port);

  /// FrameSink: stamps run/seq, writes what the socket accepts now, and
  /// buffers the rest for the loop to flush.
  void send(std::size_t conn, FrameType type,
            const std::vector<std::uint8_t>& payload) override;

  /// Pumps I/O until `done` returns true and every write buffer is flushed.
  /// Returns false when the loop ran out of connections first.
  bool run(const std::function<bool()>& done);

  void close_conn(std::size_t conn);
  std::size_t open_conns() const { return conns_.size(); }
  const NetCounters& counters() const { return counters_; }

 private:
  struct Conn {
    int fd = -1;
    FrameParser parser;
    std::vector<std::uint8_t> out;  ///< unflushed outgoing bytes
    std::size_t out_off = 0;
    std::uint64_t next_seq = 0;
    bool want_write = false;
  };

  std::size_t add_conn(int fd);
  void update_interest(std::size_t conn);
  void flush_writes(std::size_t conn);
  void read_ready(std::size_t conn);
  void accept_ready();
  bool all_flushed() const;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::size_t max_payload_;
  std::uint64_t run_ = 1;
  std::size_t next_conn_ = 0;
  std::map<std::size_t, Conn> conns_;
  Handler handler_;
  ConnHandler accept_handler_;
  ConnHandler closed_handler_;
  NetCounters counters_;
};

}  // namespace hetero::net
