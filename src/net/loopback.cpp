#include "net/loopback.h"

#include <functional>
#include <memory>
#include <utility>

namespace hetero::net {
namespace {

/// HS_CHECK takes a literal; node failures carry a dynamic error string.
void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// One direction of one connection: sender-stamped frames accumulate in
/// `bytes` until the pump feeds them through the receiver's parser.
struct Channel {
  std::size_t dst_endpoint = 0;
  std::size_t dst_conn = 0;
  std::uint64_t next_seq = 0;
  std::vector<std::uint8_t> bytes;
  FrameParser parser{kDefaultMaxPayload};
  bool counted_bad = false;
};

class LoopbackHub;

/// Per-endpoint FrameSink: maps the endpoint's local conn ids onto the
/// hub's outgoing channels and owns the run/seq stamping.
class HubSink : public FrameSink {
 public:
  HubSink(LoopbackHub& hub, std::size_t endpoint)
      : hub_(hub), endpoint_(endpoint) {}
  void send(std::size_t conn, FrameType type,
            const std::vector<std::uint8_t>& payload) override;

 private:
  LoopbackHub& hub_;
  std::size_t endpoint_;
};

class LoopbackHub {
 public:
  explicit LoopbackHub(NetCounters& counters) : counters_(counters) {}

  std::size_t add_endpoint() {
    endpoints_.push_back(Endpoint{});
    endpoints_.back().sink =
        std::make_unique<HubSink>(*this, endpoints_.size() - 1);
    return endpoints_.size() - 1;
  }

  void set_handler(std::size_t endpoint,
                   std::function<void(std::size_t, const Frame&)> handler) {
    endpoints_[endpoint].handler = std::move(handler);
  }

  FrameSink& sink(std::size_t endpoint) { return *endpoints_[endpoint].sink; }

  /// Connects two endpoints with a bidirectional byte pipe; returns the
  /// local conn ids (at a, at b).
  std::pair<std::size_t, std::size_t> connect(std::size_t a, std::size_t b) {
    const std::size_t conn_a = endpoints_[a].out.size();
    const std::size_t conn_b = endpoints_[b].out.size();
    endpoints_[a].out.push_back(channels_.size());
    channels_.push_back(std::make_unique<Channel>());
    channels_.back()->dst_endpoint = b;
    channels_.back()->dst_conn = conn_b;
    endpoints_[b].out.push_back(channels_.size());
    channels_.push_back(std::make_unique<Channel>());
    channels_.back()->dst_endpoint = a;
    channels_.back()->dst_conn = conn_a;
    return {conn_a, conn_b};
  }

  void send(std::size_t endpoint, std::size_t conn, FrameType type,
            const std::vector<std::uint8_t>& payload) {
    HS_CHECK(conn < endpoints_[endpoint].out.size(),
             "loopback: send on unknown connection");
    Channel& ch = *channels_[endpoints_[endpoint].out[conn]];
    const std::vector<std::uint8_t> frame =
        encode_frame(type, kLoopbackRun, ch.next_seq++, payload);
    ch.bytes.insert(ch.bytes.end(), frame.begin(), frame.end());
    ++counters_.frames_tx;
    counters_.bytes_tx += frame.size();
  }

  /// Drains every channel, in creation order, until a full pass moves no
  /// bytes. Handlers run inline and may enqueue more frames; those are
  /// picked up on the next pass, keeping delivery order a pure function of
  /// the topology.
  void pump() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t c = 0; c < channels_.size(); ++c) {
        Channel& ch = *channels_[c];
        if (ch.bytes.empty()) continue;
        progress = true;
        counters_.bytes_rx += ch.bytes.size();
        ch.parser.feed(ch.bytes.data(), ch.bytes.size());
        ch.bytes.clear();
        Frame frame;
        while (ch.parser.next(frame)) {
          ++counters_.frames_rx;
          endpoints_[ch.dst_endpoint].handler(ch.dst_conn, frame);
        }
        if (ch.parser.quarantined() && !ch.counted_bad) {
          ch.counted_bad = true;
          ++counters_.frames_bad;
          ++counters_.conns_quarantined;
        }
      }
    }
  }

  bool any_parser_failed() const {
    for (const auto& ch : channels_) {
      if (ch->parser.quarantined()) return true;
    }
    return false;
  }

 private:
  static constexpr std::uint64_t kLoopbackRun = 1;

  struct Endpoint {
    std::function<void(std::size_t, const Frame&)> handler;
    std::unique_ptr<HubSink> sink;
    std::vector<std::size_t> out;  ///< local conn id -> channel index
  };

  NetCounters& counters_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

void HubSink::send(std::size_t conn, FrameType type,
                   const std::vector<std::uint8_t>& payload) {
  hub_.send(endpoint_, conn, type, payload);
}

}  // namespace

LoopbackResult run_distributed_loopback(Model& model,
                                        FederatedAlgorithm& algorithm,
                                        const ClientProvider& population,
                                        const SimulationConfig& cfg,
                                        std::size_t num_workers,
                                        std::size_t num_edges) {
  HS_CHECK(!cfg.faults.enabled(),
           "loopback: fault injection is monolithic-only");
  HS_CHECK(!cfg.sched.scheduled(),
           "loopback: scheduled modes are monolithic-only");
  HS_CHECK(!cfg.checkpoint.enabled(),
           "loopback: checkpointing is monolithic-only");
  HS_CHECK(!cfg.on_round,
           "loopback: legacy on_round callback unsupported; use observer");
  HS_CHECK(num_workers > 0, "loopback: need at least one worker");
  HS_CHECK(num_edges == 0 || num_workers >= num_edges,
           "loopback: need at least one worker per edge");

  LoopbackResult out;
  LoopbackHub hub(out.counters);

  NetSimConfig net_cfg;
  net_cfg.rounds = cfg.rounds;
  net_cfg.clients_per_round = cfg.clients_per_round;
  net_cfg.seed = cfg.seed;
  net_cfg.eval_every = cfg.eval_every;
  net_cfg.num_downstream = num_edges > 0 ? num_edges : num_workers;
  net_cfg.edge_groups = num_edges;
  net_cfg.observer = cfg.observer;
  net_cfg.counters = &out.counters;

  const std::size_t root_ep = hub.add_endpoint();
  RootServer root(model, algorithm, population, net_cfg, hub.sink(root_ep));
  hub.set_handler(root_ep, [&root](std::size_t conn, const Frame& frame) {
    root.on_frame(conn, frame);
  });

  // Worker replicas: independent deep copies, exactly like the parallel
  // executor's per-worker models. local_update set_states the pulled global
  // before training, so the replica's prior weights never leak in.
  std::vector<std::unique_ptr<Model>> worker_models;
  std::vector<std::unique_ptr<WorkerNode>> workers;
  std::vector<std::unique_ptr<EdgeNode>> edges;
  worker_models.reserve(num_workers);
  workers.reserve(num_workers);

  if (num_edges == 0) {
    for (std::size_t w = 0; w < num_workers; ++w) {
      const std::size_t worker_ep = hub.add_endpoint();
      const auto [root_conn, worker_conn] = hub.connect(root_ep, worker_ep);
      (void)root_conn;
      worker_models.push_back(model.clone());
      workers.push_back(std::make_unique<WorkerNode>(
          *worker_models.back(), algorithm, population, hub.sink(worker_ep),
          worker_conn, w));
      WorkerNode& node = *workers.back();
      hub.set_handler(worker_ep,
                      [&node](std::size_t conn, const Frame& frame) {
                        node.on_frame(conn, frame);
                      });
    }
  } else {
    std::vector<std::size_t> edge_eps(num_edges);
    std::vector<std::size_t> edge_worker_count(num_edges, 0);
    for (std::size_t w = 0; w < num_workers; ++w) {
      ++edge_worker_count[edge_group_of(w, num_workers, num_edges)];
    }
    edges.reserve(num_edges);
    for (std::size_t e = 0; e < num_edges; ++e) {
      edge_eps[e] = hub.add_endpoint();
      const auto [root_conn, edge_conn] = hub.connect(root_ep, edge_eps[e]);
      (void)root_conn;
      edges.push_back(std::make_unique<EdgeNode>(
          algorithm, hub.sink(edge_eps[e]), edge_conn, e,
          edge_worker_count[e]));
      EdgeNode& node = *edges.back();
      hub.set_handler(edge_eps[e],
                      [&node](std::size_t conn, const Frame& frame) {
                        node.on_frame(conn, frame);
                      });
    }
    std::vector<std::size_t> next_local_index(num_edges, 0);
    for (std::size_t w = 0; w < num_workers; ++w) {
      const std::size_t e = edge_group_of(w, num_workers, num_edges);
      const std::size_t worker_ep = hub.add_endpoint();
      const auto [edge_conn, worker_conn] =
          hub.connect(edge_eps[e], worker_ep);
      (void)edge_conn;
      worker_models.push_back(model.clone());
      workers.push_back(std::make_unique<WorkerNode>(
          *worker_models.back(), algorithm, population, hub.sink(worker_ep),
          worker_conn, next_local_index[e]++));
      WorkerNode& node = *workers.back();
      hub.set_handler(worker_ep,
                      [&node](std::size_t conn, const Frame& frame) {
                        node.on_frame(conn, frame);
                      });
    }
  }

  for (auto& edge : edges) edge->start();
  for (auto& worker : workers) worker->start();
  hub.pump();

  check(!hub.any_parser_failed(), "loopback: frame parser quarantined");
  check(!root.failed(), "loopback root failed: " + root.error());
  for (const auto& edge : edges) {
    check(!edge->failed(), "loopback edge failed: " + edge->error());
    check(edge->done(), "loopback edge never finished");
  }
  for (const auto& worker : workers) {
    check(!worker->failed(), "loopback worker failed: " + worker->error());
    check(worker->done(), "loopback worker never finished");
  }
  check(root.done(), "loopback root never finished");

  out.result = root.take_result();
  return out;
}

}  // namespace hetero::net
