// In-process loopback transport for the distributed protocol nodes.
//
// Wires a RootServer, optional EdgeNodes, and WorkerNodes together through
// byte pipes: every frame is encoded, CRC-stamped, fed through a real
// FrameParser, and decoded on the receiving side — the full wire path, no
// sockets. Frame delivery order is a fixed function of the topology
// (channels are pumped in creation order until quiescent), so a loopback
// run is fully deterministic and, per the DESIGN.md §14 contract,
// byte-identical to the monolithic run_simulation for the same
// (seed, config, population, algorithm) — including the two-level edge
// tree versus SimulationConfig::edge_groups.
//
// This is both the reference harness the byte-identity tests drive and the
// shape `hsctl serve/client/edge` reproduces over TCP.
#pragma once

#include "fl/simulation.h"
#include "net/node.h"

namespace hetero::net {

struct LoopbackResult {
  SimulationResult result;
  NetCounters counters;  ///< totals across every channel in the run
};

/// Runs cfg.rounds of the algorithm distributed across `num_workers` worker
/// nodes — flat (num_edges == 0, workers connect to the root) or two-level
/// (num_edges > 0, workers connect to their edge by edge_group_of(w,
/// num_workers, num_edges) and edges forward partial digests to the root).
///
/// Supports the same subset as the wire layer: the sync loop with a
/// stateless-client-phase split algorithm, no faults, no scheduler, no
/// checkpointing, no legacy on_round callback. Mutates `model` exactly like
/// run_simulation. Throws std::invalid_argument on unsupported configs or
/// any protocol failure.
LoopbackResult run_distributed_loopback(Model& model,
                                        FederatedAlgorithm& algorithm,
                                        const ClientProvider& population,
                                        const SimulationConfig& cfg,
                                        std::size_t num_workers,
                                        std::size_t num_edges = 0);

}  // namespace hetero::net
