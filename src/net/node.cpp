#include "net/node.h"

#include <chrono>
#include <utility>

#include "runtime/faults.h"
#include "util/rng.h"

namespace hetero::net {
namespace {

using Clock = std::chrono::steady_clock;

double monotonic_seconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* conn_state_name(ConnState state) {
  switch (state) {
    case ConnState::kHandshakeWait: return "handshake_wait";
    case ConnState::kRoundIdle: return "round_idle";
    case ConnState::kPulling: return "pulling";
    case ConnState::kTraining: return "training";
    case ConnState::kPushing: return "pushing";
    case ConnState::kDone: return "done";
    case ConnState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

// ------------------------------------------------------------- RootServer

RootServer::RootServer(Model& model, FederatedAlgorithm& algorithm,
                       const ClientProvider& population,
                       const NetSimConfig& cfg, FrameSink& sink)
    : model_(model),
      split_(algorithm.as_split()),
      population_(population),
      cfg_(cfg),
      sink_(sink),
      rng_(cfg.seed) {
  HS_CHECK(split_ != nullptr,
           "RootServer: distributed runs require a split algorithm");
  HS_CHECK(split_->stateless_client_phase(),
           "RootServer: this algorithm's client phase reads server-held "
           "state and cannot run on remote workers");
  HS_CHECK(cfg_.rounds > 0, "RootServer: rounds must be positive");
  HS_CHECK(cfg_.num_downstream > 0, "RootServer: no downstream nodes");
  if (cfg_.edge_groups > 0) {
    HS_CHECK(cfg_.edge_groups == cfg_.num_downstream,
             "RootServer: edge_groups must equal the edge-node count");
    HS_CHECK(split_->supports_partial_aggregation(),
             "RootServer: algorithm does not support edge-tier partial "
             "aggregation");
  }
  const std::size_t n = population_.num_clients();
  HS_CHECK(n > 0, "RootServer: no clients");
  HS_CHECK(cfg_.clients_per_round > 0 && cfg_.clients_per_round <= n,
           "RootServer: bad clients_per_round");
  split_->init(model_, n);
  conn_of_node_.assign(cfg_.num_downstream, -1);
  node_state_.assign(cfg_.num_downstream, ConnState::kHandshakeWait);
  result_.runtime.threads = 1;
}

ConnState RootServer::node_state(std::size_t index) const {
  return index < node_state_.size() ? node_state_[index]
                                    : ConnState::kQuarantined;
}

void RootServer::protocol_error(std::size_t conn,
                                const std::string& message) {
  ++frames_rejected_;
  if (!failed_) {
    failed_ = true;
    error_ = message;
  }
  const auto it = node_of_conn_.find(conn);
  if (it != node_of_conn_.end()) {
    node_state_[it->second] = ConnState::kQuarantined;
  }
}

void RootServer::on_frame(std::size_t conn, const Frame& frame) {
  if (done_ || failed_) return;
  switch (static_cast<FrameType>(frame.header.type)) {
    case FrameType::kHello:
      handle_hello(conn, frame);
      return;
    case FrameType::kModelPull:
      handle_model_pull(conn, frame);
      return;
    case FrameType::kUpdatePush:
      handle_update_push(conn, frame);
      return;
    case FrameType::kDigest:
      handle_digest(conn, frame);
      return;
    default:
      protocol_error(conn, std::string("root: unexpected frame type ") +
                               frame_type_name(
                                   static_cast<FrameType>(frame.header.type)));
  }
}

void RootServer::handle_hello(std::size_t conn, const Frame& frame) {
  HelloMsg m;
  if (!decode_hello(frame.payload, m)) {
    protocol_error(conn, "root: malformed hello");
    return;
  }
  const NodeRole expected =
      cfg_.edge_groups > 0 ? NodeRole::kEdge : NodeRole::kWorker;
  if (m.role != expected || m.node_index >= cfg_.num_downstream ||
      conn_of_node_[m.node_index] != -1 || node_of_conn_.count(conn) != 0) {
    protocol_error(conn, "root: invalid hello");
    return;
  }
  conn_of_node_[m.node_index] = static_cast<std::ptrdiff_t>(conn);
  node_of_conn_[conn] = static_cast<std::size_t>(m.node_index);
  node_state_[m.node_index] = ConnState::kRoundIdle;
  HelloAckMsg ack;
  ack.node_index = m.node_index;
  ack.rounds = cfg_.rounds;
  sink_.send(conn, FrameType::kHelloAck, encode_hello_ack(ack));
  if (++hellos_ == cfg_.num_downstream) start_round(0);
}

void RootServer::start_round(std::size_t round) {
  round_ = round;
  round_start_seconds_ = monotonic_seconds();
  const std::size_t k = cfg_.clients_per_round;
  // Exactly the monolithic sync loop's draws: sample on the run RNG, then
  // a const fork keyed on the round — the fork does not advance rng_.
  selected_ = rng_.sample_without_replacement(population_.num_clients(), k);
  round_rng_ = rng_.fork(round).save_state();
  if (cfg_.observer) cfg_.observer->on_round_begin(round, selected_);
  global_ = model_.state();

  if (cfg_.edge_groups == 0) {
    updates_.assign(k, ClientUpdate{});
    update_received_.assign(k, 0);
    updates_pending_ = k;
  } else {
    digests_.assign(cfg_.edge_groups, DigestMsg{});
    digest_received_.assign(cfg_.edge_groups, 0);
    digests_pending_ = cfg_.edge_groups;
  }

  // One config per downstream node; the position partition is the same
  // edge_group_of blocks the aggregation uses, so in edge mode each edge
  // receives exactly the clients whose digests it owns.
  for (std::size_t d = 0; d < cfg_.num_downstream; ++d) {
    RoundConfigMsg msg;
    msg.round = round;
    msg.round_rng = round_rng_;
    msg.n_selected = k;
    msg.edge_groups = cfg_.edge_groups;
    for (std::size_t pos = 0; pos < k; ++pos) {
      if (edge_group_of(pos, k, cfg_.num_downstream) != d) continue;
      msg.client_ids.push_back(selected_[pos]);
      msg.positions.push_back(pos);
    }
    sink_.send(static_cast<std::size_t>(conn_of_node_[d]),
               FrameType::kRoundConfig, encode_round_config(msg));
    node_state_[d] = ConnState::kPulling;
  }
}

void RootServer::handle_model_pull(std::size_t conn, const Frame& frame) {
  ModelPullMsg m;
  const auto node = node_of_conn_.find(conn);
  if (!decode_model_pull(frame.payload, m) || node == node_of_conn_.end() ||
      m.round != round_) {
    protocol_error(conn, "root: invalid model pull");
    return;
  }
  ModelStateMsg reply;
  reply.round = round_;
  reply.state = global_;
  sink_.send(conn, FrameType::kModelState, encode_model_state(reply));
  node_state_[node->second] = ConnState::kTraining;
}

void RootServer::handle_update_push(std::size_t conn, const Frame& frame) {
  UpdatePushMsg m;
  const auto node = node_of_conn_.find(conn);
  if (!decode_update_push(frame.payload, m) || node == node_of_conn_.end() ||
      cfg_.edge_groups > 0 || m.round != round_ ||
      m.position >= selected_.size() || update_received_[m.position] != 0) {
    protocol_error(conn, "root: invalid update push");
    return;
  }
  updates_[m.position] = std::move(m.update);
  update_received_[m.position] = 1;
  node_state_[node->second] = ConnState::kPushing;
  if (--updates_pending_ == 0) finish_round_flat();
}

void RootServer::handle_digest(std::size_t conn, const Frame& frame) {
  DigestMsg m;
  const auto node = node_of_conn_.find(conn);
  if (!decode_digest(frame.payload, m) || node == node_of_conn_.end() ||
      cfg_.edge_groups == 0 || m.round != round_ ||
      m.edge_index != node->second || digest_received_[m.edge_index] != 0) {
    protocol_error(conn, "root: invalid digest");
    return;
  }
  // The metas must be exactly this edge's block: its positions, in order,
  // once each — and has_digest must match the survivor count.
  const std::size_t k = selected_.size();
  std::size_t expected = 0;
  for (std::size_t pos = 0; pos < k; ++pos) {
    if (edge_group_of(pos, k, cfg_.edge_groups) == m.edge_index) ++expected;
  }
  std::size_t survivors = 0;
  std::uint64_t prev = 0;
  for (std::size_t j = 0; j < m.metas.size(); ++j) {
    const WireUpdateMeta& meta = m.metas[j];
    if (meta.position >= k ||
        edge_group_of(meta.position, k, cfg_.edge_groups) != m.edge_index ||
        (j > 0 && meta.position <= prev)) {
      protocol_error(conn, "root: digest meta positions invalid");
      return;
    }
    prev = meta.position;
    if (!meta.quarantined) ++survivors;
  }
  if (m.metas.size() != expected ||
      (survivors > 0) != (m.has_digest != 0)) {
    protocol_error(conn, "root: digest block mismatch");
    return;
  }
  digests_[m.edge_index] = std::move(m);
  digest_received_[digests_[m.edge_index].edge_index] = 1;
  node_state_[node->second] = ConnState::kPushing;
  if (--digests_pending_ == 0) finish_round_edges();
}

void RootServer::finish_round_flat() {
  const std::size_t n = selected_.size();
  RoundContext ctx;
  ctx.round = round_;
  ctx.observer = cfg_.observer;
  // Zero-fault disposition pass, mirroring ClientExecutor::run_split:
  // validate each update, emit one client_end per position in `selected`
  // order, then aggregate the survivors.
  std::size_t quarantined = 0;
  std::vector<ClientUpdate> survivors;
  std::vector<std::size_t> survivor_pos;
  survivors.reserve(n);
  survivor_pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ClientUpdate& u = updates_[i];
    const bool ok = validate_update(u);
    ClientObservation obs;
    if (ok) {
      obs = make_observation(u, i);
    } else {
      ++quarantined;
      obs.client_id = selected_[i];
      obs.order = i;
      obs.flags = u.flags;
      obs.update_bytes = static_cast<std::size_t>(update_payload_bytes(u));
      obs.train_seconds = u.train_seconds;
      obs.fault = static_cast<unsigned>(FaultKind::kQuarantined);
    }
    ctx.finish_client(obs);
    if (ok) {
      survivors.push_back(std::move(u));
      survivor_pos.push_back(i);
    }
  }
  const bool aborted = survivors.empty();
  RoundStats stats;
  if (!aborted) {
    stats = split_->aggregate(model_, global_, survivors);
  } else {
    model_.set_state(global_);
  }
  result_.runtime.client_seconds_sum += ctx.client_seconds_sum;
  if (ctx.client_seconds_max > result_.runtime.client_seconds_max) {
    result_.runtime.client_seconds_max = ctx.client_seconds_max;
  }
  finish_round_common(std::move(stats), quarantined, aborted);
}

void RootServer::finish_round_edges() {
  RoundContext ctx;
  ctx.round = round_;
  ctx.observer = cfg_.observer;
  // Per-client events and the flat round summary come from the forwarded
  // metas (edge blocks are contiguous ascending position ranges, so edge
  // order == `selected` order); the model update comes from the digests —
  // the same two-level fold hierarchical_aggregate runs in process.
  std::size_t quarantined = 0;
  std::vector<ClientUpdate> stubs;  // scalar stand-ins for summarize_updates
  stubs.reserve(selected_.size());
  for (const DigestMsg& digest : digests_) {
    for (const WireUpdateMeta& meta : digest.metas) {
      ClientObservation obs;
      obs.client_id = meta.client_id;
      obs.order = static_cast<std::size_t>(meta.position);
      obs.flags = meta.flags;
      obs.update_bytes = static_cast<std::size_t>(meta.update_bytes);
      obs.train_seconds = meta.train_seconds;
      if (meta.quarantined) {
        ++quarantined;
        obs.fault = static_cast<unsigned>(FaultKind::kQuarantined);
      } else {
        obs.weight = meta.weight;
        obs.train_loss = meta.train_loss;
        ClientUpdate stub;
        stub.client_id = meta.client_id;
        stub.weight = meta.weight;
        stub.train_loss = meta.train_loss;
        stub.payload_bytes = meta.update_bytes;
        stubs.push_back(std::move(stub));
      }
      ctx.finish_client(obs);
    }
  }
  const bool aborted = stubs.empty();
  RoundStats stats;
  if (!aborted) {
    stats = summarize_updates(stubs, model_.state_size());
    std::vector<ClientUpdate> folds;
    folds.reserve(digests_.size());
    for (DigestMsg& digest : digests_) {
      if (digest.has_digest) folds.push_back(std::move(digest.digest));
    }
    const RoundStats agg = split_->aggregate(model_, global_, folds);
    for (const auto& [key, value] : agg.extras) stats.extras[key] = value;
    stats.extras["net.edges"] = static_cast<double>(cfg_.edge_groups);
  } else {
    model_.set_state(global_);
  }
  result_.runtime.client_seconds_sum += ctx.client_seconds_sum;
  if (ctx.client_seconds_max > result_.runtime.client_seconds_max) {
    result_.runtime.client_seconds_max = ctx.client_seconds_max;
  }
  finish_round_common(std::move(stats), quarantined, aborted);
}

void RootServer::finish_round_common(RoundStats stats, std::size_t quarantined,
                                     bool aborted) {
  const std::size_t n = selected_.size();
  stats.bytes_down = static_cast<std::uint64_t>(n) *
                     static_cast<std::uint64_t>(model_.state_size()) *
                     sizeof(float);
  if (quarantined > 0 || aborted) {
    stats.extras["fault.dropped"] = 0.0;
    stats.extras["fault.quarantined"] = static_cast<double>(quarantined);
    stats.extras["fault.stragglers"] = 0.0;
    stats.extras["fault.retries"] = 0.0;
    stats.extras["fault.aborted"] = aborted ? 1.0 : 0.0;
  }
  if (cfg_.trace_extras && cfg_.counters != nullptr) {
    stats.extras["net.bytes_rx"] =
        static_cast<double>(cfg_.counters->bytes_rx);
    stats.extras["net.bytes_tx"] =
        static_cast<double>(cfg_.counters->bytes_tx);
    stats.extras["net.frames_rx"] =
        static_cast<double>(cfg_.counters->frames_rx);
    stats.extras["net.frames_tx"] =
        static_cast<double>(cfg_.counters->frames_tx);
  }
  stats.round_seconds = monotonic_seconds() - round_start_seconds_;
  if (cfg_.observer) cfg_.observer->on_round_end(round_, stats);
  result_.train_loss_history.push_back(stats.mean_train_loss);
  result_.runtime.round_seconds.push_back(stats.round_seconds);
  result_.runtime.total_seconds += stats.round_seconds;
  result_.runtime.round_virtual_seconds.push_back(0.0);
  result_.runtime.clients_quarantined += quarantined;
  result_.runtime.rounds_aborted += aborted ? 1 : 0;

  const std::size_t next = round_ + 1;
  if (cfg_.eval_every > 0 && next % cfg_.eval_every == 0 &&
      next < cfg_.rounds) {
    DeviceMetrics checkpoint = evaluate_per_device(model_, population_);
    if (cfg_.observer) cfg_.observer->on_eval(next, checkpoint);
    result_.checkpoints.emplace_back(next, std::move(checkpoint));
  }
  for (std::size_t d = 0; d < cfg_.num_downstream; ++d) {
    node_state_[d] = ConnState::kRoundIdle;
  }
  if (next < cfg_.rounds) {
    start_round(next);
    return;
  }
  result_.final_metrics = evaluate_per_device(model_, population_);
  if (cfg_.observer) cfg_.observer->on_eval(cfg_.rounds, result_.final_metrics);
  ByeMsg bye;
  bye.rounds_done = cfg_.rounds;
  for (std::size_t d = 0; d < cfg_.num_downstream; ++d) {
    sink_.send(static_cast<std::size_t>(conn_of_node_[d]), FrameType::kBye,
               encode_bye(bye));
    node_state_[d] = ConnState::kDone;
  }
  done_ = true;
}

// ------------------------------------------------------------- WorkerNode

WorkerNode::WorkerNode(Model& model, const FederatedAlgorithm& algorithm,
                       const ClientProvider& population, FrameSink& sink,
                       std::size_t upstream_conn, std::uint64_t node_index)
    : model_(model),
      split_(const_cast<FederatedAlgorithm&>(algorithm).as_split()),
      population_(population),
      sink_(sink),
      upstream_conn_(upstream_conn),
      node_index_(node_index) {
  HS_CHECK(split_ != nullptr,
           "WorkerNode: distributed runs require a split algorithm");
  HS_CHECK(split_->stateless_client_phase(),
           "WorkerNode: this algorithm's client phase reads server-held "
           "state and cannot run on remote workers");
}

void WorkerNode::protocol_error(const std::string& message) {
  failed_ = true;
  if (error_.empty()) error_ = message;
  state_ = ConnState::kQuarantined;
}

void WorkerNode::start() {
  HelloMsg m;
  m.role = NodeRole::kWorker;
  m.node_index = node_index_;
  sink_.send(upstream_conn_, FrameType::kHello, encode_hello(m));
  state_ = ConnState::kHandshakeWait;
}

void WorkerNode::on_frame(std::size_t conn, const Frame& frame) {
  if (failed_ || state_ == ConnState::kDone) return;
  if (conn != upstream_conn_) {
    protocol_error("worker: frame from unknown connection");
    return;
  }
  switch (static_cast<FrameType>(frame.header.type)) {
    case FrameType::kHelloAck: {
      HelloAckMsg ack;
      if (state_ != ConnState::kHandshakeWait ||
          !decode_hello_ack(frame.payload, ack) ||
          ack.node_index != node_index_) {
        protocol_error("worker: invalid hello ack");
        return;
      }
      state_ = ConnState::kRoundIdle;
      return;
    }
    case FrameType::kRoundConfig: {
      if (state_ != ConnState::kRoundIdle ||
          !decode_round_config(frame.payload, round_cfg_)) {
        protocol_error("worker: invalid round config");
        return;
      }
      if (round_cfg_.client_ids.empty()) return;  // nothing this round
      ModelPullMsg pull;
      pull.round = round_cfg_.round;
      state_ = ConnState::kPulling;
      sink_.send(upstream_conn_, FrameType::kModelPull,
                 encode_model_pull(pull));
      return;
    }
    case FrameType::kModelState: {
      ModelStateMsg m;
      if (state_ != ConnState::kPulling ||
          !decode_model_state(frame.payload, m) ||
          m.round != round_cfg_.round) {
        protocol_error("worker: invalid model state");
        return;
      }
      state_ = ConnState::kTraining;
      // The monolithic client loop, verbatim: restore the round RNG the
      // root shipped, fork per client id, train against the pulled global.
      Rng round_rng;
      round_rng.restore_state(round_cfg_.round_rng);
      std::vector<UpdatePushMsg> pushes;
      pushes.reserve(round_cfg_.client_ids.size());
      for (std::size_t j = 0; j < round_cfg_.client_ids.size(); ++j) {
        const std::size_t id =
            static_cast<std::size_t>(round_cfg_.client_ids[j]);
        Rng client_rng = round_rng.fork(id);
        const Dataset& data = population_.client_dataset(id, slot_);
        const double t0 = monotonic_seconds();
        UpdatePushMsg push;
        push.round = round_cfg_.round;
        push.position = round_cfg_.positions[j];
        push.update = split_->local_update(model_, m.state, id, data,
                                           client_rng);
        push.update.train_seconds = monotonic_seconds() - t0;
        pushes.push_back(std::move(push));
      }
      state_ = ConnState::kPushing;
      for (const UpdatePushMsg& push : pushes) {
        sink_.send(upstream_conn_, FrameType::kUpdatePush,
                   encode_update_push(push));
      }
      ++rounds_trained_;
      state_ = ConnState::kRoundIdle;
      return;
    }
    case FrameType::kBye:
      state_ = ConnState::kDone;
      return;
    default:
      protocol_error(std::string("worker: unexpected frame type ") +
                     frame_type_name(
                         static_cast<FrameType>(frame.header.type)));
  }
}

// --------------------------------------------------------------- EdgeNode

EdgeNode::EdgeNode(const FederatedAlgorithm& algorithm, FrameSink& sink,
                   std::size_t upstream_conn, std::uint64_t edge_index,
                   std::size_t num_workers)
    : split_(const_cast<FederatedAlgorithm&>(algorithm).as_split()),
      sink_(sink),
      upstream_conn_(upstream_conn),
      edge_index_(edge_index),
      num_workers_(num_workers) {
  HS_CHECK(split_ != nullptr,
           "EdgeNode: distributed runs require a split algorithm");
  HS_CHECK(split_->supports_partial_aggregation(),
           "EdgeNode: algorithm does not support edge-tier partial "
           "aggregation");
  HS_CHECK(num_workers_ > 0, "EdgeNode: no workers");
  conn_of_worker_.assign(num_workers_, -1);
}

void EdgeNode::protocol_error(const std::string& message) {
  failed_ = true;
  if (error_.empty()) error_ = message;
  state_ = ConnState::kQuarantined;
}

void EdgeNode::start() {
  started_ = true;
  state_ = ConnState::kHandshakeWait;
  maybe_hello_upstream();
}

void EdgeNode::maybe_hello_upstream() {
  if (!started_ || hello_sent_ || workers_connected_ < num_workers_) return;
  hello_sent_ = true;
  HelloMsg m;
  m.role = NodeRole::kEdge;
  m.node_index = edge_index_;
  sink_.send(upstream_conn_, FrameType::kHello, encode_hello(m));
}

void EdgeNode::on_frame(std::size_t conn, const Frame& frame) {
  if (failed_ || state_ == ConnState::kDone) return;
  if (conn == upstream_conn_) {
    handle_upstream(frame);
  } else {
    handle_worker(conn, frame);
  }
}

void EdgeNode::handle_upstream(const Frame& frame) {
  switch (static_cast<FrameType>(frame.header.type)) {
    case FrameType::kHelloAck: {
      HelloAckMsg ack;
      if (state_ != ConnState::kHandshakeWait ||
          !decode_hello_ack(frame.payload, ack) ||
          ack.node_index != edge_index_) {
        protocol_error("edge: invalid hello ack");
        return;
      }
      rounds_ = ack.rounds;
      state_ = ConnState::kRoundIdle;
      return;
    }
    case FrameType::kRoundConfig: {
      if (state_ != ConnState::kRoundIdle ||
          !decode_round_config(frame.payload, round_cfg_)) {
        protocol_error("edge: invalid round config");
        return;
      }
      const std::size_t count = round_cfg_.client_ids.size();
      if (count == 0) {
        // Empty block: reply immediately so the root's round can complete.
        DigestMsg msg;
        msg.round = round_cfg_.round;
        msg.edge_index = edge_index_;
        sink_.send(upstream_conn_, FrameType::kDigest, encode_digest(msg));
        return;
      }
      block_updates_.assign(count, ClientUpdate{});
      block_received_.assign(count, 0);
      block_pending_ = count;
      ModelPullMsg pull;
      pull.round = round_cfg_.round;
      state_ = ConnState::kPulling;
      sink_.send(upstream_conn_, FrameType::kModelPull,
                 encode_model_pull(pull));
      return;
    }
    case FrameType::kModelState: {
      ModelStateMsg m;
      if (state_ != ConnState::kPulling ||
          !decode_model_state(frame.payload, m) ||
          m.round != round_cfg_.round) {
        protocol_error("edge: invalid model state");
        return;
      }
      global_ = std::move(m.state);
      state_ = ConnState::kTraining;
      // Fan the block out over this edge's workers: the same block-partition
      // function, applied to the edge's own list. Workers keep the GLOBAL
      // positions, so updates reassemble by block offset unambiguously.
      const std::size_t count = round_cfg_.client_ids.size();
      for (std::size_t w = 0; w < num_workers_; ++w) {
        if (conn_of_worker_[w] == -1) {
          protocol_error("edge: worker never connected");
          return;
        }
        RoundConfigMsg sub;
        sub.round = round_cfg_.round;
        sub.round_rng = round_cfg_.round_rng;
        sub.n_selected = round_cfg_.n_selected;
        sub.edge_groups = round_cfg_.edge_groups;
        for (std::size_t j = 0; j < count; ++j) {
          if (edge_group_of(j, count, num_workers_) != w) continue;
          sub.client_ids.push_back(round_cfg_.client_ids[j]);
          sub.positions.push_back(round_cfg_.positions[j]);
        }
        sink_.send(static_cast<std::size_t>(conn_of_worker_[w]),
                   FrameType::kRoundConfig, encode_round_config(sub));
      }
      return;
    }
    case FrameType::kBye:
      for (std::size_t w = 0; w < num_workers_; ++w) {
        if (conn_of_worker_[w] == -1) continue;
        sink_.send(static_cast<std::size_t>(conn_of_worker_[w]),
                   FrameType::kBye, encode_bye(ByeMsg{rounds_}));
      }
      state_ = ConnState::kDone;
      return;
    default:
      protocol_error("edge: unexpected upstream frame");
  }
}

void EdgeNode::handle_worker(std::size_t conn, const Frame& frame) {
  switch (static_cast<FrameType>(frame.header.type)) {
    case FrameType::kHello: {
      HelloMsg m;
      if (!decode_hello(frame.payload, m) || m.role != NodeRole::kWorker ||
          m.node_index >= num_workers_ ||
          conn_of_worker_[m.node_index] != -1 ||
          worker_of_conn_.count(conn) != 0) {
        protocol_error("edge: invalid worker hello");
        return;
      }
      conn_of_worker_[m.node_index] = static_cast<std::ptrdiff_t>(conn);
      worker_of_conn_[conn] = static_cast<std::size_t>(m.node_index);
      ++workers_connected_;
      // rounds_ may still be 0 if the upstream ack has not arrived yet;
      // workers treat the count as informational and terminate on Bye.
      HelloAckMsg ack;
      ack.node_index = m.node_index;
      ack.rounds = rounds_;
      sink_.send(conn, FrameType::kHelloAck, encode_hello_ack(ack));
      maybe_hello_upstream();
      return;
    }
    case FrameType::kModelPull: {
      ModelPullMsg m;
      if (!decode_model_pull(frame.payload, m) ||
          worker_of_conn_.count(conn) == 0 || state_ != ConnState::kTraining ||
          m.round != round_cfg_.round) {
        protocol_error("edge: invalid worker model pull");
        return;
      }
      ModelStateMsg reply;
      reply.round = round_cfg_.round;
      reply.state = global_;
      sink_.send(conn, FrameType::kModelState, encode_model_state(reply));
      return;
    }
    case FrameType::kUpdatePush: {
      UpdatePushMsg m;
      if (!decode_update_push(frame.payload, m) ||
          worker_of_conn_.count(conn) == 0 || state_ != ConnState::kTraining ||
          m.round != round_cfg_.round) {
        protocol_error("edge: invalid worker update push");
        return;
      }
      // Map the global position back to this edge's block offset.
      std::size_t offset = round_cfg_.positions.size();
      for (std::size_t j = 0; j < round_cfg_.positions.size(); ++j) {
        if (round_cfg_.positions[j] == m.position) {
          offset = j;
          break;
        }
      }
      if (offset == round_cfg_.positions.size() ||
          block_received_[offset] != 0) {
        protocol_error("edge: update for unassigned position");
        return;
      }
      block_updates_[offset] = std::move(m.update);
      block_received_[offset] = 1;
      if (--block_pending_ == 0) finish_block();
      return;
    }
    default:
      protocol_error("edge: unexpected worker frame");
  }
}

void EdgeNode::finish_block() {
  DigestMsg msg;
  msg.round = round_cfg_.round;
  msg.edge_index = edge_index_;
  std::vector<ClientUpdate> group;
  group.reserve(block_updates_.size());
  for (std::size_t j = 0; j < block_updates_.size(); ++j) {
    ClientUpdate& u = block_updates_[j];
    const bool ok = validate_update(u);
    WireUpdateMeta meta;
    // Mirrors the executor's disposition: a clean update reports through
    // make_observation (client_id from the update), a quarantined one
    // through the selection list.
    meta.client_id = ok ? u.client_id : round_cfg_.client_ids[j];
    meta.position = round_cfg_.positions[j];
    meta.flags = u.flags;
    meta.quarantined = ok ? 0 : 1;
    meta.update_bytes = update_payload_bytes(u);
    meta.train_seconds = u.train_seconds;
    if (ok) {
      meta.weight = u.weight;
      meta.train_loss = u.train_loss;
      group.push_back(std::move(u));
    }
    msg.metas.push_back(meta);
  }
  if (!group.empty()) {
    msg.has_digest = 1;
    msg.digest = split_->partial_aggregate(global_, group);
  }
  state_ = ConnState::kPushing;
  sink_.send(upstream_conn_, FrameType::kDigest, encode_digest(msg));
  state_ = ConnState::kRoundIdle;
}

}  // namespace hetero::net
