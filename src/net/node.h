// Sans-IO protocol nodes for the distributed FL daemon (DESIGN.md §14).
//
// RootServer, WorkerNode, and EdgeNode are pure per-connection state
// machines: they consume decoded frames (on_frame) and emit frames through
// a FrameSink. No sockets, no clocks in the protocol logic — the same
// three classes are driven by the deterministic in-process loopback hub
// (net/loopback.h, used by the byte-identity tests) and by the epoll event
// loop (net/event_loop.h, used by `hsctl serve/client/edge`).
//
// Determinism contract: for the same (seed, config, population, algorithm)
// a distributed run produces model state, loss history, and observer event
// streams byte-identical to the monolithic run_simulation sync loop —
// including the two-level edge tree, which reuses the exact
// hierarchical_aggregate fold (fl/algorithm.h). The root replicates the
// sync loop's sampling (rng.sample_without_replacement then rng.fork(round))
// and ships the round RNG state in RoundConfig; workers restore it and fork
// per-client streams by id, so every float at every node matches the
// monolithic bit pattern.
//
// Faults, schedulers, and checkpointing stay monolithic-only: the wire
// layer serves the clean sync path (the common production shape) and
// refuses configs it cannot reproduce exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fl/algorithm.h"
#include "fl/client_provider.h"
#include "fl/simulation.h"
#include "net/protocol.h"
#include "net/wire.h"

namespace hetero::net {

/// Lifecycle of one connection as seen by the node that owns it.
enum class ConnState : std::uint8_t {
  kHandshakeWait,  ///< awaiting Hello / HelloAck
  kRoundIdle,      ///< between rounds
  kPulling,        ///< round config out / model pull in flight
  kTraining,       ///< local updates running
  kPushing,        ///< updates / digest in flight
  kDone,           ///< Bye exchanged
  kQuarantined,    ///< protocol violation; connection poisoned
};

const char* conn_state_name(ConnState state);

/// Outgoing-frame sink implemented by the transports. send() owns the
/// run/seq stamping and CRC framing for the connection.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void send(std::size_t conn, FrameType type,
                    const std::vector<std::uint8_t>& payload) = 0;
};

/// Shape of one distributed run, mirroring the SimulationConfig fields the
/// wire layer supports (sync loop, no faults/sched/checkpoint).
struct NetSimConfig {
  std::size_t rounds = 1;
  std::size_t clients_per_round = 1;
  std::uint64_t seed = 42;
  std::size_t eval_every = 0;
  /// Direct downstream nodes of the root: workers (flat) or edges.
  std::size_t num_downstream = 1;
  /// 0 = flat root<-worker tree; >0 = two-level tree with this many edges
  /// (must equal num_downstream), aggregated via hierarchical_aggregate's
  /// exact digest fold.
  std::size_t edge_groups = 0;
  RoundObserver* observer = nullptr;
  /// Emit net.frames_rx / net.bytes_rx round extras from `counters`.
  /// Default off: traffic totals are deterministic per topology but differ
  /// from the monolithic trace, which would break byte-equality.
  bool trace_extras = false;
  const NetCounters* counters = nullptr;  ///< transport totals (non-owning)
};

/// The aggregation root: samples clients, drives rounds, owns the global
/// model and the observer event stream. One instance per run.
class RootServer {
 public:
  RootServer(Model& model, FederatedAlgorithm& algorithm,
             const ClientProvider& population, const NetSimConfig& cfg,
             FrameSink& sink);

  void on_frame(std::size_t conn, const Frame& frame);

  bool done() const { return done_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  std::size_t frames_rejected() const { return frames_rejected_; }
  /// Root's view of downstream node `index`.
  ConnState node_state(std::size_t index) const;
  /// Final result; valid once done().
  SimulationResult take_result() { return std::move(result_); }

 private:
  void protocol_error(std::size_t conn, const std::string& message);
  void start_round(std::size_t round);
  void handle_hello(std::size_t conn, const Frame& frame);
  void handle_model_pull(std::size_t conn, const Frame& frame);
  void handle_update_push(std::size_t conn, const Frame& frame);
  void handle_digest(std::size_t conn, const Frame& frame);
  void finish_round_flat();
  void finish_round_edges();
  void finish_round_common(RoundStats stats, std::size_t quarantined,
                           bool aborted);

  Model& model_;
  SplitFederatedAlgorithm* split_;
  const ClientProvider& population_;
  NetSimConfig cfg_;
  FrameSink& sink_;
  Rng rng_;

  std::vector<std::ptrdiff_t> conn_of_node_;  // -1 until Hello
  std::map<std::size_t, std::size_t> node_of_conn_;
  std::vector<ConnState> node_state_;
  std::size_t hellos_ = 0;

  std::size_t round_ = 0;
  std::vector<std::size_t> selected_;
  RngState round_rng_;
  Tensor global_;
  double round_start_seconds_ = 0.0;  // steady_clock reference, wall only

  // Flat mode: one slot per selected position.
  std::vector<ClientUpdate> updates_;
  std::vector<std::uint8_t> update_received_;
  std::size_t updates_pending_ = 0;
  // Edge mode: one digest per edge.
  std::vector<DigestMsg> digests_;
  std::vector<std::uint8_t> digest_received_;
  std::size_t digests_pending_ = 0;

  SimulationResult result_;
  bool done_ = false;
  bool failed_ = false;
  std::string error_;
  std::size_t frames_rejected_ = 0;
};

/// A worker: trains its assigned clients against its ClientProvider slice.
/// Identical protocol whether its upstream is the root or an edge.
class WorkerNode {
 public:
  WorkerNode(Model& model, const FederatedAlgorithm& algorithm,
             const ClientProvider& population, FrameSink& sink,
             std::size_t upstream_conn, std::uint64_t node_index);

  /// Sends the Hello; call once after the upstream connection is up.
  void start();
  void on_frame(std::size_t conn, const Frame& frame);

  ConnState state() const { return state_; }
  bool done() const { return state_ == ConnState::kDone; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  std::size_t rounds_trained() const { return rounds_trained_; }

 private:
  void protocol_error(const std::string& message);

  Model& model_;
  const SplitFederatedAlgorithm* split_;
  const ClientProvider& population_;
  FrameSink& sink_;
  std::size_t upstream_conn_;
  std::uint64_t node_index_;

  ConnState state_ = ConnState::kHandshakeWait;
  RoundConfigMsg round_cfg_;
  ClientSlot slot_;
  std::size_t rounds_trained_ = 0;
  bool failed_ = false;
  std::string error_;
};

/// An edge aggregator: relays round configs and the global state to its
/// workers, validates their updates, folds the survivors into one weighted
/// digest with SplitFederatedAlgorithm::partial_aggregate (the PR 4
/// renormalization — the same call the monolithic hierarchical_aggregate
/// makes, so the digest is bit-identical), and forwards digest + per-client
/// metas to the root.
class EdgeNode {
 public:
  EdgeNode(const FederatedAlgorithm& algorithm, FrameSink& sink,
           std::size_t upstream_conn, std::uint64_t edge_index,
           std::size_t num_workers);

  /// Arms the node. The upstream Hello is deferred until every worker has
  /// connected (the root starts round 0 the moment all its downstream
  /// nodes have said Hello, so an edge must not announce itself before it
  /// can actually fan a round out).
  void start();
  void on_frame(std::size_t conn, const Frame& frame);

  ConnState state() const { return state_; }
  bool done() const { return state_ == ConnState::kDone; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

 private:
  void protocol_error(const std::string& message);
  void maybe_hello_upstream();
  void handle_upstream(const Frame& frame);
  void handle_worker(std::size_t conn, const Frame& frame);
  void finish_block();

  const SplitFederatedAlgorithm* split_;
  FrameSink& sink_;
  std::size_t upstream_conn_;
  std::uint64_t edge_index_;
  std::size_t num_workers_;

  ConnState state_ = ConnState::kHandshakeWait;
  std::uint64_t rounds_ = 0;
  bool started_ = false;
  bool hello_sent_ = false;
  std::size_t workers_connected_ = 0;
  std::map<std::size_t, std::size_t> worker_of_conn_;
  std::vector<std::ptrdiff_t> conn_of_worker_;  // -1 until Hello

  RoundConfigMsg round_cfg_;  // this edge's block, as assigned by the root
  Tensor global_;
  std::vector<ClientUpdate> block_updates_;   // by block offset
  std::vector<std::uint8_t> block_received_;  // by block offset
  std::size_t block_pending_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace hetero::net
