#include "net/protocol.h"

#include <bit>

namespace hetero::net {
namespace {

/// Hard cap on decoded tensor volume (elements). The frame length bound
/// already limits dense payloads; this stops a tiny *sparse* payload from
/// claiming astronomic dims and forcing a huge allocation at decode time.
constexpr std::uint64_t kMaxTensorElems = 1ull << 26;
constexpr std::uint32_t kMaxTensorRank = 8;

enum class TensorMode : std::uint8_t { kDense = 0, kSparse = 1 };

void put_rng(WireWriter& w, const RngState& s) {
  for (std::uint64_t word : s.s) w.u64(word);
  w.u8(s.has_cached_normal ? 1 : 0);
  w.f64(s.cached_normal);
}

bool get_rng(WireReader& r, RngState& out) {
  for (std::uint64_t& word : out.s) word = r.u64();
  const std::uint8_t cached = r.u8();
  if (cached > 1) return false;
  out.has_cached_normal = cached != 0;
  out.cached_normal = r.f64();
  return r.ok();
}

void put_meta(WireWriter& w, const WireUpdateMeta& m) {
  w.u64(m.client_id);
  w.u64(m.position);
  w.f64(m.weight);
  w.f64(m.train_loss);
  w.u32(m.flags);
  w.u8(m.quarantined);
  w.u64(m.update_bytes);
  w.f64(m.train_seconds);
}

bool get_meta(WireReader& r, WireUpdateMeta& out) {
  out.client_id = r.u64();
  out.position = r.u64();
  out.weight = r.f64();
  out.train_loss = r.f64();
  out.flags = r.u32();
  out.quarantined = r.u8();
  if (out.quarantined > 1) return false;
  out.update_bytes = r.u64();
  out.train_seconds = r.f64();
  return r.ok();
}

/// Finishes a decode: the payload must have parsed cleanly AND completely —
/// trailing bytes mean a schema mismatch, not extra padding.
bool done(const WireReader& r) { return r.ok() && r.remaining() == 0; }

}  // namespace

void put_tensor(WireWriter& w, const Tensor& t) {
  w.u32(static_cast<std::uint32_t>(t.rank()));
  for (std::size_t d : t.shape()) w.u64(d);
  // Sparse only when lossless: every omitted coordinate must be bit-zero
  // (a -0.0f survives only the dense path), and only when actually smaller.
  const float* data = t.data();
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(data[i]) != 0) ++nnz;
  }
  const std::size_t sparse_bytes = 8 + nnz * 8;
  if (sparse_bytes < t.size() * 4) {
    w.u8(static_cast<std::uint8_t>(TensorMode::kSparse));
    w.u64(nnz);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (std::bit_cast<std::uint32_t>(data[i]) == 0) continue;
      w.u32(static_cast<std::uint32_t>(i));
      w.f32(data[i]);
    }
  } else {
    w.u8(static_cast<std::uint8_t>(TensorMode::kDense));
    w.bytes(data, t.size() * sizeof(float));
  }
}

bool get_tensor(WireReader& r, Tensor& out) {
  const std::uint32_t rank = r.u32();
  if (!r.ok() || rank > kMaxTensorRank) return false;
  std::vector<std::size_t> shape(rank);
  std::uint64_t volume = 1;
  for (std::uint32_t d = 0; d < rank; ++d) {
    const std::uint64_t dim = r.u64();
    if (dim != 0 && volume > kMaxTensorElems / dim) return false;
    volume *= dim;
    shape[d] = static_cast<std::size_t>(dim);
  }
  if (!r.ok() || volume > kMaxTensorElems) return false;
  const std::uint8_t mode = r.u8();
  if (rank == 0) {
    // A rank-0 Tensor is the canonical EMPTY tensor (zero elements), not a
    // one-element scalar — the empty dim product above must not stand, and
    // Tensor({}) would allocate one element. It always encodes dense with
    // zero payload bytes.
    if (!r.ok() || mode != static_cast<std::uint8_t>(TensorMode::kDense)) {
      return false;
    }
    out = Tensor();
    return true;
  }
  if (mode == static_cast<std::uint8_t>(TensorMode::kDense)) {
    if (r.remaining() < volume * sizeof(float)) return false;
    Tensor t = Tensor::uninit(shape);
    r.bytes(t.data(), volume * sizeof(float));
    if (!r.ok()) return false;
    out = std::move(t);
    return true;
  }
  if (mode != static_cast<std::uint8_t>(TensorMode::kSparse)) return false;
  const std::uint64_t nnz = r.u64();
  if (!r.ok() || nnz > volume || r.remaining() < nnz * 8) return false;
  Tensor t(shape);  // zero-initialized; only the nonzeros are scattered
  std::uint64_t prev = 0;
  for (std::uint64_t k = 0; k < nnz; ++k) {
    const std::uint32_t idx = r.u32();
    const float val = r.f32();
    // Strictly increasing indices: canonical encoding, no duplicates, and
    // every index is bounds-checked before the store.
    if (idx >= volume || (k > 0 && idx <= prev)) return false;
    t.data()[idx] = val;
    prev = idx;
  }
  if (!r.ok()) return false;
  out = std::move(t);
  return true;
}

void put_update(WireWriter& w, const ClientUpdate& u) {
  w.u64(u.client_id);
  w.f64(u.weight);
  w.f64(u.train_loss);
  w.f64(u.aux_scalar);
  w.u32(u.flags);
  w.f64(u.train_seconds);
  w.u64(u.payload_bytes);
  put_tensor(w, u.state);
  put_tensor(w, u.aux);
}

bool get_update(WireReader& r, ClientUpdate& out) {
  out.client_id = r.u64();
  out.weight = r.f64();
  out.train_loss = r.f64();
  out.aux_scalar = r.f64();
  out.flags = r.u32();
  out.train_seconds = r.f64();
  out.payload_bytes = r.u64();
  if (!r.ok()) return false;
  return get_tensor(r, out.state) && get_tensor(r, out.aux);
}

std::vector<std::uint8_t> encode_hello(const HelloMsg& m) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(m.role));
  w.u64(m.node_index);
  return w.take();
}

bool decode_hello(const std::vector<std::uint8_t>& payload, HelloMsg& out) {
  WireReader r(payload);
  const std::uint8_t role = r.u8();
  if (role != static_cast<std::uint8_t>(NodeRole::kWorker) &&
      role != static_cast<std::uint8_t>(NodeRole::kEdge)) {
    return false;
  }
  out.role = static_cast<NodeRole>(role);
  out.node_index = r.u64();
  return done(r);
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAckMsg& m) {
  WireWriter w;
  w.u64(m.node_index);
  w.u64(m.rounds);
  return w.take();
}

bool decode_hello_ack(const std::vector<std::uint8_t>& payload,
                      HelloAckMsg& out) {
  WireReader r(payload);
  out.node_index = r.u64();
  out.rounds = r.u64();
  return done(r);
}

std::vector<std::uint8_t> encode_round_config(const RoundConfigMsg& m) {
  WireWriter w;
  w.u64(m.round);
  put_rng(w, m.round_rng);
  w.u64(m.n_selected);
  w.u64(m.edge_groups);
  w.u64(m.client_ids.size());
  for (std::uint64_t id : m.client_ids) w.u64(id);
  for (std::uint64_t pos : m.positions) w.u64(pos);
  return w.take();
}

bool decode_round_config(const std::vector<std::uint8_t>& payload,
                         RoundConfigMsg& out) {
  WireReader r(payload);
  out.round = r.u64();
  if (!get_rng(r, out.round_rng)) return false;
  out.n_selected = r.u64();
  out.edge_groups = r.u64();
  const std::uint64_t count = r.u64();
  // Divide instead of multiplying so a hostile count can't overflow.
  if (!r.ok() || count > out.n_selected || count > r.remaining() / 16) {
    return false;
  }
  out.client_ids.resize(count);
  out.positions.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) out.client_ids[i] = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    out.positions[i] = r.u64();
    if (out.positions[i] >= out.n_selected) return false;
  }
  return done(r);
}

std::vector<std::uint8_t> encode_model_pull(const ModelPullMsg& m) {
  WireWriter w;
  w.u64(m.round);
  return w.take();
}

bool decode_model_pull(const std::vector<std::uint8_t>& payload,
                       ModelPullMsg& out) {
  WireReader r(payload);
  out.round = r.u64();
  return done(r);
}

std::vector<std::uint8_t> encode_model_state(const ModelStateMsg& m) {
  WireWriter w;
  w.u64(m.round);
  put_tensor(w, m.state);
  return w.take();
}

bool decode_model_state(const std::vector<std::uint8_t>& payload,
                        ModelStateMsg& out) {
  WireReader r(payload);
  out.round = r.u64();
  if (!get_tensor(r, out.state)) return false;
  return done(r);
}

std::vector<std::uint8_t> encode_update_push(const UpdatePushMsg& m) {
  WireWriter w;
  w.u64(m.round);
  w.u64(m.position);
  put_update(w, m.update);
  return w.take();
}

bool decode_update_push(const std::vector<std::uint8_t>& payload,
                        UpdatePushMsg& out) {
  WireReader r(payload);
  out.round = r.u64();
  out.position = r.u64();
  if (!get_update(r, out.update)) return false;
  return done(r);
}

std::vector<std::uint8_t> encode_digest(const DigestMsg& m) {
  WireWriter w;
  w.u64(m.round);
  w.u64(m.edge_index);
  w.u8(m.has_digest);
  if (m.has_digest) put_update(w, m.digest);
  w.u64(m.metas.size());
  for (const WireUpdateMeta& meta : m.metas) put_meta(w, meta);
  return w.take();
}

bool decode_digest(const std::vector<std::uint8_t>& payload, DigestMsg& out) {
  WireReader r(payload);
  out.round = r.u64();
  out.edge_index = r.u64();
  out.has_digest = r.u8();
  if (!r.ok() || out.has_digest > 1) return false;
  if (out.has_digest && !get_update(r, out.digest)) return false;
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > r.remaining() / 53) return false;  // 53 = meta size
  out.metas.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_meta(r, out.metas[i])) return false;
  }
  return done(r);
}

std::vector<std::uint8_t> encode_bye(const ByeMsg& m) {
  WireWriter w;
  w.u64(m.rounds_done);
  return w.take();
}

bool decode_bye(const std::vector<std::uint8_t>& payload, ByeMsg& out) {
  WireReader r(payload);
  out.rounds_done = r.u64();
  return done(r);
}

}  // namespace hetero::net
