// Message schemas carried by the wire frames (net/wire.h).
//
// One struct + encode/decode pair per FrameType. Decoders run over a
// WireReader and return false on any truncation, trailing garbage, or
// invalid field — never throwing, never reading out of bounds — so a
// malformed but CRC-valid payload degrades into a clean rejection.
//
// Tensors travel with a 1-byte mode tag: dense (raw f32 stream) or sparse
// ((u32 index, f32 value) pairs — the SparseUpdate layout from
// fl/compression). The encoder picks sparse only when it is smaller AND
// lossless (every omitted coordinate is exactly 0.0f, including -0.0f),
// so compressed algorithms' sparse post-densify states shrink on the wire
// while decode always reconstructs bit-identical tensors.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/algorithm.h"
#include "net/wire.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace hetero::net {

enum class NodeRole : std::uint8_t {
  kWorker = 1,
  kEdge = 2,
};

struct HelloMsg {
  NodeRole role = NodeRole::kWorker;
  std::uint64_t node_index = 0;  ///< stable downstream slot, not accept order
};

struct HelloAckMsg {
  std::uint64_t node_index = 0;
  std::uint64_t rounds = 0;  ///< total rounds this run will drive
};

/// One round's work assignment for a downstream node: the round RNG state
/// (workers fork per-client streams from it, exactly like the monolithic
/// loop) plus this node's slice of the `selected` list as parallel
/// (client_id, position) arrays.
struct RoundConfigMsg {
  std::uint64_t round = 0;
  RngState round_rng;
  std::uint64_t n_selected = 0;   ///< full round selection size K
  std::uint64_t edge_groups = 0;  ///< 0 = flat tree
  std::vector<std::uint64_t> client_ids;
  std::vector<std::uint64_t> positions;  ///< indices into `selected`
};

struct ModelPullMsg {
  std::uint64_t round = 0;
};

struct ModelStateMsg {
  std::uint64_t round = 0;
  Tensor state;
};

struct UpdatePushMsg {
  std::uint64_t round = 0;
  std::uint64_t position = 0;  ///< index into the round's `selected` list
  ClientUpdate update;
};

/// Scalar view of one client's update forwarded by an edge so the root can
/// emit exact client_end events and fold the flat round summary without the
/// state tensors (which stay folded into the digest).
struct WireUpdateMeta {
  std::uint64_t client_id = 0;
  std::uint64_t position = 0;
  double weight = 0.0;
  double train_loss = 0.0;
  std::uint32_t flags = 0;
  std::uint8_t quarantined = 0;  ///< failed validate_update at the edge
  std::uint64_t update_bytes = 0;  ///< resolved update_payload_bytes
  double train_seconds = 0.0;
};

struct DigestMsg {
  std::uint64_t round = 0;
  std::uint64_t edge_index = 0;
  std::uint8_t has_digest = 0;  ///< 0 when every client was quarantined
  ClientUpdate digest;
  std::vector<WireUpdateMeta> metas;  ///< this edge's block, position order
};

struct ByeMsg {
  std::uint64_t rounds_done = 0;
};

// Tensor / ClientUpdate codecs, shared by the messages above.
void put_tensor(WireWriter& w, const Tensor& t);
bool get_tensor(WireReader& r, Tensor& out);
void put_update(WireWriter& w, const ClientUpdate& u);
bool get_update(WireReader& r, ClientUpdate& out);

std::vector<std::uint8_t> encode_hello(const HelloMsg& m);
bool decode_hello(const std::vector<std::uint8_t>& payload, HelloMsg& out);
std::vector<std::uint8_t> encode_hello_ack(const HelloAckMsg& m);
bool decode_hello_ack(const std::vector<std::uint8_t>& payload,
                      HelloAckMsg& out);
std::vector<std::uint8_t> encode_round_config(const RoundConfigMsg& m);
bool decode_round_config(const std::vector<std::uint8_t>& payload,
                         RoundConfigMsg& out);
std::vector<std::uint8_t> encode_model_pull(const ModelPullMsg& m);
bool decode_model_pull(const std::vector<std::uint8_t>& payload,
                       ModelPullMsg& out);
std::vector<std::uint8_t> encode_model_state(const ModelStateMsg& m);
bool decode_model_state(const std::vector<std::uint8_t>& payload,
                        ModelStateMsg& out);
std::vector<std::uint8_t> encode_update_push(const UpdatePushMsg& m);
bool decode_update_push(const std::vector<std::uint8_t>& payload,
                        UpdatePushMsg& out);
std::vector<std::uint8_t> encode_digest(const DigestMsg& m);
bool decode_digest(const std::vector<std::uint8_t>& payload, DigestMsg& out);
std::vector<std::uint8_t> encode_bye(const ByeMsg& m);
bool decode_bye(const std::vector<std::uint8_t>& payload, ByeMsg& out);

}  // namespace hetero::net
