#include "net/wire.h"

#include <array>
#include <bit>

namespace hetero::net {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_le(std::vector<std::uint8_t>& buf, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_le(const std::uint8_t* p, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kRoundConfig: return "round_config";
    case FrameType::kModelPull: return "model_pull";
    case FrameType::kModelState: return "model_state";
    case FrameType::kUpdatePush: return "update_push";
    case FrameType::kDigest: return "digest";
    case FrameType::kBye: return "bye";
  }
  return "unknown";
}

const char* parse_error_name(ParseError error) {
  switch (error) {
    case ParseError::kNone: return "none";
    case ParseError::kBadMagic: return "bad_magic";
    case ParseError::kBadVersion: return "bad_version";
    case ParseError::kBadReserved: return "bad_reserved";
    case ParseError::kOversized: return "oversized";
    case ParseError::kBadCrc: return "bad_crc";
    case ParseError::kBadSeq: return "bad_seq";
  }
  return "unknown";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint64_t run, std::uint64_t seq,
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  put_le(frame, kFrameMagic, 4);
  frame.push_back(kWireVersion);
  frame.push_back(static_cast<std::uint8_t>(type));
  put_le(frame, 0, 2);  // reserved
  put_le(frame, run, 8);
  put_le(frame, seq, 8);
  put_le(frame, static_cast<std::uint64_t>(payload.size()), 4);
  // CRC over header-after-magic [4, 28) then the payload, so any single
  // corrupted bit — header or body — fails the check.
  std::uint32_t crc = crc32(frame.data() + 4, 24);
  crc = crc32(payload.data(), payload.size(), crc);
  put_le(frame, crc, 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void FrameParser::fail(ParseError error) {
  error_ = error;
  buf_.clear();
  off_ = 0;
}

void FrameParser::feed(const std::uint8_t* data, std::size_t len) {
  if (quarantined()) return;
  // Compact the consumed prefix before growing — the buffer never holds
  // more than one partial frame plus whatever feed() just delivered.
  if (off_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameParser::next(Frame& out) {
  if (quarantined()) return false;
  if (buffered() < kFrameHeaderSize) return false;
  const std::uint8_t* h = buf_.data() + off_;
  FrameHeader header;
  header.magic = static_cast<std::uint32_t>(get_le(h, 4));
  header.version = h[4];
  header.type = h[5];
  header.reserved = static_cast<std::uint16_t>(get_le(h + 6, 2));
  header.run = get_le(h + 8, 8);
  header.seq = get_le(h + 16, 8);
  header.payload_len = static_cast<std::uint32_t>(get_le(h + 24, 4));
  header.crc = static_cast<std::uint32_t>(get_le(h + 28, 4));

  // Validate every header field before trusting payload_len for indexing.
  if (header.magic != kFrameMagic) {
    fail(ParseError::kBadMagic);
    return false;
  }
  if (header.version != kWireVersion) {
    fail(ParseError::kBadVersion);
    return false;
  }
  if (header.reserved != 0) {
    fail(ParseError::kBadReserved);
    return false;
  }
  if (header.payload_len > max_payload_) {
    fail(ParseError::kOversized);
    return false;
  }
  if (buffered() < kFrameHeaderSize + header.payload_len) {
    return false;  // wait for the rest of the payload
  }
  const std::uint8_t* body = h + kFrameHeaderSize;
  std::uint32_t crc = crc32(h + 4, 24);
  crc = crc32(body, header.payload_len, crc);
  if (crc != header.crc) {
    fail(ParseError::kBadCrc);
    return false;
  }
  if (header.seq != expected_seq_) {
    fail(ParseError::kBadSeq);
    return false;
  }
  ++expected_seq_;
  out.header = header;
  out.payload.assign(body, body + header.payload_len);
  off_ += kFrameHeaderSize + header.payload_len;
  return true;
}

bool WireReader::take(void* dst, std::size_t n) {
  if (!ok_ || n > len_ - off_) {
    ok_ = false;
    std::memset(dst, 0, n);
    return false;
  }
  std::memcpy(dst, p_ + off_, n);
  off_ += n;
  return true;
}

std::uint8_t WireReader::u8() {
  std::uint8_t b = 0;
  take(&b, 1);
  return b;
}

std::uint16_t WireReader::u16() {
  std::uint8_t b[2] = {};
  take(b, 2);
  return static_cast<std::uint16_t>(get_le(b, 2));
}

std::uint32_t WireReader::u32() {
  std::uint8_t b[4] = {};
  take(b, 4);
  return static_cast<std::uint32_t>(get_le(b, 4));
}

std::uint64_t WireReader::u64() {
  std::uint8_t b[8] = {};
  take(b, 8);
  return get_le(b, 8);
}

float WireReader::f32() { return std::bit_cast<float>(u32()); }

double WireReader::f64() { return std::bit_cast<double>(u64()); }

void WireReader::bytes(void* dst, std::size_t n) { take(dst, n); }

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) { put_le(buf_, v, 2); }

void WireWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }

void WireWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }

void WireWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::bytes(const void* src, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  buf_.insert(buf_.end(), p, p + n);
}

}  // namespace hetero::net
