// Binary wire framing for the FL server daemon (DESIGN.md §14).
//
// Every message travels as one length-prefixed frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic 'HSNF' (0x48534E46, little-endian on the wire)
//        4     1  wire version (kWireVersion)
//        5     1  frame type (FrameType)
//        6     2  reserved, must be 0
//        8     8  run id    — the Tracer's run/seq framing discipline:
//       16     8  seq       — strictly increasing from 0 per direction,
//                             so reordering / replay is detectable
//       24     4  payload length in bytes (bounded by max_payload)
//       28     4  CRC32 (IEEE) over bytes [4, 28) plus the payload
//       32     n  payload
//
// All integers are little-endian; f32/f64 travel as their raw IEEE bit
// patterns, so numeric payloads round-trip bit-exactly (the checkpoint
// layer's rule applied to the wire).
//
// FrameParser is an incremental bounds-checked decoder: feed() raw bytes,
// next() yields complete validated frames. Any malformed input — bad magic,
// unknown version, oversized length, CRC mismatch, seq break — quarantines
// the parser permanently (the connection is poisoned; counted in
// NetCounters::frames_bad / conns_quarantined). No input can index out of
// bounds: header fields are only trusted after validation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace hetero::net {

constexpr std::uint32_t kFrameMagic = 0x48534E46u;  // "HSNF"
constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kFrameHeaderSize = 32;
/// Default per-frame payload bound; override with HS_NET "maxframe=BYTES".
constexpr std::size_t kDefaultMaxPayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,        ///< downstream node introduces itself (role, index)
  kHelloAck = 2,     ///< server accepts; carries run shape
  kRoundConfig = 3,  ///< round id + RNG state + client assignment
  kModelPull = 4,    ///< request for the round-start global state
  kModelState = 5,   ///< the global state tensor
  kUpdatePush = 6,   ///< one client's ClientUpdate
  kDigest = 7,       ///< edge tier: partial aggregate + per-client metas
  kBye = 8,          ///< run complete; close after sending
};

const char* frame_type_name(FrameType type);

struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t reserved = 0;
  std::uint64_t run = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3 polynomial, table-driven). `seed` chains partial
/// computations: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed = 0);

/// Builds one complete frame (header + CRC + payload) ready to write.
std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t run,
                                       std::uint64_t seq,
                                       const std::vector<std::uint8_t>& payload);

/// Per-transport traffic and failure counters. Aggregated by the loopback
/// hub / event loop; surfaced as net.* trace extras when enabled.
struct NetCounters {
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t frames_bad = 0;         ///< frames rejected by a parser
  std::uint64_t conns_quarantined = 0;  ///< connections poisoned + dropped
};

enum class ParseError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadReserved,
  kOversized,
  kBadCrc,
  kBadSeq,
};

const char* parse_error_name(ParseError error);

/// Incremental frame decoder for one direction of one connection.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw transport bytes. Ignored once quarantined.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Extracts the next complete valid frame into `out`. Returns false when
  /// no complete frame is buffered or the parser is quarantined; check
  /// error() to distinguish. The first malformed frame quarantines the
  /// parser: buffered and future input is discarded.
  bool next(Frame& out);

  bool quarantined() const { return error_ != ParseError::kNone; }
  ParseError error() const { return error_; }
  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  void fail(ParseError error);

  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  // consumed prefix of buf_
  std::uint64_t expected_seq_ = 0;
  ParseError error_ = ParseError::kNone;
  std::size_t max_payload_;
};

/// Bounds-checked little-endian reader over a payload. Reads past the end
/// set a sticky failure flag and return zeros instead of touching memory;
/// decoders check ok() once at the end.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len)
      : p_(data), len_(len) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  /// Copies n raw bytes; zero-fills dst on overrun.
  void bytes(void* dst, std::size_t n);

  bool ok() const { return ok_; }
  std::size_t remaining() const { return len_ - off_; }
  /// Marks the read as failed (decoder-level validation).
  void invalidate() { ok_ = false; }

 private:
  bool take(void* dst, std::size_t n);

  const std::uint8_t* p_;
  std::size_t len_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// Little-endian payload builder; the writing twin of WireReader.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  void bytes(const void* src, std::size_t n);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace hetero::net
