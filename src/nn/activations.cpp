#include "nn/activations.h"

#include <algorithm>

namespace hetero {

Tensor ReLU::forward(const Tensor& x, bool train) {
  // Single pass straight from x into uninitialized output storage — the
  // copy-then-clamp form reads the activation twice for no reason.
  Tensor y = Tensor::uninit(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  const std::size_t size = x.size();
  if (train) {
    // Fused clamp + mask capture: backward only needs sign(x) > 0, so the
    // mask replaces a full tensor copy of the input.
    mask_.resize(size);
    cached_shape_ = x.shape();
    unsigned char* mp = mask_.data();
    for (std::size_t i = 0; i < size; ++i) {
      mp[i] = xp[i] > 0.0f ? 1 : 0;
      yp[i] = std::max(xp[i], 0.0f);  // same bits as the eval path (-0.0)
    }
    return y;
  }
  for (std::size_t i = 0; i < size; ++i) yp[i] = std::max(xp[i], 0.0f);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  HS_CHECK(!mask_.empty(), "ReLU::backward: no cached forward");
  HS_CHECK(grad_out.shape() == cached_shape_,
           "ReLU::backward: shape mismatch");
  Tensor g = grad_out;
  // Branchless select: the sign of the cached input is data-dependent and
  // mispredicts heavily as a branch; the ternary compiles to a vectorized
  // compare+mask with identical results.
  float* gp = g.data();
  const unsigned char* mp = mask_.data();
  const std::size_t size = g.size();
  for (std::size_t i = 0; i < size; ++i) {
    gp[i] = mp[i] ? gp[i] : 0.0f;
  }
  return g;
}

float HSigmoid::f(float x) {
  return std::clamp(x / 6.0f + 0.5f, 0.0f, 1.0f);
}

float HSigmoid::df(float x) {
  return (x > -3.0f && x < 3.0f) ? 1.0f / 6.0f : 0.0f;
}

Tensor HSigmoid::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  Tensor y = Tensor::uninit(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yp[i] = f(xp[i]);
  return y;
}

Tensor HSigmoid::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_x_.empty(), "HSigmoid::backward: no cached forward");
  HS_CHECK(grad_out.same_shape(cached_x_),
           "HSigmoid::backward: shape mismatch");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= df(cached_x_[i]);
  return g;
}

Tensor HSwish::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  Tensor y = Tensor::uninit(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yp[i] = xp[i] * HSigmoid::f(xp[i]);
  return y;
}

Tensor HSwish::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_x_.empty(), "HSwish::backward: no cached forward");
  HS_CHECK(grad_out.same_shape(cached_x_), "HSwish::backward: shape mismatch");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float x = cached_x_[i];
    // d/dx [x * hsig(x)] = hsig(x) + x * hsig'(x).
    g[i] *= HSigmoid::f(x) + x * HSigmoid::df(x);
  }
  return g;
}

}  // namespace hetero
