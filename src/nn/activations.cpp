#include "nn/activations.h"

#include <algorithm>

namespace hetero {

Tensor ReLU::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = std::max(v, 0.0f);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_x_.empty(), "ReLU::backward: no cached forward");
  HS_CHECK(grad_out.same_shape(cached_x_), "ReLU::backward: shape mismatch");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (cached_x_[i] <= 0.0f) g[i] = 0.0f;
  }
  return g;
}

float HSigmoid::f(float x) {
  return std::clamp(x / 6.0f + 0.5f, 0.0f, 1.0f);
}

float HSigmoid::df(float x) {
  return (x > -3.0f && x < 3.0f) ? 1.0f / 6.0f : 0.0f;
}

Tensor HSigmoid::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = f(v);
  return y;
}

Tensor HSigmoid::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_x_.empty(), "HSigmoid::backward: no cached forward");
  HS_CHECK(grad_out.same_shape(cached_x_),
           "HSigmoid::backward: shape mismatch");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= df(cached_x_[i]);
  return g;
}

Tensor HSwish::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = v * HSigmoid::f(v);
  return y;
}

Tensor HSwish::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_x_.empty(), "HSwish::backward: no cached forward");
  HS_CHECK(grad_out.same_shape(cached_x_), "HSwish::backward: shape mismatch");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float x = cached_x_[i];
    // d/dx [x * hsig(x)] = hsig(x) + x * hsig'(x).
    g[i] *= HSigmoid::f(x) + x * HSigmoid::df(x);
  }
  return g;
}

}  // namespace hetero
