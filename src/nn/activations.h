// Elementwise activations used by the mobile model zoo: ReLU, and the
// hard-swish / hard-sigmoid pair from MobileNetV3.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace hetero {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }
  std::string name() const override { return "ReLU"; }

 private:
  /// Backward only needs the sign of the forward input, so the forward
  /// caches a byte mask (x > 0) instead of copying the whole activation —
  /// a quarter of the memory traffic, identical gradients.
  std::vector<unsigned char> mask_;
  std::vector<std::size_t> cached_shape_;
};

/// h-sigmoid(x) = clamp(x/6 + 0.5, 0, 1)  (the ReLU6(x+3)/6 formulation).
class HSigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<HSigmoid>();
  }
  std::string name() const override { return "HSigmoid"; }

  /// Scalar version, shared with SEBlock.
  static float f(float x);
  static float df(float x);

 private:
  Tensor cached_x_;
};

/// h-swish(x) = x * h-sigmoid(x).
class HSwish : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<HSwish>();
  }
  std::string name() const override { return "HSwish"; }

 private:
  Tensor cached_x_;
};

}  // namespace hetero
