#include "nn/batchnorm.h"

#include <cmath>

#include "kernels/kernels.h"

namespace hetero {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps)
    : c_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::ones({channels})),
      beta_({channels}),
      ggamma_({channels}),
      gbeta_({channels}),
      run_mean_({channels}),
      run_var_(Tensor::ones({channels})) {
  HS_CHECK(channels > 0, "BatchNorm2d: zero channels");
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4 && x.dim(1) == c_,
           "BatchNorm2d: input must be (N, C, H, W)");
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t hw = h * w;
  const double count = static_cast<double>(n * hw);
  HS_CHECK(count > 0, "BatchNorm2d: empty batch");

  Tensor y({n, c_, h, w});
  if (train) {
    cached_xhat_ = Tensor({n, c_, h, w});
    inv_std_.assign(c_, 0.0f);
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
  }

  for (std::size_t c = 0; c < c_; ++c) {
    float mean_c, var_c;
    if (train) {
      double sum = 0.0, sq = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        kernels::plane_moments(x.data() + ((s * c_) + c) * hw, hw, sum, sq);
      }
      mean_c = static_cast<float>(sum / count);
      var_c = static_cast<float>(std::max(0.0, sq / count - sum / count * sum / count));
      run_mean_[c] = (1 - momentum_) * run_mean_[c] + momentum_ * mean_c;
      run_var_[c] = (1 - momentum_) * run_var_[c] + momentum_ * var_c;
    } else {
      mean_c = run_mean_[c];
      var_c = run_var_[c];
    }
    const float inv = 1.0f / std::sqrt(var_c + eps_);
    if (train) inv_std_[c] = inv;
    const float g = gamma_[c], b = beta_[c];
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t plane = ((s * c_) + c) * hw;
      kernels::bn_normalize_plane(
          x.data() + plane, y.data() + plane,
          train ? cached_xhat_.data() + plane : nullptr, hw, mean_c, inv, g,
          b);
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_xhat_.empty(), "BatchNorm2d::backward: no cached forward");
  const std::size_t n = cached_n_, h = cached_h_, w = cached_w_;
  HS_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
               grad_out.dim(1) == c_ && grad_out.dim(2) == h &&
               grad_out.dim(3) == w,
           "BatchNorm2d::backward: grad shape mismatch");
  const std::size_t hw = h * w;
  const double m = static_cast<double>(n * hw);

  Tensor grad_in({n, c_, h, w});
  for (std::size_t c = 0; c < c_; ++c) {
    // Standard batch-norm backward: reduce dL/dgamma, dL/dbeta, then the
    // coupled input gradient.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t plane = ((s * c_) + c) * hw;
      kernels::bn_reduce_plane(grad_out.data() + plane,
                               cached_xhat_.data() + plane, hw, sum_dy,
                               sum_dy_xhat);
    }
    ggamma_[c] += static_cast<float>(sum_dy_xhat);
    gbeta_[c] += static_cast<float>(sum_dy);
    // g * inv is folded once; the per-element product order is unchanged
    // (the seed expression evaluates (g * inv) * rest left-to-right).
    const float g_inv = gamma_[c] * inv_std_[c];
    const float k1 = static_cast<float>(sum_dy / m);
    const float k2 = static_cast<float>(sum_dy_xhat / m);
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t plane = ((s * c_) + c) * hw;
      kernels::bn_apply_plane(grad_out.data() + plane,
                              cached_xhat_.data() + plane,
                              grad_in.data() + plane, hw, g_inv, k1, k2);
    }
  }
  return grad_in;
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  auto copy = std::make_unique<BatchNorm2d>(c_, momentum_, eps_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  copy->run_mean_ = run_mean_;
  copy->run_var_ = run_var_;
  return copy;
}

void BatchNorm2d::collect(ParamGroup& group) {
  group.params.push_back(&gamma_);
  group.params.push_back(&beta_);
  group.grads.push_back(&ggamma_);
  group.grads.push_back(&gbeta_);
  group.buffers.push_back(&run_mean_);
  group.buffers.push_back(&run_var_);
}

}  // namespace hetero
