// Batch normalization over (N, C, H, W) activations (per-channel) with
// running statistics tracked as buffers.
//
// In federated learning the running statistics travel with the model state
// and are averaged by the server alongside the weights, which is the
// standard FedAvg treatment of BN.
#pragma once

#include "nn/layer.h"

namespace hetero {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  /// train=true normalizes with batch statistics and updates the running
  /// mean/var; train=false normalizes with the running statistics.
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "BatchNorm2d"; }

  std::size_t channels() const { return c_; }
  const Tensor& running_mean() const { return run_mean_; }
  const Tensor& running_var() const { return run_var_; }

 private:
  std::size_t c_;
  float momentum_, eps_;
  Tensor gamma_, beta_, ggamma_, gbeta_;
  Tensor run_mean_, run_var_;
  // Training-forward caches.
  Tensor cached_xhat_;         // normalized activations
  std::vector<float> inv_std_; // per-channel 1/sqrt(var+eps)
  std::size_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

}  // namespace hetero
