#include "nn/blocks.h"

#include "kernels/kernels.h"
#include "util/rng.h"

namespace hetero {

// ---------------------------------------------------------------- SEBlock --

SEBlock::SEBlock(std::size_t channels, std::size_t reduction, Rng& rng)
    : c_(channels),
      fc1_(channels, std::max<std::size_t>(1, channels / reduction), rng),
      fc2_(std::max<std::size_t>(1, channels / reduction), channels, rng) {}

Tensor SEBlock::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4 && x.dim(1) == c_, "SEBlock: input mismatch");
  Tensor s = gap_.forward(x, train);                       // (N, C)
  Tensor h = relu_.forward(fc1_.forward(s, train), train); // (N, C/r)
  Tensor gate = hsig_.forward(fc2_.forward(h, train), train);  // (N, C)
  if (train) {
    cached_x_ = x;
    cached_gate_ = gate;
  }
  Tensor y = x;
  const std::size_t n = x.dim(0), hgt = x.dim(2), wid = x.dim(3);
  const std::size_t hw = hgt * wid;
  for (std::size_t sm = 0; sm < n; ++sm) {
    for (std::size_t ch = 0; ch < c_; ++ch) {
      kernels::scale_plane(y.data() + ((sm * c_) + ch) * hw, hw,
                           gate.at(sm, ch));
    }
  }
  return y;
}

Tensor SEBlock::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_x_.empty(), "SEBlock::backward: no cached forward");
  HS_CHECK(grad_out.same_shape(cached_x_),
           "SEBlock::backward: grad shape mismatch");
  const std::size_t n = cached_x_.dim(0), hgt = cached_x_.dim(2),
                    wid = cached_x_.dim(3);
  const std::size_t hw = hgt * wid;
  // y = x * gate  =>  dx_direct = dy * gate ; dgate[n,c] = sum_hw dy * x.
  Tensor grad_x = grad_out;
  Tensor grad_gate({n, c_});
  for (std::size_t sm = 0; sm < n; ++sm) {
    for (std::size_t ch = 0; ch < c_; ++ch) {
      const std::size_t plane = ((sm * c_) + ch) * hw;
      grad_gate.at(sm, ch) = static_cast<float>(kernels::se_backward_plane(
          grad_out.data() + plane, cached_x_.data() + plane,
          grad_x.data() + plane, hw, cached_gate_.at(sm, ch)));
    }
  }
  // Back through the excitation MLP into the pooled features, then into x.
  Tensor g = hsig_.backward(grad_gate);
  g = fc2_.backward(g);
  g = relu_.backward(g);
  g = fc1_.backward(g);
  grad_x += gap_.backward(g);
  return grad_x;
}

void SEBlock::collect(ParamGroup& group) {
  fc1_.collect(group);
  fc2_.collect(group);
}

SEBlock::SEBlock(const SEBlock& other)
    : c_(other.c_), fc1_(other.fc1_), fc2_(other.fc2_) {}

std::unique_ptr<Layer> SEBlock::clone() const {
  return std::make_unique<SEBlock>(*this);
}

// --------------------------------------------------------------- Residual --

Residual::Residual(std::unique_ptr<Layer> inner) : inner_(std::move(inner)) {
  HS_CHECK(inner_ != nullptr, "Residual: null inner layer");
}

Tensor Residual::forward(const Tensor& x, bool train) {
  Tensor y = inner_->forward(x, train);
  HS_CHECK(y.same_shape(x), "Residual: inner layer changed shape");
  y += x;
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = inner_->backward(grad_out);
  g += grad_out;
  return g;
}

void Residual::collect(ParamGroup& group) { inner_->collect(group); }

std::unique_ptr<Layer> Residual::clone() const {
  return std::make_unique<Residual>(inner_->clone());
}

// ---------------------------------------------------------------- helpers --

std::unique_ptr<Layer> make_nonlinearity(Nonlinearity nl) {
  if (nl == Nonlinearity::kHSwish) return std::make_unique<HSwish>();
  return std::make_unique<ReLU>();
}

std::unique_ptr<Sequential> conv_bn_act(std::size_t in_c, std::size_t out_c,
                                        std::size_t kernel, std::size_t stride,
                                        std::size_t pad, std::size_t groups,
                                        Nonlinearity nl, Rng& rng) {
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Conv2d>(in_c, out_c, kernel, stride, pad, groups,
                                    rng, false));
  seq->add(std::make_unique<BatchNorm2d>(out_c));
  seq->add(make_nonlinearity(nl));
  return seq;
}

std::unique_ptr<Sequential> conv_bn(std::size_t in_c, std::size_t out_c,
                                    std::size_t kernel, std::size_t stride,
                                    std::size_t pad, std::size_t groups,
                                    Rng& rng) {
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Conv2d>(in_c, out_c, kernel, stride, pad, groups,
                                    rng, false));
  seq->add(std::make_unique<BatchNorm2d>(out_c));
  return seq;
}

// ------------------------------------------------------- InvertedResidual --

InvertedResidual::InvertedResidual(std::size_t in_c, std::size_t expand_c,
                                   std::size_t out_c, std::size_t kernel,
                                   std::size_t stride, bool use_se,
                                   Nonlinearity nl, Rng& rng)
    : use_res_(stride == 1 && in_c == out_c) {
  HS_CHECK(kernel % 2 == 1, "InvertedResidual: kernel must be odd");
  if (expand_c != in_c) {
    body_.add(conv_bn_act(in_c, expand_c, 1, 1, 0, 1, nl, rng));
  }
  // Depthwise spatial convolution.
  body_.add(conv_bn_act(expand_c, expand_c, kernel, stride, kernel / 2,
                        expand_c, nl, rng));
  if (use_se) body_.add(std::make_unique<SEBlock>(expand_c, 4, rng));
  // Linear projection (no activation).
  body_.add(conv_bn(expand_c, out_c, 1, 1, 0, 1, rng));
}

Tensor InvertedResidual::forward(const Tensor& x, bool train) {
  Tensor y = body_.forward(x, train);
  if (use_res_) y += x;
  return y;
}

Tensor InvertedResidual::backward(const Tensor& grad_out) {
  Tensor g = body_.backward(grad_out);
  if (use_res_) g += grad_out;
  return g;
}

void InvertedResidual::collect(ParamGroup& group) { body_.collect(group); }

InvertedResidual::InvertedResidual(const InvertedResidual& other)
    : use_res_(other.use_res_), body_(other.body_) {}

std::unique_ptr<Layer> InvertedResidual::clone() const {
  return std::make_unique<InvertedResidual>(*this);
}

// ------------------------------------------------------------- FireModule --

FireModule::FireModule(std::size_t in_c, std::size_t squeeze_c,
                       std::size_t expand1_c, std::size_t expand3_c, Rng& rng)
    : e1_c_(expand1_c), e3_c_(expand3_c) {
  squeeze_.add(std::make_unique<Conv2d>(in_c, squeeze_c, 1, 1, 0, 1, rng, true))
      .add(std::make_unique<ReLU>());
  expand1_
      .add(std::make_unique<Conv2d>(squeeze_c, expand1_c, 1, 1, 0, 1, rng,
                                    true))
      .add(std::make_unique<ReLU>());
  expand3_
      .add(std::make_unique<Conv2d>(squeeze_c, expand3_c, 3, 1, 1, 1, rng,
                                    true))
      .add(std::make_unique<ReLU>());
}

Tensor FireModule::forward(const Tensor& x, bool train) {
  Tensor sq = squeeze_.forward(x, train);
  if (train) cached_sq_ = sq;
  Tensor a = expand1_.forward(sq, train);
  Tensor b = expand3_.forward(sq, train);
  return channel_concat(a, b);
}

Tensor FireModule::backward(const Tensor& grad_out) {
  HS_CHECK(grad_out.rank() == 4 && grad_out.dim(1) == e1_c_ + e3_c_,
           "FireModule::backward: grad shape mismatch");
  Tensor ga = channel_range(grad_out, 0, e1_c_);
  Tensor gb = channel_range(grad_out, e1_c_, e1_c_ + e3_c_);
  Tensor gsq = expand1_.backward(ga);
  gsq += expand3_.backward(gb);
  return squeeze_.backward(gsq);
}

void FireModule::collect(ParamGroup& group) {
  squeeze_.collect(group);
  expand1_.collect(group);
  expand3_.collect(group);
}

FireModule::FireModule(const FireModule& other)
    : e1_c_(other.e1_c_),
      e3_c_(other.e3_c_),
      squeeze_(other.squeeze_),
      expand1_(other.expand1_),
      expand3_(other.expand3_) {}

std::unique_ptr<Layer> FireModule::clone() const {
  return std::make_unique<FireModule>(*this);
}

// ---------------------------------------------------------- channel utils --

Tensor channel_range(const Tensor& x, std::size_t c0, std::size_t c1) {
  HS_CHECK(x.rank() == 4 && c0 < c1 && c1 <= x.dim(1),
           "channel_range: bad channel bounds");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t hw = h * w, nc = c1 - c0;
  Tensor out({n, nc, h, w});
  for (std::size_t s = 0; s < n; ++s) {
    const float* src = x.data() + ((s * c) + c0) * hw;
    float* dst = out.data() + s * nc * hw;
    std::copy(src, src + nc * hw, dst);
  }
  return out;
}

Tensor channel_concat(const Tensor& a, const Tensor& b) {
  HS_CHECK(a.rank() == 4 && b.rank() == 4 && a.dim(0) == b.dim(0) &&
               a.dim(2) == b.dim(2) && a.dim(3) == b.dim(3),
           "channel_concat: incompatible shapes");
  const std::size_t n = a.dim(0), ca = a.dim(1), cb = b.dim(1), h = a.dim(2),
                    w = a.dim(3);
  const std::size_t hw = h * w;
  Tensor out({n, ca + cb, h, w});
  for (std::size_t s = 0; s < n; ++s) {
    std::copy(a.data() + s * ca * hw, a.data() + (s + 1) * ca * hw,
              out.data() + s * (ca + cb) * hw);
    std::copy(b.data() + s * cb * hw, b.data() + (s + 1) * cb * hw,
              out.data() + (s * (ca + cb) + ca) * hw);
  }
  return out;
}

// --------------------------------------------------------- ChannelShuffle --

ChannelShuffle::ChannelShuffle(std::size_t groups) : groups_(groups) {
  HS_CHECK(groups > 0, "ChannelShuffle: groups must be positive");
}

Tensor ChannelShuffle::forward(const Tensor& x, bool train) {
  (void)train;
  HS_CHECK(x.rank() == 4 && x.dim(1) % groups_ == 0,
           "ChannelShuffle: channels not divisible by groups");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t per = c / groups_;
  const std::size_t hw = h * w;
  Tensor y({n, c, h, w});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t dst_ch = (ch % groups_) * per + ch / groups_;
      std::copy(x.data() + ((s * c) + ch) * hw,
                x.data() + ((s * c) + ch + 1) * hw,
                y.data() + ((s * c) + dst_ch) * hw);
    }
  }
  return y;
}

Tensor ChannelShuffle::backward(const Tensor& grad_out) {
  HS_CHECK(grad_out.rank() == 4 && grad_out.dim(1) % groups_ == 0,
           "ChannelShuffle::backward: bad grad shape");
  const std::size_t n = grad_out.dim(0), c = grad_out.dim(1),
                    h = grad_out.dim(2), w = grad_out.dim(3);
  const std::size_t per = c / groups_;
  const std::size_t hw = h * w;
  Tensor g({n, c, h, w});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t dst_ch = (ch % groups_) * per + ch / groups_;
      // forward moved ch -> dst_ch, so gradient flows dst_ch -> ch.
      std::copy(grad_out.data() + ((s * c) + dst_ch) * hw,
                grad_out.data() + ((s * c) + dst_ch + 1) * hw,
                g.data() + ((s * c) + ch) * hw);
    }
  }
  return g;
}

// ------------------------------------------------------------ ShuffleUnit --

ShuffleUnit::ShuffleUnit(std::size_t in_c, std::size_t out_c,
                         std::size_t stride, Rng& rng)
    : in_c_(in_c), out_c_(out_c), stride_(stride) {
  HS_CHECK(stride == 1 || stride == 2, "ShuffleUnit: stride must be 1 or 2");
  HS_CHECK(out_c % 2 == 0, "ShuffleUnit: out_c must be even");
  const std::size_t branch_c = out_c / 2;
  if (stride == 1) {
    HS_CHECK(in_c == out_c, "ShuffleUnit: stride-1 unit needs in_c == out_c");
    // Right branch processes half the channels.
    right_.add(conv_bn_act(branch_c, branch_c, 1, 1, 0, 1, Nonlinearity::kReLU,
                           rng));
    right_.add(conv_bn(branch_c, branch_c, 3, 1, 1, branch_c, rng));
    right_.add(conv_bn_act(branch_c, branch_c, 1, 1, 0, 1, Nonlinearity::kReLU,
                           rng));
  } else {
    HS_CHECK(out_c >= in_c, "ShuffleUnit: stride-2 unit must not shrink");
    // Left: depthwise downsample + pointwise. Right: bottleneck downsample.
    left_.add(conv_bn(in_c, in_c, 3, 2, 1, in_c, rng));
    left_.add(conv_bn_act(in_c, branch_c, 1, 1, 0, 1, Nonlinearity::kReLU,
                          rng));
    right_.add(conv_bn_act(in_c, branch_c, 1, 1, 0, 1, Nonlinearity::kReLU,
                           rng));
    right_.add(conv_bn(branch_c, branch_c, 3, 2, 1, branch_c, rng));
    right_.add(conv_bn_act(branch_c, branch_c, 1, 1, 0, 1, Nonlinearity::kReLU,
                           rng));
  }
}

Tensor ShuffleUnit::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4 && x.dim(1) == in_c_, "ShuffleUnit: input mismatch");
  if (train) cached_in_shape_ = x.shape();
  Tensor merged;
  if (stride_ == 1) {
    const std::size_t half = in_c_ / 2;
    Tensor a = channel_range(x, 0, half);
    Tensor b = right_.forward(channel_range(x, half, in_c_), train);
    merged = channel_concat(a, b);
  } else {
    Tensor a = left_.forward(x, train);
    Tensor b = right_.forward(x, train);
    merged = channel_concat(a, b);
  }
  ChannelShuffle shuffle(2);
  return shuffle.forward(merged, false);
}

Tensor ShuffleUnit::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_in_shape_.empty(), "ShuffleUnit::backward: no forward");
  // Un-shuffle the incoming gradient (shuffle is parameter-free).
  ChannelShuffle shuffle(2);
  Tensor g = shuffle.backward(grad_out);
  const std::size_t half = out_c_ / 2;
  Tensor ga = channel_range(g, 0, half);
  Tensor gb = channel_range(g, half, out_c_);
  if (stride_ == 1) {
    Tensor gx_right = right_.backward(gb);
    // Reassemble the split: left half passed through untouched.
    return channel_concat(ga, gx_right);
  }
  Tensor gx = left_.backward(ga);
  gx += right_.backward(gb);
  return gx;
}

void ShuffleUnit::collect(ParamGroup& group) {
  if (stride_ == 2) left_.collect(group);
  right_.collect(group);
}

ShuffleUnit::ShuffleUnit(const ShuffleUnit& other)
    : in_c_(other.in_c_),
      out_c_(other.out_c_),
      stride_(other.stride_),
      left_(other.left_),
      right_(other.right_) {}

std::unique_ptr<Layer> ShuffleUnit::clone() const {
  return std::make_unique<ShuffleUnit>(*this);
}

}  // namespace hetero
