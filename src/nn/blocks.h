// Composite building blocks for the mobile model zoo:
//   * SEBlock          - squeeze-and-excitation channel attention
//   * Residual         - y = x + f(x) skip wrapper
//   * InvertedResidual - MobileNetV3 bottleneck (expand / depthwise / SE /
//                        project, optional skip)
//   * FireModule       - SqueezeNet squeeze + parallel 1x1/3x3 expand
//   * ShuffleUnit      - ShuffleNetV2 unit (channel split + shuffle)
//
// Composites own their sub-layers and implement forward/backward through the
// branch topology explicitly.
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace hetero {

class Rng;

/// Squeeze-and-excitation: per-channel gate from globally-pooled features.
/// y[n,c,h,w] = x[n,c,h,w] * hsigmoid(fc2(relu(fc1(gap(x)))))[n,c].
class SEBlock : public Layer {
 public:
  SEBlock(std::size_t channels, std::size_t reduction, Rng& rng);
  SEBlock(const SEBlock& other);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "SEBlock"; }

 private:
  std::size_t c_;
  GlobalAvgPool gap_;
  Linear fc1_, fc2_;
  ReLU relu_;
  HSigmoid hsig_;
  Tensor cached_x_, cached_gate_;  // gate: (N, C)
};

/// Residual skip around an inner layer with matching input/output shapes.
class Residual : public Layer {
 public:
  explicit Residual(std::unique_ptr<Layer> inner);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Residual"; }

 private:
  std::unique_ptr<Layer> inner_;
};

/// Which nonlinearity an InvertedResidual uses.
enum class Nonlinearity { kReLU, kHSwish };

std::unique_ptr<Layer> make_nonlinearity(Nonlinearity nl);

/// MobileNetV3 bottleneck block.
class InvertedResidual : public Layer {
 public:
  /// expand -> depthwise(kernel, stride) -> [SE] -> project. Residual skip
  /// is applied when stride==1 and in_c==out_c.
  InvertedResidual(std::size_t in_c, std::size_t expand_c, std::size_t out_c,
                   std::size_t kernel, std::size_t stride, bool use_se,
                   Nonlinearity nl, Rng& rng);
  InvertedResidual(const InvertedResidual& other);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "InvertedResidual"; }

 private:
  bool use_res_;
  Sequential body_;
};

/// SqueezeNet fire module: squeeze 1x1 (s_c) then parallel expand 1x1 (e1_c)
/// and expand 3x3 (e3_c), concatenated along channels. ReLU after each conv.
class FireModule : public Layer {
 public:
  FireModule(std::size_t in_c, std::size_t squeeze_c, std::size_t expand1_c,
             std::size_t expand3_c, Rng& rng);
  FireModule(const FireModule& other);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "FireModule"; }

 private:
  std::size_t e1_c_, e3_c_;
  Sequential squeeze_;
  Sequential expand1_, expand3_;
  Tensor cached_sq_;  // squeeze output (input to both branches)
};

/// ShuffleNetV2 basic unit. stride==1: channel split, right branch conv,
/// concat, shuffle. stride==2: both branches downsample, concat (channels
/// double), shuffle.
class ShuffleUnit : public Layer {
 public:
  /// For stride 1, out_c must equal in_c; for stride 2, out_c must be even
  /// and >= in_c (branch widths out_c/2 each).
  ShuffleUnit(std::size_t in_c, std::size_t out_c, std::size_t stride,
              Rng& rng);
  ShuffleUnit(const ShuffleUnit& other);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "ShuffleUnit"; }

 private:
  std::size_t in_c_, out_c_, stride_;
  Sequential left_;   // only used when stride==2
  Sequential right_;
  std::vector<std::size_t> cached_in_shape_;
};

/// Channel shuffle with the given number of groups: reorders (N, C, H, W)
/// channels as c -> (c % groups) * (C/groups) + c / groups.
class ChannelShuffle : public Layer {
 public:
  explicit ChannelShuffle(std::size_t groups);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ChannelShuffle>(groups_);
  }
  std::string name() const override { return "ChannelShuffle"; }

 private:
  std::size_t groups_;
};

/// Splits (N,C,H,W) channels [c0, c1) into a new tensor (copy).
Tensor channel_range(const Tensor& x, std::size_t c0, std::size_t c1);
/// Concatenates two (N,*,H,W) tensors along channels.
Tensor channel_concat(const Tensor& a, const Tensor& b);

/// Conv+BN+activation triple, the standard stem unit.
std::unique_ptr<Sequential> conv_bn_act(std::size_t in_c, std::size_t out_c,
                                        std::size_t kernel, std::size_t stride,
                                        std::size_t pad, std::size_t groups,
                                        Nonlinearity nl, Rng& rng);
/// Conv+BN without activation (projection layers).
std::unique_ptr<Sequential> conv_bn(std::size_t in_c, std::size_t out_c,
                                    std::size_t kernel, std::size_t stride,
                                    std::size_t pad, std::size_t groups,
                                    Rng& rng);

}  // namespace hetero
