#include "nn/conv2d.h"

#include <cmath>

#include "util/rng.h"

namespace hetero {

Conv2d::Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
               std::size_t stride, std::size_t pad, std::size_t groups,
               Rng& rng, bool bias)
    : Conv2d(Uninitialized{}, in_c, out_c, kernel, stride, pad, groups, bias) {
  const std::size_t fan_in = (in_c / groups) * kernel * kernel;
  w_ = Tensor::randn({out_c, in_c / groups, kernel, kernel}, rng,
                     std::sqrt(2.0f / static_cast<float>(fan_in)));
}

Conv2d::Conv2d(Uninitialized, std::size_t in_c, std::size_t out_c,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               std::size_t groups, bool bias)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      groups_(groups),
      has_bias_(bias),
      w_({out_c, in_c / groups, kernel, kernel}),
      b_({out_c}),
      gw_({out_c, in_c / groups, kernel, kernel}),
      gb_({out_c}) {
  HS_CHECK(groups > 0 && in_c % groups == 0 && out_c % groups == 0,
           "Conv2d: channels must be divisible by groups");
  HS_CHECK(kernel > 0 && stride > 0, "Conv2d: kernel/stride must be positive");
}

std::unique_ptr<Conv2d> Conv2d::make(std::size_t in_c, std::size_t out_c,
                                     std::size_t kernel, std::size_t stride,
                                     std::size_t pad, Rng& rng) {
  return std::make_unique<Conv2d>(in_c, out_c, kernel, stride, pad, 1, rng,
                                  false);
}

kernels::ConvShape Conv2d::shape(std::size_t n, std::size_t in_h,
                                 std::size_t in_w) const {
  kernels::ConvShape s;
  s.n = n;
  s.in_c = in_c_;
  s.in_h = in_h;
  s.in_w = in_w;
  s.out_c = out_c_;
  s.kernel = kernel_;
  s.stride = stride_;
  s.pad = pad_;
  s.groups = groups_;
  return s;
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4 && x.dim(1) == in_c_,
           "Conv2d: input must be (N, in_c, H, W)");
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  HS_CHECK(h + 2 * pad_ >= kernel_ && w + 2 * pad_ >= kernel_,
           "Conv2d: kernel larger than padded input");
  const kernels::ConvShape s = shape(n, h, w);

  // Every forward path (reference/tiled/fast/int8, pointwise/depthwise/
  // general) writes the full output, so the zero-fill is skipped.
  Tensor y = Tensor::uninit({n, out_c_, s.out_h(), s.out_w()});
  const kernels::KernelKind kind = kernels::active_kernel();
  if (!train && kernels::int8_eval_active()) {
    // Forward-only eval pass under HS_EVAL=int8. Never caches patch
    // matrices: backward always replays the kind (and cols layout) of a
    // f32 training forward. The quantized weight codes *are* cached in the
    // workspace, stamped against the weight generation.
    kernels::conv2d_forward_int8(s, x.data(), w_.data(),
                                 has_bias_ ? b_.data() : nullptr, y.data(),
                                 ws_, &int8_wcache_);
    return y;
  }
  float* cols = nullptr;
  if (train) {
    cols = ws_.get(0, s.cols_size());
    cached_kind_ = kind;
    has_cached_ = true;
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
  }
  kernels::conv2d_forward(kind, s, x.data(), w_.data(),
                          has_bias_ ? b_.data() : nullptr, y.data(), cols,
                          ws_);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  HS_CHECK(has_cached_, "Conv2d::backward: no cached forward");
  const std::size_t n = cached_n_, h = cached_h_, w = cached_w_;
  const kernels::ConvShape s = shape(n, h, w);
  HS_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
               grad_out.dim(1) == out_c_ && grad_out.dim(2) == s.out_h() &&
               grad_out.dim(3) == s.out_w(),
           "Conv2d::backward: grad shape mismatch");

  Tensor grad_in({n, in_c_, h, w});  // zero-initialized; kernel folds into it
  const float* cols = ws_.get(0, s.cols_size());
  kernels::conv2d_backward(cached_kind_, s, grad_out.data(), w_.data(), cols,
                           gw_.data(), has_bias_ ? gb_.data() : nullptr,
                           grad_in.data(), ws_);
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::unique_ptr<Conv2d>(new Conv2d(
      Uninitialized{}, in_c_, out_c_, kernel_, stride_, pad_, groups_,
      has_bias_));
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

void Conv2d::collect(ParamGroup& group) {
  group.params.push_back(&w_);
  group.grads.push_back(&gw_);
  if (has_bias_) {
    group.params.push_back(&b_);
    group.grads.push_back(&gb_);
  }
}

}  // namespace hetero
