#include "nn/conv2d.h"

#include <cmath>

#include "util/rng.h"

namespace hetero {
namespace {

/// Copies channels [c0, c0+nc) of sample n from a (N,C,H,W) tensor into a
/// (nc,H,W) tensor.
Tensor channel_slice(const Tensor& x, std::size_t n, std::size_t c0,
                     std::size_t nc) {
  const std::size_t h = x.dim(2), w = x.dim(3);
  Tensor out({nc, h, w});
  const float* src = x.data() + ((n * x.dim(1)) + c0) * h * w;
  std::copy(src, src + nc * h * w, out.data());
  return out;
}

}  // namespace

Conv2d::Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
               std::size_t stride, std::size_t pad, std::size_t groups,
               Rng& rng, bool bias)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      groups_(groups),
      has_bias_(bias),
      b_({out_c}),
      gb_({out_c}) {
  HS_CHECK(groups > 0 && in_c % groups == 0 && out_c % groups == 0,
           "Conv2d: channels must be divisible by groups");
  HS_CHECK(kernel > 0 && stride > 0, "Conv2d: kernel/stride must be positive");
  const std::size_t fan_in = (in_c / groups) * kernel * kernel;
  w_ = Tensor::randn({out_c, in_c / groups, kernel, kernel}, rng,
                     std::sqrt(2.0f / static_cast<float>(fan_in)));
  gw_ = Tensor({out_c, in_c / groups, kernel, kernel});
}

std::unique_ptr<Conv2d> Conv2d::make(std::size_t in_c, std::size_t out_c,
                                     std::size_t kernel, std::size_t stride,
                                     std::size_t pad, Rng& rng) {
  return std::make_unique<Conv2d>(in_c, out_c, kernel, stride, pad, 1, rng,
                                  false);
}

Conv2dGeometry Conv2d::group_geometry(std::size_t in_h,
                                      std::size_t in_w) const {
  Conv2dGeometry g;
  g.in_c = in_c_ / groups_;
  g.in_h = in_h;
  g.in_w = in_w;
  g.kernel = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  return g;
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4 && x.dim(1) == in_c_,
           "Conv2d: input must be (N, in_c, H, W)");
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const Conv2dGeometry g = group_geometry(h, w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t gic = in_c_ / groups_;
  const std::size_t goc = out_c_ / groups_;
  const std::size_t patch = gic * kernel_ * kernel_;

  Tensor y({n, out_c_, oh, ow});
  if (train) {
    cached_cols_.assign(n * groups_, Tensor());
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
  }

  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t grp = 0; grp < groups_; ++grp) {
      Tensor cols = im2col(channel_slice(x, s, grp * gic, gic), g);
      // Weight slab for this group, viewed as (goc, patch).
      Tensor wg({goc, patch});
      std::copy(w_.data() + grp * goc * patch,
                w_.data() + (grp + 1) * goc * patch, wg.data());
      Tensor out = matmul(wg, cols);  // (goc, oh*ow)
      float* dst = y.data() + ((s * out_c_) + grp * goc) * oh * ow;
      std::copy(out.data(), out.data() + goc * oh * ow, dst);
      if (train) cached_cols_[s * groups_ + grp] = std::move(cols);
    }
    if (has_bias_) {
      for (std::size_t c = 0; c < out_c_; ++c) {
        float* dst = y.data() + ((s * out_c_) + c) * oh * ow;
        for (std::size_t i = 0; i < oh * ow; ++i) dst[i] += b_[c];
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  HS_CHECK(!cached_cols_.empty(), "Conv2d::backward: no cached forward");
  const std::size_t n = cached_n_, h = cached_h_, w = cached_w_;
  const Conv2dGeometry g = group_geometry(h, w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  HS_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
               grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
               grad_out.dim(3) == ow,
           "Conv2d::backward: grad shape mismatch");
  const std::size_t gic = in_c_ / groups_;
  const std::size_t goc = out_c_ / groups_;
  const std::size_t patch = gic * kernel_ * kernel_;

  Tensor grad_in({n, in_c_, h, w});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t grp = 0; grp < groups_; ++grp) {
      // Gradient slab (goc, oh*ow) for this sample/group.
      Tensor go({goc, oh * ow});
      std::copy(grad_out.data() + ((s * out_c_) + grp * goc) * oh * ow,
                grad_out.data() + ((s * out_c_) + (grp + 1) * goc) * oh * ow,
                go.data());
      const Tensor& cols = cached_cols_[s * groups_ + grp];
      // dW_g += go * cols^T   -> (goc, patch)
      Tensor dwg = matmul_transpose_b(go, cols);
      float* gw = gw_.data() + grp * goc * patch;
      for (std::size_t i = 0; i < goc * patch; ++i) gw[i] += dwg[i];
      // dCols = W_g^T * go    -> (patch, oh*ow), then fold back.
      Tensor wg({goc, patch});
      std::copy(w_.data() + grp * goc * patch,
                w_.data() + (grp + 1) * goc * patch, wg.data());
      Tensor dcols = matmul_transpose_a(wg, go);
      Tensor dimg = col2im(dcols, g);  // (gic, h, w)
      float* dst = grad_in.data() + ((s * in_c_) + grp * gic) * h * w;
      for (std::size_t i = 0; i < gic * h * w; ++i) dst[i] += dimg[i];
    }
    if (has_bias_) {
      for (std::size_t c = 0; c < out_c_; ++c) {
        const float* src = grad_out.data() + ((s * out_c_) + c) * oh * ow;
        double acc = 0.0;
        for (std::size_t i = 0; i < oh * ow; ++i) acc += src[i];
        gb_[c] += static_cast<float>(acc);
      }
    }
  }
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  // Fresh instance with the same geometry; the He init is immediately
  // overwritten with this layer's weights.
  Rng init(0);
  auto copy = std::make_unique<Conv2d>(in_c_, out_c_, kernel_, stride_, pad_,
                                       groups_, init, has_bias_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

void Conv2d::collect(ParamGroup& group) {
  group.params.push_back(&w_);
  group.grads.push_back(&gw_);
  if (has_bias_) {
    group.params.push_back(&b_);
    group.grads.push_back(&gb_);
  }
}

}  // namespace hetero
