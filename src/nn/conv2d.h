// 2-D convolution (cross-correlation) with square kernels, stride, zero
// padding and channel groups. groups == in_channels gives the depthwise
// convolution used by the MobileNet/ShuffleNet blocks.
//
// Implementation: kernels::conv2d_forward/backward — batched im2col + one
// GEMM per group over the whole mini-batch (HS_KERNEL=tiled) or the
// per-sample reference loops (HS_KERNEL=reference). The unfolded patch
// matrices live in a per-layer workspace that is reused across steps, so
// steady-state training does not allocate.
#pragma once

#include "kernels/kernels.h"
#include "nn/layer.h"
#include "tensor/tensor_ops.h"

namespace hetero {

class Rng;

class Conv2d : public Layer {
 public:
  /// Weight shape (out_c, in_c/groups, k, k); He-initialized. in_c and out_c
  /// must be divisible by groups.
  Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
         std::size_t stride, std::size_t pad, std::size_t groups, Rng& rng,
         bool bias = false);

  /// Common case: groups=1, bias off (a BatchNorm usually follows).
  static std::unique_ptr<Conv2d> make(std::size_t in_c, std::size_t out_c,
                                      std::size_t kernel, std::size_t stride,
                                      std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Conv2d"; }

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  Tensor& weight() { return w_; }

 private:
  struct Uninitialized {};  // clone() tag: geometry only, weights copied after

  Conv2d(Uninitialized, std::size_t in_c, std::size_t out_c,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         std::size_t groups, bool bias);

  kernels::ConvShape shape(std::size_t n, std::size_t in_h,
                           std::size_t in_w) const;

  std::size_t in_c_, out_c_, kernel_, stride_, pad_, groups_;
  bool has_bias_;
  Tensor w_, b_, gw_, gb_;
  // Caches from the last training forward. The patch matrices sit in the
  // workspace (slot 0); their layout depends on the kernel kind, so the
  // kind is pinned at forward time and reused by backward.
  kernels::Workspace ws_;
  kernels::Int8WeightCache int8_wcache_;  // stamp for ws_'s weight codes
  kernels::KernelKind cached_kind_ = kernels::KernelKind::kReference;
  bool has_cached_ = false;
  std::size_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

}  // namespace hetero
