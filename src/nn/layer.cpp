#include "nn/layer.h"

#include <algorithm>

namespace hetero {

std::unique_ptr<Layer> Layer::clone() const {
  HS_CHECK(false, "Layer::clone: not supported by this layer type");
  return nullptr;  // unreachable
}

void Layer::zero_grad() {
  ParamGroup g;
  collect(g);
  for (Tensor* t : g.grads) t->zero();
}

ParamGroup Layer::param_group() {
  ParamGroup g;
  collect(g);
  return g;
}

std::size_t Layer::num_params() {
  ParamGroup g;
  collect(g);
  return total_size(g.params);
}

std::size_t total_size(const std::vector<Tensor*>& tensors) {
  std::size_t n = 0;
  for (const Tensor* t : tensors) n += t->size();
  return n;
}

Tensor flatten_tensors(const std::vector<Tensor*>& tensors) {
  Tensor flat({total_size(tensors)});
  std::size_t off = 0;
  for (const Tensor* t : tensors) {
    std::copy(t->data(), t->data() + t->size(), flat.data() + off);
    off += t->size();
  }
  return flat;
}

void unflatten_tensors(const Tensor& flat, const std::vector<Tensor*>& dst) {
  HS_CHECK(flat.size() == total_size(dst),
           "unflatten_tensors: size mismatch");
  std::size_t off = 0;
  for (Tensor* t : dst) {
    std::copy(flat.data() + off, flat.data() + off + t->size(), t->data());
    off += t->size();
  }
}

}  // namespace hetero
