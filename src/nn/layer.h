// Layer abstraction for the manual-backprop neural-network stack.
//
// Design notes:
//  * No autograd graph. Each layer caches what its backward pass needs
//    during forward(train=true) and implements backward() explicitly. This
//    keeps memory behaviour predictable and makes federated-learning
//    parameter flattening trivial.
//  * Layers are stateful and single-threaded: one forward must be followed
//    by (at most) one backward before the next forward.
//  * collect() exposes three tensor groups:
//      - params: trained by the optimizer, part of the FL model state;
//      - grads: same shapes as params;
//      - buffers: non-trained state that still travels with the model
//        (batch-norm running statistics) and is averaged by FL aggregation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace hetero {

/// Pointers into a layer's parameter/gradient/buffer tensors.
struct ParamGroup {
  std::vector<Tensor*> params;
  std::vector<Tensor*> grads;
  std::vector<Tensor*> buffers;
};

/// Base class for all network layers and composite blocks.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. When train is true, caches activations
  /// needed by backward() and uses batch statistics in normalization layers.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Propagates the loss gradient; accumulates into parameter grads and
  /// returns the gradient w.r.t. the layer input. Must follow a
  /// forward(train=true) on the same input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends this layer's tensors to the group (composites recurse).
  virtual void collect(ParamGroup& group) { (void)group; }

  /// Polymorphic deep copy: a freshly allocated layer with identical
  /// architecture, parameters, and buffers. The parallel client runtime
  /// (src/runtime) builds per-worker model replicas through this. Base
  /// copy construction stays deleted so a Layer is never copied by
  /// accident; clone() is the sanctioned path. The default implementation
  /// throws for layers that do not support replication.
  virtual std::unique_ptr<Layer> clone() const;

  virtual std::string name() const = 0;

  /// Zeroes all gradient tensors.
  void zero_grad();

  /// Convenience wrappers around collect().
  ParamGroup param_group();
  std::size_t num_params();
};

/// Total element count of a tensor-pointer list.
std::size_t total_size(const std::vector<Tensor*>& tensors);

/// Concatenates tensors into one flat tensor.
Tensor flatten_tensors(const std::vector<Tensor*>& tensors);

/// Scatters a flat tensor back into the destination tensors (sizes must
/// match exactly).
void unflatten_tensors(const Tensor& flat, const std::vector<Tensor*>& dst);

}  // namespace hetero
