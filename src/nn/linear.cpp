#include "nn/linear.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace hetero {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      w_(Tensor::randn({out_features, in_features}, rng,
                       std::sqrt(2.0f / static_cast<float>(in_features)))),
      b_({out_features}),
      gw_({out_features, in_features}),
      gb_({out_features}) {
  HS_CHECK(in_features > 0 && out_features > 0, "Linear: zero-sized layer");
}

Tensor Linear::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 2 && x.dim(1) == in_, "Linear: input shape mismatch");
  if (train) cached_x_ = x;
  const std::size_t n = x.dim(0);
  Tensor y = Tensor::uninit({n, out_});  // y = x W^T (fully written below)
  if (!train && kernels::int8_eval_active()) {
    // Forward-only eval pass under HS_EVAL=int8: dynamic per-row
    // quantization, bias fused by the kernel. Training forwards never take
    // this branch (train == true bypasses the check entirely).
    kernels::linear_forward_int8(x.data(), w_.data(),
                                 has_bias_ ? b_.data() : nullptr, y.data(), n,
                                 in_, out_, ws_, &int8_wcache_);
    return y;
  }
  kernels::gemm_nt(kernels::active_kernel(), x.data(), w_.data(), y.data(), n,
                   in_, out_, /*accumulate=*/false);
  if (has_bias_) {
    for (std::size_t i = 0; i < n; ++i) {
      float* row = y.data() + i * out_;
      for (std::size_t j = 0; j < out_; ++j) row[j] += b_[j];
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  HS_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
           "Linear::backward: grad shape mismatch");
  HS_CHECK(!cached_x_.empty(), "Linear::backward: no cached forward");
  const std::size_t n = grad_out.dim(0);
  const kernels::KernelKind kind = kernels::active_kernel();
  // gw += grad_out^T x, via a workspace slab so the reduction is computed
  // fresh (seed rounding) and then added on in one f32 pass per element.
  float* dwg = ws_.get(0, out_ * in_);
  kernels::gemm_tn(kind, grad_out.data(), cached_x_.data(), dwg, n, out_, in_,
                   /*accumulate=*/false);
  float* gw = gw_.data();
  for (std::size_t i = 0; i < out_ * in_; ++i) gw[i] += dwg[i];
  if (has_bias_) {
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = grad_out.data() + i * out_;
      for (std::size_t j = 0; j < out_; ++j) gb_[j] += row[j];
    }
  }
  // grad_in = grad_out W; the non-accumulating GEMM writes every element.
  Tensor grad_in = Tensor::uninit({n, in_});
  kernels::gemm_nn(kind, grad_out.data(), w_.data(), grad_in.data(), n, out_,
                   in_, /*accumulate=*/false);
  return grad_in;
}

Linear::Linear(const Linear& other)
    : in_(other.in_),
      out_(other.out_),
      has_bias_(other.has_bias_),
      w_(other.w_),
      b_(other.b_),
      gw_(other.gw_),
      gb_(other.gb_) {}

std::unique_ptr<Layer> Linear::clone() const {
  return std::make_unique<Linear>(*this);
}

void Linear::collect(ParamGroup& group) {
  group.params.push_back(&w_);
  group.grads.push_back(&gw_);
  if (has_bias_) {
    group.params.push_back(&b_);
    group.grads.push_back(&gb_);
  }
}

}  // namespace hetero
