#include "nn/linear.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace hetero {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      w_(Tensor::randn({out_features, in_features}, rng,
                       std::sqrt(2.0f / static_cast<float>(in_features)))),
      b_({out_features}),
      gw_({out_features, in_features}),
      gb_({out_features}) {
  HS_CHECK(in_features > 0 && out_features > 0, "Linear: zero-sized layer");
}

Tensor Linear::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 2 && x.dim(1) == in_, "Linear: input shape mismatch");
  if (train) cached_x_ = x;
  Tensor y = matmul_transpose_b(x, w_);  // (N, out)
  if (has_bias_) {
    const std::size_t n = y.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
      float* row = y.data() + i * out_;
      for (std::size_t j = 0; j < out_; ++j) row[j] += b_[j];
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  HS_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
           "Linear::backward: grad shape mismatch");
  HS_CHECK(!cached_x_.empty(), "Linear::backward: no cached forward");
  // gw += grad_out^T x ; gb += column sums ; grad_in = grad_out W.
  gw_ += matmul_transpose_a(grad_out, cached_x_);
  if (has_bias_) {
    const std::size_t n = grad_out.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = grad_out.data() + i * out_;
      for (std::size_t j = 0; j < out_; ++j) gb_[j] += row[j];
    }
  }
  return matmul(grad_out, w_);
}

Linear::Linear(const Linear& other)
    : in_(other.in_),
      out_(other.out_),
      has_bias_(other.has_bias_),
      w_(other.w_),
      b_(other.b_),
      gw_(other.gw_),
      gb_(other.gb_) {}

std::unique_ptr<Layer> Linear::clone() const {
  return std::make_unique<Linear>(*this);
}

void Linear::collect(ParamGroup& group) {
  group.params.push_back(&w_);
  group.grads.push_back(&gw_);
  if (has_bias_) {
    group.params.push_back(&b_);
    group.grads.push_back(&gb_);
  }
}

}  // namespace hetero
