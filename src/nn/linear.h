// Fully-connected layer: y = x W^T + b, x of shape (N, in), W (out, in).
#pragma once

#include "kernels/kernels.h"
#include "nn/layer.h"

namespace hetero {

class Rng;

class Linear : public Layer {
 public:
  /// He-initialized weights (suitable for the ReLU-family activations used
  /// throughout the model zoo); zero bias.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         bool bias = true);

  /// Deep copy (weights, bias, grads); used by clone() and by composite
  /// blocks that hold Linear members by value.
  Linear(const Linear& other);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

 private:
  std::size_t in_, out_;
  bool has_bias_;
  Tensor w_, b_;        // (out, in), (out)
  Tensor gw_, gb_;      // gradients
  Tensor cached_x_;     // (N, in) from the last training forward
  kernels::Workspace ws_;  // scratch for the weight-gradient GEMM
  kernels::Int8WeightCache int8_wcache_;  // stamp for ws_'s weight codes
};

}  // namespace hetero
