#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"

namespace hetero {

LossResult SoftmaxCrossEntropy::operator()(
    const Tensor& logits, const std::vector<std::size_t>& labels,
    bool compute_grad) const {
  HS_CHECK(logits.rank() == 2, "SoftmaxCrossEntropy: logits must be (N, C)");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  HS_CHECK(labels.size() == n, "SoftmaxCrossEntropy: label count mismatch");
  HS_CHECK(n > 0, "SoftmaxCrossEntropy: empty batch");

  Tensor probs = softmax_rows(logits);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    HS_CHECK(labels[i] < c, "SoftmaxCrossEntropy: label out of range");
    const float p = std::max(probs.at(i, labels[i]), 1e-12f);
    loss -= std::log(p);
  }
  LossResult out;
  out.loss = static_cast<float>(loss / n);
  if (compute_grad) {
    // d/dlogits = (softmax - onehot) / N.
    out.grad = probs;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      float* row = out.grad.data() + i * c;
      row[labels[i]] -= 1.0f;
      for (std::size_t j = 0; j < c; ++j) row[j] *= inv_n;
    }
  }
  return out;
}

LossResult BceWithLogits::operator()(const Tensor& logits,
                                     const Tensor& targets,
                                     bool compute_grad) const {
  HS_CHECK(logits.rank() == 2, "BceWithLogits: logits must be (N, C)");
  HS_CHECK(logits.same_shape(targets), "BceWithLogits: target shape mismatch");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  HS_CHECK(n > 0 && c > 0, "BceWithLogits: empty input");

  // Numerically stable: loss = max(z,0) - z*t + log(1 + exp(-|z|)).
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float z = logits[i], t = targets[i];
    loss += std::max(z, 0.0f) - z * t + std::log1p(std::exp(-std::abs(z)));
  }
  LossResult out;
  out.loss = static_cast<float>(loss / static_cast<double>(n * c));
  if (compute_grad) {
    out.grad = sigmoid(logits);
    out.grad -= targets;
    out.grad *= 1.0f / static_cast<float>(n * c);
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  const auto preds = argmax_rows(logits);
  HS_CHECK(preds.size() == labels.size(), "accuracy: label count mismatch");
  if (preds.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace hetero
