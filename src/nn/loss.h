// Loss functions: softmax cross-entropy for single-label classification (the
// 12-class custom dataset) and sigmoid BCE for multi-label classification
// (the FLAIR-style dataset).
//
// Both return mean loss over the batch and produce the gradient w.r.t. the
// logits, already divided by the batch size.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace hetero {

/// Result of a loss evaluation.
struct LossResult {
  float loss = 0.0f;   ///< mean loss over the batch
  Tensor grad;         ///< dLoss/dlogits, same shape as logits
};

class SoftmaxCrossEntropy {
 public:
  /// logits: (N, C); labels: N class indices in [0, C).
  /// compute_grad=false skips the gradient (evaluation path).
  LossResult operator()(const Tensor& logits,
                        const std::vector<std::size_t>& labels,
                        bool compute_grad = true) const;
};

class BceWithLogits {
 public:
  /// logits and targets: (N, C), targets in {0, 1} (floats).
  LossResult operator()(const Tensor& logits, const Tensor& targets,
                        bool compute_grad = true) const;
};

/// Fraction of rows whose argmax matches the label.
double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace hetero
