#include "nn/model.h"

#include "kernels/kernels.h"

namespace hetero {

Model::Model(std::string id, std::unique_ptr<Layer> net)
    : id_(std::move(id)), net_(std::move(net)) {
  HS_CHECK(net_ != nullptr, "Model: null network");
  net_->collect(group_);
  num_params_ = total_size(group_.params);
  num_buffers_ = total_size(group_.buffers);
}

std::unique_ptr<Model> Model::clone() const {
  return std::make_unique<Model>(id_, net_->clone());
}

Tensor Model::forward(const Tensor& x, bool train) {
  return net_->forward(x, train);
}

Tensor Model::backward(const Tensor& grad) { return net_->backward(grad); }

void Model::zero_grad() {
  for (Tensor* g : group_.grads) g->zero();
}

Tensor Model::params() const { return flatten_tensors(group_.params); }

Tensor Model::state() const {
  std::vector<Tensor*> all = group_.params;
  all.insert(all.end(), group_.buffers.begin(), group_.buffers.end());
  return flatten_tensors(all);
}

Tensor Model::grads() const { return flatten_tensors(group_.grads); }

void Model::set_params(const Tensor& flat) {
  unflatten_tensors(flat, group_.params);
  kernels::bump_weight_version();
}

void Model::set_state(const Tensor& flat) {
  std::vector<Tensor*> all = group_.params;
  all.insert(all.end(), group_.buffers.begin(), group_.buffers.end());
  unflatten_tensors(flat, all);
  kernels::bump_weight_version();
}

}  // namespace hetero
