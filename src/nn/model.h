// Model: a network plus the flat-state plumbing federated learning needs.
//
// The FL server communicates *flat model states*: the concatenation of all
// trainable parameters followed by all buffers (batch-norm running stats).
// A single Model instance is reused across simulated clients by swapping
// states with set_state()/state().
#pragma once

#include <memory>
#include <string>

#include "nn/layer.h"

namespace hetero {

class Model {
 public:
  /// Takes ownership of the network. `id` is a human-readable architecture
  /// name (e.g. "mobile-mini").
  Model(std::string id, std::unique_ptr<Layer> net);

  /// Deep copy: clones the network (weights, buffers) into an independent
  /// Model. Used to build per-worker replicas for parallel client execution.
  std::unique_ptr<Model> clone() const;

  Tensor forward(const Tensor& x, bool train = false);
  Tensor backward(const Tensor& grad);
  void zero_grad();

  Layer& net() { return *net_; }
  const std::string& id() const { return id_; }

  std::size_t num_params() const { return num_params_; }
  std::size_t num_buffers() const { return num_buffers_; }
  /// Flat state length = num_params + num_buffers.
  std::size_t state_size() const { return num_params_ + num_buffers_; }

  /// Flattened trainable parameters (copy).
  Tensor params() const;
  /// Flattened parameters + buffers (copy) — the FL communication payload.
  Tensor state() const;
  /// Flattened gradients (copy).
  Tensor grads() const;

  void set_params(const Tensor& flat);
  void set_state(const Tensor& flat);

 private:
  std::string id_;
  std::unique_ptr<Layer> net_;
  ParamGroup group_;
  std::size_t num_params_ = 0;
  std::size_t num_buffers_ = 0;
};

}  // namespace hetero
