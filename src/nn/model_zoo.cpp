#include "nn/model_zoo.h"

#include <stdexcept>

#include "nn/blocks.h"
#include "util/rng.h"

namespace hetero {
namespace {

std::unique_ptr<Model> make_mobile_mini(const ModelSpec& s, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  // Stem: /2.
  net->add(conv_bn_act(s.in_channels, 8, 3, 2, 1, 1, Nonlinearity::kHSwish,
                       rng));
  net->add(std::make_unique<InvertedResidual>(8, 16, 8, 3, 1, /*se=*/true,
                                              Nonlinearity::kReLU, rng));
  net->add(std::make_unique<InvertedResidual>(8, 24, 16, 3, 2, /*se=*/false,
                                              Nonlinearity::kReLU, rng));
  net->add(std::make_unique<InvertedResidual>(16, 48, 16, 3, 1, /*se=*/true,
                                              Nonlinearity::kHSwish, rng));
  net->add(std::make_unique<InvertedResidual>(16, 48, 24, 5, 2, /*se=*/true,
                                              Nonlinearity::kHSwish, rng));
  net->add(conv_bn_act(24, 48, 1, 1, 0, 1, Nonlinearity::kHSwish, rng));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(48, 64, rng));
  net->add(std::make_unique<HSwish>());
  net->add(std::make_unique<Linear>(64, s.num_classes, rng));
  return std::make_unique<Model>("mobile-mini", std::move(net));
}

std::unique_ptr<Model> make_shuffle_mini(const ModelSpec& s, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->add(conv_bn_act(s.in_channels, 12, 3, 2, 1, 1, Nonlinearity::kReLU,
                       rng));
  net->add(std::make_unique<ShuffleUnit>(12, 24, 2, rng));
  net->add(std::make_unique<ShuffleUnit>(24, 24, 1, rng));
  net->add(std::make_unique<ShuffleUnit>(24, 48, 2, rng));
  net->add(std::make_unique<ShuffleUnit>(48, 48, 1, rng));
  net->add(conv_bn_act(48, 64, 1, 1, 0, 1, Nonlinearity::kReLU, rng));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(64, s.num_classes, rng));
  return std::make_unique<Model>("shuffle-mini", std::move(net));
}

std::unique_ptr<Model> make_squeeze_mini(const ModelSpec& s, Rng& rng) {
  // Faithful to SqueezeNet: biased convs, ReLU, no batch normalization, and
  // a ReLU before the final global pooling (a known training fragility the
  // paper's Table 5 surfaces).
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(s.in_channels, 16, 3, 2, 1, 1, rng,
                                    /*bias=*/true));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2d>(2, 2));
  net->add(std::make_unique<FireModule>(16, 4, 8, 8, rng));
  net->add(std::make_unique<FireModule>(16, 8, 16, 16, rng));
  net->add(std::make_unique<MaxPool2d>(2, 2));
  net->add(std::make_unique<FireModule>(32, 8, 16, 16, rng));
  net->add(std::make_unique<Conv2d>(32, s.num_classes, 1, 1, 0, 1, rng,
                                    /*bias=*/true));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<GlobalAvgPool>());
  return std::make_unique<Model>("squeeze-mini", std::move(net));
}

std::unique_ptr<Model> make_mlp_tiny(const ModelSpec& s, Rng& rng) {
  const std::size_t in = s.in_channels * s.image_size * s.image_size;
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(in, 32, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(32, s.num_classes, rng));
  return std::make_unique<Model>("mlp-tiny", std::move(net));
}

}  // namespace

std::unique_ptr<Model> make_model(const ModelSpec& spec, Rng& rng) {
  HS_CHECK(spec.in_channels > 0 && spec.num_classes > 0,
           "make_model: invalid spec");
  HS_CHECK(spec.image_size % 4 == 0 && spec.image_size >= 8,
           "make_model: image_size must be a multiple of 4 and >= 8");
  if (spec.arch == "mobile-mini") return make_mobile_mini(spec, rng);
  if (spec.arch == "shuffle-mini") return make_shuffle_mini(spec, rng);
  if (spec.arch == "squeeze-mini") return make_squeeze_mini(spec, rng);
  if (spec.arch == "mlp-tiny") return make_mlp_tiny(spec, rng);
  throw std::invalid_argument("make_model: unknown architecture " + spec.arch);
}

std::vector<std::string> model_zoo_names() {
  return {"mobile-mini", "shuffle-mini", "squeeze-mini", "mlp-tiny"};
}

}  // namespace hetero
