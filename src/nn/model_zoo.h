// Model zoo: laptop-scale versions of the three mobile CNN families the
// paper evaluates (Table 5), plus a tiny MLP for unit tests.
//
//  * "mobile-mini"  - MobileNetV3-small flavoured: inverted residuals with
//                     squeeze-excitation and h-swish.
//  * "shuffle-mini" - ShuffleNetV2-x0.5 flavoured: channel split + shuffle.
//  * "squeeze-mini" - SqueezeNet-1.1 flavoured: fire modules, no batch norm
//                     (faithful to the original, and to its fragility in
//                     the paper's Table 5).
//  * "mlp-tiny"     - flatten + 2-layer MLP, for tests.
//
// All models accept (N, in_c, img, img) inputs with img a multiple of 4 and
// produce (N, num_classes) logits.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/model.h"

namespace hetero {

class Rng;

struct ModelSpec {
  std::string arch = "mobile-mini";
  std::size_t in_channels = 3;
  std::size_t image_size = 32;
  std::size_t num_classes = 12;
};

/// Builds a model by architecture name; throws std::invalid_argument for
/// unknown names.
std::unique_ptr<Model> make_model(const ModelSpec& spec, Rng& rng);

/// Architecture names available from make_model.
std::vector<std::string> model_zoo_names();

}  // namespace hetero
