#include "nn/optimizer.h"

namespace hetero {

Sgd::Sgd(Layer& model, SgdOptions options) : options_(options) {
  model.collect(group_);
  HS_CHECK(group_.params.size() == group_.grads.size(),
           "Sgd: params/grads mismatch");
}

void Sgd::step() {
  if (options_.momentum > 0.0f && velocity_.empty()) {
    velocity_.reserve(group_.params.size());
    for (const Tensor* p : group_.params) velocity_.emplace_back(p->shape());
  }
  for (std::size_t i = 0; i < group_.params.size(); ++i) {
    Tensor& p = *group_.params[i];
    const Tensor& g = *group_.grads[i];
    if (options_.momentum > 0.0f) {
      Tensor& v = velocity_[i];
      for (std::size_t j = 0; j < p.size(); ++j) {
        const float grad = g[j] + options_.weight_decay * p[j];
        v[j] = options_.momentum * v[j] + grad;
        p[j] -= options_.lr * v[j];
      }
    } else {
      for (std::size_t j = 0; j < p.size(); ++j) {
        const float grad = g[j] + options_.weight_decay * p[j];
        p[j] -= options_.lr * grad;
      }
    }
  }
}

void Sgd::step_and_zero() {
  step();
  for (Tensor* g : group_.grads) g->zero();
}

}  // namespace hetero
