#include "nn/optimizer.h"

#include "kernels/kernels.h"

namespace hetero {

Sgd::Sgd(Layer& model, SgdOptions options) : options_(options) {
  model.collect(group_);
  HS_CHECK(group_.params.size() == group_.grads.size(),
           "Sgd: params/grads mismatch");
}

void Sgd::step() {
  if (options_.momentum > 0.0f && velocity_.empty()) {
    velocity_.reserve(group_.params.size());
    for (const Tensor* p : group_.params) velocity_.emplace_back(p->shape());
  }
  for (std::size_t i = 0; i < group_.params.size(); ++i) {
    Tensor& p = *group_.params[i];
    const Tensor& g = *group_.grads[i];
    // Raw pointers hoisted out of the loops so the three streams vectorize
    // (indexing through the tensors defeats the alias analysis).
    float* pp = p.data();
    const float* gp = g.data();
    const std::size_t size = p.size();
    if (options_.momentum > 0.0f) {
      float* vp = velocity_[i].data();
      for (std::size_t j = 0; j < size; ++j) {
        const float grad = gp[j] + options_.weight_decay * pp[j];
        vp[j] = options_.momentum * vp[j] + grad;
        pp[j] -= options_.lr * vp[j];
      }
    } else {
      for (std::size_t j = 0; j < size; ++j) {
        const float grad = gp[j] + options_.weight_decay * pp[j];
        pp[j] -= options_.lr * grad;
      }
    }
  }
  // Invalidate any cached int8 weight codes (HS_EVAL_CACHE): the trained
  // parameters just changed under them.
  kernels::bump_weight_version();
}

void Sgd::step_and_zero() {
  step();
  for (Tensor* g : group_.grads) g->zero();
}

}  // namespace hetero
