// SGD optimizer with optional momentum and weight decay.
//
// Federated clients construct a fresh Sgd per local update (momentum buffers
// must not leak across clients sharing one model instance).
#pragma once

#include "nn/layer.h"

namespace hetero {

struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  /// Binds to a layer's parameter group; the layer must outlive the
  /// optimizer.
  Sgd(Layer& model, SgdOptions options);

  /// Applies one update from the accumulated grads, then leaves grads as-is
  /// (call model.zero_grad() or step_and_zero()).
  void step();

  /// step() followed by zeroing the gradients — the common training idiom.
  void step_and_zero();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }

 private:
  ParamGroup group_;
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // allocated lazily when momentum > 0
};

}  // namespace hetero
