#include "nn/pooling.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "kernels/isa.h"

namespace hetero {
namespace {

// The model zoo's max pools are all 2x2 stride 2, which deinterleaves
// cleanly: sixteen input floats per row pair produce eight outputs, so the
// window max and the argmax tie-break both vectorize. All comparisons are
// written in the exact expression forms of the scalar path — max as
// (a < b) ? b : a (std::max) and the tie-break as an == select chain — so
// the vector path is bit-identical, including the -0.0/+0.0 cases. The
// clone list (see isa.h) adds no FMA, and max/compare are exact ops, so
// the AVX2 clone cannot drift either.
typedef float v8f __attribute__((vector_size(32)));
typedef int v8i __attribute__((vector_size(32)));

HS_ALWAYS_INLINE v8f load8f(const float* p) {
  v8f v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

HS_ALWAYS_INLINE void store8f(float* p, v8f v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

HS_ALWAYS_INLINE void store8i(int* p, v8i v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

/// std::max(a, b) lane-wise: (a < b) ? b : a, same bits for every input.
HS_ALWAYS_INLINE v8f vmax8(v8f a, v8f b) { return a < b ? b : a; }

/// Splits 16 consecutive floats into the even- and odd-index lanes (the
/// left and right columns of eight 2-wide windows).
HS_ALWAYS_INLINE void deinterleave(const float* row, v8f& even, v8f& odd) {
  const v8f lo = load8f(row);
  const v8f hi = load8f(row + 8);
  even = __builtin_shufflevector(lo, hi, 0, 2, 4, 6, 8, 10, 12, 14);
  odd = __builtin_shufflevector(lo, hi, 1, 3, 5, 7, 9, 11, 13, 15);
}

/// Eval-mode 2x2 stride-2 pooling over `planes` (h, w) planes.
HS_TILED_CLONES
void pool2x2_eval(const float* x, float* y, std::size_t planes, std::size_t h,
                  std::size_t w, std::size_t oh, std::size_t ow) {
  for (std::size_t p = 0; p < planes; ++p) {
    const float* plane = x + p * h * w;
    float* out = y + p * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const float* r0 = plane + (2 * oy) * w;
      const float* r1 = r0 + w;
      float* orow = out + oy * ow;
      std::size_t ox = 0;
      for (; ox + 8 <= ow; ox += 8) {
        v8f e0, o0, e1, o1;
        deinterleave(r0 + 2 * ox, e0, o0);
        deinterleave(r1 + 2 * ox, e1, o1);
        store8f(orow + ox, vmax8(vmax8(e0, o0), vmax8(e1, o1)));
      }
      for (; ox < ow; ++ox) {
        const std::size_t ix = 2 * ox;
        orow[ox] = std::max(std::max(r0[ix], r0[ix + 1]),
                            std::max(r1[ix], r1[ix + 1]));
      }
    }
  }
}

/// Train-mode 2x2 stride-2 pooling: window max plus a 2-bit window code
/// (0..3 = top-left, top-right, bottom-left, bottom-right) per output. The
/// code select chain runs in reverse priority order so on ties the earliest
/// window position wins — the same first-max-wins rule as the generic
/// strict-`>` scan.
HS_TILED_CLONES
void pool2x2_train(const float* x, float* y, int* codes, std::size_t planes,
                   std::size_t h, std::size_t w, std::size_t oh,
                   std::size_t ow) {
  for (std::size_t p = 0; p < planes; ++p) {
    const float* plane = x + p * h * w;
    const std::size_t out_off = p * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const float* r0 = plane + (2 * oy) * w;
      const float* r1 = r0 + w;
      float* orow = y + out_off + oy * ow;
      int* crow = codes + out_off + oy * ow;
      std::size_t ox = 0;
      for (; ox + 8 <= ow; ox += 8) {
        v8f e0, o0, e1, o1;
        deinterleave(r0 + 2 * ox, e0, o0);
        deinterleave(r1 + 2 * ox, e1, o1);
        const v8f m = vmax8(vmax8(e0, o0), vmax8(e1, o1));
        v8i code = v8i{} + 3;
        code = (e1 == m) ? v8i{} + 2 : code;
        code = (o0 == m) ? v8i{} + 1 : code;
        code = (e0 == m) ? v8i{} : code;
        store8f(orow + ox, m);
        store8i(crow + ox, code);
      }
      for (; ox < ow; ++ox) {
        const std::size_t ix = 2 * ox;
        const float v00 = r0[ix], v01 = r0[ix + 1];
        const float v10 = r1[ix], v11 = r1[ix + 1];
        const float m = std::max(std::max(v00, v01), std::max(v10, v11));
        int code = 3;
        code = v10 == m ? 2 : code;
        code = v01 == m ? 1 : code;
        code = v00 == m ? 0 : code;
        orow[ox] = m;
        crow[ox] = code;
      }
    }
  }
}

}  // namespace

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  HS_CHECK(kernel > 0 && stride > 0, "MaxPool2d: bad kernel/stride");
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4, "MaxPool2d: input must be (N,C,H,W)");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  HS_CHECK(h >= kernel_ && w >= kernel_, "MaxPool2d: window exceeds input");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  // Every path below writes all of y (eval folds row maxes, the train paths
  // store per window), so skip the zero-fill.
  Tensor y = Tensor::uninit({n, c, oh, ow});
  if (!train) {
    if (kernel_ == 2 && stride_ == 2) {
      pool2x2_eval(x.data(), y.data(), n * c, h, w, oh, ow);
      return y;
    }
    // Eval path: no argmax bookkeeping needed, so take the window max with
    // branchless compares (one row of the window at a time) instead of the
    // data-dependent argmax branch below, which mispredicts about half the
    // time. Same values: max over the same window.
    for (std::size_t p = 0; p < n * c; ++p) {
      const float* plane = x.data() + p * h * w;
      float* out = y.data() + p * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        float* orow = out + oy * ow;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          const float* irow = plane + (oy * stride_ + ky) * w;
          if (ky == 0) {
            for (std::size_t ox = 0; ox < ow; ++ox) {
              float m = irow[ox * stride_];
              for (std::size_t kx = 1; kx < kernel_; ++kx) {
                m = std::max(m, irow[ox * stride_ + kx]);
              }
              orow[ox] = m;
            }
          } else {
            for (std::size_t ox = 0; ox < ow; ++ox) {
              float m = orow[ox];
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                m = std::max(m, irow[ox * stride_ + kx]);
              }
              orow[ox] = m;
            }
          }
        }
      }
    }
    return y;
  }
  in_shape_ = {n, c, h, w};
  if (kernel_ == 2 && stride_ == 2) {
    // Vectorized path: caches 2-bit window codes instead of absolute input
    // indices (backward reconstructs the index from the output position),
    // which quarters the cache-state traffic on top of the vector max.
    codes_.resize(n * c * oh * ow);
    argmax_.clear();
    pool2x2_train(x.data(), y.data(), codes_.data(), n * c, h, w, oh, ow);
    return y;
  }
  argmax_.assign(n * c * oh * ow, 0);
  codes_.clear();
  if (kernel_ == 2) {
    // The model zoo's pools are all 2x2: take the window max branchlessly
    // and resolve the argmax with a first-equal select chain — the same
    // first-max-wins tie-break as the strict `>` update below, compiled to
    // cmovs instead of a data-dependent branch per element.
    std::size_t out_i = 0;
    for (std::size_t p = 0; p < n * c; ++p) {
      const float* plane = x.data() + p * h * w;
      const std::size_t plane_off = p * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        const std::size_t iy = oy * stride_;
        const float* r0 = plane + iy * w;
        const float* r1 = r0 + w;
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          const std::size_t ix = ox * stride_;
          const float v00 = r0[ix], v01 = r0[ix + 1];
          const float v10 = r1[ix], v11 = r1[ix + 1];
          const float m = std::max(std::max(v00, v01), std::max(v10, v11));
          const std::size_t base = plane_off + iy * w + ix;
          std::size_t idx = base + w + 1;
          idx = v10 == m ? base + w : idx;
          idx = v01 == m ? base + 1 : idx;
          idx = v00 == m ? base : idx;
          y[out_i] = m;
          argmax_[out_i] = idx;
        }
      }
    }
    return y;
  }
  std::size_t out_i = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + ((s * c) + ch) * h * w;
      const std::size_t plane_off = ((s * c) + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          }
          y[out_i] = best;
          argmax_[out_i] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  HS_CHECK(!argmax_.empty() || !codes_.empty(),
           "MaxPool2d::backward: no cached forward");
  Tensor grad_in(in_shape_);
  if (!codes_.empty()) {
    HS_CHECK(grad_out.size() == codes_.size(),
             "MaxPool2d::backward: grad size mismatch");
    const std::size_t h = in_shape_[2], w = in_shape_[3];
    const std::size_t oh = (h - kernel_) / stride_ + 1;
    const std::size_t ow = (w - kernel_) / stride_ + 1;
    const std::size_t planes = in_shape_[0] * in_shape_[1];
    std::size_t i = 0;
    for (std::size_t p = 0; p < planes; ++p) {
      const std::size_t plane_off = p * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++i) {
          const int code = codes_[i];
          const std::size_t iy = 2 * oy + static_cast<std::size_t>(code >> 1);
          const std::size_t ix = 2 * ox + static_cast<std::size_t>(code & 1);
          grad_in[plane_off + iy * w + ix] += grad_out[i];
        }
      }
    }
    return grad_in;
  }
  HS_CHECK(grad_out.size() == argmax_.size(),
           "MaxPool2d::backward: grad size mismatch");
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  HS_CHECK(kernel > 0 && stride > 0, "AvgPool2d: bad kernel/stride");
}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4, "AvgPool2d: input must be (N,C,H,W)");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  HS_CHECK(h >= kernel_ && w >= kernel_, "AvgPool2d: window exceeds input");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  if (train) in_shape_ = {n, c, h, w};
  Tensor y = Tensor::uninit({n, c, oh, ow});  // every window is stored below
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + ((s * c) + ch) * h * w;
      float* out = y.data() + ((s * c) + ch) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)];
            }
          }
          out[oy * ow + ox] = acc * scale;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  HS_CHECK(!in_shape_.empty(), "AvgPool2d::backward: no cached forward");
  const std::size_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                    w = in_shape_[3];
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  HS_CHECK(grad_out.rank() == 4 && grad_out.dim(2) == oh &&
               grad_out.dim(3) == ow,
           "AvgPool2d::backward: grad shape mismatch");
  Tensor grad_in(in_shape_);
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* go = grad_out.data() + ((s * c) + ch) * oh * ow;
      float* gi = grad_in.data() + ((s * c) + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = go[oy * ow + ox] * scale;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              gi[(oy * stride_ + ky) * w + (ox * stride_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4, "GlobalAvgPool: input must be (N,C,H,W)");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (train) in_shape_ = {n, c, h, w};
  Tensor y = Tensor::uninit({n, c});  // every (sample, channel) mean stored
  const float scale = 1.0f / static_cast<float>(h * w);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + ((s * c) + ch) * h * w;
      double acc = 0.0;
      for (std::size_t i = 0; i < h * w; ++i) acc += plane[i];
      y.at(s, ch) = static_cast<float>(acc) * scale;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  HS_CHECK(!in_shape_.empty(), "GlobalAvgPool::backward: no cached forward");
  const std::size_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                    w = in_shape_[3];
  HS_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == n && grad_out.dim(1) == c,
           "GlobalAvgPool::backward: grad shape mismatch");
  // Unlike the windowed pools this backward assigns (not accumulates) every
  // element of every plane, so uninitialized storage is safe here.
  Tensor grad_in = Tensor::uninit(in_shape_);
  const float scale = 1.0f / static_cast<float>(h * w);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(s, ch) * scale;
      float* plane = grad_in.data() + ((s * c) + ch) * h * w;
      for (std::size_t i = 0; i < h * w; ++i) plane[i] = g;
    }
  }
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() >= 2, "Flatten: rank must be >= 2");
  if (train) in_shape_ = x.shape();
  std::size_t f = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) f *= x.dim(i);
  return x.reshaped({x.dim(0), f});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  HS_CHECK(!in_shape_.empty(), "Flatten::backward: no cached forward");
  return grad_out.reshaped(in_shape_);
}

}  // namespace hetero
