#include "nn/pooling.h"

#include <limits>

namespace hetero {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  HS_CHECK(kernel > 0 && stride > 0, "MaxPool2d: bad kernel/stride");
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4, "MaxPool2d: input must be (N,C,H,W)");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  HS_CHECK(h >= kernel_ && w >= kernel_, "MaxPool2d: window exceeds input");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  Tensor y({n, c, oh, ow});
  if (train) {
    argmax_.assign(n * c * oh * ow, 0);
    in_shape_ = {n, c, h, w};
  }
  std::size_t out_i = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + ((s * c) + ch) * h * w;
      const std::size_t plane_off = ((s * c) + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          }
          y[out_i] = best;
          if (train) argmax_[out_i] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  HS_CHECK(!argmax_.empty(), "MaxPool2d::backward: no cached forward");
  HS_CHECK(grad_out.size() == argmax_.size(),
           "MaxPool2d::backward: grad size mismatch");
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  HS_CHECK(kernel > 0 && stride > 0, "AvgPool2d: bad kernel/stride");
}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4, "AvgPool2d: input must be (N,C,H,W)");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  HS_CHECK(h >= kernel_ && w >= kernel_, "AvgPool2d: window exceeds input");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  if (train) in_shape_ = {n, c, h, w};
  Tensor y({n, c, oh, ow});
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + ((s * c) + ch) * h * w;
      float* out = y.data() + ((s * c) + ch) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)];
            }
          }
          out[oy * ow + ox] = acc * scale;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  HS_CHECK(!in_shape_.empty(), "AvgPool2d::backward: no cached forward");
  const std::size_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                    w = in_shape_[3];
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  HS_CHECK(grad_out.rank() == 4 && grad_out.dim(2) == oh &&
               grad_out.dim(3) == ow,
           "AvgPool2d::backward: grad shape mismatch");
  Tensor grad_in(in_shape_);
  const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* go = grad_out.data() + ((s * c) + ch) * oh * ow;
      float* gi = grad_in.data() + ((s * c) + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = go[oy * ow + ox] * scale;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              gi[(oy * stride_ + ky) * w + (ox * stride_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() == 4, "GlobalAvgPool: input must be (N,C,H,W)");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (train) in_shape_ = {n, c, h, w};
  Tensor y({n, c});
  const float scale = 1.0f / static_cast<float>(h * w);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + ((s * c) + ch) * h * w;
      double acc = 0.0;
      for (std::size_t i = 0; i < h * w; ++i) acc += plane[i];
      y.at(s, ch) = static_cast<float>(acc) * scale;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  HS_CHECK(!in_shape_.empty(), "GlobalAvgPool::backward: no cached forward");
  const std::size_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                    w = in_shape_[3];
  HS_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == n && grad_out.dim(1) == c,
           "GlobalAvgPool::backward: grad shape mismatch");
  Tensor grad_in(in_shape_);
  const float scale = 1.0f / static_cast<float>(h * w);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(s, ch) * scale;
      float* plane = grad_in.data() + ((s * c) + ch) * h * w;
      for (std::size_t i = 0; i < h * w; ++i) plane[i] = g;
    }
  }
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  HS_CHECK(x.rank() >= 2, "Flatten: rank must be >= 2");
  if (train) in_shape_ = x.shape();
  std::size_t f = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) f *= x.dim(i);
  return x.reshaped({x.dim(0), f});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  HS_CHECK(!in_shape_.empty(), "Flatten::backward: no cached forward");
  return grad_out.reshaped(in_shape_);
}

}  // namespace hetero
