// Pooling layers: max pooling (square window), average pooling, and global
// average pooling (the classifier-head reduction used by all zoo models).
#pragma once

#include "nn/layer.h"

namespace hetero {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::size_t kernel, std::size_t stride);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(kernel_, stride_);
  }
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_, stride_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
  /// 2x2 stride-2 forwards cache a 2-bit window code per output instead of
  /// an absolute index (backward reconstructs the index from the output
  /// position); exactly one of codes_ / argmax_ is populated.
  std::vector<int> codes_;
  std::vector<std::size_t> in_shape_;
};

class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::size_t kernel, std::size_t stride);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<AvgPool2d>(kernel_, stride_);
  }
  std::string name() const override { return "AvgPool2d"; }

 private:
  std::size_t kernel_, stride_;
  std::vector<std::size_t> in_shape_;
};

/// (N, C, H, W) -> (N, C): spatial mean per channel.
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>();
  }
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::size_t> in_shape_;
};

/// (N, C, H, W) -> (N, C*H*W); also accepts already-flat (N, F) unchanged.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace hetero
