#include "nn/sequential.h"

namespace hetero {

Sequential::Sequential(const Sequential& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  HS_CHECK(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect(ParamGroup& group) {
  for (auto& l : layers_) l->collect(group);
}

}  // namespace hetero
