// Sequential container: runs children in order, backward in reverse.
#pragma once

#include <memory>

#include "nn/layer.h"

namespace hetero {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Deep copy: clones every child layer. Used by clone() and by composite
  /// blocks that hold Sequential members by value.
  Sequential(const Sequential& other);

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect(ParamGroup& group) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace hetero
