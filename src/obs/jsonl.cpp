#include "obs/jsonl.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hetero::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan literals
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// --------------------------------------------------------- JsonObjectBuilder

void JsonObjectBuilder::key(std::string_view k) {
  body_ += fields_ ? ",\"" : "\"";
  append_escaped(body_, k);
  body_ += "\":";
  ++fields_;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k, double v) {
  key(k);
  body_ += json_number(v);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::string_view v) {
  key(k);
  body_ += '"';
  append_escaped(body_, v);
  body_ += '"';
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add_array(
    std::string_view k, const std::vector<double>& v) {
  key(k);
  body_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) body_ += ',';
    body_ += json_number(v[i]);
  }
  body_ += ']';
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add_array(
    std::string_view k, const std::vector<std::uint64_t>& v) {
  key(k);
  body_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) body_ += ',';
    body_ += std::to_string(v[i]);
  }
  body_ += ']';
  return *this;
}

std::string JsonObjectBuilder::str() const { return "{" + body_ + "}"; }

// --------------------------------------------------------------- JsonlWriter

JsonlWriter::JsonlWriter(const std::string& path) : path_(path) {
  file_.open(path, std::ios::out | std::ios::trunc);
  if (!file_.is_open()) {
    throw std::runtime_error("JsonlWriter: cannot open " + path);
  }
  os_ = &file_;
}

JsonlWriter::~JsonlWriter() { flush(); }

void JsonlWriter::write_line(std::string_view line) {
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  os_->put('\n');
  ++lines_;
}

void JsonlWriter::flush() { os_->flush(); }

// -------------------------------------------------------------------- parse

namespace {

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                            s[i] == '\n')) {
      ++i;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool done() {
    skip_ws();
    return i >= s.size();
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (c.i < c.s.size()) {
    char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.i >= c.s.size()) return false;
    char esc = c.s[c.i++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (c.i + 4 > c.s.size()) return false;
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          char h = c.s[c.i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // UTF-8 encode (the writer only emits \u00xx, but accept the BMP).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c, double& out) {
  c.skip_ws();
  const char* begin = c.s.data() + c.i;
  char* end = nullptr;
  out = std::strtod(begin, &end);
  if (end == begin) return false;
  c.i += static_cast<std::size_t>(end - begin);
  return true;
}

bool parse_value(Cursor& c, JsonValue& v) {
  c.skip_ws();
  if (c.i >= c.s.size()) return false;
  const char ch = c.s[c.i];
  if (ch == '"') {
    v.kind = JsonValue::Kind::kString;
    return parse_string(c, v.string);
  }
  if (ch == '[') {
    ++c.i;
    v.kind = JsonValue::Kind::kNumberArray;
    c.skip_ws();
    if (c.eat(']')) return true;
    while (true) {
      double num;
      if (!parse_number(c, num)) return false;
      v.numbers.push_back(num);
      if (c.eat(']')) return true;
      if (!c.eat(',')) return false;
    }
  }
  if (c.s.compare(c.i, 4, "true") == 0) {
    c.i += 4;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = true;
    return true;
  }
  if (c.s.compare(c.i, 5, "false") == 0) {
    c.i += 5;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = false;
    return true;
  }
  if (c.s.compare(c.i, 4, "null") == 0) {
    c.i += 4;
    v.kind = JsonValue::Kind::kNull;
    return true;
  }
  v.kind = JsonValue::Kind::kNumber;
  return parse_number(c, v.number);
}

}  // namespace

std::optional<JsonFlatObject> parse_flat_json(std::string_view line) {
  Cursor c{line};
  if (!c.eat('{')) return std::nullopt;
  JsonFlatObject obj;
  if (c.eat('}')) return c.done() ? std::optional(obj) : std::nullopt;
  while (true) {
    std::string key;
    if (!parse_string(c, key)) return std::nullopt;
    if (!c.eat(':')) return std::nullopt;
    JsonValue value;
    if (!parse_value(c, value)) return std::nullopt;
    obj[key] = std::move(value);
    if (c.eat('}')) break;
    if (!c.eat(',')) return std::nullopt;
  }
  return c.done() ? std::optional(obj) : std::nullopt;
}

}  // namespace hetero::obs
