// JSON-lines plumbing for the observability subsystem: escaping, a
// single-line flat-object builder with deterministic field ordering and
// number formatting, a line-oriented writer, and a parser for the flat
// objects the Tracer emits (used by the trace validator and tests).
//
// Determinism matters here: traces are part of the runtime's replay
// contract (DESIGN.md §8), so doubles are always rendered with "%.17g"
// (round-trippable and platform-stable for IEEE-754 binary64) and fields
// appear exactly in insertion order.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hetero::obs {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslash, and control characters; the latter as \uXXXX or the short
/// forms \n \t \r \b \f).
std::string json_escape(std::string_view s);

/// Renders a double exactly as the trace format does ("%.17g", with
/// non-finite values mapped to null since JSON has no inf/nan literals).
std::string json_number(double v);

/// Builds one flat JSON object, field by field, in insertion order.
class JsonObjectBuilder {
 public:
  JsonObjectBuilder& add(std::string_view key, double v);
  JsonObjectBuilder& add(std::string_view key, std::int64_t v);
  JsonObjectBuilder& add(std::string_view key, std::uint64_t v);
  JsonObjectBuilder& add(std::string_view key, int v) {
    return add(key, static_cast<std::int64_t>(v));
  }
  JsonObjectBuilder& add(std::string_view key, unsigned v) {
    return add(key, static_cast<std::uint64_t>(v));
  }
  JsonObjectBuilder& add(std::string_view key, bool v);
  JsonObjectBuilder& add(std::string_view key, std::string_view v);
  JsonObjectBuilder& add(std::string_view key, const char* v) {
    return add(key, std::string_view(v));
  }
  /// Array of numbers, each rendered like add(double).
  JsonObjectBuilder& add_array(std::string_view key,
                               const std::vector<double>& v);
  /// Array of unsigned integers (client id lists and the like).
  JsonObjectBuilder& add_array(std::string_view key,
                               const std::vector<std::uint64_t>& v);

  std::size_t fields() const { return fields_; }
  /// The finished object, e.g. {"ev":"round_end","round":3}.
  std::string str() const;

 private:
  void key(std::string_view k);

  std::string body_;
  std::size_t fields_ = 0;
};

/// Appends newline-terminated lines to a file (or any ostream). The
/// stream-backed constructor is non-owning and exists for tests.
class JsonlWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit JsonlWriter(const std::string& path);
  /// Writes to an externally owned stream (tests, stdout piping).
  explicit JsonlWriter(std::ostream& os) : os_(&os) {}

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;
  ~JsonlWriter();

  void write_line(std::string_view line);
  void write(const JsonObjectBuilder& obj) { write_line(obj.str()); }
  void flush();
  std::size_t lines_written() const { return lines_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;       // empty for the stream-backed form
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  std::size_t lines_ = 0;
};

/// One parsed scalar (or number-array) value of a flat JSON object.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kNumberArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<double> numbers;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kNumberArray; }
};

using JsonFlatObject = std::map<std::string, JsonValue>;

/// Parses one line holding a flat JSON object whose values are scalars or
/// arrays of numbers — exactly the shape the Tracer emits. Returns nullopt
/// on malformed input (including nested objects, which the trace format
/// never produces).
std::optional<JsonFlatObject> parse_flat_json(std::string_view line);

}  // namespace hetero::obs
