#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/jsonl.h"

namespace hetero::obs {

// ----------------------------------------------------------------- Histogram

void Histogram::observe(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  return samples_.empty()
             ? 0.0
             : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  return samples_.empty()
             ? 0.0
             : *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with at least p% of samples <= it.
  const double n = static_cast<double>(sorted_.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank > 0) --rank;
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

// ----------------------------------------------------------- MetricsRegistry

namespace {
constexpr int kCounter = 0;
constexpr int kGauge = 1;
constexpr int kHistogram = 2;
}  // namespace

void MetricsRegistry::claim_name(const std::string& name, int kind) {
  const auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  claim_name(name, kCounter);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  claim_name(name, kGauge);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  claim_name(name, kHistogram);
  return histograms_[name];
}

void MetricsRegistry::write_jsonl(JsonlWriter& out) const {
  for (const auto& [name, c] : counters_) {
    JsonObjectBuilder b;
    b.add("metric", name).add("type", "counter").add("value", c.value());
    out.write(b);
  }
  for (const auto& [name, g] : gauges_) {
    JsonObjectBuilder b;
    b.add("metric", name).add("type", "gauge").add("value", g.value());
    out.write(b);
  }
  for (const auto& [name, h] : histograms_) {
    JsonObjectBuilder b;
    b.add("metric", name)
        .add("type", "histogram")
        .add("count", static_cast<std::uint64_t>(h.count()))
        .add("mean", h.mean())
        .add("min", h.min())
        .add("max", h.max())
        .add("p50", h.percentile(50))
        .add("p90", h.percentile(90))
        .add("p99", h.percentile(99));
    out.write(b);
  }
}

std::string MetricsRegistry::to_text() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": n=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.percentile(50) << " p99=" << h.percentile(99) << "\n";
  }
  return os.str();
}

}  // namespace hetero::obs
