// MetricsRegistry: named counters, gauges and histograms for the FL
// runtime's telemetry (DESIGN.md §8).
//
// The registry is deliberately not thread-safe: RoundObserver events are
// delivered on the simulation's caller thread in deterministic `selected`
// order (the executor buffers worker results and flushes serially), so
// metrics never see concurrent writers. Names iterate in sorted order, so
// snapshots are deterministic too.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetero::obs {

class JsonlWriter;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Exact-sample histogram: keeps every observation so percentiles are
/// exact (nearest-rank). Fine at simulation scale — rounds × clients
/// observations, not millions per second.
class Histogram {
 public:
  void observe(double v);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile, p in [0, 100]. 0 for an empty histogram.
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;   // lazily rebuilt percentile cache
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Owns all metrics of one run, keyed by name. Accessors create on first
/// use; a name belongs to exactly one metric kind (violations throw).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One JSON object per metric, sorted by name:
  ///   {"metric":"...","type":"counter","value":N}
  ///   {"metric":"...","type":"gauge","value":X}
  ///   {"metric":"...","type":"histogram","count":N,"mean":X,"min":X,
  ///    "max":X,"p50":X,"p90":X,"p99":X}
  void write_jsonl(JsonlWriter& out) const;

  /// Human-readable one-line-per-metric dump (bench stderr summaries).
  std::string to_text() const;

 private:
  void claim_name(const std::string& name, int kind);

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, int> kinds_;
};

}  // namespace hetero::obs
