#include "obs/tracer.h"

namespace hetero::obs {

std::uint64_t Tracer::begin_run(std::string_view label) {
  ++run_;
  seq_ = 0;
  JsonObjectBuilder b = event("run_begin");
  b.add("label", label);
  write(b);
  return run_;
}

JsonObjectBuilder Tracer::event(std::string_view type) {
  JsonObjectBuilder b;
  b.add("ev", type).add("run", run_).add("seq", seq_++);
  return b;
}

}  // namespace hetero::obs
