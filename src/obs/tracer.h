// Tracer: frames JSONL span events for federated-simulation runs.
//
// Every event is one flat JSON object with three framing fields —
//   "ev"  : event type ("run_begin", "round_begin", "client_end",
//           "round_end", "eval", ...)
//   "run" : id of the current run (incremented by begin_run; 0 if a caller
//           never starts a named run)
//   "seq" : per-run sequence number, strictly increasing from 0
// — followed by the caller's payload fields. The schema of the payload per
// event type is documented in DESIGN.md §8.
//
// Determinism: with include_timings == false, callers must not add
// wall-clock fields (TracingObserver honours this), which makes the whole
// trace a pure function of the simulation inputs — byte-identical for any
// thread count, exactly like the simulation results themselves.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/jsonl.h"

namespace hetero::obs {

struct TracerOptions {
  /// Include nondeterministic wall-time fields ("seconds"). Disable to get
  /// byte-identical traces across thread counts / runs.
  bool include_timings = true;
};

class Tracer {
 public:
  explicit Tracer(JsonlWriter& out, TracerOptions options = {})
      : out_(&out), options_(options) {}

  bool include_timings() const { return options_.include_timings; }

  /// Starts a new run: bumps the run id, resets the sequence counter, and
  /// emits a run_begin event carrying `label`. Returns the new run id.
  std::uint64_t begin_run(std::string_view label);

  /// Seeds a builder with the framing fields (ev/run/seq) and claims the
  /// next sequence number. Append payload fields, then pass to write().
  JsonObjectBuilder event(std::string_view type);

  void write(const JsonObjectBuilder& event) { out_->write(event); }
  void flush() { out_->flush(); }

  std::uint64_t run() const { return run_; }
  std::uint64_t events_written() const { return out_->lines_written(); }

 private:
  JsonlWriter* out_;
  TracerOptions options_;
  std::uint64_t run_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace hetero::obs
