#include "runtime/client_executor.h"

#include <chrono>

#include "util/rng.h"

namespace hetero {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ClientExecutor::ClientExecutor(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    replicas_.resize(num_threads_);
  }
}

ClientExecutor::~ClientExecutor() = default;

RoundStats ClientExecutor::run_round(Model& model,
                                     FederatedAlgorithm& algorithm,
                                     const std::vector<std::size_t>& selected,
                                     const std::vector<Dataset>& client_data,
                                     Rng& rng, RoundRuntime* runtime,
                                     RoundContext* ctx) {
  const Clock::time_point start = Clock::now();
  RoundContext local;
  RoundContext& c = ctx ? *ctx : local;
  if (c.observer) c.observer->on_round_begin(c.round, selected);

  RoundStats stats;
  SplitFederatedAlgorithm* split = algorithm.as_split();
  const bool parallel = split != nullptr && pool_ != nullptr;
  if (parallel) {
    stats = run_split_parallel(model, *split, selected, client_data, rng, c);
  } else {
    // Serial path: the algorithm's own round implementation, which times
    // every client and reports it through the context — split algorithms
    // via the serial reference do_run_round, serial-only ones (e.g. a
    // shared noise stream) via their custom round.
    stats = algorithm.run_round(model, selected, client_data, rng, &c);
  }

  stats.round_seconds = seconds_since(start);
  if (runtime) {
    *runtime = RoundRuntime{};
    runtime->parallel = parallel;
    runtime->serial_fallback = split == nullptr;
    runtime->client_seconds_sum = c.client_seconds_sum;
    runtime->client_seconds_max = c.client_seconds_max;
    runtime->round_seconds = stats.round_seconds;
  }
  if (c.observer) c.observer->on_round_end(c.round, stats);
  return stats;
}

RoundStats ClientExecutor::run_split_parallel(
    Model& model, SplitFederatedAlgorithm& split,
    const std::vector<std::size_t>& selected,
    const std::vector<Dataset>& client_data, Rng& rng, RoundContext& ctx) {
  HS_CHECK(!selected.empty(), "ClientExecutor: no clients selected");
  const Tensor global = model.state();
  std::vector<ClientUpdate> updates(selected.size());

  // Fan out. Each worker lazily clones its own replica the first time it
  // picks up a client; after that only the replica's state is overwritten.
  // Slot updates[i] is written by exactly one task, and the shared inputs
  // (model, global, rng, client_data, the algorithm) are only read.
  pool_->parallel_for(selected.size(), [&](std::size_t i) {
    const std::size_t w = ThreadPool::worker_index();
    HS_CHECK(w < replicas_.size(), "ClientExecutor: bad worker index");
    if (!replicas_[w]) replicas_[w] = model.clone();
    const std::size_t id = selected[i];
    Rng client_rng = rng.fork(id);
    const Clock::time_point c0 = Clock::now();
    updates[i] = split.local_update(*replicas_[w], global, id,
                                    client_data.at(id), client_rng);
    updates[i].train_seconds = seconds_since(c0);
  });

  // Flush buffered client events on the caller's thread, in `selected`
  // order — never in completion order — so observers see the same stream
  // the serial path produces.
  for (std::size_t i = 0; i < updates.size(); ++i) {
    ctx.finish_client(updates[i], i);
  }

  // Serial server phase, folding in `selected` order.
  return split.aggregate(model, global, updates);
}

}  // namespace hetero
