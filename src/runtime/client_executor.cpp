#include "runtime/client_executor.h"

#include <chrono>

#include "util/rng.h"

namespace hetero {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ClientExecutor::ClientExecutor(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    replicas_.resize(num_threads_);
  }
}

ClientExecutor::~ClientExecutor() = default;

RoundStats ClientExecutor::run_round(Model& model,
                                     FederatedAlgorithm& algorithm,
                                     const std::vector<std::size_t>& selected,
                                     const std::vector<Dataset>& client_data,
                                     Rng& rng, RoundRuntime* runtime) {
  const Clock::time_point start = Clock::now();
  RoundStats stats;
  SplitFederatedAlgorithm* split = algorithm.as_split();
  if (split == nullptr) {
    // Serial-only algorithm (e.g. a shared server-side noise stream).
    stats = algorithm.run_round(model, selected, client_data, rng);
    if (runtime) *runtime = RoundRuntime{};
  } else if (pool_ == nullptr) {
    stats = run_split_serial(model, *split, selected, client_data, rng,
                             runtime);
  } else {
    stats = run_split_parallel(model, *split, selected, client_data, rng,
                               runtime);
  }
  if (runtime) runtime->round_seconds = seconds_since(start);
  return stats;
}

RoundStats ClientExecutor::run_split_serial(
    Model& model, SplitFederatedAlgorithm& split,
    const std::vector<std::size_t>& selected,
    const std::vector<Dataset>& client_data, Rng& rng,
    RoundRuntime* runtime) {
  HS_CHECK(!selected.empty(), "ClientExecutor: no clients selected");
  const Tensor global = model.state();
  std::vector<ClientUpdate> updates;
  updates.reserve(selected.size());
  for (std::size_t id : selected) {
    Rng client_rng = rng.fork(id);
    const Clock::time_point c0 = Clock::now();
    updates.push_back(
        split.local_update(model, global, id, client_data.at(id), client_rng));
    updates.back().train_seconds = seconds_since(c0);
  }
  if (runtime) {
    *runtime = RoundRuntime{};
    for (const ClientUpdate& u : updates) {
      runtime->client_seconds_sum += u.train_seconds;
      runtime->client_seconds_max =
          std::max(runtime->client_seconds_max, u.train_seconds);
    }
  }
  return split.aggregate(model, global, updates);
}

RoundStats ClientExecutor::run_split_parallel(
    Model& model, SplitFederatedAlgorithm& split,
    const std::vector<std::size_t>& selected,
    const std::vector<Dataset>& client_data, Rng& rng,
    RoundRuntime* runtime) {
  HS_CHECK(!selected.empty(), "ClientExecutor: no clients selected");
  const Tensor global = model.state();
  std::vector<ClientUpdate> updates(selected.size());

  // Fan out. Each worker lazily clones its own replica the first time it
  // picks up a client; after that only the replica's state is overwritten.
  // Slot updates[i] is written by exactly one task, and the shared inputs
  // (model, global, rng, client_data, the algorithm) are only read.
  pool_->parallel_for(selected.size(), [&](std::size_t i) {
    const std::size_t w = ThreadPool::worker_index();
    HS_CHECK(w < replicas_.size(), "ClientExecutor: bad worker index");
    if (!replicas_[w]) replicas_[w] = model.clone();
    const std::size_t id = selected[i];
    Rng client_rng = rng.fork(id);
    const Clock::time_point c0 = Clock::now();
    updates[i] = split.local_update(*replicas_[w], global, id,
                                    client_data.at(id), client_rng);
    updates[i].train_seconds = seconds_since(c0);
  });

  if (runtime) {
    *runtime = RoundRuntime{};
    runtime->parallel = true;
    for (const ClientUpdate& u : updates) {
      runtime->client_seconds_sum += u.train_seconds;
      runtime->client_seconds_max =
          std::max(runtime->client_seconds_max, u.train_seconds);
    }
  }
  // Serial server phase, folding in `selected` order.
  return split.aggregate(model, global, updates);
}

}  // namespace hetero
