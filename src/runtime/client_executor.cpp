#include "runtime/client_executor.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "kernels/kernels.h"
#include "util/rng.h"

namespace hetero {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// backoff_seconds and poison_update moved to runtime/faults.cpp so the
// event scheduler shares the exact same retry/corruption semantics.

bool usable(FaultKind kind) {
  return kind == FaultKind::kOk || kind == FaultKind::kStraggler;
}

}  // namespace

ClientExecutor::ClientExecutor(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    replicas_.resize(num_threads_);
  }
  // Materialization arenas: one per worker (or one for the serial path).
  // They persist across rounds so a lazy provider's steady-state allocation
  // rate is flat — buffers are recycled via Dataset::release_buffers.
  slots_.resize(num_threads_ > 1 ? num_threads_ : 1);
}

ClientExecutor::~ClientExecutor() = default;

void ClientExecutor::set_faults(const FaultOptions& options) {
  fault_options_ = options;
  plan_ = options.enabled() ? std::make_unique<FaultPlan>(options) : nullptr;
}

RoundStats ClientExecutor::run_round(Model& model,
                                     FederatedAlgorithm& algorithm,
                                     const std::vector<std::size_t>& selected,
                                     const std::vector<Dataset>& client_data,
                                     Rng& rng, RoundRuntime* runtime,
                                     RoundContext* ctx) {
  const VectorDatasetProvider provider(client_data);
  return run_round(model, algorithm, selected, provider, rng, runtime, ctx);
}

RoundStats ClientExecutor::run_round(Model& model,
                                     FederatedAlgorithm& algorithm,
                                     const std::vector<std::size_t>& selected,
                                     const ClientProvider& provider,
                                     Rng& rng, RoundRuntime* runtime,
                                     RoundContext* ctx) {
  const Clock::time_point start = Clock::now();
  RoundContext local;
  RoundContext& c = ctx ? *ctx : local;
  if (c.observer) c.observer->on_round_begin(c.round, selected);

  if (runtime) *runtime = RoundRuntime{};
  RoundStats stats;
  // Lazy providers expose cumulative materialization counters; stamp this
  // round's deltas as pop.* extras (same idiom as the fault extras) so
  // traces carry per-round cache behaviour.
  PopulationCounters pop_begin;
  const bool has_pop_counters = provider.population_counters(pop_begin);
  SplitFederatedAlgorithm* split = algorithm.as_split();
  const bool parallel = split != nullptr && pool_ != nullptr;
  if (split) {
    // Unified split path, serial (inline on the shared model) or parallel
    // (per-worker replicas) — the only path fault injection supports.
    stats = run_split(model, *split, selected, provider, rng, c, runtime);
  } else {
    // Serial fallback: the algorithm's own round implementation, which
    // times every client and reports it through the context. The fault
    // layer cannot intercept a round the executor does not drive. Its
    // signature indexes a resident dataset vector, so providers without
    // one (virtual populations) are rejected rather than materialized.
    HS_CHECK(plan_ == nullptr,
             "ClientExecutor: fault injection requires a split algorithm");
    HS_CHECK(edge_groups_ == 0,
             "ClientExecutor: edge aggregation requires a split algorithm");
    const std::vector<Dataset>* data = provider.dataset_vector();
    HS_CHECK(data != nullptr,
             "ClientExecutor: this algorithm has no split client phase; "
             "virtual populations require a split algorithm");
    stats = algorithm.run_round(model, selected, *data, rng, &c);
  }

  stats.round_seconds = seconds_since(start);
  if (has_pop_counters) {
    PopulationCounters pop_end;
    provider.population_counters(pop_end);
    stats.extras["pop.materializations"] = static_cast<double>(
        pop_end.materializations - pop_begin.materializations);
    stats.extras["pop.hits"] =
        static_cast<double>(pop_end.cache_hits - pop_begin.cache_hits);
    stats.extras["pop.misses"] =
        static_cast<double>(pop_end.cache_misses - pop_begin.cache_misses);
    stats.extras["pop.gen_seconds"] =
        pop_end.gen_seconds - pop_begin.gen_seconds;
  }
  if (runtime) {
    runtime->parallel = parallel;
    runtime->serial_fallback = split == nullptr;
    runtime->client_seconds_sum = c.client_seconds_sum;
    runtime->client_seconds_max = c.client_seconds_max;
    runtime->round_seconds = stats.round_seconds;
  }
  if (c.observer) c.observer->on_round_end(c.round, stats);
  return stats;
}

RoundStats ClientExecutor::run_split(Model& model,
                                     SplitFederatedAlgorithm& split,
                                     const std::vector<std::size_t>& selected,
                                     const ClientProvider& provider,
                                     Rng& rng, RoundContext& ctx,
                                     RoundRuntime* runtime) {
  HS_CHECK(!selected.empty(), "ClientExecutor: no clients selected");
  const Tensor global = model.state();
  const std::size_t n = selected.size();
  std::vector<ClientUpdate> updates(n);
  std::vector<FaultOutcome> outcomes(n);

  // One client's full fault-aware execution against model replica `m` and
  // materialization arena `slot`. Slot i of updates/outcomes is written by
  // exactly one task; shared inputs (global, rng, the provider, the
  // algorithm, the plan) are only read, and every random draw is keyed on
  // (round, client id), so the result is bit-identical however clients are
  // scheduled.
  auto run_client = [&](std::size_t i, Model& m, ClientSlot& slot) {
    const std::size_t id = selected[i];
    FaultOutcome& out = outcomes[i];
    out.client_id = id;
    FaultDecision d;
    if (plan_) d = plan_->decide(ctx.round, id);
    if (d.drop) {
      out.kind = FaultKind::kDropout;
      return;
    }
    if (fault_options_.timeout_s > 0.0 && d.delay_s > fault_options_.timeout_s) {
      out.kind = FaultKind::kTimeout;
      out.delay_s = d.delay_s;
      return;
    }
    // Materialize after the drop/timeout early-outs (an excluded client
    // must not pay generation cost) and before the retry loop (retries
    // rerun training, not data generation).
    const Dataset& data = provider.client_dataset(id, slot);
    for (std::size_t attempt = 0;; ++attempt) {
      if (attempt > 0) {
        ++out.retries;
        out.backoff_s += backoff_seconds(fault_options_, attempt - 1);
      }
      bool failed = attempt < d.fail_attempts;
      if (!failed) {
        Rng client_rng = rng.fork(id);
        const Clock::time_point c0 = Clock::now();
        if (plan_) {
          // Tolerate real exceptions from local training like injected
          // transient failures: they consume the retry budget. The rerun
          // is deterministic — the client stream is re-forked from the id.
          try {
            updates[i] = split.local_update(m, global, id, data, client_rng);
          } catch (const std::exception&) {
            failed = true;
          }
        } else {
          updates[i] = split.local_update(m, global, id, data, client_rng);
        }
        if (!failed) {
          // Pure wall time; injected delay and backoff are reported
          // separately as ClientObservation::virtual_seconds so the two
          // clocks never mix (DESIGN.md §11).
          updates[i].train_seconds = seconds_since(c0);
          out.kind = d.delay_s > 0.0 ? FaultKind::kStraggler : FaultKind::kOk;
          out.delay_s = d.delay_s;
          break;
        }
      }
      if (attempt >= fault_options_.max_retries) {
        out.kind = FaultKind::kFailed;
        return;
      }
    }
    if (d.corrupt) poison_update(updates[i], d);
  };

  // Intra-op grant: hand idle pool workers to the kernels of the clients
  // that do run. Results stay bit-identical for any thread count because
  // kernel task grids are fixed by problem shape, never by worker count
  // (DESIGN.md §13); the grant only changes who computes each block.
  const auto intra_run = [this](std::size_t tasks,
                                const std::function<void(std::size_t)>& fn) {
    pool_->parallel_for(tasks, fn);
  };

  if (pool_ && n == 1) {
    // Lone straggler: run the single client inline on the caller (which,
    // like the serial path, trains on the shared model — local_update
    // rewinds to `global` first) and grant it the whole pool.
    const kernels::ScopedIntraOp intra(intra_run, num_threads_);
    run_client(0, model, slots_[0]);
  } else if (pool_) {
    // Fan out. Each worker lazily clones its own replica the first time it
    // picks up a client; after that only the replica's state is
    // overwritten (local_update starts with set_state(global)). The
    // worker's ClientSlot is equally private to it for the whole round.
    //
    // With fewer clients than workers the spare workers drain nested
    // kernel tasks instead of idling. Safe from deadlock: a nested
    // parallel_for only blocks the issuing worker, and with n < workers at
    // least one worker never holds a client, so the nested queue always
    // drains. Kernels never see a grant on the spare workers themselves
    // (the context is thread-local and not inherited), so nesting stops at
    // depth one.
    const std::size_t spare = n < num_threads_ ? num_threads_ - n : 0;
    pool_->parallel_for(n, [&](std::size_t i) {
      const std::size_t w = ThreadPool::worker_index();
      HS_CHECK(w < replicas_.size() && w < slots_.size(),
               "ClientExecutor: bad worker index");
      if (!replicas_[w]) replicas_[w] = model.clone();
      if (spare > 0) {
        const kernels::ScopedIntraOp intra(intra_run, spare + 1);
        run_client(i, *replicas_[w], slots_[w]);
      } else {
        run_client(i, *replicas_[w], slots_[w]);
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) run_client(i, model, slots_[0]);
  }

  // Disposition pass + event flush, on the caller's thread, in `selected`
  // order — never in completion order — so observers see the same stream
  // for any thread count. Every selected client gets exactly one
  // client_end event; excluded clients carry their fault kind with zero
  // weight (and zeroed loss, so no non-finite value reaches a trace).
  std::size_t dropped = 0, quarantined = 0, straggled = 0, retries = 0;
  double virtual_makespan = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    FaultOutcome& out = outcomes[i];
    retries += out.retries;
    if (usable(out.kind) && !validate_update(updates[i])) {
      out.kind = FaultKind::kQuarantined;
    }
    ClientObservation obs;
    switch (out.kind) {
      case FaultKind::kOk:
      case FaultKind::kStraggler:
        if (out.kind == FaultKind::kStraggler) ++straggled;
        obs = make_observation(updates[i], i);
        obs.virtual_seconds = out.delay_s + out.backoff_s;
        break;
      case FaultKind::kQuarantined:
        ++quarantined;
        obs.client_id = selected[i];
        obs.order = i;
        obs.flags = updates[i].flags;
        obs.update_bytes =
            static_cast<std::size_t>(update_payload_bytes(updates[i]));
        obs.train_seconds = updates[i].train_seconds;
        obs.virtual_seconds = out.delay_s + out.backoff_s;
        break;
      case FaultKind::kDropout:
      case FaultKind::kTimeout:
      case FaultKind::kFailed:
        ++dropped;
        obs.client_id = selected[i];
        obs.order = i;
        // The server stopped waiting at the deadline (timeout) or after the
        // last backoff (failed); a dropout never occupied the timeline.
        obs.virtual_seconds = out.kind == FaultKind::kTimeout
                                  ? fault_options_.timeout_s
                                  : out.backoff_s;
        break;
    }
    obs.fault = static_cast<unsigned>(out.kind);
    virtual_makespan = std::max(virtual_makespan, obs.virtual_seconds);
    ctx.finish_client(obs);
  }

  // Partial aggregation over the survivors, still in `selected` order.
  // With the fault layer off this moves every update unchanged, so the
  // aggregate sees exactly the vector the pre-fault executor built.
  std::vector<ClientUpdate> survivors;
  std::vector<std::size_t> survivor_pos;  // original `selected` positions
  survivors.reserve(n);
  survivor_pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!usable(outcomes[i].kind)) continue;
    survivors.push_back(std::move(updates[i]));
    survivor_pos.push_back(i);
  }

  const std::size_t min_clients =
      fault_options_.min_clients > 0 ? fault_options_.min_clients : 1;
  const bool aborted = survivors.size() < min_clients;
  RoundStats stats;
  if (!aborted) {
    stats = edge_groups_ > 0
                ? hierarchical_aggregate(model, split, global, survivors,
                                         survivor_pos, n, edge_groups_)
                : split.aggregate(model, global, survivors);
  } else {
    // Too few usable updates: report the survivors' summary (if any) and
    // leave the global model untouched. On the serial path the shared
    // model doubles as the training scratch replica, so "untouched" means
    // restoring the round-entry snapshot explicitly.
    if (!survivors.empty()) {
      stats = summarize_updates(survivors, model.state_size());
    }
    model.set_state(global);
  }
  // Downlink happened for every selected client before any fault fired.
  // Identical to the aggregate's own accounting when nothing was excluded.
  stats.bytes_down = static_cast<std::uint64_t>(n) *
                     static_cast<std::uint64_t>(model.state_size()) *
                     sizeof(float);
  stats.virtual_seconds = virtual_makespan;
  if (plan_ || quarantined > 0 || aborted) {
    stats.extras["fault.dropped"] = static_cast<double>(dropped);
    stats.extras["fault.quarantined"] = static_cast<double>(quarantined);
    stats.extras["fault.stragglers"] = static_cast<double>(straggled);
    stats.extras["fault.retries"] = static_cast<double>(retries);
    stats.extras["fault.aborted"] = aborted ? 1.0 : 0.0;
  }
  if (runtime) {
    runtime->virtual_seconds = virtual_makespan;
    runtime->clients_dropped = dropped;
    runtime->clients_quarantined = quarantined;
    runtime->clients_straggled = straggled;
    runtime->retries = retries;
    runtime->aborted = aborted;
    if (plan_) runtime->fault_outcomes = std::move(outcomes);
  }
  return stats;
}

}  // namespace hetero
