// ClientExecutor: fans one round's selected clients over a worker pool.
//
// Split algorithms (FederatedAlgorithm::as_split() != nullptr) expose a
// pure per-client local_update; the executor runs those on per-worker Model
// replicas (cloned lazily from the global model, so memory stays
// O(workers), not O(clients)) and then runs the serial aggregate on the
// caller's thread. Algorithms without a split form fall back to their own
// serial run_round.
//
// Determinism contract (see DESIGN.md): every client's RNG stream is forked
// from its client id — never from loop order or worker identity — and
// aggregate folds updates in `selected` order, so the result is
// bit-identical for any thread count, including 1.
#pragma once

#include <memory>
#include <vector>

#include "fl/algorithm.h"
#include "runtime/thread_pool.h"

namespace hetero {

/// Wall-time breakdown of one executed round.
struct RoundRuntime {
  double round_seconds = 0.0;       ///< whole round, fan-out + aggregate
  double client_seconds_sum = 0.0;  ///< summed per-client local_update time
  double client_seconds_max = 0.0;  ///< slowest single client update
  bool parallel = false;            ///< false when a serial path ran
};

class ClientExecutor {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency();
  /// num_threads == 1 runs everything on the calling thread (no pool).
  explicit ClientExecutor(std::size_t num_threads);
  ~ClientExecutor();

  ClientExecutor(const ClientExecutor&) = delete;
  ClientExecutor& operator=(const ClientExecutor&) = delete;

  /// Resolved thread count (after the 0 -> hardware_concurrency mapping).
  std::size_t num_threads() const { return num_threads_; }

  /// Runs one communication round, mutating the global model exactly like
  /// algorithm.run_round would. Per-client timing is reported through
  /// `runtime` when non-null (client times only for split algorithms).
  RoundStats run_round(Model& model, FederatedAlgorithm& algorithm,
                       const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data, Rng& rng,
                       RoundRuntime* runtime = nullptr);

 private:
  RoundStats run_split_serial(Model& model, SplitFederatedAlgorithm& split,
                              const std::vector<std::size_t>& selected,
                              const std::vector<Dataset>& client_data,
                              Rng& rng, RoundRuntime* runtime);
  RoundStats run_split_parallel(Model& model, SplitFederatedAlgorithm& split,
                                const std::vector<std::size_t>& selected,
                                const std::vector<Dataset>& client_data,
                                Rng& rng, RoundRuntime* runtime);

  std::size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;              // null when num_threads_==1
  std::vector<std::unique_ptr<Model>> replicas_;  // one slot per worker
};

}  // namespace hetero
