// ClientExecutor: fans one round's selected clients over a worker pool.
//
// Split algorithms (FederatedAlgorithm::as_split() != nullptr) expose a
// pure per-client local_update; the executor runs those on per-worker Model
// replicas (cloned lazily from the global model, so memory stays
// O(workers), not O(clients)) and then runs the serial aggregate on the
// caller's thread. Algorithms without a split form fall back to their own
// serial round (reported as serial_fallback).
//
// Determinism contract (see DESIGN.md): every client's RNG stream is forked
// from its client id — never from loop order or worker identity — and
// aggregate folds updates in `selected` order, so the result is
// bit-identical for any thread count, including 1.
//
// Telemetry: the executor is the driver of one round, so it emits the
// round-level observer events — on_round_begin before any client trains and
// on_round_end (with RoundStats::round_seconds filled) after the aggregate.
// Client events from the parallel path are buffered with the updates and
// flushed in `selected` order on the caller's thread before the aggregate,
// so the event stream is deterministic for any thread count too.
#pragma once

#include <memory>
#include <vector>

#include "fl/algorithm.h"
#include "runtime/thread_pool.h"

namespace hetero {

/// Wall-time breakdown of one executed round.
struct RoundRuntime {
  double round_seconds = 0.0;       ///< whole round, fan-out + aggregate
  double client_seconds_sum = 0.0;  ///< summed per-client local_update time
  double client_seconds_max = 0.0;  ///< slowest single client update
  bool parallel = false;            ///< false when a serial path ran
  /// True when the algorithm has no split client phase and ran its own
  /// serial round regardless of the requested thread count.
  bool serial_fallback = false;
};

class ClientExecutor {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency();
  /// num_threads == 1 runs everything on the calling thread (no pool).
  explicit ClientExecutor(std::size_t num_threads);
  ~ClientExecutor();

  ClientExecutor(const ClientExecutor&) = delete;
  ClientExecutor& operator=(const ClientExecutor&) = delete;

  /// Resolved thread count (after the 0 -> hardware_concurrency mapping).
  std::size_t num_threads() const { return num_threads_; }

  /// Runs one communication round, mutating the global model exactly like
  /// algorithm.run_round would. Per-client timing is reported through
  /// `runtime` when non-null (every path, split or not). When `ctx` is
  /// non-null its observer receives the full event stream of the round
  /// (round_begin, one client_end per client in `selected` order,
  /// round_end).
  RoundStats run_round(Model& model, FederatedAlgorithm& algorithm,
                       const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data, Rng& rng,
                       RoundRuntime* runtime = nullptr,
                       RoundContext* ctx = nullptr);

 private:
  RoundStats run_split_parallel(Model& model, SplitFederatedAlgorithm& split,
                                const std::vector<std::size_t>& selected,
                                const std::vector<Dataset>& client_data,
                                Rng& rng, RoundContext& ctx);

  std::size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;              // null when num_threads_==1
  std::vector<std::unique_ptr<Model>> replicas_;  // one slot per worker
};

}  // namespace hetero
