// ClientExecutor: fans one round's selected clients over a worker pool.
//
// Split algorithms (FederatedAlgorithm::as_split() != nullptr) expose a
// pure per-client local_update; the executor runs those on per-worker Model
// replicas (cloned lazily from the global model, so memory stays
// O(workers), not O(clients)) and then runs the serial aggregate on the
// caller's thread. With one thread the same unified path runs inline on
// the shared model — identical code, identical results. Algorithms without
// a split form fall back to their own serial round (reported as
// serial_fallback); fault injection requires the split path.
//
// Determinism contract (see DESIGN.md §7): every client's RNG stream is
// forked from its client id — never from loop order or worker identity —
// and aggregate folds updates in `selected` order, so the result is
// bit-identical for any thread count, including 1.
//
// Intra-op parallelism (DESIGN.md §13): when a round has fewer clients
// than workers, the executor installs a kernels::ScopedIntraOp grant so
// the clients that do run can split large GEMMs / conv lowerings across
// the idle workers — a lone straggler gets the whole pool. Kernel task
// grids depend only on problem shape, so this changes wall time, never
// bits.
//
// Fault tolerance (DESIGN.md §10): set_faults() installs a FaultOptions /
// FaultPlan pair. Per client the executor applies the plan's deterministic
// decision — dropout, virtual straggler delay checked against the timeout,
// transient failures retried with exponential virtual backoff, update
// corruption — then validates every surviving update (validate_update) and
// quarantines non-finite ones. Aggregation runs over the survivors only
// (partial aggregation); a round with fewer than min_clients usable
// updates aborts gracefully, leaving the global model untouched. With
// default-constructed FaultOptions the execution path, results, and event
// stream are byte-identical to a build without the fault layer.
//
// Telemetry: the executor is the driver of one round, so it emits the
// round-level observer events — on_round_begin before any client trains and
// on_round_end (with RoundStats::round_seconds filled) after the aggregate.
// Client events from the split path are buffered with the updates and
// flushed in `selected` order on the caller's thread before the aggregate,
// so the event stream is deterministic for any thread count too. Every
// selected client gets exactly one client_end event; excluded clients
// carry their FaultKind in ClientObservation::fault with zero weight.
#pragma once

#include <memory>
#include <vector>

#include "fl/algorithm.h"
#include "fl/client_provider.h"
#include "runtime/faults.h"
#include "runtime/thread_pool.h"

namespace hetero {

/// Wall-time and fault breakdown of one executed round.
struct RoundRuntime {
  double round_seconds = 0.0;       ///< whole round, fan-out + aggregate
  /// Virtual makespan of the round: the slowest client's injected delay +
  /// retry backoff (+ modeled compute under the scheduler). Deterministic,
  /// unlike round_seconds, which stays pure wall clock (DESIGN.md §11).
  double virtual_seconds = 0.0;
  double client_seconds_sum = 0.0;  ///< summed per-client local_update time
  double client_seconds_max = 0.0;  ///< slowest single client update
  bool parallel = false;            ///< false when a serial path ran
  /// True when the algorithm has no split client phase and ran its own
  /// serial round regardless of the requested thread count.
  bool serial_fallback = false;

  /// Fault accounting (all zero when the fault layer is off and every
  /// update validated).
  std::size_t clients_dropped = 0;      ///< dropout + timeout + failed
  std::size_t clients_quarantined = 0;  ///< non-finite updates excluded
  std::size_t clients_straggled = 0;    ///< usable but delayed
  std::size_t retries = 0;              ///< transient-failure retries used
  bool aborted = false;                 ///< survivors < min_clients
  /// Per selected client, in `selected` order. Only populated while a
  /// fault plan is installed (avoids per-round allocation otherwise).
  std::vector<FaultOutcome> fault_outcomes;
};

class ClientExecutor {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency();
  /// num_threads == 1 runs everything on the calling thread (no pool).
  explicit ClientExecutor(std::size_t num_threads);
  ~ClientExecutor();

  ClientExecutor(const ClientExecutor&) = delete;
  ClientExecutor& operator=(const ClientExecutor&) = delete;

  /// Resolved thread count (after the 0 -> hardware_concurrency mapping).
  std::size_t num_threads() const { return num_threads_; }

  /// Installs the fault layer for subsequent rounds. A plan is only
  /// created when options.enabled(); min_clients and update validation
  /// apply either way. Call before the first round for reproducibility.
  void set_faults(const FaultOptions& options);
  const FaultOptions& fault_options() const { return fault_options_; }

  /// Two-level edge aggregation (DESIGN.md §14): with groups > 0 the
  /// round's survivors are split into that many contiguous selection
  /// blocks, each folded into one weighted digest (partial_aggregate, the
  /// PR 4 renormalization), and the digests — not the client updates — feed
  /// the serial aggregate. Exactly the fold the distributed edge tier runs,
  /// so a loopback run with matching edges is byte-identical. 0 (default)
  /// keeps the flat fold. Requires a split algorithm with
  /// supports_partial_aggregation().
  void set_edge_groups(std::size_t groups) { edge_groups_ = groups; }
  std::size_t edge_groups() const { return edge_groups_; }

  /// Runs one communication round, mutating the global model exactly like
  /// algorithm.run_round would. Per-client timing and fault outcomes are
  /// reported through `runtime` when non-null (every path, split or not).
  /// When `ctx` is non-null its observer receives the full event stream of
  /// the round (round_begin, one client_end per client in `selected`
  /// order, round_end).
  ///
  /// The provider form is primary: datasets are materialized through the
  /// per-worker ClientSlot pool, so lazy providers cost O(workers) memory
  /// per round. Algorithms without a split phase run their own serial
  /// round, which indexes a resident dataset vector — the executor rejects
  /// providers that cannot supply one (dataset_vector() == nullptr).
  RoundStats run_round(Model& model, FederatedAlgorithm& algorithm,
                       const std::vector<std::size_t>& selected,
                       const ClientProvider& provider, Rng& rng,
                       RoundRuntime* runtime = nullptr,
                       RoundContext* ctx = nullptr);

  /// Legacy entry point over a bare dataset vector; wraps it in a
  /// VectorDatasetProvider and behaves identically to pre-provider builds.
  RoundStats run_round(Model& model, FederatedAlgorithm& algorithm,
                       const std::vector<std::size_t>& selected,
                       const std::vector<Dataset>& client_data, Rng& rng,
                       RoundRuntime* runtime = nullptr,
                       RoundContext* ctx = nullptr);

 private:
  RoundStats run_split(Model& model, SplitFederatedAlgorithm& split,
                       const std::vector<std::size_t>& selected,
                       const ClientProvider& provider, Rng& rng,
                       RoundContext& ctx, RoundRuntime* runtime);

  std::size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;              // null when num_threads_==1
  std::vector<std::unique_ptr<Model>> replicas_;  // one slot per worker
  std::vector<ClientSlot> slots_;  // one materialization arena per worker
  FaultOptions fault_options_;
  std::unique_ptr<FaultPlan> plan_;  // null while fault injection is off
  std::size_t edge_groups_ = 0;      // 0 = flat aggregation
};

}  // namespace hetero
