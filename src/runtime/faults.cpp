#include "runtime/faults.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "fl/algorithm.h"

namespace hetero {
namespace {

double spec_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_fault_spec: bad value for \"" + key +
                                "\": " + value);
  }
  return v;
}

std::uint64_t spec_uint(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_fault_spec: bad value for \"" + key +
                                "\": " + value);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

FaultOptions parse_fault_spec(const std::string& spec) {
  FaultOptions opts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("parse_fault_spec: expected key=value, got "
                                  "\"" + pair + "\"");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "drop") {
      opts.dropout_prob = spec_double(key, value);
    } else if (key == "fail") {
      opts.fail_prob = spec_double(key, value);
    } else if (key == "retries") {
      opts.max_retries = static_cast<std::size_t>(spec_uint(key, value));
    } else if (key == "backoff") {
      opts.retry_backoff_s = spec_double(key, value);
    } else if (key == "straggle") {
      opts.straggler_prob = spec_double(key, value);
    } else if (key == "delay") {
      opts.straggler_delay_s = spec_double(key, value);
    } else if (key == "timeout") {
      opts.timeout_s = spec_double(key, value);
    } else if (key == "corrupt") {
      opts.corrupt_prob = spec_double(key, value);
    } else if (key == "min") {
      opts.min_clients = static_cast<std::size_t>(spec_uint(key, value));
    } else if (key == "seed") {
      opts.seed = spec_uint(key, value);
    } else if (key == "tiers") {
      opts.device_tier_delays = spec_uint(key, value) != 0;
    } else {
      throw std::invalid_argument("parse_fault_spec: unknown key \"" + key +
                                  "\"");
    }
  }
  return opts;
}

void poison_update(ClientUpdate& update, const FaultDecision& d) {
  static constexpr float kPoison[3] = {
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity()};
  const float bad = kPoison[d.corrupt_kind % 3];
  Tensor& target = !update.state.empty() ? update.state : update.aux;
  if (target.empty()) {
    update.weight = static_cast<double>(bad);
    return;
  }
  target[static_cast<std::size_t>(d.corrupt_pos % target.size())] = bad;
}

double backoff_seconds(const FaultOptions& options, std::size_t retry) {
  const int exponent = static_cast<int>(retry < 60 ? retry : 60);
  return std::ldexp(options.retry_backoff_s, exponent);
}

double total_backoff_seconds(const FaultOptions& options,
                             std::size_t retries) {
  double total = 0.0;
  for (std::size_t r = 0; r < retries; ++r) {
    total += backoff_seconds(options, r);
  }
  return total;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOk: return "ok";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kFailed: return "failed";
    case FaultKind::kQuarantined: return "quarantined";
  }
  return "?";
}

FaultPlan::FaultPlan(const FaultOptions& options)
    : options_(options), base_(options.seed) {}

FaultDecision FaultPlan::decide(std::size_t round, std::size_t client) const {
  Rng r = base_.fork(static_cast<std::uint64_t>(round),
                     static_cast<std::uint64_t>(client));
  // Every draw happens unconditionally and in a fixed order, so enabling
  // or tuning one fault type never shifts the random stream feeding the
  // others: a dropout schedule stays identical whether corruption is on.
  const double u_drop = r.uniform();
  const double u_fail = r.uniform();
  const std::uint64_t fail_extra =
      r.uniform_int(static_cast<std::uint64_t>(options_.max_retries) + 1);
  const double u_straggle = r.uniform();
  const double u_delay = r.uniform();
  const double u_corrupt = r.uniform();
  const std::uint64_t corrupt_pos = r.next_u64();
  const std::uint64_t corrupt_kind = r.uniform_int(3);
  // Appended after the original draws (never reordered), so enabling the
  // scheduler's compute jitter leaves every pre-existing fault stream —
  // and the DrawOrderStableAcrossKnobs guarantee — intact.
  const double u_jitter = r.uniform();

  FaultDecision d;
  d.drop = u_drop < options_.dropout_prob;
  if (u_fail < options_.fail_prob) {
    // 1..max_retries attempts fail then succeed; max_retries+1 means the
    // retry budget runs out and the client fails permanently this round.
    d.fail_attempts = 1 + static_cast<std::size_t>(fail_extra);
  }
  if (u_straggle < options_.straggler_prob) {
    // Device-tier scaling stretches the delay with the client's hardware
    // class; with no scale table installed this multiplies by exactly 1
    // and the decision is bit-identical to the unscaled plan. The lazy
    // callback form takes precedence so virtual populations never need an
    // O(N) scale table.
    const double scale =
        options_.delay_scale_fn
            ? options_.delay_scale_fn(client)
            : (client < options_.client_delay_scale.size()
                   ? options_.client_delay_scale[client]
                   : 1.0);
    d.delay_s = u_delay * 2.0 * options_.straggler_delay_s * scale;
  }
  d.corrupt = u_corrupt < options_.corrupt_prob;
  d.corrupt_kind = static_cast<int>(corrupt_kind);
  d.corrupt_pos = corrupt_pos;
  d.compute_jitter = 2.0 * u_jitter - 1.0;
  return d;
}

}  // namespace hetero
