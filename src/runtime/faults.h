// Deterministic fault injection for the client-execution runtime.
//
// Real FL populations drop out, straggle, fail transiently, and ship
// corrupt updates (Abdelmoniem et al.; Yang et al.). This layer injects
// those behaviours into the simulator WITHOUT breaking the deterministic-
// replay contract of DESIGN.md §7: every per-(round, client) decision is
// drawn from a dedicated fault stream forked as Rng(seed).fork(round,
// client) — keyed by coordinates, never by loop order, worker identity, or
// wall clock — so an identical FaultPlan reproduces bit-for-bit for any
// HS_THREADS value. Straggler delays and retry backoffs are *virtual*
// seconds: they are compared against timeout_s and reported in telemetry,
// but never slept on, so timeouts are decided deterministically too.
//
// The plan only decides WHAT happens; the ClientExecutor applies it
// (dropping clients, retrying transient failures with backoff, poisoning
// updates with non-finite values) and every aggregate path handles the
// fallout via partial aggregation (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace hetero {

/// Knobs of the fault layer. All probabilities are per (round, client).
/// Default-constructed options inject nothing (enabled() == false), which
/// the executor treats as "fault layer off": the zero-fault execution path
/// is byte-identical to a build without this layer.
struct FaultOptions {
  /// Client vanishes for the round before training (device offline).
  double dropout_prob = 0.0;
  /// Transient per-attempt failure; retried up to max_retries times with
  /// exponential virtual backoff before the client counts as failed.
  double fail_prob = 0.0;
  std::size_t max_retries = 2;
  /// Virtual backoff before retry r (0-based): retry_backoff_s * 2^r.
  double retry_backoff_s = 0.05;
  /// Straggler: the client's update arrives late by a virtual delay drawn
  /// uniformly from [0, 2 * straggler_delay_s) (mean straggler_delay_s).
  double straggler_prob = 0.0;
  double straggler_delay_s = 1.0;
  /// Per-client round deadline in virtual seconds; a straggler whose delay
  /// exceeds it is dropped as timed out. 0 disables the deadline.
  double timeout_s = 0.0;
  /// Corrupt update: one coordinate of the returned tensor payload is
  /// poisoned with NaN/+Inf/-Inf after local training. validate_update()
  /// quarantines such updates before they can reach the global model.
  double corrupt_prob = 0.0;
  /// Partial-aggregation floor: a round with fewer usable updates aborts
  /// gracefully (global model untouched). Clamped to at least 1.
  std::size_t min_clients = 1;
  /// Seed of the fault stream. Deliberately independent of the simulation
  /// seed so fault scenarios can be re-rolled without perturbing training.
  std::uint64_t seed = 0xFA17u;
  /// Derive per-client delay scales from device-profile speed tiers
  /// ("tiers=1" in the spec): run_simulation fills client_delay_scale from
  /// FlPopulation::device_speed_scale so straggler delays stretch with the
  /// client's hardware class instead of one global knob.
  bool device_tier_delays = false;
  /// Per-client multiplier on injected straggler delays (and the virtual
  /// compute jitter base). Empty = homogeneous 1.0. Indexed by client id;
  /// clients beyond the vector scale by 1.0.
  std::vector<double> client_delay_scale;
  /// Lazy alternative to client_delay_scale for virtual populations, where
  /// an O(N) table would defeat the point of never materializing N clients:
  /// when set, FaultPlan::decide consults this instead of the vector. MUST
  /// be pure and thread-safe (decide() runs concurrently from workers);
  /// ClientProvider::speed_scale_of satisfies both.
  std::function<double(std::size_t)> delay_scale_fn;

  /// True when any injection probability is positive. min_clients and
  /// update validation are active regardless (they also guard against
  /// organically non-finite updates).
  bool enabled() const {
    return dropout_prob > 0.0 || fail_prob > 0.0 || straggler_prob > 0.0 ||
           corrupt_prob > 0.0;
  }
};

/// Parses an HS_FAULTS-style spec: comma-separated key=value pairs over
/// the keys drop, fail, retries, backoff, straggle, delay, timeout,
/// corrupt, min, seed, tiers (e.g. "drop=0.1,corrupt=0.05,min=2" or
/// "straggle=0.3,delay=2,tiers=1"). Unknown keys or malformed pairs throw
/// std::invalid_argument.
FaultOptions parse_fault_spec(const std::string& spec);

/// What happened to one client in one round. kOk and kStraggler produced a
/// usable update; every other kind excluded the client from aggregation.
enum class FaultKind : unsigned {
  kOk = 0,
  kStraggler = 1,    ///< usable, but arrived with injected delay
  kDropout = 2,      ///< never started (device offline)
  kTimeout = 3,      ///< straggler delay exceeded timeout_s
  kFailed = 4,       ///< transient failures exhausted the retry budget
  kQuarantined = 5,  ///< update carried non-finite values; excluded
};

const char* fault_kind_name(FaultKind kind);

/// The plan's verdict for one (round, client) coordinate, before execution.
struct FaultDecision {
  bool drop = false;              ///< dropout fires
  std::size_t fail_attempts = 0;  ///< leading attempts that fail transiently
  double delay_s = 0.0;           ///< injected virtual straggler delay
  bool corrupt = false;           ///< poison the update post-training
  int corrupt_kind = 0;           ///< 0 = NaN, 1 = +Inf, 2 = -Inf
  std::uint64_t corrupt_pos = 0;  ///< poisoned coordinate (mod payload size)
  /// Virtual compute-time jitter in [-1, 1), consumed by the scheduler's
  /// DelayModel. Drawn last so adding it never shifted the draws above.
  double compute_jitter = 0.0;
};

struct ClientUpdate;

/// Applies a corrupt-update decision: poisons one coordinate of the
/// update's tensor payload (state when present, else aux, else the weight)
/// with a non-finite value so validate_update rejects it. Shared by the
/// round executor and the event scheduler.
void poison_update(ClientUpdate& update, const FaultDecision& d);

/// Virtual backoff before 0-based retry r: retry_backoff_s * 2^r (capped
/// exponent so absurd retry budgets cannot overflow to inf).
double backoff_seconds(const FaultOptions& options, std::size_t retry);

/// Summed virtual backoff over the first `retries` retries.
double total_backoff_seconds(const FaultOptions& options, std::size_t retries);

/// Per-client execution outcome reported through RoundRuntime.
struct FaultOutcome {
  std::size_t client_id = 0;
  FaultKind kind = FaultKind::kOk;
  std::size_t retries = 0;  ///< retries actually consumed
  double delay_s = 0.0;     ///< injected straggler delay (virtual seconds)
  double backoff_s = 0.0;   ///< summed retry backoff (virtual seconds)
};

/// Deterministic fault schedule over (round, client) coordinates.
///
/// decide() is const and thread-safe: it forks a child stream off an
/// immutable base Rng, so the executor may call it concurrently from any
/// worker. The draw order inside decide() is FIXED regardless of which
/// fault types are enabled — turning one knob never re-randomizes the
/// decisions of another, which keeps fault ablations comparable.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultOptions& options);

  FaultDecision decide(std::size_t round, std::size_t client) const;
  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
  Rng base_;
};

}  // namespace hetero
