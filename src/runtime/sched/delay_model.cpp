#include "runtime/sched/delay_model.h"

#include <algorithm>

#include "device/device_profile.h"
#include "fl/client_provider.h"

namespace hetero {

double tier_speed_scale(char tier, const std::string& vendor) {
  double scale = 1.0;
  switch (tier) {
    case 'H': scale = 0.7; break;
    case 'M': scale = 1.0; break;
    case 'L': scale = 1.9; break;
    default: scale = 1.0; break;
  }
  // Stable per-vendor nudge (±4%) so same-tier devices from different
  // vendors do not finish at exactly the same virtual instant.
  std::size_t h = 0;
  for (char c : vendor) h = h * 131 + static_cast<unsigned char>(c);
  const double nudge = static_cast<double>(h % 9) / 100.0 - 0.04;
  return scale * (1.0 + nudge);
}

std::vector<double> device_speed_scales(
    const std::vector<DeviceProfile>& devices) {
  std::vector<double> scales;
  scales.reserve(devices.size());
  for (const DeviceProfile& d : devices) {
    scales.push_back(tier_speed_scale(d.tier, d.vendor));
  }
  return scales;
}

double DelayModel::compute_seconds(std::size_t client, double jitter_u) const {
  if (base_compute_s <= 0.0) return 0.0;
  double scale, work;
  if (provider != nullptr) {
    scale = provider->speed_scale_of(client);
    work = provider->work_of(client);
  } else {
    scale = client < client_scale.size() ? client_scale[client] : 1.0;
    work = client < client_work.size() ? client_work[client] : 1.0;
  }
  const double jitter = std::max(0.0, 1.0 + jitter_frac * jitter_u);
  return base_compute_s * work * scale * jitter;
}

}  // namespace hetero
