// Per-client virtual compute times derived from device profiles.
//
// The paper's Table 1 vendor grid assigns every device a performance tier
// ('H'/'M'/'L'); "On the Impact of Device and Behavioral Heterogeneity in
// FL" shows those speed classes — not a single global straggler knob —
// decide which hardware distributions actually reach the server. This
// model turns (device tier, vendor, local dataset size) into deterministic
// virtual compute seconds for the event scheduler, and the same per-client
// scales feed FaultOptions::client_delay_scale so HS_FAULTS stragglers and
// the scheduler share one seeded delay source (the FaultPlan stream).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hetero {

struct DeviceProfile;
class ClientProvider;

/// Relative compute slowdown of one device tier: H < M (= 1) < L. A small
/// deterministic vendor nudge keeps same-tier devices from being exact
/// clones, mirroring how Table 2's degradation structure varies by vendor.
double tier_speed_scale(char tier, const std::string& vendor);

/// tier_speed_scale for each device, in registry order. Feed the result to
/// FlPopulation::device_speed_scale.
std::vector<double> device_speed_scales(
    const std::vector<DeviceProfile>& devices);

/// Deterministic virtual compute-time model: client i training on w_i
/// samples takes
///   base_compute_s * w_i * scale_i * (1 + jitter_frac * u)
/// virtual seconds, where u in [-1, 1) comes from the client's fault
/// stream (FaultDecision::compute_jitter) so identical seeds reproduce
/// identical timelines for any thread count.
struct DelayModel {
  double base_compute_s = 0.0;  ///< seconds per work unit (sample)
  double jitter_frac = 0.0;     ///< relative jitter amplitude in [0, 1)
  /// Per-client slowdown (device_speed_scale indexed through
  /// client_device); empty = homogeneous 1.0.
  std::vector<double> client_scale;
  /// Per-client work units (local dataset sizes); empty = 1.0.
  std::vector<double> client_work;
  /// Lazy alternative to the two vectors above for virtual populations:
  /// when set, scale and work come from speed_scale_of / work_of instead of
  /// O(N) tables. Non-owning; must outlive the scheduler run.
  const ClientProvider* provider = nullptr;

  double compute_seconds(std::size_t client, double jitter_u) const;
};

}  // namespace hetero
