// The event queue of the virtual-clock scheduler (DESIGN.md §11).
//
// A min-heap of events ordered by (virtual_time, schedule_seq). The
// sequence number is assigned by the queue at push time, so events pushed
// for the same virtual timestamp pop in scheduling order — a total order
// that depends only on the (deterministic) scheduling decisions, never on
// wall clocks or worker identity. This tie-break is what makes the event
// *commit* order — and therefore every floating-point fold downstream —
// bit-identical for any HS_THREADS value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace hetero {

/// One scheduled event: at virtual time `time`, the dispatch record at
/// `dispatch` reaches its terminal outcome (arrival, dropout, timeout or
/// permanent failure — which one was already decided at dispatch).
struct SchedEvent {
  double time = 0.0;          ///< virtual seconds
  std::uint64_t seq = 0;      ///< scheduling order; breaks timestamp ties
  std::size_t dispatch = 0;   ///< index into the scheduler's dispatch log
};

/// Total order: earliest virtual time first, earliest scheduled first
/// among equals.
inline bool event_after(const SchedEvent& a, const SchedEvent& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

class EventQueue {
 public:
  /// Schedules an event and returns its sequence number.
  std::uint64_t push(double time, std::size_t dispatch) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(SchedEvent{time, seq, dispatch});
    return seq;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Pops the next event in (time, seq) order. Undefined when empty.
  SchedEvent pop() {
    SchedEvent e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct After {
    bool operator()(const SchedEvent& a, const SchedEvent& b) const {
      return event_after(a, b);
    }
  };
  std::priority_queue<SchedEvent, std::vector<SchedEvent>, After> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hetero
