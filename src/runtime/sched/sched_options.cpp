#include "runtime/sched/sched_options.h"

#include <cstdlib>
#include <stdexcept>

namespace hetero {
namespace {

SchedMode parse_mode(const std::string& value) {
  if (value == "sync") return SchedMode::kSync;
  if (value == "async") return SchedMode::kAsync;
  if (value == "buffered") return SchedMode::kBuffered;
  throw std::invalid_argument("parse_sched_spec: unknown mode \"" + value +
                              "\" (expected sync, async or buffered)");
}

double spec_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_sched_spec: bad value for \"" + key +
                                "\": " + value);
  }
  return v;
}

std::size_t spec_uint(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_sched_spec: bad value for \"" + key +
                                "\": " + value);
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

const char* sched_mode_name(SchedMode mode) {
  switch (mode) {
    case SchedMode::kSync: return "sync";
    case SchedMode::kAsync: return "async";
    case SchedMode::kBuffered: return "buffered";
  }
  return "?";
}

SchedulerOptions parse_sched_spec(const std::string& spec) {
  SchedulerOptions opts;
  bool first = true;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      // A bare leading token names the mode: "async" == "mode=async".
      if (first) {
        opts.mode = parse_mode(pair);
        first = false;
        continue;
      }
      throw std::invalid_argument("parse_sched_spec: expected key=value, got "
                                  "\"" + pair + "\"");
    }
    first = false;
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "mode") {
      opts.mode = parse_mode(value);
    } else if (key == "buffer") {
      opts.buffer = spec_uint(key, value);
    } else if (key == "alpha") {
      opts.mix_alpha = spec_double(key, value);
    } else if (key == "exp") {
      opts.staleness_exponent = spec_double(key, value);
    } else if (key == "compute") {
      opts.base_compute_s = spec_double(key, value);
    } else if (key == "wave") {
      opts.wave_sampling = spec_uint(key, value) != 0;
    } else {
      throw std::invalid_argument("parse_sched_spec: unknown key \"" + key +
                                  "\"");
    }
  }
  return opts;
}

}  // namespace hetero
