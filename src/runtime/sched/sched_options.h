// Configuration of the virtual-clock event scheduler (DESIGN.md §11).
//
// Three server aggregation disciplines share one discrete-event core:
//   kSync     — today's synchronous FedAvg loop. The scheduler is bypassed
//               entirely (run_simulation keeps its original round loop), so
//               sync results and traces stay byte-identical to pre-scheduler
//               builds.
//   kAsync    — FedAsync-style: the server folds every arriving update as
//               soon as it commits (buffer == 1), scaled by a staleness
//               decay on the model-version delta.
//   kBuffered — FedBuff-style: arrivals accumulate and the server flushes
//               every `buffer` terminal client outcomes. buffer == k with
//               wave sampling and zero delays degenerates to sync FedAvg
//               (asserted in tests/test_sched.cpp).
//
// This header is include-light on purpose: fl/simulation.h embeds
// SchedulerOptions in SimulationConfig.
#pragma once

#include <cstddef>
#include <string>

namespace hetero {

enum class SchedMode {
  kSync = 0,
  kAsync = 1,
  kBuffered = 2,
};

const char* sched_mode_name(SchedMode mode);

/// Knobs of the event scheduler. Defaults select sync mode, which leaves
/// every existing execution path untouched.
struct SchedulerOptions {
  SchedMode mode = SchedMode::kSync;
  /// Buffered mode: flush after this many terminal client outcomes
  /// (arrivals, dropouts, timeouts and failures all count — the server
  /// stops waiting for a client exactly once). 0 means "clients_per_round",
  /// the sync-shaped default. Async mode always flushes per arrival.
  std::size_t buffer = 0;
  /// Server mixing rate: after aggregating a flush into x_agg the server
  /// state becomes (1 - alpha) * x_prev + alpha * x_agg. 1 (default)
  /// adopts the aggregate outright, exactly like sync FedAvg.
  double mix_alpha = 1.0;
  /// Staleness decay exponent a in f(s) = (1 + s)^-a, where s is the
  /// number of server versions committed between a client's dispatch and
  /// its arrival. f(0) == 1 exactly, so fresh updates keep their FedAvg
  /// weight. 0 disables staleness weighting.
  double staleness_exponent = 0.5;
  /// Sampling discipline. false (default): continuous refill — every
  /// terminal outcome immediately dispatches a replacement client, keeping
  /// k clients in flight (requires k < N). true: wave sampling — k clients
  /// are drawn together at the start and after every flush, mirroring the
  /// sync loop's per-round selection draws exactly.
  bool wave_sampling = false;
  /// Virtual compute seconds per local training sample, before the
  /// per-client device-tier speed scale and jitter. 0 (default) models
  /// instantaneous compute, so virtual time advances only through injected
  /// fault delays.
  double base_compute_s = 0.0;

  bool scheduled() const { return mode != SchedMode::kSync; }
  /// Flush threshold after resolving defaults against the round size k.
  std::size_t resolve_buffer(std::size_t clients_per_round) const {
    if (mode == SchedMode::kAsync) return 1;
    return buffer > 0 ? buffer : clients_per_round;
  }
};

/// Parses an HS_SCHED-style spec. The first comma-separated token may be a
/// bare mode name (sync, async, buffered); the rest are key=value pairs
/// over mode, buffer, alpha, exp, compute, wave — e.g. "async,exp=1" or
/// "buffered,buffer=8,alpha=0.6". Unknown keys or malformed pairs throw
/// std::invalid_argument.
SchedulerOptions parse_sched_spec(const std::string& spec);

}  // namespace hetero
