#include "runtime/sched/scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>

namespace hetero {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Kinds whose dispatch eventually yields a trainable update.
bool trainable_kind(FaultKind kind) {
  return kind == FaultKind::kOk || kind == FaultKind::kStraggler;
}

}  // namespace

/// One dispatched client: everything the scheduler fixed at dispatch time
/// (timeline, RNG stream, base snapshot, fault verdict) plus the training
/// product filled in later by exactly one worker. The event timeline is a
/// pure function of the dispatch-time fields, so training can race over
/// wall time without perturbing commit order.
struct EventScheduler::Dispatch {
  std::size_t client_id = 0;
  std::size_t coord = 0;  ///< fault/RNG coordinate (wave index or dispatch seq)
  std::uint64_t version = 0;            ///< server version at dispatch
  std::shared_ptr<const Tensor> base;   ///< state snapshot trained against
  Rng client_rng;                       ///< training stream, fixed at dispatch
  double start_vt = 0.0;
  double end_vt = 0.0;                  ///< terminal-event virtual timestamp
  FaultKind kind = FaultKind::kOk;      ///< verdict (pre-quarantine)
  FaultDecision decision;
  std::size_t retries = 0;
  double backoff_s = 0.0;
  double compute_s = 0.0;
  bool trained = false;
  bool train_failed = false;  ///< organic local_update exception
  ClientUpdate update;
};

EventScheduler::EventScheduler(std::size_t num_threads,
                               const SchedulerOptions& options)
    : options_(options) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    replicas_.resize(num_threads_);
  }
  // Materialization arenas persist across training batches and flushes so
  // lazy providers recycle buffers instead of reallocating per client.
  slots_.resize(num_threads_ > 1 ? num_threads_ : 1);
}

EventScheduler::~EventScheduler() = default;

void EventScheduler::set_faults(const FaultOptions& options) {
  fault_options_ = options;
  // Unlike the round executor the plan always exists: even a fault-free
  // scheduled run draws its compute jitter from the same seeded stream.
  plan_ = std::make_unique<FaultPlan>(options);
}

void EventScheduler::set_delay_model(DelayModel model) {
  delay_model_ = std::move(model);
}

void EventScheduler::dispatch_client(std::size_t client, std::size_t coord,
                                     Rng client_rng, double now) {
  Dispatch d;
  d.client_id = client;
  d.coord = coord;
  d.version = version_;
  d.base = base_;
  d.client_rng = client_rng;
  d.start_vt = now;
  d.decision = plan_->decide(coord, client);
  d.compute_s = delay_model_.compute_seconds(client, d.decision.compute_jitter);
  double end = now;
  if (d.decision.drop) {
    d.kind = FaultKind::kDropout;
  } else if (d.decision.fail_attempts > fault_options_.max_retries) {
    d.kind = FaultKind::kFailed;
    d.retries = fault_options_.max_retries;
    d.backoff_s = total_backoff_seconds(fault_options_, d.retries);
    end = now + d.backoff_s;
  } else {
    d.kind = d.decision.delay_s > 0.0 ? FaultKind::kStraggler : FaultKind::kOk;
    d.retries = d.decision.fail_attempts;
    d.backoff_s = total_backoff_seconds(fault_options_, d.retries);
    end = now + d.compute_s + d.decision.delay_s + d.backoff_s;
  }
  // Server-side deadline on the client's total virtual duration: the
  // scheduler stops waiting at start + timeout_s. (The sync executor only
  // measures the injected delay against the deadline — it has no compute
  // model; with base_compute_s == 0 and no retries the two rules agree.)
  if (fault_options_.timeout_s > 0.0 && d.kind != FaultKind::kDropout &&
      end - now > fault_options_.timeout_s) {
    d.kind = FaultKind::kTimeout;
    end = now + fault_options_.timeout_s;
  }
  d.end_vt = end;
  in_flight_[client] = 1;
  dispatches_.push_back(std::move(d));
  queue_.push(end, dispatches_.size() - 1);
}

void EventScheduler::train_pending(Model& model,
                                   const SplitFederatedAlgorithm& algorithm,
                                   const ClientProvider& provider) {
  // Lazy batch training: gather every in-flight dispatch that will need an
  // update and has not trained yet. Training inputs (base snapshot, RNG
  // stream, dataset recipe) were all fixed at dispatch, so the batch
  // composition — which depends only on event order — cannot affect any
  // result.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < dispatches_.size(); ++i) {
    const Dispatch& d = dispatches_[i];
    if (!d.trained && trainable_kind(d.kind)) pending.push_back(i);
  }
  if (pending.empty()) return;

  const bool tolerate = fault_options_.enabled();
  auto train_one = [&](Dispatch& d, Model& m, ClientSlot& slot) {
    Rng crng = d.client_rng;
    const Dataset& data = provider.client_dataset(d.client_id, slot);
    const Clock::time_point t0 = Clock::now();
    if (tolerate) {
      // Mirror the round executor: with fault injection on, organic
      // exceptions from local training are tolerated and surface as a
      // permanent failure at commit (the timeline is already fixed).
      try {
        d.update = algorithm.local_update(m, *d.base, d.client_id, data, crng);
      } catch (const std::exception&) {
        d.train_failed = true;
      }
    } else {
      d.update = algorithm.local_update(m, *d.base, d.client_id, data, crng);
    }
    d.update.train_seconds = seconds_since(t0);
    if (!d.train_failed && d.decision.corrupt) {
      poison_update(d.update, d.decision);
    }
    d.trained = true;
  };

  if (pool_) {
    pool_->parallel_for(pending.size(), [&](std::size_t j) {
      const std::size_t w = ThreadPool::worker_index();
      HS_CHECK(w < replicas_.size() && w < slots_.size(),
               "EventScheduler: bad worker index");
      if (!replicas_[w]) replicas_[w] = model.clone();
      train_one(dispatches_[pending[j]], *replicas_[w], slots_[w]);
    });
  } else {
    // Serial path trains on a dedicated scratch replica, never the server
    // model: between flushes the server state must stay pristine (in-flight
    // clients hold snapshots; an aborted flush must leave it untouched).
    if (!scratch_) scratch_ = model.clone();
    for (std::size_t j = 0; j < pending.size(); ++j) {
      train_one(dispatches_[pending[j]], *scratch_, slots_[0]);
    }
  }
}

SchedulerRunResult EventScheduler::run(
    Model& model, SplitFederatedAlgorithm& algorithm, std::size_t flushes,
    std::size_t clients_per_round, const std::vector<Dataset>& client_data,
    Rng& rng, RoundObserver* observer,
    const std::function<void(std::size_t)>& on_flush) {
  const VectorDatasetProvider provider(client_data);
  return run(model, algorithm, flushes, clients_per_round, provider, rng,
             observer, on_flush);
}

SchedulerRunResult EventScheduler::run(
    Model& model, SplitFederatedAlgorithm& algorithm, std::size_t flushes,
    std::size_t clients_per_round, const ClientProvider& provider,
    Rng& rng, RoundObserver* observer,
    const std::function<void(std::size_t)>& on_flush) {
  const std::size_t N = provider.num_clients();
  const std::size_t k = clients_per_round;
  HS_CHECK(N > 0, "EventScheduler: no clients");
  HS_CHECK(k > 0 && k <= N, "EventScheduler: bad clients_per_round");
  HS_CHECK(options_.wave_sampling || k < N,
           "EventScheduler: continuous refill needs k < population "
           "(every in-flight client blocks resampling); use wave sampling");
  if (!plan_) set_faults(fault_options_);
  if (options_.base_compute_s > 0.0) {
    delay_model_.base_compute_s = options_.base_compute_s;
  }
  const std::size_t flush_every = options_.resolve_buffer(k);
  const std::size_t min_clients =
      fault_options_.min_clients > 0 ? fault_options_.min_clients : 1;

  // Reset run state.
  queue_ = EventQueue{};
  dispatches_.clear();
  in_flight_.assign(N, 0);
  base_ = std::make_shared<const Tensor>(model.state());
  version_ = 0;
  clock_ = 0.0;
  flush_count_ = 0;
  window_.clear();

  // RNG plumbing. Wave sampling consumes the master stream exactly like
  // the sync loop (one sample_without_replacement + one fork per wave), so
  // the degenerate configuration reproduces sync's client streams
  // bit-for-bit. Continuous refill derives per-dispatch streams keyed on
  // (dispatch_seq, client_id) from a forked base, and resamples
  // replacements from a dedicated sampler stream on the coordinator
  // thread, in commit order — deterministic by construction.
  Rng stream_base = rng.fork(0x5CED0001ull, 0x5CED0002ull);
  Rng sampler = rng.fork(0x5CED0003ull, 0x5CED0004ull);
  std::size_t next_seq = 0;  // continuous dispatch coordinate
  std::size_t wave = 0;

  auto sample_wave = [&]() {
    const auto selected = rng.sample_without_replacement(N, k);
    Rng wave_rng = rng.fork(wave);
    for (std::size_t id : selected) {
      dispatch_client(id, wave, wave_rng.fork(id), clock_);
    }
    ++wave;
  };
  auto dispatch_replacement = [&]() {
    std::size_t id = static_cast<std::size_t>(sampler.uniform_int(N));
    while (in_flight_[id]) {
      id = static_cast<std::size_t>(sampler.uniform_int(N));
    }
    dispatch_client(id, next_seq, stream_base.fork(next_seq, id), clock_);
    ++next_seq;
  };

  if (options_.wave_sampling) {
    sample_wave();
  } else {
    for (std::size_t i = 0; i < k; ++i) dispatch_replacement();
  }

  SchedulerRunResult result;
  result.loss_history.reserve(flushes);
  const Clock::time_point run_start = Clock::now();
  Clock::time_point flush_wall_start = run_start;
  double last_flush_clock = 0.0;

  // Commits one terminal dispatch into the current window, resolving its
  // final disposition (organic failure, quarantine).
  auto commit = [&](Dispatch& d) {
    in_flight_[d.client_id] = 0;
    if (trainable_kind(d.kind)) {
      if (d.train_failed) {
        d.kind = FaultKind::kFailed;
      } else if (!validate_update(d.update)) {
        d.kind = FaultKind::kQuarantined;
      }
    }
    d.base.reset();  // snapshots stay O(in-flight), not O(run)
    window_.push_back(&d - dispatches_.data());
  };

  // Flushes the current window: staleness-weighted aggregate (or abort),
  // retroactive round_begin / client_end / round_end emission in commit
  // order, version bump, accounting.
  auto do_flush = [&]() {
    const std::size_t flush_idx = flush_count_;
    std::size_t dropped = 0, quarantined = 0, straggled = 0, retries = 0;
    std::vector<std::size_t> usable;
    usable.reserve(window_.size());
    for (std::size_t ix : window_) {
      const Dispatch& d = dispatches_[ix];
      retries += d.retries;
      switch (d.kind) {
        case FaultKind::kOk: usable.push_back(ix); break;
        case FaultKind::kStraggler:
          ++straggled;
          usable.push_back(ix);
          break;
        case FaultKind::kQuarantined: ++quarantined; break;
        case FaultKind::kDropout:
        case FaultKind::kTimeout:
        case FaultKind::kFailed: ++dropped; break;
      }
    }
    const bool aborted = usable.size() < min_clients;

    // Staleness accounting and weight scaling happen against the PRE-flush
    // version; an aborted flush never scales (nothing aggregates) and
    // never bumps the version, so a client dispatched during an aborted
    // window keeps staleness 0 relative to the unchanged model.
    double stale_sum = 0.0;
    std::size_t stale_max = 0;
    for (std::size_t ix : usable) {
      Dispatch& d = dispatches_[ix];
      const std::size_t s = static_cast<std::size_t>(version_ - d.version);
      stale_sum += static_cast<double>(s);
      stale_max = std::max(stale_max, s);
      if (!aborted) {
        const double f =
            algorithm.staleness_weight(s, options_.staleness_exponent);
        if (f != 1.0) d.update.weight *= f;
      }
    }

    // Retroactive telemetry: the window's membership is only known now, so
    // the scheduler emits the whole round_begin / client_end / round_end
    // frame at flush time, in commit order (trace_check's structural
    // invariants hold unchanged; `order` is the commit position).
    RoundContext ctx;
    ctx.round = flush_idx;
    ctx.observer = observer;
    if (observer) {
      std::vector<std::size_t> ids;
      ids.reserve(window_.size());
      for (std::size_t ix : window_) ids.push_back(dispatches_[ix].client_id);
      observer->on_round_begin(flush_idx, ids);
    }
    for (std::size_t order = 0; order < window_.size(); ++order) {
      Dispatch& d = dispatches_[window_[order]];
      ClientObservation obs;
      switch (d.kind) {
        case FaultKind::kOk:
        case FaultKind::kStraggler:
          obs = make_observation(d.update, order);
          break;
        case FaultKind::kQuarantined:
          obs.client_id = d.client_id;
          obs.order = order;
          obs.flags = d.update.flags;
          obs.update_bytes =
              static_cast<std::size_t>(update_payload_bytes(d.update));
          obs.train_seconds = d.update.train_seconds;
          break;
        case FaultKind::kDropout:
        case FaultKind::kTimeout:
        case FaultKind::kFailed:
          obs.client_id = d.client_id;
          obs.order = order;
          break;
      }
      obs.fault = static_cast<unsigned>(d.kind);
      obs.virtual_seconds = d.end_vt - d.start_vt;
      obs.scheduled = true;
      obs.virtual_time = d.end_vt;
      obs.version = d.version;
      obs.staleness = static_cast<std::size_t>(version_ - d.version);
      ctx.finish_client(obs);
    }

    RoundStats stats;
    if (!aborted) {
      std::vector<ClientUpdate> updates;
      updates.reserve(usable.size());
      for (std::size_t ix : usable) {
        updates.push_back(std::move(dispatches_[ix].update));
      }
      // The aggregate's reference state is the server's CURRENT state (the
      // FedAsync convention), not any client's dispatch snapshot — stale
      // clients trained against older versions, which is exactly what the
      // staleness decay discounts.
      const Tensor pre = model.state();
      stats = algorithm.aggregate(model, pre, updates);
      if (options_.mix_alpha != 1.0) {
        // Server mixing: x <- (1 - alpha) * x_prev + alpha * x_agg.
        Tensor mixed = model.state();
        const float a = static_cast<float>(options_.mix_alpha);
        for (std::size_t i = 0; i < mixed.size(); ++i) {
          mixed[i] = (1.0f - a) * pre[i] + a * mixed[i];
        }
        model.set_state(mixed);
      }
      ++version_;
      base_ = std::make_shared<const Tensor>(model.state());
      result.updates_committed += usable.size();
    } else {
      if (!usable.empty()) {
        std::vector<ClientUpdate> survivors;
        survivors.reserve(usable.size());
        for (std::size_t ix : usable) {
          survivors.push_back(std::move(dispatches_[ix].update));
        }
        stats = summarize_updates(survivors, model.state_size());
      }
      ++result.flushes_aborted;
    }
    stats.round_seconds = seconds_since(flush_wall_start);
    stats.virtual_seconds = clock_ - last_flush_clock;
    stats.bytes_down = static_cast<std::uint64_t>(window_.size()) *
                       static_cast<std::uint64_t>(model.state_size()) *
                       sizeof(float);
    if (fault_options_.enabled() || dropped > 0 || quarantined > 0 ||
        aborted) {
      stats.extras["fault.dropped"] = static_cast<double>(dropped);
      stats.extras["fault.quarantined"] = static_cast<double>(quarantined);
      stats.extras["fault.stragglers"] = static_cast<double>(straggled);
      stats.extras["fault.retries"] = static_cast<double>(retries);
      stats.extras["fault.aborted"] = aborted ? 1.0 : 0.0;
    }
    stats.extras["sched.staleness_max"] = static_cast<double>(stale_max);
    stats.extras["sched.staleness_mean"] =
        usable.empty() ? 0.0 : stale_sum / static_cast<double>(usable.size());
    stats.extras["sched.version"] = static_cast<double>(version_);
    stats.extras["sched.vt"] = clock_;
    if (observer) observer->on_round_end(flush_idx, stats);

    result.loss_history.push_back(stats.mean_train_loss);
    result.flush_seconds.push_back(stats.round_seconds);
    result.flush_virtual_seconds.push_back(stats.virtual_seconds);
    result.client_seconds_sum += ctx.client_seconds_sum;
    result.client_seconds_max =
        std::max(result.client_seconds_max, ctx.client_seconds_max);
    result.clients_dropped += dropped;
    result.clients_quarantined += quarantined;
    result.clients_straggled += straggled;
    result.fault_retries += retries;
    result.staleness_sum += stale_sum;
    result.staleness_max = std::max(result.staleness_max, stale_max);

    window_.clear();
    ++flush_count_;
    last_flush_clock = clock_;
    flush_wall_start = Clock::now();
  };

  // The event loop: pop the next terminal event, lazily train whatever is
  // pending the first time a trained update is needed, commit in event
  // order, keep the in-flight set full, flush every `flush_every` commits.
  while (flush_count_ < flushes) {
    HS_CHECK(!queue_.empty(), "EventScheduler: event queue drained early");
    const SchedEvent ev = queue_.pop();
    clock_ = std::max(clock_, ev.time);
    Dispatch& d = dispatches_[ev.dispatch];
    if (trainable_kind(d.kind) && !d.trained) {
      train_pending(model, algorithm, provider);
    }
    commit(d);
    if (!options_.wave_sampling) dispatch_replacement();
    if (window_.size() >= flush_every) {
      do_flush();
      if (on_flush) on_flush(flush_count_);
      if (options_.wave_sampling && flush_count_ < flushes) sample_wave();
    }
  }

  result.clients_dispatched = dispatches_.size();
  result.virtual_seconds = clock_;
  result.total_seconds = seconds_since(run_start);
  return result;
}

}  // namespace hetero
