// EventScheduler: a deterministic discrete-event simulator driving async
// (FedAsync) and buffered-async (FedBuff-style) federated aggregation on a
// virtual clock (DESIGN.md §11).
//
// The scheduler replaces the synchronous round barrier with a timeline:
// every dispatched client gets a virtual finish time computed AT DISPATCH
// from the seeded fault/delay plan (straggler delays, retry backoffs,
// timeouts) plus the device-tier compute model (DelayModel), so the whole
// event timeline is a pure function of (seed, population, options) —
// training results never feed back into event times. Events pop from a
// min-heap in (virtual_time, schedule_seq) order; the server flushes its
// buffer every B terminal client outcomes, scaling each update's weight by
// the algorithm's staleness decay f(version_delta) before the ordinary
// serial aggregate, then bumps the model version.
//
// Determinism contract (the point of the design): worker threads race over
// wall time to train pending clients, but client training is pure
// (per-worker replicas, per-dispatch RNG streams keyed on coordinates) and
// the COMMIT order is the event order, which is virtual-time only. Results,
// staleness accounting, and traces are bit-identical for any HS_THREADS.
//
// Sync FedAvg is NOT routed through this class: run_simulation keeps its
// original loop for SchedMode::kSync, which is what keeps sync output
// byte-identical to pre-scheduler builds. The degenerate scheduler
// configuration (buffered, wave sampling, buffer == k, no delays) is
// asserted bit-identical to that loop in tests/test_sched.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fl/algorithm.h"
#include "fl/client_provider.h"
#include "runtime/faults.h"
#include "runtime/sched/delay_model.h"
#include "runtime/sched/event_queue.h"
#include "runtime/sched/sched_options.h"
#include "runtime/thread_pool.h"

namespace hetero {

/// Accounting of one scheduled run, mirroring RuntimeStats' split between
/// wall and virtual clocks.
struct SchedulerRunResult {
  std::vector<double> loss_history;  ///< mean train loss per flush
  double virtual_seconds = 0.0;      ///< final virtual-clock reading
  std::vector<double> flush_virtual_seconds;  ///< clock span per flush
  std::vector<double> flush_seconds;          ///< wall time per flush
  double total_seconds = 0.0;                 ///< wall time of the run
  double client_seconds_sum = 0.0;  ///< summed wall local_update time
  double client_seconds_max = 0.0;
  std::size_t clients_dispatched = 0;  ///< total dispatches
  std::size_t updates_committed = 0;   ///< usable updates aggregated
  std::size_t clients_dropped = 0;     ///< dropout + timeout + failed
  std::size_t clients_quarantined = 0;
  std::size_t clients_straggled = 0;
  std::size_t fault_retries = 0;
  std::size_t flushes_aborted = 0;  ///< flushes below the min_clients floor
  std::size_t staleness_max = 0;    ///< worst staleness over the run
  double staleness_sum = 0.0;       ///< summed over committed updates
};

class EventScheduler {
 public:
  /// num_threads follows ClientExecutor: 0 = hardware_concurrency,
  /// 1 = everything inline on the calling thread.
  EventScheduler(std::size_t num_threads, const SchedulerOptions& options);
  ~EventScheduler();

  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Installs the fault layer. Unlike the round executor, a plan always
  /// exists internally (the scheduler draws its compute jitter from the
  /// same stream), but injection only happens when options.enabled().
  void set_faults(const FaultOptions& options);
  /// Installs the device-tier compute model. DelayModel::base_compute_s is
  /// overridden by SchedulerOptions::base_compute_s when the latter is set.
  void set_delay_model(DelayModel model);

  /// Runs `flushes` server flushes (the scheduled analogue of rounds),
  /// mutating the global model. `rng` is consumed exactly like the sync
  /// loop consumes it under wave sampling. `observer` (may be null) sees
  /// round_begin / client_end (commit order) / round_end per flush window;
  /// `on_flush` (may be empty) fires after flush f with the 1-based flush
  /// count, for eval checkpoints. Client datasets are materialized through
  /// per-worker ClientSlot arenas, so lazy providers keep the working set
  /// O(in-flight), never O(N).
  SchedulerRunResult run(Model& model, SplitFederatedAlgorithm& algorithm,
                         std::size_t flushes, std::size_t clients_per_round,
                         const ClientProvider& provider, Rng& rng,
                         RoundObserver* observer,
                         const std::function<void(std::size_t)>& on_flush);

  /// Legacy entry point over a bare dataset vector; wraps it in a
  /// VectorDatasetProvider and behaves identically to pre-provider builds.
  SchedulerRunResult run(Model& model, SplitFederatedAlgorithm& algorithm,
                         std::size_t flushes, std::size_t clients_per_round,
                         const std::vector<Dataset>& client_data, Rng& rng,
                         RoundObserver* observer,
                         const std::function<void(std::size_t)>& on_flush);

 private:
  struct Dispatch;

  void dispatch_client(std::size_t client, std::size_t coord, Rng client_rng,
                       double now);
  void train_pending(Model& model, const SplitFederatedAlgorithm& algorithm,
                     const ClientProvider& provider);

  std::size_t num_threads_ = 1;
  SchedulerOptions options_;
  FaultOptions fault_options_;
  std::unique_ptr<FaultPlan> plan_;  // never null after set_faults / run
  DelayModel delay_model_;

  std::unique_ptr<ThreadPool> pool_;              // null when num_threads_==1
  std::vector<std::unique_ptr<Model>> replicas_;  // one slot per worker
  std::unique_ptr<Model> scratch_;                // serial training replica
  std::vector<ClientSlot> slots_;  // one materialization arena per worker

  // Run state (reset by run()).
  EventQueue queue_;
  std::vector<Dispatch> dispatches_;
  std::vector<char> in_flight_;       // per population client
  std::shared_ptr<const Tensor> base_;  // current dispatch snapshot
  std::uint64_t version_ = 0;
  double clock_ = 0.0;
  std::size_t flush_count_ = 0;
  std::vector<std::size_t> window_;  // committed dispatches, commit order
};

}  // namespace hetero
