#include "runtime/thread_pool.h"

#include <atomic>

#include "tensor/tensor.h"

namespace hetero {
namespace {

// Which worker slot this thread occupies in its pool. A thread belongs to
// at most one pool for its whole lifetime, so a single thread_local works.
thread_local std::size_t t_worker_index = ThreadPool::npos;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers) {
  HS_CHECK(num_workers > 0, "ThreadPool: need at least one worker");
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::worker_index() { return t_worker_index; }

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  HS_CHECK(static_cast<bool>(fn), "ThreadPool::submit: empty task");
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> result = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    HS_CHECK(!stop_, "ThreadPool::submit: pool is shutting down");
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  HS_CHECK(static_cast<bool>(fn), "ThreadPool::parallel_for: empty body");

  // Shared between the drivers enqueued below. Drivers pull indices from
  // `next` until exhausted (or an exception poisons the loop); the last
  // driver to finish wakes the caller.
  struct State {
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t active = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->n = n;

  const std::size_t drivers = std::min(num_workers(), n);
  state->active = drivers;

  auto drive = [state, &fn] {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        // Poison the counter so other drivers stop picking up work.
        state->next.store(state->n, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(state->mu);
    if (--state->active == 0) state->done_cv.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    HS_CHECK(!stop_, "ThreadPool::parallel_for: pool is shutting down");
    for (std::size_t d = 0; d < drivers; ++d) queue_.emplace_back(drive);
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->active == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace hetero
