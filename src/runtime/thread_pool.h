// Fixed-size worker thread pool used by the parallel client executor.
//
// Design goals, in order:
//   * deterministic client work: parallel_for hands out loop indices, and
//     the caller's per-index work must not depend on which worker runs it
//     (workers are identified by worker_index() so callers can bind
//     per-worker scratch state such as model replicas);
//   * exception safety: the first exception thrown by any task is captured
//     and rethrown on the calling thread;
//   * simplicity: a mutex + condition-variable task queue. Clients train
//     for milliseconds per task, so queue overhead is noise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hetero {

class ThreadPool {
 public:
  /// Sentinel returned by worker_index() on non-worker threads.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Spawns num_workers threads. num_workers must be positive.
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// Index of the calling thread within its pool ([0, num_workers)), or
  /// npos when the caller is not a pool worker.
  static std::size_t worker_index();

  /// Enqueues one task; the returned future rethrows anything it threw.
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, n) across the workers and blocks until
  /// all calls finish. Indices are claimed from a shared counter, so each
  /// index runs exactly once on exactly one worker. If any call throws,
  /// remaining indices are abandoned and the first exception is rethrown
  /// here. The calling thread only waits; it never executes fn itself.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace hetero
